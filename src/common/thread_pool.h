// A fixed-size worker pool with a shared FIFO task queue.
//
// The pool is deliberately minimal: Submit() enqueues a closure, WaitIdle()
// blocks until every submitted closure has finished, and the destructor
// drains and joins. The parallel search engine submits one long-running
// worker loop per thread (the loops coordinate through their own sharded
// frontier), and barrier-style strategies (GSTR's per-stratum closures)
// reuse the same threads across strata through WaitIdle() instead of
// respawning them.
//
// Failure containment: a task that throws (including the armed
// fault::kPoolTask injection, which fires *before* the task body — the
// "worker dies before claiming its slot" scenario) is swallowed and
// counted, never propagated: the worker thread survives, WaitIdle still
// returns, and the submitter discovers the loss through whatever result
// slot the dead task failed to fill (pipeline stage 3 pre-fills every slot
// with an outcome naming exactly this cause).
#ifndef RDFVIEWS_COMMON_THREAD_POOL_H_
#define RDFVIEWS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/telemetry/metrics.h"

namespace rdfviews {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
        [this](std::vector<telemetry::MetricSample>* out) {
          telemetry::MetricSample s;
          s.name = "common_pool_tasks_died_total";
          s.value = tasks_died_.load(std::memory_order_relaxed);
          out->push_back(std::move(s));
        });
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  size_t size() const { return threads_.size(); }

  /// Enqueues `task` for execution on some pool thread.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      ++outstanding_;
    }
    wake_.notify_one();
  }

  /// Blocks until every task submitted so far has completed.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
  }

  /// Tasks that died (threw) instead of returning; their work is lost but
  /// the pool, its workers, and WaitIdle are unaffected.
  uint64_t tasks_died() const {
    return tasks_died_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      try {
        fault::MaybeThrow(fault::sites::kPoolTask);
        task();
      } catch (...) {
        tasks_died_.fetch_add(1, std::memory_order_relaxed);
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--outstanding_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t outstanding_ = 0;  // queued + running
  bool stopping_ = false;
  std::atomic<uint64_t> tasks_died_{0};
  std::vector<std::thread> threads_;
  // Declared after threads_ so it unregisters from the registry first,
  // while the atomic it reads is still alive. (Workers are joined in the
  // destructor body, which runs before any member is destroyed.)
  telemetry::CollectorHandle metrics_;
};

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_THREAD_POOL_H_
