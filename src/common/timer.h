// Wall-clock stopwatch and deadline helpers.
#ifndef RDFVIEWS_COMMON_TIMER_H_
#define RDFVIEWS_COMMON_TIMER_H_

#include <chrono>

namespace rdfviews {

/// Monotonic stopwatch. Starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A deadline that can be queried cheaply in hot loops.
class Deadline {
 public:
  /// budget_sec <= 0 means "no deadline".
  explicit Deadline(double budget_sec) : budget_sec_(budget_sec) {}

  bool Expired() const {
    return budget_sec_ > 0 && watch_.ElapsedSeconds() >= budget_sec_;
  }

  double RemainingSeconds() const {
    if (budget_sec_ <= 0) return 1e18;
    double rem = budget_sec_ - watch_.ElapsedSeconds();
    return rem > 0 ? rem : 0;
  }

  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

 private:
  double budget_sec_;
  Stopwatch watch_;
};

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_TIMER_H_
