// Tracing spans with an injectable clock and thread-local context
// propagation.
//
// A Tracer owns a flat vector of SpanRecords for one logical run (one
// session Update, one pipeline::Run). Spans are parented through a
// thread-local TraceContext {tracer, current span}: RAII TraceSpan reads
// the context at construction, appends an open record, re-points the
// context at itself, and closes the record + restores the parent on
// destruction. Crossing a thread boundary (pool task) means capturing
// CurrentTraceContext() before scheduling and installing it with
// ScopedTraceContext inside the task.
//
// Disarmed cost: when no context is installed (tracer == nullptr) a
// TraceSpan is one thread-local read and a branch — no allocation, no
// lock. Hot loops (per-state search work) are below span granularity by
// design; spans wrap stages, attempts, I/O and sleeps.
//
// The clock is a std::function<uint64_t()> returning nanos, injectable
// for determinism in tests — the same pattern as the fault harness's
// CircuitBreaker clock.
#ifndef RDFVIEWS_COMMON_TELEMETRY_TRACE_H_
#define RDFVIEWS_COMMON_TELEMETRY_TRACE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rdfviews {
namespace telemetry {

using SpanId = uint64_t;  // 1-based; 0 means "no span".

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  bool closed = false;
  // Small string attributes: (key, value), appended via TraceSpan::Annotate.
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  using Clock = std::function<uint64_t()>;  // nanoseconds

  /// Default clock is steady_clock-based wall time.
  Tracer();
  explicit Tracer(Clock clock);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  uint64_t NowNs() const { return clock_(); }

  /// Opens a span; returns its id. Thread-safe.
  SpanId Open(const std::string& name, SpanId parent);
  /// Closes a span (idempotent). Thread-safe.
  void Close(SpanId id);
  /// Appends a (key, value) attribute to an open-or-closed span.
  void Annotate(SpanId id, const std::string& key, const std::string& value);

  /// Copies out all records (ids are 1-based; record i has id i+1).
  std::vector<SpanRecord> Spans() const;

  /// True iff every span has been closed. A balanced tree is the
  /// invariant chaos/cancel tests gate on: RAII spans guarantee it as
  /// long as no exception escapes a span's scope un-unwound.
  bool AllClosed() const;

 private:
  Clock clock_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// Thread-local propagation cell.
struct TraceContext {
  Tracer* tracer = nullptr;
  SpanId span = 0;
};

/// Reads the calling thread's current context (for capture-before-schedule).
TraceContext CurrentTraceContext();

/// Installs a context for the current scope; restores the previous one on
/// destruction. Use at pool-task entry with a context captured on the
/// submitting thread.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// RAII span: opens under the thread's current context (no-op when none),
/// re-points the context at itself, closes + restores on destruction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool armed() const { return tracer_ != nullptr; }
  SpanId id() const { return id_; }

  void Annotate(const std::string& key, const std::string& value);
  void Annotate(const std::string& key, uint64_t value);

  /// Closes now (destructor then no-ops); for spans whose interesting
  /// region ends before scope exit.
  void End();

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
  SpanId saved_parent_ = 0;
  bool ended_ = false;
};

/// Zero-duration child span ("event"): watchdog fire, breaker skip.
void TraceEvent(const char* name,
                std::initializer_list<std::pair<std::string, std::string>>
                    attrs = {});

}  // namespace telemetry
}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_TELEMETRY_TRACE_H_
