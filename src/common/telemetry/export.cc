#include "common/telemetry/export.h"

#include <cstdio>
#include <sstream>

namespace rdfviews {
namespace telemetry {

std::map<std::string, double> RunTelemetry::SpanSecondsByName() const {
  std::map<std::string, double> by_name;
  for (const auto& s : spans) {
    if (!s.closed) continue;
    by_name[s.name] += static_cast<double>(s.end_ns - s.start_ns) * 1e-9;
  }
  return by_name;
}

bool RunTelemetry::SpanTreeBalanced() const {
  for (const auto& s : spans) {
    if (!s.closed) return false;
    if (s.end_ns < s.start_ns) return false;
    if (s.parent != 0) {
      if (s.parent > spans.size()) return false;
      const SpanRecord& p = spans[s.parent - 1];
      if (p.id != s.parent) return false;
      if (p.start_ns > s.start_ns) return false;
    }
  }
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string SpansJson(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"id\": " << s.id << ", \"parent\": " << s.parent
       << ", \"name\": \"" << JsonEscape(s.name) << "\""
       << ", \"start_ns\": " << s.start_ns << ", \"end_ns\": " << s.end_ns;
    if (!s.attrs.empty()) {
      os << ", \"attrs\": {";
      for (size_t i = 0; i < s.attrs.size(); ++i) {
        if (i > 0) os << ", ";
        os << "\"" << JsonEscape(s.attrs[i].first) << "\": \""
           << JsonEscape(s.attrs[i].second) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << (first ? "]" : "\n  ]");
  return os.str();
}

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& s : snapshot.samples) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << JsonEscape(s.name) << "\"";
    if (!s.labels.empty()) {
      os << ", \"labels\": \"" << JsonEscape(s.labels) << "\"";
    }
    os << ", \"kind\": \"" << KindName(s.kind) << "\"";
    switch (s.kind) {
      case MetricKind::kCounter:
        os << ", \"value\": " << s.value;
        break;
      case MetricKind::kGauge:
        os << ", \"value\": " << s.gauge_value;
        break;
      case MetricKind::kHistogram: {
        os << ", \"count\": " << s.histogram.count
           << ", \"sum\": " << s.histogram.sum << ", \"buckets\": [";
        for (size_t i = 0; i < s.histogram.cumulative_buckets.size(); ++i) {
          if (i > 0) os << ", ";
          os << "[" << s.histogram.cumulative_buckets[i].first << ", "
             << s.histogram.cumulative_buckets[i].second << "]";
        }
        os << "]";
        break;
      }
    }
    os << "}";
  }
  os << (first ? "]" : "\n  ]");
  return os.str();
}

std::string RunReportJson(
    const std::vector<std::pair<std::string, std::string>>& extra_fields,
    const RunTelemetry& telemetry) {
  std::ostringstream os;
  os << "{\n";
  for (const auto& [key, value] : extra_fields) {
    os << "  \"" << JsonEscape(key) << "\": " << value << ",\n";
  }
  os << "  \"spans\": " << SpansJson(telemetry.spans) << ",\n";
  os << "  \"metrics\": " << MetricsJson(telemetry.metrics) << "\n";
  os << "}\n";
  return os.str();
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  std::string last_typed;
  for (const auto& s : snapshot.samples) {
    if (s.name != last_typed) {
      os << "# TYPE " << s.name << " " << KindName(s.kind) << "\n";
      last_typed = s.name;
    }
    const std::string base_labels = s.labels;
    auto with_labels = [&](const std::string& extra) {
      if (base_labels.empty() && extra.empty()) return std::string();
      std::string body = base_labels;
      if (!extra.empty()) {
        if (!body.empty()) body += ",";
        body += extra;
      }
      return "{" + body + "}";
    };
    switch (s.kind) {
      case MetricKind::kCounter:
        os << s.name << with_labels("") << " " << s.value << "\n";
        break;
      case MetricKind::kGauge:
        os << s.name << with_labels("") << " " << s.gauge_value << "\n";
        break;
      case MetricKind::kHistogram: {
        for (const auto& [bound, cum] : s.histogram.cumulative_buckets) {
          os << s.name << "_bucket"
             << with_labels("le=\"" + std::to_string(bound) + "\"") << " "
             << cum << "\n";
        }
        os << s.name << "_bucket" << with_labels("le=\"+Inf\"") << " "
           << s.histogram.count << "\n";
        os << s.name << "_sum" << with_labels("") << " " << s.histogram.sum
           << "\n";
        os << s.name << "_count" << with_labels("") << " " << s.histogram.count
           << "\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace telemetry
}  // namespace rdfviews
