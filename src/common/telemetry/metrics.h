// Process-wide metrics registry: lock-free counters, gauges, and
// log-bucketed histograms, registered by (name, labels), snapshot on
// demand.
//
// Design
// ------
// The hot path is ONE relaxed atomic op: Counter::Add / Gauge::Set /
// Histogram::Observe each touch only std::atomic<uint64_t> cells with
// memory_order_relaxed. Registration (GetCounter / GetHistogram / ...)
// takes a mutex and should be done once at construction time, never per
// event; the returned pointers are stable for the registry's lifetime.
//
// Components that already maintain their own relaxed-atomic counter
// structs (ViewInterner::Counters, PartitionCacheBackend::Counters, ...)
// do NOT double-increment. They register a *collector* — a callback that
// reads their live counters into samples at snapshot time. Snapshot()
// sums samples with identical (name, labels) across all live collectors,
// so three cache backends in one process roll up into one
// `vsel_cache_gets_total` series while each instance keeps its own
// exact per-instance API.
//
// Lock order: MetricsRegistry::mu_ may be held while a collector runs,
// and collectors may take their component's own lock — never the other
// way around (no component calls back into the registry while holding
// its lock; registration happens in constructors before the component
// is shared).
#ifndef RDFVIEWS_COMMON_TELEMETRY_METRICS_H_
#define RDFVIEWS_COMMON_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rdfviews {
namespace telemetry {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotone counter. Add() is one relaxed fetch_add.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge. Set() is one relaxed store.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram for latencies (ns) and sizes (bytes).
///
/// Bucket i counts observations v with bit_width(v) == i, i.e. bucket 0
/// holds v == 0, bucket i >= 1 holds 2^(i-1) <= v < 2^i. Observe() is two
/// relaxed fetch_adds (bucket + sum); count is derived at snapshot time.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  static int BucketIndex(uint64_t v) {
    int width = 0;
    while (v != 0) {
      ++width;
      v >>= 1;
    }
    return width;  // 0 for v==0, else floor(log2(v)) + 1; max 64.
  }

  /// Upper bound (inclusive-exclusive boundary) of bucket i: 2^i - 1 < 2^i.
  static uint64_t BucketUpperBound(int i) {
    if (i >= 64) return ~uint64_t{0};
    return (uint64_t{1} << i) - 1;
  }

  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// One flattened histogram for snapshots: only non-empty buckets.
struct HistogramSnapshot {
  // (upper_bound, cumulative_count) pairs for non-empty buckets, ascending.
  std::vector<std::pair<uint64_t, uint64_t>> cumulative_buckets;
  uint64_t sum = 0;
  uint64_t count = 0;
};

/// One metric sample at snapshot time.
struct MetricSample {
  std::string name;
  std::string labels;  // e.g. R"(backend="dir")" — Prometheus body, no braces.
  MetricKind kind = MetricKind::kCounter;
  uint64_t value = 0;       // counters
  int64_t gauge_value = 0;  // gauges
  HistogramSnapshot histogram;  // histograms
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by (name, labels)

  /// Counter/gauge lookup; returns 0 when absent.
  uint64_t CounterValue(const std::string& name,
                        const std::string& labels = "") const;
};

/// Snapshot-time callback: append samples describing a component's live
/// counters. Samples with identical (name, labels) from different
/// collectors (or registry-owned instruments) are summed.
using Collector = std::function<void(std::vector<MetricSample>*)>;

class MetricsRegistry;

/// RAII registration: unregisters the collector on destruction. Movable,
/// not copyable. A default-constructed handle is empty (no-op).
class CollectorHandle {
 public:
  CollectorHandle() = default;
  CollectorHandle(CollectorHandle&& other) noexcept { *this = std::move(other); }
  CollectorHandle& operator=(CollectorHandle&& other) noexcept;
  ~CollectorHandle();

  CollectorHandle(const CollectorHandle&) = delete;
  CollectorHandle& operator=(const CollectorHandle&) = delete;

  void Reset();

 private:
  friend class MetricsRegistry;
  CollectorHandle(MetricsRegistry* registry, uint64_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry. Leaky singleton: never destroyed, so
  /// instrument pointers and collector handles registered by static-ish
  /// components stay valid through exit.
  static MetricsRegistry* Default();

  /// Find-or-create. The returned pointer is stable for the registry's
  /// lifetime. Same (name, labels) always returns the same instrument;
  /// kind mismatches on an existing key fail a CHECK.
  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "");

  /// Registers a snapshot-time collector; alive until the handle dies.
  CollectorHandle RegisterCollector(Collector collector);

  /// Reads every instrument and runs every collector; merges (sums)
  /// samples sharing (name, labels); returns samples sorted by key.
  MetricsSnapshot Snapshot() const;

 private:
  friend class CollectorHandle;
  void Unregister(uint64_t id);

  struct Instrument {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, Instrument> instruments_;
  std::map<uint64_t, Collector> collectors_;
  uint64_t next_collector_id_ = 1;
};

}  // namespace telemetry
}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_TELEMETRY_METRICS_H_
