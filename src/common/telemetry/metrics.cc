#include "common/telemetry/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace rdfviews {
namespace telemetry {

uint64_t MetricsSnapshot::CounterValue(const std::string& name,
                                       const std::string& labels) const {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) {
      return s.kind == MetricKind::kGauge ? static_cast<uint64_t>(s.gauge_value)
                                          : s.value;
    }
  }
  return 0;
}

CollectorHandle& CollectorHandle::operator=(CollectorHandle&& other) noexcept {
  if (this != &other) {
    Reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CollectorHandle::~CollectorHandle() { Reset(); }

void CollectorHandle::Reset() {
  if (registry_ != nullptr) {
    registry_->Unregister(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* const kDefault = new MetricsRegistry();
  return kDefault;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& inst = instruments_[{name, labels}];
  if (inst.counter == nullptr) {
    RDFVIEWS_CHECK_MSG(inst.gauge == nullptr && inst.histogram == nullptr,
                       "metric kind mismatch for " << name);
    inst.kind = MetricKind::kCounter;
    inst.counter = std::make_unique<Counter>();
  }
  return inst.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& inst = instruments_[{name, labels}];
  if (inst.gauge == nullptr) {
    RDFVIEWS_CHECK_MSG(inst.counter == nullptr && inst.histogram == nullptr,
                       "metric kind mismatch for " << name);
    inst.kind = MetricKind::kGauge;
    inst.gauge = std::make_unique<Gauge>();
  }
  return inst.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& inst = instruments_[{name, labels}];
  if (inst.histogram == nullptr) {
    RDFVIEWS_CHECK_MSG(inst.counter == nullptr && inst.gauge == nullptr,
                       "metric kind mismatch for " << name);
    inst.kind = MetricKind::kHistogram;
    inst.histogram = std::make_unique<Histogram>();
  }
  return inst.histogram.get();
}

CollectorHandle MetricsRegistry::RegisterCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(collector));
  return CollectorHandle(this, id);
}

void MetricsRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

namespace {

HistogramSnapshot SnapshotHistogram(const Histogram& h) {
  HistogramSnapshot snap;
  uint64_t cumulative = 0;
  for (int i = 0; i <= Histogram::kBuckets; ++i) {
    const uint64_t c = h.BucketCount(i);
    if (c == 0) continue;
    cumulative += c;
    snap.cumulative_buckets.emplace_back(Histogram::BucketUpperBound(i),
                                         cumulative);
  }
  snap.count = cumulative;
  snap.sum = h.Sum();
  return snap;
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Key → merged sample. Collectors run under mu_ (they only read their
  // component's atomics / take the component's own lock; see lock-order
  // note in the header).
  std::map<std::pair<std::string, std::string>, MetricSample> merged;

  auto fold = [&merged](MetricSample&& s) {
    auto key = std::make_pair(s.name, s.labels);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(std::move(key), std::move(s));
      return;
    }
    MetricSample& dst = it->second;
    switch (s.kind) {
      case MetricKind::kCounter:
        dst.value += s.value;
        break;
      case MetricKind::kGauge:
        dst.gauge_value += s.gauge_value;
        break;
      case MetricKind::kHistogram: {
        // Merge cumulative bucket lists: convert to per-bucket deltas,
        // sum by bound, re-accumulate.
        std::map<uint64_t, uint64_t> by_bound;
        for (const auto* hs : {&dst.histogram, &s.histogram}) {
          uint64_t prev = 0;
          for (const auto& [bound, cum] : hs->cumulative_buckets) {
            by_bound[bound] += cum - prev;
            prev = cum;
          }
        }
        HistogramSnapshot out;
        uint64_t cumulative = 0;
        for (const auto& [bound, delta] : by_bound) {
          cumulative += delta;
          out.cumulative_buckets.emplace_back(bound, cumulative);
        }
        out.count = cumulative;
        out.sum = dst.histogram.sum + s.histogram.sum;
        dst.histogram = std::move(out);
        break;
      }
    }
  };

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, inst] : instruments_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = inst.kind;
    switch (inst.kind) {
      case MetricKind::kCounter:
        s.value = inst.counter->Value();
        break;
      case MetricKind::kGauge:
        s.gauge_value = inst.gauge->Value();
        break;
      case MetricKind::kHistogram:
        s.histogram = SnapshotHistogram(*inst.histogram);
        break;
    }
    fold(std::move(s));
  }
  std::vector<MetricSample> collected;
  for (const auto& [id, collector] : collectors_) {
    collected.clear();
    collector(&collected);
    for (auto& s : collected) fold(std::move(s));
  }

  MetricsSnapshot snap;
  snap.samples.reserve(merged.size());
  for (auto& [key, sample] : merged) snap.samples.push_back(std::move(sample));
  return snap;
}

}  // namespace telemetry
}  // namespace rdfviews
