// Telemetry exporters: JSON run reports and Prometheus-style text.
//
// RunTelemetry is the per-run bundle a pipeline/session attaches to its
// report: the run's span tree plus a registry snapshot taken at the end
// of the run. The JSON run-report writer renders it as {"spans": [...],
// "metrics": [...]} — callers (bench harnesses, TuningSession) splice
// those objects into their existing top-level schema, which is how
// BENCH_incremental.json stays a strict superset of its old self.
#ifndef RDFVIEWS_COMMON_TELEMETRY_EXPORT_H_
#define RDFVIEWS_COMMON_TELEMETRY_EXPORT_H_

#include <map>
#include <string>
#include <vector>

#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"

namespace rdfviews {
namespace telemetry {

/// Everything observed during one logical run (one Update / pipeline Run).
struct RunTelemetry {
  std::vector<SpanRecord> spans;
  MetricsSnapshot metrics;

  /// Sum of (end - start) per span name, in seconds. Backing for the
  /// per-stage wall-time columns in fig6's CSV.
  std::map<std::string, double> SpanSecondsByName() const;

  /// True iff every span is closed and every non-zero parent id refers
  /// to an existing span that opened no later than its child.
  bool SpanTreeBalanced() const;
};

/// JSON array of span objects:
///   {"id":1,"parent":0,"name":"session.update","start_ns":...,
///    "end_ns":...,"attrs":{"k":"v",...}}
std::string SpansJson(const std::vector<SpanRecord>& spans);

/// JSON array of metric objects:
///   {"name":"...","labels":"...","kind":"counter","value":123}
///   {"name":"...","kind":"histogram","count":n,"sum":s,
///    "buckets":[[le,cumulative],...]}
std::string MetricsJson(const MetricsSnapshot& snapshot);

/// Full run report: an object holding `extra_fields` (pre-rendered
/// `"key": value` JSON fragments, rendered verbatim) followed by
/// "spans" and "metrics".
std::string RunReportJson(
    const std::vector<std::pair<std::string, std::string>>& extra_fields,
    const RunTelemetry& telemetry);

/// Prometheus text exposition: # TYPE lines, {labels}, histograms as
/// _bucket{le="..."} / _sum / _count.
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s);

}  // namespace telemetry
}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_TELEMETRY_EXPORT_H_
