#include "common/telemetry/trace.h"

#include <chrono>

namespace rdfviews {
namespace telemetry {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local TraceContext g_trace_context;

}  // namespace

Tracer::Tracer() : clock_(&SteadyNowNs) {}

Tracer::Tracer(Clock clock) : clock_(std::move(clock)) {
  if (!clock_) clock_ = &SteadyNowNs;
}

SpanId Tracer::Open(const std::string& name, SpanId parent) {
  const uint64_t now = clock_();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord rec;
  rec.id = spans_.size() + 1;
  rec.parent = parent;
  rec.name = name;
  rec.start_ns = now;
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void Tracer::Close(SpanId id) {
  const uint64_t now = clock_();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  SpanRecord& rec = spans_[id - 1];
  if (rec.closed) return;
  rec.end_ns = now;
  rec.closed = true;
}

void Tracer::Annotate(SpanId id, const std::string& key,
                      const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(key, value);
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

bool Tracer::AllClosed() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : spans_) {
    if (!s.closed) return false;
  }
  return true;
}

TraceContext CurrentTraceContext() { return g_trace_context; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : saved_(g_trace_context) {
  g_trace_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_trace_context = saved_; }

TraceSpan::TraceSpan(const char* name) {
  const TraceContext& ctx = g_trace_context;
  if (ctx.tracer == nullptr) return;
  tracer_ = ctx.tracer;
  saved_parent_ = ctx.span;
  id_ = tracer_->Open(name, saved_parent_);
  g_trace_context.span = id_;
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (tracer_ == nullptr || ended_) return;
  ended_ = true;
  tracer_->Close(id_);
  g_trace_context.span = saved_parent_;
}

void TraceSpan::Annotate(const std::string& key, const std::string& value) {
  if (tracer_ != nullptr) tracer_->Annotate(id_, key, value);
}

void TraceSpan::Annotate(const std::string& key, uint64_t value) {
  if (tracer_ != nullptr) tracer_->Annotate(id_, key, std::to_string(value));
}

void TraceEvent(const char* name,
                std::initializer_list<std::pair<std::string, std::string>>
                    attrs) {
  const TraceContext& ctx = g_trace_context;
  if (ctx.tracer == nullptr) return;
  const SpanId id = ctx.tracer->Open(name, ctx.span);
  for (const auto& [k, v] : attrs) ctx.tracer->Annotate(id, k, v);
  ctx.tracer->Close(id);
}

}  // namespace telemetry
}  // namespace rdfviews
