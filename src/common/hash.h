// Hashing helpers for composite keys.
#ifndef RDFVIEWS_COMMON_HASH_H_
#define RDFVIEWS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace rdfviews {

/// Combines a hash value into a seed (boost::hash_combine recipe, 64-bit).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hash for small integer sequences (e.g., tuple of term ids).
struct VectorHash {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    for (const T& x : v) HashCombine(&seed, std::hash<T>()(x));
    return seed;
  }
};

/// Finalizer of the splitmix64 generator: a cheap, well-mixed 64-bit
/// permutation used to derive independent hash streams.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A 128-bit hash value with component-wise modular addition, so that sums
/// of hashes form an order-independent *multiset* digest: adding the same
/// element twice yields a different digest than adding it once (unlike XOR),
/// and removal is exact subtraction. Collisions require two multisets whose
/// 128-bit sums coincide — negligible at the scale of a search run.
struct Hash128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) {
    return !(a == b);
  }

  Hash128& operator+=(const Hash128& o) {
    lo += o.lo;
    hi += o.hi;
    return *this;
  }
  Hash128& operator-=(const Hash128& o) {
    lo -= o.lo;
    hi -= o.hi;
    return *this;
  }
};

/// Hashes a byte string into 128 bits: two independently-seeded FNV-1a
/// streams, each finalized through Mix64.
inline Hash128 HashBytes128(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t a = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  uint64_t b = 0x2545f4914f6cdd1dULL;  // independent stream
  for (size_t i = 0; i < size; ++i) {
    a = (a ^ bytes[i]) * 0x100000001b3ULL;
    b = (b ^ bytes[i]) * 0xc6a4a7935bd1e995ULL;
  }
  return Hash128{Mix64(a), Mix64(b ^ size)};
}

/// std::unordered_map hasher for Hash128 keys (already uniform; fold).
struct Hash128Hasher {
  size_t operator()(const Hash128& h) const {
    return static_cast<size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// A fixed total order on Hash128 values ((hi, lo) lexicographic). The
/// search strategies break cost ties on it so the reported best state is a
/// deterministic function of the explored set, independent of exploration
/// order and thread count.
inline bool Hash128Less(const Hash128& a, const Hash128& b) {
  return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
}

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_HASH_H_
