// Hashing helpers for composite keys.
#ifndef RDFVIEWS_COMMON_HASH_H_
#define RDFVIEWS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace rdfviews {

/// Combines a hash value into a seed (boost::hash_combine recipe, 64-bit).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hash for small integer sequences (e.g., tuple of term ids).
struct VectorHash {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    for (const T& x : v) HashCombine(&seed, std::hash<T>()(x));
    return seed;
  }
};

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_HASH_H_
