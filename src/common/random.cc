#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rdfviews {

uint64_t Rng::Uniform(uint64_t lo, uint64_t hi) {
  RDFVIEWS_DCHECK(lo <= hi);
  std::uniform_int_distribution<uint64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

ZipfTable::ZipfTable(size_t n, double exponent) {
  RDFVIEWS_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= acc;
}

size_t ZipfTable::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace rdfviews
