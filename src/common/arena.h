// Per-run bump allocator with reference-counted blocks.
//
// The search engines allocate one flat storage span per candidate state
// (see vsel::State). Spans are tiny (a few hundred bytes), extremely
// frequent (one per state created), and mostly short-lived — exactly the
// profile malloc is slowest at. An Arena turns each span into a pointer
// bump inside a large block.
//
// Lifetime rules
// --------------
//  * Allocation is single-threaded: an Arena belongs to one search worker
//    (or one serial search context) and is never shared between allocating
//    threads. The engines create one Arena per worker.
//  * Every span holds one reference on its block, and the arena holds one
//    on the block it is currently filling. Release() is a single atomic
//    decrement and is safe from ANY thread — a state allocated by worker A
//    may migrate through the frontier and die on worker B.
//  * A span may outlive the Arena object: destroying the arena only drops
//    its own reference, so a best state escaping its search run pins
//    exactly the blocks its spans live in, nothing more. Memory returns to
//    the system when the last span of a block dies.
//
// A span is handed out as (pointer, Block*); the holder calls
// Arena::Release(block) exactly once when done. Allocations larger than
// the block size get a dedicated block owned solely by their span.
#ifndef RDFVIEWS_COMMON_ARENA_H_
#define RDFVIEWS_COMMON_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/telemetry/metrics.h"

namespace rdfviews {

class Arena {
 public:
  struct Block {
    std::atomic<uint64_t> refs;
    uint64_t cap = 0;   // data bytes available
    uint64_t used = 0;  // bump offset; touched only by the owning thread
    // Data follows the header, kAlign-aligned.
  };

  struct Span {
    void* ptr = nullptr;
    Block* block = nullptr;  // pass to Release() when the span dies
  };

  static constexpr size_t kAlign = 16;
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 16;  // 64 KiB

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < kAlign ? kAlign : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    if (current_ != nullptr) Release(current_);
  }

  /// Bump-allocates `bytes` (rounded up to kAlign) from the current block,
  /// retiring it and starting a fresh one when full. The returned span
  /// holds one reference on its block; the caller owns that reference and
  /// must Release() it exactly once. Not thread-safe (one arena per
  /// allocating thread); never returns null.
  Span Allocate(size_t bytes) {
    const size_t need = RoundUp(bytes);
    ++spans_;
    if (need > block_bytes_) {
      // Oversized: a dedicated block owned solely by this span.
      Block* b = NewBlock(need);
      b->used = need;
      return Span{Data(b), b};
    }
    if (current_ == nullptr || current_->used + need > current_->cap) {
      if (current_ != nullptr) Release(current_);  // drop the arena's ref
      current_ = NewBlock(block_bytes_);
    }
    Block* b = current_;
    void* p = Data(b) + b->used;
    b->used += need;
    b->refs.fetch_add(1, std::memory_order_relaxed);  // the span's ref
    return Span{p, b};
  }

  /// Drops one reference; frees the block when the last span (or the
  /// arena) lets go. Thread-safe: acquire/release so the freeing thread
  /// sees every write made into the block before other holders released.
  static void Release(Block* b) {
    if (b->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::free(b);
    }
  }

  static void AddRef(Block* b) {
    b->refs.fetch_add(1, std::memory_order_relaxed);
  }

  /// Blocks malloc'd over the arena's lifetime (allocation-rate telemetry).
  uint64_t blocks_allocated() const { return blocks_; }
  /// Spans handed out over the arena's lifetime.
  uint64_t spans_allocated() const { return spans_; }

 private:
  static size_t RoundUp(size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

  static char* Data(Block* b) {
    return reinterpret_cast<char*>(b) + RoundUp(sizeof(Block));
  }

  Block* NewBlock(size_t data_bytes) {
    void* mem = std::malloc(RoundUp(sizeof(Block)) + data_bytes);
    if (mem == nullptr) throw std::bad_alloc();
    Block* b = new (mem) Block();
    b->refs.store(1, std::memory_order_relaxed);  // the arena's own ref
    b->cap = data_bytes;
    b->used = 0;
    ++blocks_;
    // Process-wide malloc rate of all arenas; one increment per 64 KiB
    // block, so the counter itself is far off the span hot path.
    static telemetry::Counter* const blocks_total =
        telemetry::MetricsRegistry::Default()->GetCounter(
            "vsel_arena_blocks_total");
    blocks_total->Add(1);
    return b;
  }

  size_t block_bytes_;
  Block* current_ = nullptr;
  uint64_t blocks_ = 0;
  uint64_t spans_ = 0;
};

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_ARENA_H_
