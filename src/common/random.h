// Deterministic seeded random utilities used by generators and tests.
#ifndef RDFVIEWS_COMMON_RANDOM_H_
#define RDFVIEWS_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace rdfviews {

/// Seedable pseudo-random generator; all data and workload generation in the
/// repository goes through this class so results are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Below(uint64_t n) { return Uniform(0, n - 1); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 is uniform).
  /// Uses an inverse-CDF table owned by the caller via ZipfTable.
  uint64_t raw() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

 private:
  std::mt19937_64 engine_;
};

/// Precomputed inverse-CDF table for Zipf sampling over [0, n).
class ZipfTable {
 public:
  ZipfTable(size_t n, double exponent);

  /// Samples a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_RANDOM_H_
