// Status / Result error-handling primitives, in the style of RocksDB / Arrow.
//
// Library code that can fail for reasons other than programmer error returns
// a Status (or a Result<T> when a value is produced).  Invariant violations
// use RDFVIEWS_DCHECK (common/logging.h) instead.
#ifndef RDFVIEWS_COMMON_STATUS_H_
#define RDFVIEWS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace rdfviews {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kResourceExhausted,
  kTimedOut,
  kInternal,
  kUnsupported,
};

/// Outcome of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kTimedOut: return "TimedOut";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnsupported: return "Unsupported";
    }
    return "Unknown";
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror absl::StatusOr.
  Result(T value) : payload_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  T& value() & { return std::get<T>(payload_); }
  const T& value() const& { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

#define RDFVIEWS_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::rdfviews::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_STATUS_H_
