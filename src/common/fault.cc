#include "common/fault.h"

#include <chrono>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/hash.h"

namespace rdfviews::fault {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

struct SiteState {
  SiteSpec spec;
  uint64_t hits = 0;
  uint64_t injected = 0;
};

/// The armed plan. Never freed (the injector is a process-lifetime test
/// facility), so a thread mid-Evaluate can race a Disarm safely: it holds
/// the mutex, and the worst outcome is one extra counted hit.
struct Injector {
  std::mutex mu;
  uint64_t seed = 0;
  std::map<std::string, SiteState> sites;
};

Injector& GetInjector() {
  static Injector* injector = new Injector();
  return *injector;
}

thread_local const StopToken* t_hang_token = nullptr;

/// Deterministic per-(seed, site, hit) uniform draw in [0, 1).
double UniformDraw(uint64_t seed, const std::string& site, uint64_t hit) {
  Hash128 h = HashBytes128(site.data(), site.size());
  uint64_t u = Mix64(seed ^ Mix64(h.lo ^ hit));
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

/// Blocks until the ambient token stops, the injector disarms, or the cap
/// elapses. Runs without the injector mutex held.
Status HangUntilReleased(const char* site, double cap_sec) {
  const StopToken* token = t_hang_token;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    if (token != nullptr && token->stop_requested()) {
      return Status::TimedOut(std::string("injected hang at ") + site +
                              " released by stop token");
    }
    if (!internal::g_armed.load(std::memory_order_relaxed)) {
      return Status::TimedOut(std::string("injected hang at ") + site +
                              " released by disarm");
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (elapsed >= cap_sec) {
      return Status::TimedOut(std::string("injected hang at ") + site +
                              " hit its safety cap");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

void Arm(uint64_t seed, FaultPlan plan) {
  Injector& inj = GetInjector();
  std::lock_guard<std::mutex> lock(inj.mu);
  inj.seed = seed;
  inj.sites.clear();
  for (auto& [name, spec] : plan) {
    inj.sites.emplace(name, SiteState{spec, 0, 0});
  }
  internal::g_armed.store(true, std::memory_order_relaxed);
}

void Disarm() {
  internal::g_armed.store(false, std::memory_order_relaxed);
}

bool armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

uint64_t Hits(const char* site) {
  Injector& inj = GetInjector();
  std::lock_guard<std::mutex> lock(inj.mu);
  auto it = inj.sites.find(site);
  return it == inj.sites.end() ? 0 : it->second.hits;
}

uint64_t Injected(const char* site) {
  Injector& inj = GetInjector();
  std::lock_guard<std::mutex> lock(inj.mu);
  auto it = inj.sites.find(site);
  return it == inj.sites.end() ? 0 : it->second.injected;
}

ScopedHangToken::ScopedHangToken(const StopToken& token)
    : previous_(t_hang_token) {
  t_hang_token = &token;
}

ScopedHangToken::~ScopedHangToken() { t_hang_token = previous_; }

namespace internal {

Status Evaluate(const char* site, bool allow_throw) {
  Injector& inj = GetInjector();
  Action action;
  double hang_cap;
  {
    std::lock_guard<std::mutex> lock(inj.mu);
    auto it = inj.sites.find(site);
    if (it == inj.sites.end()) return Status::OK();
    SiteState& state = it->second;
    const uint64_t hit = ++state.hits;
    bool fire;
    if (state.spec.probability > 0) {
      fire = UniformDraw(inj.seed, it->first, hit) < state.spec.probability;
    } else {
      fire = hit >= state.spec.nth &&
             (state.spec.count == kForever ||
              hit - state.spec.nth < state.spec.count);
    }
    if (!fire) return Status::OK();
    ++state.injected;
    action = state.spec.action;
    hang_cap = state.spec.hang_max_sec;
  }
  switch (action) {
    case Action::kFail:
      return Status::Internal(std::string("injected fault at ") + site);
    case Action::kThrow:
      if (allow_throw) {
        throw std::runtime_error(std::string("injected exception at ") +
                                 site);
      }
      return Status::Internal(std::string("injected fault at ") + site);
    case Action::kBadAlloc:
      if (allow_throw) throw std::bad_alloc();
      return Status::ResourceExhausted(
          std::string("injected allocation failure at ") + site);
    case Action::kHang:
      return HangUntilReleased(site, hang_cap);
  }
  return Status::OK();
}

}  // namespace internal

}  // namespace rdfviews::fault
