// Small string helpers used across the library.
#ifndef RDFVIEWS_COMMON_STRING_UTIL_H_
#define RDFVIEWS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rdfviews {

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, trimming nothing. Empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Human-readable quantity with thousands separators ("1,234,567").
std::string WithThousands(uint64_t n);

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_STRING_UTIL_H_
