// Minimal logging and assertion macros.
#ifndef RDFVIEWS_COMMON_LOGGING_H_
#define RDFVIEWS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rdfviews {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3,
                      kOff = 4 };

/// Global log threshold; messages below it are suppressed. The initial
/// threshold comes from the RDFVIEWS_LOG_LEVEL env var
/// (debug|info|warn|error|off, read once at first use) and defaults to
/// `warn` — info-level chatter is opt-in, so tests run quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Consumes a stream expression without evaluating it.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

[[noreturn]] void FatalCheckFailure(const char* file, int line,
                                    const char* expr, const std::string& msg);

}  // namespace internal

#define RDFVIEWS_LOG(level)                                             \
  if (::rdfviews::LogLevel::level < ::rdfviews::GetLogLevel()) {        \
  } else                                                                \
    ::rdfviews::internal::LogMessage(::rdfviews::LogLevel::level,       \
                                     __FILE__, __LINE__)                \
        .stream()

// Always-on invariant check: database code fails fast on broken invariants.
#define RDFVIEWS_CHECK(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::rdfviews::internal::FatalCheckFailure(__FILE__, __LINE__, #expr,  \
                                              "");                        \
    }                                                                     \
  } while (0)

#define RDFVIEWS_CHECK_MSG(expr, msg)                                    \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream _oss;                                            \
      _oss << msg;                                                        \
      ::rdfviews::internal::FatalCheckFailure(__FILE__, __LINE__, #expr,  \
                                              _oss.str());                \
    }                                                                     \
  } while (0)

#ifndef NDEBUG
#define RDFVIEWS_DCHECK(expr) RDFVIEWS_CHECK(expr)
#else
#define RDFVIEWS_DCHECK(expr) \
  while (false) RDFVIEWS_CHECK(expr)
#endif

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_LOGGING_H_
