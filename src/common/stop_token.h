// Cooperative cancellation: a StopSource owns a shared flag, StopTokens
// observe it. Modeled on std::stop_source / std::stop_token but copyable
// into plain option structs (SearchLimits) and cheap enough for search hot
// loops: stop_requested() is one relaxed atomic load behind a pointer test.
//
// A default-constructed StopToken is empty and never reports a stop, so
// every pre-existing call site ("deadline-only" stopping) keeps its exact
// behavior until a caller arms a token.
#ifndef RDFVIEWS_COMMON_STOP_TOKEN_H_
#define RDFVIEWS_COMMON_STOP_TOKEN_H_

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

namespace rdfviews {

class StopSource;

/// Observer end of a cancellation channel. Copyable, thread-safe. A token
/// may observe several sources (Combine): it reports a stop as soon as any
/// of them fires — how a session composes the caller's token with an async
/// handle's. The flag list is tiny (1-2 entries in practice), so the hot
/// stop_requested() poll stays a couple of relaxed loads.
class StopToken {
 public:
  StopToken() = default;

  /// True once any owning StopSource requested a stop. Empty tokens always
  /// return false.
  bool stop_requested() const {
    for (const auto& flag : flags_) {
      if (flag->load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  /// False for the default-constructed token (no source attached).
  bool stop_possible() const { return !flags_.empty(); }

  /// A token that stops when either input would. Empty inputs contribute
  /// nothing (Combine(x, {}) behaves exactly like x).
  static StopToken Combine(const StopToken& a, const StopToken& b) {
    StopToken out;
    out.flags_ = a.flags_;
    out.flags_.insert(out.flags_.end(), b.flags_.begin(), b.flags_.end());
    return out;
  }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<const std::atomic<bool>> flag) {
    flags_.push_back(std::move(flag));
  }

  std::vector<std::shared_ptr<const std::atomic<bool>>> flags_;
};

/// Owner end: RequestStop() flips the shared flag; every token handed out
/// by token() observes it. Copies of a StopSource share the same flag.
class StopSource {
 public:
  StopSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestStop() { flag_->store(true, std::memory_order_relaxed); }

  bool stop_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

  StopToken token() const { return StopToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_STOP_TOKEN_H_
