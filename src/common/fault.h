// Deterministic, seed-driven fault injection for robustness testing.
//
// Production code marks its failure-prone operations with *named fault
// sites*:
//
//     Status injected = fault::Maybe(fault::sites::kDirCachePutRename);
//     if (!injected.ok()) { /* behave exactly as if rename(2) failed */ }
//
// Disarmed (the default, and the only state production ever sees), Maybe is
// a single relaxed atomic load returning OK — no registration, no string
// hashing, no locks. Tests arm the injector with a FaultPlan mapping site
// names to SiteSpecs: an action (fail / throw / bad_alloc / hang) and a
// trigger (fire on the nth evaluation for a window of `count` hits, or
// per-evaluation with probability p drawn from a deterministic per-site
// stream derived from the plan seed). Hit and injection counters are
// thread-safe, so chaos tests can assert exactly which sites fired.
//
// Hangs are *cooperative*: an injected hang blocks until the ambient stop
// token (installed by the enclosing containment boundary via
// ScopedHangToken — e.g. the per-partition watchdog token in pipeline
// stage 3) fires, the injector is disarmed, or the spec's safety cap
// elapses; it then returns TimedOut. This makes "a partition wedged on a
// flaky filesystem" reproducible and lets tests prove the watchdog bounds
// it.
//
// The canonical site list lives in fault::sites (with kAll for chaos tests
// that must cover every registered site). Sites are evaluated at most a few
// times per partition / cache operation — never inside search hot loops.
#ifndef RDFVIEWS_COMMON_FAULT_H_
#define RDFVIEWS_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "common/stop_token.h"

namespace rdfviews::fault {

namespace sites {
// DirCacheBackend (vsel/serialize/partition_cache.cc): I/O failures that
// must degrade to counted cache misses / store failures.
inline constexpr const char kDirCacheGetOpen[] = "dircache.get.open";
inline constexpr const char kDirCacheGetRead[] = "dircache.get.read";
inline constexpr const char kDirCachePutWrite[] = "dircache.put.write";
inline constexpr const char kDirCachePutRename[] = "dircache.put.rename";
// rdf::LoadSnapshot (rdf/statistics.cc): a corrupt / unreadable snapshot
// file must surface as a Status, never wedge or crash the loader.
inline constexpr const char kSnapshotLoad[] = "snapshot.load";
// Pipeline stage 3 (vsel/pipeline/search_stage.cc), inside the
// per-partition containment boundary: a throwing / failing / hung
// partition search must be retried then abandoned, never propagated.
inline constexpr const char kPartitionSearch[] = "search.partition.run";
// ThreadPool workers (common/thread_pool.h): a task that dies must not
// take the process (or its pool) down with it.
inline constexpr const char kPoolTask[] = "pool.task.run";
// vseld daemon (src/vseld/): a failed accept must not kill the accept
// loop, a torn / failed frame read or write must surface as a counted,
// contained connection error (never a hung worker), and a failure at the
// head of a session update must come back as a Status response with the
// session still usable.
inline constexpr const char kDaemonAccept[] = "vseld.accept";
inline constexpr const char kDaemonFrameRead[] = "vseld.frame.read";
inline constexpr const char kDaemonFrameWrite[] = "vseld.frame.write";
inline constexpr const char kDaemonSessionRun[] = "vseld.session.run";
// Fleet worker (src/vseld/fleet.cc): a failing / throwing / hung remote
// search must come back as a kPartitionResult error frame the coordinator
// retries or re-queues, never a wedged or crashed worker process.
inline constexpr const char kWorkerSearch[] = "vseld.worker.search";

/// Every registered site, for chaos tests that sweep the full surface.
inline constexpr const char* kAll[] = {
    kDirCacheGetOpen,  kDirCacheGetRead, kDirCachePutWrite,
    kDirCachePutRename, kSnapshotLoad,   kPartitionSearch,
    kPoolTask,          kDaemonAccept,   kDaemonFrameRead,
    kDaemonFrameWrite,  kDaemonSessionRun, kWorkerSearch,
};
}  // namespace sites

/// What an armed site does when its trigger fires.
enum class Action {
  /// Maybe returns a non-OK Status; the site behaves as if the underlying
  /// operation failed cleanly.
  kFail,
  /// MaybeThrow throws std::runtime_error (Maybe still returns the Status).
  kThrow,
  /// MaybeThrow throws std::bad_alloc.
  kBadAlloc,
  /// Maybe blocks until the ambient ScopedHangToken stops, the injector is
  /// disarmed, or hang_max_sec elapses; then returns TimedOut.
  kHang,
};

/// Marks every evaluation from `nth` for `count` hits (1-based, so the
/// default fires the very first evaluation and nothing else), or — when
/// `probability` > 0 — each evaluation independently with that probability,
/// drawn from a per-site stream seeded by (plan seed, site name, hit index)
/// so a given seed always fires the same hit sequence.
struct SiteSpec {
  Action action = Action::kFail;
  uint64_t nth = 1;
  uint64_t count = 1;
  double probability = 0;
  /// Safety cap for Action::kHang: the hang self-releases after this many
  /// seconds even with no stop token, so an unguarded site can never wedge
  /// a test binary.
  double hang_max_sec = 30.0;
};

/// Fires `count` forever (every evaluation from `nth` on).
inline constexpr uint64_t kForever = ~0ull;

using FaultPlan = std::map<std::string, SiteSpec>;

/// Arms the injector. Replaces any previous plan and resets all counters.
/// Sites not named by the plan keep behaving normally.
void Arm(uint64_t seed, FaultPlan plan);

/// Disarms: every site returns to the no-op fast path. Counters survive
/// until the next Arm so tests can inspect them after the run.
void Disarm();

bool armed();

/// Evaluates `site`: OK (and nothing counted) when disarmed or the site is
/// not in the plan; otherwise counts the hit and, when the trigger fires,
/// performs the action — returning a non-OK Status for kFail / kThrow /
/// kBadAlloc (callers inside exception boundaries use MaybeThrow to get the
/// exception) and blocking then returning TimedOut for kHang.
Status Maybe(const char* site);

/// Like Maybe, but converts a fired kThrow into std::runtime_error and a
/// fired kBadAlloc into std::bad_alloc. kFail / kHang still return their
/// Status; callers that cannot surface a Status should treat it as fatal
/// themselves.
Status MaybeThrow(const char* site);

/// Evaluations / fired injections of `site` since the last Arm.
uint64_t Hits(const char* site);
uint64_t Injected(const char* site);

/// Installs `token` as the current thread's ambient hang-release token for
/// the guard's lifetime (nestable; the innermost wins). Containment
/// boundaries install their combined (caller + watchdog) token so injected
/// hangs under them are released exactly when a real cooperative operation
/// would observe the stop.
class ScopedHangToken {
 public:
  explicit ScopedHangToken(const StopToken& token);
  ~ScopedHangToken();
  ScopedHangToken(const ScopedHangToken&) = delete;
  ScopedHangToken& operator=(const ScopedHangToken&) = delete;

 private:
  const StopToken* previous_;
};

namespace internal {
/// The fast-path gate: nonzero iff some plan is armed. A single relaxed
/// load keeps disarmed sites free.
extern std::atomic<bool> g_armed;
Status Evaluate(const char* site, bool allow_throw);
}  // namespace internal

inline Status Maybe(const char* site) {
  if (!internal::g_armed.load(std::memory_order_relaxed)) return Status::OK();
  return internal::Evaluate(site, /*allow_throw=*/false);
}

inline Status MaybeThrow(const char* site) {
  if (!internal::g_armed.load(std::memory_order_relaxed)) return Status::OK();
  return internal::Evaluate(site, /*allow_throw=*/true);
}

}  // namespace rdfviews::fault

#endif  // RDFVIEWS_COMMON_FAULT_H_
