// Union-find (disjoint-set forest) with path halving. One shared
// implementation for every component-grouping site: query-body connected
// components (cq), atom components of a view (vsel::state_graph), and the
// workload-commonality partitioner (vsel::pipeline).
#ifndef RDFVIEWS_COMMON_DISJOINT_SETS_H_
#define RDFVIEWS_COMMON_DISJOINT_SETS_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace rdfviews {

class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace rdfviews

#endif  // RDFVIEWS_COMMON_DISJOINT_SETS_H_
