#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "common/telemetry/metrics.h"

namespace rdfviews {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void InitLogLevelFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("RDFVIEWS_LOG_LEVEL");
    if (env == nullptr) return;
    if (std::strcmp(env, "debug") == 0) {
      SetLogLevel(LogLevel::kDebug);
    } else if (std::strcmp(env, "info") == 0) {
      SetLogLevel(LogLevel::kInfo);
    } else if (std::strcmp(env, "warn") == 0 ||
               std::strcmp(env, "warning") == 0) {
      SetLogLevel(LogLevel::kWarning);
    } else if (std::strcmp(env, "error") == 0) {
      SetLogLevel(LogLevel::kError);
    } else if (std::strcmp(env, "off") == 0) {
      SetLogLevel(LogLevel::kOff);
    }
  });
}
}  // namespace

LogLevel GetLogLevel() {
  InitLogLevelFromEnv();
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kError) std::cerr.flush();
  // Count emitted (not suppressed) messages per level; the lookup is
  // amortized to one relaxed add via per-level static caches.
  static telemetry::Counter* const counters[] = {
      telemetry::MetricsRegistry::Default()->GetCounter(
          "common_log_messages_total", "level=\"debug\""),
      telemetry::MetricsRegistry::Default()->GetCounter(
          "common_log_messages_total", "level=\"info\""),
      telemetry::MetricsRegistry::Default()->GetCounter(
          "common_log_messages_total", "level=\"warn\""),
      telemetry::MetricsRegistry::Default()->GetCounter(
          "common_log_messages_total", "level=\"error\""),
  };
  const int idx = static_cast<int>(level_);
  if (idx >= 0 && idx < 4) counters[idx]->Add(1);
}

void FatalCheckFailure(const char* file, int line, const char* expr,
                       const std::string& msg) {
  std::cerr << "[FATAL " << file << ":" << line << "] check failed: " << expr;
  if (!msg.empty()) std::cerr << " — " << msg;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace rdfviews
