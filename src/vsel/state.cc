#include "vsel/state.h"

#include <algorithm>
#include <memory>
#include <new>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/telemetry/metrics.h"
#include "cq/canonical.h"
#include "cq/containment.h"

namespace rdfviews::vsel {

namespace {

// Allocation-rate instruments for the flat state storage. Heap blocks are
// the malloc-backed path (plain copies, growth); arena spans are the
// bump-allocated transition path (no malloc of their own — the arena's
// 64 KiB blocks are counted by vsel_arena_blocks_total). heap allocations
// per state = (heap_blocks + arena_blocks) / states_created.
telemetry::Counter* HeapBlockCounter() {
  static telemetry::Counter* const c =
      telemetry::MetricsRegistry::Default()->GetCounter(
          "vsel_state_alloc_heap_blocks_total");
  return c;
}

telemetry::Counter* ArenaSpanCounter() {
  static telemetry::Counter* const c =
      telemetry::MetricsRegistry::Default()->GetCounter(
          "vsel_state_alloc_arena_spans_total");
  return c;
}

telemetry::Counter* StatesCreatedCounter() {
  static telemetry::Counter* const c =
      telemetry::MetricsRegistry::Default()->GetCounter(
          "vsel_states_created_total");
  return c;
}

}  // namespace

// ---- Flat storage management -------------------------------------------

State::State(const State& o) { CopyFrom(o, /*slack=*/0, /*arena=*/nullptr); }

State State::CloneForTransition(Arena* arena) const {
  State out;
  // +2 slack: a transition adds at most one net view (VB adds two and
  // removes one); the spare slots make AddView in the child allocation-free.
  out.CopyFrom(*this, /*slack=*/2, arena);
  return out;
}

State::State(State&& o) noexcept {
  base_ = o.base_;
  origin_ = o.origin_;
  size_ = o.size_;
  cap_ = o.cap_;
  rew_size_ = o.rew_size_;
  rew_cap_ = o.rew_cap_;
  fingerprint_ = o.fingerprint_;
  next_var_ = o.next_var_;
  next_view_id_ = o.next_view_id_;
  cost_cache_ = o.cost_cache_;
  o.base_ = nullptr;
  o.origin_ = nullptr;
  o.size_ = 0;
  o.cap_ = 0;
  o.rew_size_ = 0;
  o.rew_cap_ = 0;
  o.SyncFacade();
  SyncFacade();
}

State& State::operator=(const State& o) {
  if (this != &o) {
    State tmp(o);
    *this = std::move(tmp);
  }
  return *this;
}

State& State::operator=(State&& o) noexcept {
  if (this != &o) {
    DestroyStorage();
    base_ = o.base_;
    origin_ = o.origin_;
    size_ = o.size_;
    cap_ = o.cap_;
    rew_size_ = o.rew_size_;
    rew_cap_ = o.rew_cap_;
    fingerprint_ = o.fingerprint_;
    next_var_ = o.next_var_;
    next_view_id_ = o.next_view_id_;
    cost_cache_ = o.cost_cache_;
    o.base_ = nullptr;
    o.origin_ = nullptr;
    o.size_ = 0;
    o.cap_ = 0;
    o.rew_size_ = 0;
    o.rew_cap_ = 0;
    o.SyncFacade();
    SyncFacade();
  }
  return *this;
}

State::~State() { DestroyStorage(); }

void State::DestroyStorage() {
  if (base_ != nullptr) {
    ViewPtr* slots = Slots();
    for (size_t i = 0; i < size_; ++i) slots[i].~ViewPtr();
    engine::ExprPtr* rews = Rewritings();
    for (size_t i = 0; i < rew_size_; ++i) std::destroy_at(rews + i);
    if (origin_ != nullptr) {
      Arena::Release(origin_);
    } else {
      ::operator delete(base_);
    }
    base_ = nullptr;
    origin_ = nullptr;
  }
  size_ = 0;
  cap_ = 0;
  rew_size_ = 0;
  rew_cap_ = 0;
  SyncFacade();
}

void State::CopyFrom(const State& o, size_t slack, Arena* arena) {
  RDFVIEWS_DCHECK(base_ == nullptr);
  const size_t cap = o.size_ + slack;
  const size_t rew_cap = o.rew_size_;  // transitions never add rewritings
  if (cap > 0 || rew_cap > 0) {
    const size_t bytes = BlockBytes(cap, rew_cap);
    if (arena != nullptr) {
      Arena::Span span = arena->Allocate(bytes);
      base_ = static_cast<char*>(span.ptr);
      origin_ = span.block;
      ArenaSpanCounter()->Add(1);
    } else {
      base_ = static_cast<char*>(::operator new(bytes));
      origin_ = nullptr;
      HeapBlockCounter()->Add(1);
    }
    cap_ = static_cast<uint32_t>(cap);
    size_ = o.size_;
    rew_cap_ = static_cast<uint32_t>(rew_cap);
    rew_size_ = o.rew_size_;
    const ViewPtr* src = o.Slots();
    ViewPtr* dst = Slots();
    for (size_t i = 0; i < size_; ++i) new (dst + i) ViewPtr(src[i]);
    std::memcpy(BytesTerms(), o.BytesTerms(), size_ * sizeof(double));
    std::memcpy(VmcTerms(), o.VmcTerms(), size_ * sizeof(double));
    std::memcpy(Ids(), o.Ids(), size_ * sizeof(uint32_t));
    std::memcpy(TermKeys(), o.TermKeys(), size_ * sizeof(uint32_t));
    const engine::ExprPtr* rsrc = o.Rewritings();
    engine::ExprPtr* rdst = Rewritings();
    for (size_t i = 0; i < rew_size_; ++i) {
      new (rdst + i) engine::ExprPtr(rsrc[i]);
    }
    std::memcpy(RecEntries(), o.RecEntries(),
                rew_size_ * sizeof(CostCache::RecEntry));
  }
  fingerprint_ = o.fingerprint_;
  next_var_ = o.next_var_;
  next_view_id_ = o.next_view_id_;
  cost_cache_ = o.cost_cache_;
  StatesCreatedCounter()->Add(1);
  SyncFacade();
}

void State::EnsureCapacity(size_t need) {
  if (need <= cap_) return;
  size_t ncap = cap_ == 0 ? 4 : static_cast<size_t>(cap_) * 2;
  if (ncap < need) ncap = need;
  Reallocate(ncap, rew_cap_);
}

void State::EnsureRewritingCapacity(size_t need) {
  if (need <= rew_cap_) return;
  size_t ncap = rew_cap_ == 0 ? 4 : static_cast<size_t>(rew_cap_) * 2;
  if (ncap < need) ncap = need;
  Reallocate(cap_, ncap);
}

void State::Reallocate(size_t new_cap, size_t new_rew_cap) {
  // Growth always lands on the heap: it only happens on the cold
  // state-construction paths (deserialization, competitors, initial
  // states); arena clones carry enough slack to never grow.
  char* nbase =
      static_cast<char*>(::operator new(BlockBytes(new_cap, new_rew_cap)));
  HeapBlockCounter()->Add(1);
  char* obase = base_;
  Arena::Block* oorigin = origin_;
  const size_t n = size_;
  const size_t rn = rew_size_;
  double* nbytes = reinterpret_cast<double*>(nbase + new_cap * sizeof(ViewPtr));
  double* nvmc = nbytes + new_cap;
  uint32_t* nids = reinterpret_cast<uint32_t*>(nvmc + new_cap);
  uint32_t* nkeys = nids + new_cap;
  engine::ExprPtr* nrews =
      reinterpret_cast<engine::ExprPtr*>(nbase + new_cap * kBytesPerView);
  CostCache::RecEntry* nrec =
      reinterpret_cast<CostCache::RecEntry*>(nrews + new_rew_cap);
  if (obase != nullptr) {
    ViewPtr* src = Slots();
    ViewPtr* dst = reinterpret_cast<ViewPtr*>(nbase);
    for (size_t i = 0; i < n; ++i) {
      new (dst + i) ViewPtr(std::move(src[i]));
      src[i].~ViewPtr();
    }
    std::memcpy(nbytes, BytesTerms(), n * sizeof(double));
    std::memcpy(nvmc, VmcTerms(), n * sizeof(double));
    std::memcpy(nids, Ids(), n * sizeof(uint32_t));
    std::memcpy(nkeys, TermKeys(), n * sizeof(uint32_t));
    engine::ExprPtr* rsrc = Rewritings();
    for (size_t i = 0; i < rn; ++i) {
      new (nrews + i) engine::ExprPtr(std::move(rsrc[i]));
      std::destroy_at(rsrc + i);
    }
    std::memcpy(nrec, RecEntries(), rn * sizeof(CostCache::RecEntry));
  }
  base_ = nbase;
  origin_ = nullptr;
  cap_ = static_cast<uint32_t>(new_cap);
  rew_cap_ = static_cast<uint32_t>(new_rew_cap);
  if (obase != nullptr) {
    if (oorigin != nullptr) {
      Arena::Release(oorigin);
    } else {
      ::operator delete(obase);
    }
  }
  SyncFacade();
}

// ---- Copy-on-write mutators --------------------------------------------

void State::AddView(ViewPtr v) {
  RDFVIEWS_DCHECK(v != nullptr);
  RDFVIEWS_DCHECK(v->id != kInvalidTermKey);
  EnsureCapacity(static_cast<size_t>(size_) + 1);
  fingerprint_ += v->StructuralHash();
  Ids()[size_] = v->id;
  TermKeys()[size_] = kInvalidTermKey;
  new (Slots() + size_) ViewPtr(std::move(v));
  ++size_;
  cost_cache_.valid = false;
  SyncFacade();
}

void State::ReplaceView(size_t idx, ViewPtr v) {
  RDFVIEWS_DCHECK(idx < size_ && v != nullptr);
  ViewPtr& slot = Slots()[idx];
  fingerprint_ -= slot->StructuralHash();
  fingerprint_ += v->StructuralHash();
  Ids()[idx] = v->id;
  TermKeys()[idx] = kInvalidTermKey;
  slot = std::move(v);
  cost_cache_.valid = false;
}

void State::RemoveView(size_t idx) {
  RDFVIEWS_DCHECK(idx < size_);
  ViewPtr* slots = Slots();
  fingerprint_ -= slots[idx]->StructuralHash();
  // Slots above the erased one shift down by one; the (id, term_key)
  // pairs shift together, so per-slot term validity is preserved.
  for (size_t i = idx; i + 1 < size_; ++i) slots[i] = std::move(slots[i + 1]);
  slots[size_ - 1].~ViewPtr();
  const size_t tail = size_ - idx - 1;
  std::memmove(Ids() + idx, Ids() + idx + 1, tail * sizeof(uint32_t));
  std::memmove(TermKeys() + idx, TermKeys() + idx + 1,
               tail * sizeof(uint32_t));
  std::memmove(BytesTerms() + idx, BytesTerms() + idx + 1,
               tail * sizeof(double));
  std::memmove(VmcTerms() + idx, VmcTerms() + idx + 1,
               tail * sizeof(double));
  --size_;
  cost_cache_.valid = false;
  SyncFacade();
}

void State::AddRewriting(engine::ExprPtr e) {
  EnsureRewritingCapacity(static_cast<size_t>(rew_size_) + 1);
  new (Rewritings() + rew_size_) engine::ExprPtr(std::move(e));
  RecEntries()[rew_size_] = CostCache::RecEntry{};  // starts invalidated
  ++rew_size_;
  cost_cache_.valid = false;
}

void State::SetRewritings(std::vector<engine::ExprPtr> rs) {
  engine::ExprPtr* rews = Rewritings();
  for (size_t i = 0; i < rew_size_; ++i) std::destroy_at(rews + i);
  rew_size_ = 0;
  EnsureRewritingCapacity(rs.size());
  rews = Rewritings();
  CostCache::RecEntry* rec = RecEntries();
  for (size_t i = 0; i < rs.size(); ++i) {
    new (rews + i) engine::ExprPtr(std::move(rs[i]));
    rec[i] = CostCache::RecEntry{};
  }
  rew_size_ = static_cast<uint32_t>(rs.size());
  cost_cache_.valid = false;
}

void State::ReplaceScanRewritings(uint32_t view_id,
                                  const engine::ExprPtr& replacement) {
  engine::ExprPtr* rews = Rewritings();
  CostCache::RecEntry* rec = RecEntries();
  for (size_t i = 0; i < rew_size_; ++i) {
    engine::ExprPtr next = engine::Expr::ReplaceScans(
        rews[i], view_id, [&](const engine::Expr&) {
          return replacement;
        });
    if (next != rews[i]) {
      rews[i] = std::move(next);
      rec[i].key = nullptr;
      cost_cache_.valid = false;
    }
  }
}

StateFingerprint State::RecomputeFingerprint() const {
  StateFingerprint fp;
  for (const View& v : views_) {
    const std::string& key =
        cq::CanonicalString(v.def, /*include_head=*/true);
    fp += HashBytes128(key.data(), key.size());
  }
  return fp;
}

std::string State::Signature() const {
  std::vector<std::string> parts;
  parts.reserve(views_.size());
  for (const View& v : views_) {
    parts.push_back(v.CanonicalKey());
  }
  std::sort(parts.begin(), parts.end());
  std::string sig;
  for (const std::string& p : parts) {
    sig += p;
    sig += '\n';
  }
  return sig;
}

std::string State::ToString(const rdf::Dictionary* dict) const {
  std::ostringstream out;
  out << "state{\n";
  for (const View& v : views_) {
    cq::ConjunctiveQuery named = v.def;
    named.set_name(v.Name());
    out << "  " << named.ToString(dict) << "\n";
  }
  auto name = [this](uint32_t id) {
    return "v" + std::to_string(id);
  };
  const engine::ExprPtr* rews = Rewritings();
  for (size_t i = 0; i < rew_size_; ++i) {
    out << "  r" << i << " = " << rews[i]->ToString(name, dict)
        << "\n";
  }
  out << "}";
  return out.str();
}

Status ValidateWorkloadQuery(const cq::ConjunctiveQuery& q) {
  RDFVIEWS_RETURN_IF_ERROR(q.Validate());
  if (q.head().empty()) {
    return Status::InvalidArgument("workload query with empty head: " +
                                   q.name());
  }
  std::unordered_set<cq::VarId> seen;
  for (const cq::Term& t : q.head()) {
    if (t.is_const()) {
      return Status::InvalidArgument(
          "workload query with constant head term: " + q.name());
    }
    if (!seen.insert(t.var()).second) {
      return Status::InvalidArgument(
          "workload query with repeated head variable: " + q.name());
    }
  }
  return Status::OK();
}

namespace {

/// Renames `q` into the state's fresh-variable space and registers its
/// connected components as views. Returns the per-component scan
/// expressions and the mapped head variables of q.
struct InstalledQuery {
  std::vector<engine::ExprPtr> scans;
  std::vector<cq::VarId> head;  // q's head, renamed
};

InstalledQuery InstallQueryAsViews(const cq::ConjunctiveQuery& minimized,
                                   State* state) {
  cq::ConjunctiveQuery q = minimized;
  // Rename variables into a fresh range.
  std::unordered_map<cq::VarId, cq::VarId> rename;
  for (cq::VarId v : q.BodyVars()) rename[v] = state->FreshVar();
  q.RenameVars(rename);

  InstalledQuery out;
  for (const cq::Term& t : q.head()) out.head.push_back(t.var());

  for (cq::ConjunctiveQuery& component : q.SplitIntoConnectedQueries()) {
    // Views must expose the query head vars of their component; a component
    // of a valid query always has a non-empty head unless the query's head
    // vars all live elsewhere — then expose one variable to keep the view
    // materializable and the cross product computable.
    if (component.head().empty()) {
      component.mutable_head()->push_back(
          cq::Term::Var(component.BodyVars().front()));
    }
    View view;
    view.id = state->FreshViewId();
    component.set_name("v" + std::to_string(view.id));
    view.def = std::move(component);
    out.scans.push_back(engine::Expr::Scan(view.id, view.Columns()));
    state->AddView(MakeView(std::move(view)));
  }
  return out;
}

/// Joins the component scans (cross product across components) and projects
/// the query head in order.
engine::ExprPtr ComposeQueryExpr(const InstalledQuery& installed) {
  engine::ExprPtr expr = installed.scans[0];
  for (size_t i = 1; i < installed.scans.size(); ++i) {
    expr = engine::Expr::Join(expr, installed.scans[i], {});
  }
  if (expr->OutputColumns() != installed.head) {
    expr = engine::Expr::Project(expr, installed.head);
  }
  return expr;
}

}  // namespace

Result<State> MakeInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload) {
  std::vector<cq::ConjunctiveQuery> minimized;
  minimized.reserve(workload.size());
  for (const cq::ConjunctiveQuery& raw : workload) {
    RDFVIEWS_RETURN_IF_ERROR(ValidateWorkloadQuery(raw));
    minimized.push_back(cq::Minimize(raw));
  }
  return MakeInitialStateFromMinimized(minimized);
}

Result<State> MakeInitialStateFromMinimized(
    const std::vector<cq::ConjunctiveQuery>& minimized) {
  State state;
  for (const cq::ConjunctiveQuery& q : minimized) {
    InstalledQuery installed = InstallQueryAsViews(q, &state);
    state.AddRewriting(ComposeQueryExpr(installed));
  }
  return state;
}

Result<State> MakeReformulatedInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const std::vector<cq::UnionOfQueries>& reformulated) {
  if (workload.size() != reformulated.size()) {
    return Status::InvalidArgument(
        "workload/reformulation size mismatch");
  }
  std::vector<std::vector<cq::ConjunctiveQuery>> minimized_disjuncts;
  minimized_disjuncts.reserve(workload.size());
  for (const cq::UnionOfQueries& ucq : reformulated) {
    std::vector<cq::ConjunctiveQuery> ds;
    ds.reserve(ucq.disjuncts().size());
    for (const cq::ConjunctiveQuery& disjunct : ucq.disjuncts()) {
      ds.push_back(cq::Minimize(disjunct));
    }
    minimized_disjuncts.push_back(std::move(ds));
  }
  return MakeReformulatedInitialStateFromMinimized(workload,
                                                   minimized_disjuncts);
}

Result<State> MakeReformulatedInitialStateFromMinimized(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const std::vector<std::vector<cq::ConjunctiveQuery>>&
        minimized_disjuncts) {
  if (workload.size() != minimized_disjuncts.size()) {
    return Status::InvalidArgument(
        "workload/reformulation size mismatch");
  }
  State state;
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    RDFVIEWS_RETURN_IF_ERROR(ValidateWorkloadQuery(workload[qi]));
    std::vector<engine::ExprPtr> children;
    // Output column names shared by all union children, fresh per query.
    std::vector<cq::VarId> out_names;
    for (size_t i = 0; i < workload[qi].head().size(); ++i) {
      out_names.push_back(state.FreshVar());
    }
    for (const cq::ConjunctiveQuery& d : minimized_disjuncts[qi]) {
      // Split the head into its variable part (becomes the view head) and
      // remember the positional spec for the Arrange node.
      cq::ConjunctiveQuery view_def = d;
      view_def.mutable_head()->clear();
      std::unordered_set<cq::VarId> head_seen;
      for (const cq::Term& t : d.head()) {
        if (t.is_var() && head_seen.insert(t.var()).second) {
          view_def.mutable_head()->push_back(t);
        }
      }
      if (view_def.head().empty()) {
        // Fully-constant head (possible for very specific disjuncts): keep
        // one body variable so the view is a well-formed relation.
        view_def.mutable_head()->push_back(
            cq::Term::Var(view_def.BodyVars().front()));
      }
      InstalledQuery installed = InstallQueryAsViews(view_def, &state);
      // installed.head aligns with view_def.head(); build var mapping from
      // the disjunct's original head vars to renamed ones.
      std::unordered_map<cq::VarId, cq::VarId> head_rename;
      for (size_t i = 0; i < view_def.head().size(); ++i) {
        head_rename[view_def.head()[i].var()] = installed.head[i];
      }
      engine::ExprPtr joined = installed.scans[0];
      for (size_t i = 1; i < installed.scans.size(); ++i) {
        joined = engine::Expr::Join(joined, installed.scans[i], {});
      }
      std::vector<engine::ArrangeCol> spec;
      for (size_t pos = 0; pos < d.head().size(); ++pos) {
        engine::ArrangeCol col;
        col.output_name = out_names[pos];
        const cq::Term& t = d.head()[pos];
        if (t.is_const()) {
          col.is_const = true;
          col.value = t.constant();
        } else {
          col.source = head_rename.at(t.var());
        }
        spec.push_back(col);
      }
      children.push_back(engine::Expr::Arrange(joined, std::move(spec)));
    }
    RDFVIEWS_CHECK_MSG(!children.empty(),
                       "reformulation produced no disjuncts");
    state.AddRewriting(children.size() == 1
                           ? children[0]
                           : engine::Expr::Union(std::move(children)));
  }
  return state;
}

}  // namespace rdfviews::vsel
