#include "vsel/state.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/logging.h"
#include "cq/canonical.h"
#include "cq/containment.h"

namespace rdfviews::vsel {

void State::AddView(ViewPtr v) {
  RDFVIEWS_DCHECK(v != nullptr);
  fingerprint_ += v->StructuralHash();
  view_index_.emplace(v->id, static_cast<uint32_t>(views_.items_.size()));
  views_.items_.push_back(std::move(v));
}

void State::ReplaceView(size_t idx, ViewPtr v) {
  RDFVIEWS_DCHECK(idx < views_.items_.size() && v != nullptr);
  ViewPtr& slot = views_.items_[idx];
  fingerprint_ -= slot->StructuralHash();
  fingerprint_ += v->StructuralHash();
  view_index_.erase(slot->id);
  view_index_[v->id] = static_cast<uint32_t>(idx);
  slot = std::move(v);
}

void State::RemoveView(size_t idx) {
  RDFVIEWS_DCHECK(idx < views_.items_.size());
  fingerprint_ -= views_.items_[idx]->StructuralHash();
  view_index_.erase(views_.items_[idx]->id);
  views_.items_.erase(views_.items_.begin() +
                      static_cast<std::ptrdiff_t>(idx));
  // Slots above the erased one shift down by one.
  for (size_t i = idx; i < views_.items_.size(); ++i) {
    view_index_[views_.items_[i]->id] = static_cast<uint32_t>(i);
  }
}

StateFingerprint State::RecomputeFingerprint() const {
  StateFingerprint fp;
  for (const View& v : views_) {
    const std::string& key =
        cq::CanonicalString(v.def, /*include_head=*/true);
    fp += HashBytes128(key.data(), key.size());
  }
  return fp;
}

std::string State::Signature() const {
  std::vector<std::string> parts;
  parts.reserve(views_.size());
  for (const View& v : views_) {
    parts.push_back(v.CanonicalKey());
  }
  std::sort(parts.begin(), parts.end());
  std::string sig;
  for (const std::string& p : parts) {
    sig += p;
    sig += '\n';
  }
  return sig;
}

std::string State::ToString(const rdf::Dictionary* dict) const {
  std::ostringstream out;
  out << "state{\n";
  for (const View& v : views_) {
    cq::ConjunctiveQuery named = v.def;
    named.set_name(v.Name());
    out << "  " << named.ToString(dict) << "\n";
  }
  auto name = [this](uint32_t id) {
    return "v" + std::to_string(id);
  };
  for (size_t i = 0; i < rewritings_.size(); ++i) {
    out << "  r" << i << " = " << rewritings_[i]->ToString(name, dict)
        << "\n";
  }
  out << "}";
  return out.str();
}

Status ValidateWorkloadQuery(const cq::ConjunctiveQuery& q) {
  RDFVIEWS_RETURN_IF_ERROR(q.Validate());
  if (q.head().empty()) {
    return Status::InvalidArgument("workload query with empty head: " +
                                   q.name());
  }
  std::unordered_set<cq::VarId> seen;
  for (const cq::Term& t : q.head()) {
    if (t.is_const()) {
      return Status::InvalidArgument(
          "workload query with constant head term: " + q.name());
    }
    if (!seen.insert(t.var()).second) {
      return Status::InvalidArgument(
          "workload query with repeated head variable: " + q.name());
    }
  }
  return Status::OK();
}

namespace {

/// Renames `q` into the state's fresh-variable space and registers its
/// connected components as views. Returns the per-component scan
/// expressions and the mapped head variables of q.
struct InstalledQuery {
  std::vector<engine::ExprPtr> scans;
  std::vector<cq::VarId> head;  // q's head, renamed
};

InstalledQuery InstallQueryAsViews(const cq::ConjunctiveQuery& minimized,
                                   State* state) {
  cq::ConjunctiveQuery q = minimized;
  // Rename variables into a fresh range.
  std::unordered_map<cq::VarId, cq::VarId> rename;
  for (cq::VarId v : q.BodyVars()) rename[v] = state->FreshVar();
  q.RenameVars(rename);

  InstalledQuery out;
  for (const cq::Term& t : q.head()) out.head.push_back(t.var());

  for (cq::ConjunctiveQuery& component : q.SplitIntoConnectedQueries()) {
    // Views must expose the query head vars of their component; a component
    // of a valid query always has a non-empty head unless the query's head
    // vars all live elsewhere — then expose one variable to keep the view
    // materializable and the cross product computable.
    if (component.head().empty()) {
      component.mutable_head()->push_back(
          cq::Term::Var(component.BodyVars().front()));
    }
    View view;
    view.id = state->FreshViewId();
    component.set_name("v" + std::to_string(view.id));
    view.def = std::move(component);
    out.scans.push_back(engine::Expr::Scan(view.id, view.Columns()));
    state->AddView(MakeView(std::move(view)));
  }
  return out;
}

/// Joins the component scans (cross product across components) and projects
/// the query head in order.
engine::ExprPtr ComposeQueryExpr(const InstalledQuery& installed) {
  engine::ExprPtr expr = installed.scans[0];
  for (size_t i = 1; i < installed.scans.size(); ++i) {
    expr = engine::Expr::Join(expr, installed.scans[i], {});
  }
  if (expr->OutputColumns() != installed.head) {
    expr = engine::Expr::Project(expr, installed.head);
  }
  return expr;
}

}  // namespace

Result<State> MakeInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload) {
  std::vector<cq::ConjunctiveQuery> minimized;
  minimized.reserve(workload.size());
  for (const cq::ConjunctiveQuery& raw : workload) {
    RDFVIEWS_RETURN_IF_ERROR(ValidateWorkloadQuery(raw));
    minimized.push_back(cq::Minimize(raw));
  }
  return MakeInitialStateFromMinimized(minimized);
}

Result<State> MakeInitialStateFromMinimized(
    const std::vector<cq::ConjunctiveQuery>& minimized) {
  State state;
  for (const cq::ConjunctiveQuery& q : minimized) {
    InstalledQuery installed = InstallQueryAsViews(q, &state);
    state.mutable_rewritings()->push_back(ComposeQueryExpr(installed));
  }
  return state;
}

Result<State> MakeReformulatedInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const std::vector<cq::UnionOfQueries>& reformulated) {
  if (workload.size() != reformulated.size()) {
    return Status::InvalidArgument(
        "workload/reformulation size mismatch");
  }
  std::vector<std::vector<cq::ConjunctiveQuery>> minimized_disjuncts;
  minimized_disjuncts.reserve(workload.size());
  for (const cq::UnionOfQueries& ucq : reformulated) {
    std::vector<cq::ConjunctiveQuery> ds;
    ds.reserve(ucq.disjuncts().size());
    for (const cq::ConjunctiveQuery& disjunct : ucq.disjuncts()) {
      ds.push_back(cq::Minimize(disjunct));
    }
    minimized_disjuncts.push_back(std::move(ds));
  }
  return MakeReformulatedInitialStateFromMinimized(workload,
                                                   minimized_disjuncts);
}

Result<State> MakeReformulatedInitialStateFromMinimized(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const std::vector<std::vector<cq::ConjunctiveQuery>>&
        minimized_disjuncts) {
  if (workload.size() != minimized_disjuncts.size()) {
    return Status::InvalidArgument(
        "workload/reformulation size mismatch");
  }
  State state;
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    RDFVIEWS_RETURN_IF_ERROR(ValidateWorkloadQuery(workload[qi]));
    std::vector<engine::ExprPtr> children;
    // Output column names shared by all union children, fresh per query.
    std::vector<cq::VarId> out_names;
    for (size_t i = 0; i < workload[qi].head().size(); ++i) {
      out_names.push_back(state.FreshVar());
    }
    for (const cq::ConjunctiveQuery& d : minimized_disjuncts[qi]) {
      // Split the head into its variable part (becomes the view head) and
      // remember the positional spec for the Arrange node.
      cq::ConjunctiveQuery view_def = d;
      view_def.mutable_head()->clear();
      std::unordered_set<cq::VarId> head_seen;
      for (const cq::Term& t : d.head()) {
        if (t.is_var() && head_seen.insert(t.var()).second) {
          view_def.mutable_head()->push_back(t);
        }
      }
      if (view_def.head().empty()) {
        // Fully-constant head (possible for very specific disjuncts): keep
        // one body variable so the view is a well-formed relation.
        view_def.mutable_head()->push_back(
            cq::Term::Var(view_def.BodyVars().front()));
      }
      InstalledQuery installed = InstallQueryAsViews(view_def, &state);
      // installed.head aligns with view_def.head(); build var mapping from
      // the disjunct's original head vars to renamed ones.
      std::unordered_map<cq::VarId, cq::VarId> head_rename;
      for (size_t i = 0; i < view_def.head().size(); ++i) {
        head_rename[view_def.head()[i].var()] = installed.head[i];
      }
      engine::ExprPtr joined = installed.scans[0];
      for (size_t i = 1; i < installed.scans.size(); ++i) {
        joined = engine::Expr::Join(joined, installed.scans[i], {});
      }
      std::vector<engine::ArrangeCol> spec;
      for (size_t pos = 0; pos < d.head().size(); ++pos) {
        engine::ArrangeCol col;
        col.output_name = out_names[pos];
        const cq::Term& t = d.head()[pos];
        if (t.is_const()) {
          col.is_const = true;
          col.value = t.constant();
        } else {
          col.source = head_rename.at(t.var());
        }
        spec.push_back(col);
      }
      children.push_back(engine::Expr::Arrange(joined, std::move(spec)));
    }
    RDFVIEWS_CHECK_MSG(!children.empty(),
                       "reformulation produced no disjuncts");
    state.mutable_rewritings()->push_back(
        children.size() == 1 ? children[0]
                             : engine::Expr::Union(std::move(children)));
  }
  return state;
}

}  // namespace rdfviews::vsel
