#include "vsel/search.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"
#include "vsel/competitors.h"
#include "vsel/parallel/parallel_search.h"
#include "vsel/search_internal.h"

namespace rdfviews::vsel {

namespace internal {

const int kNumPhases = 4;  // VB, SC, JC, VF

SearchContext::SearchContext(const CostModel* cost_model,
                             const HeuristicOptions& heuristics,
                             const SearchLimits& limits)
    : cost(cost_model),
      heur(heuristics),
      limits(limits),
      topts(TransitionOptions::FromHeuristics(heuristics)),
      deadline(limits.time_budget_sec) {
  // Per-distinct-view transition graphs live next to the per-distinct-view
  // cost estimates.
  topts.graph_cache = &cost_model->interner();
}

bool SearchContext::ViolatesStopConditions(const State& s) const {
  return StateViolatesStopConditions(s, heur, stop_var_active,
                                     stop_tt_active);
}

void SearchContext::Init(const State& s0) {
  ArmStopConditions(s0, &stop_var_active, &stop_tt_active);
  best = s0;
  best_cost = cost->StateCost(s0);
  stats.initial_cost = best_cost;
  stats.best_cost = best_cost;
  stats.best_trace.emplace_back(0.0, best_cost);
  seen.emplace(s0.fingerprint(), 0);
  start = s0;
  if (heur.avf) {
    size_t steps = 0;
    State closed = AvfClosure(s0, topts, &steps, &arena);
    if (steps > 0) {
      stats.created += steps;
      stats.discarded += steps - 1;  // intermediates; the fixpoint is kept
      seen.emplace(closed.fingerprint(), 0);
      double c = cost->StateCost(closed);
      if (BetterState(c, closed.fingerprint(), best_cost,
                      best.fingerprint())) {
        best = closed;
        best_cost = c;
        NotifyBest(c);
      }
      start = std::move(closed);
    }
  }
}

void SearchContext::NotifyBest(double cost_now) {
  stats.best_cost = cost_now;
  double elapsed = deadline.ElapsedSeconds();
  stats.best_trace.emplace_back(elapsed, cost_now);
  if (limits.on_progress) {
    ProgressEvent ev;
    ev.kind = ProgressEvent::Kind::kBestImproved;
    ev.best_cost = cost_now;
    ev.elapsed_sec = elapsed;
    limits.on_progress(ev);
  }
}

bool SearchContext::OutOfBudget() {
  if (limits.stop.stop_requested()) {
    stats.cancelled = true;
    return true;
  }
  if (deadline.Expired()) {
    stats.time_exhausted = true;
    return true;
  }
  if (limits.max_states > 0 && seen.size() >= limits.max_states) {
    stats.memory_exhausted = true;
    return true;
  }
  return false;
}

std::optional<SearchContext::Admitted> SearchContext::Admit(State s,
                                                            int phase) {
  ++stats.created;
  ++stats.transitions_applied;
  if (heur.avf) {
    size_t steps = 0;
    s = AvfClosure(s, topts, &steps, &arena);
    stats.created += steps;
    stats.discarded += steps;
  }
  if (ViolatesStopConditions(s)) {
    ++stats.discarded;
    return std::nullopt;
  }
  auto [it, inserted] = seen.try_emplace(s.fingerprint(), phase);
  if (!inserted) {
    ++stats.duplicates;
    if (it->second <= phase) return std::nullopt;
    // Re-opened at an earlier stratum: earlier-kind transitions now apply.
    it->second = phase;
  }
  double c = cost->StateCost(s);
  if (BetterState(c, s.fingerprint(), best_cost, best.fingerprint())) {
    best = s;
    best_cost = c;
    NotifyBest(c);
  }
  return Admitted{std::move(s), c};
}

SearchResult SearchContext::Finish(bool completed) {
  stats.completed = completed && !stats.time_exhausted &&
                    !stats.memory_exhausted && !stats.cancelled;
  stats.elapsed_sec = deadline.ElapsedSeconds();
  stats.best_cost = best_cost;
  return SearchResult{best, stats};
}

}  // namespace internal

namespace {

using internal::SearchContext;

/// Shared implementation of EXNAIVE (Algorithm 2) and EXSTR: round-robin
/// over CS, applying one (new-state-producing) transition per visit. For
/// EXSTR, the transitions applicable to a state are restricted to kinds >=
/// the stratum at which the state was reached, in VB < SC < JC < VF order.
SearchResult RunExhaustive(SearchContext* ctx, const State& s0,
                           bool stratified) {
  struct Entry {
    State state;
    int phase;
    TransitionBuffer transitions;
    bool loaded = false;
    size_t next = 0;
  };
  std::deque<Entry> cs;
  ctx->Init(s0);
  cs.push_back(Entry{ctx->start, 0, {}, false, 0});

  while (!cs.empty()) {
    if (ctx->OutOfBudget()) return ctx->Finish(false);
    Entry entry = std::move(cs.front());
    cs.pop_front();
    if (!entry.loaded) {
      entry.loaded = true;
      // Non-stratified EXNAIVE may apply any kind at any time; stratified
      // EXSTR only kinds >= the arrival stratum. One batched sweep fills
      // the entry's buffer in kind-major order.
      TransitionKind start_kind =
          static_cast<TransitionKind>(stratified ? entry.phase : 0);
      EnumerateTransitionsBatch(entry.state, start_kind, ctx->topts,
                                &entry.transitions);
    }
    bool produced = false;
    while (entry.next < entry.transitions.size()) {
      if (ctx->OutOfBudget()) return ctx->Finish(false);
      const Transition& t = entry.transitions[entry.next++];
      int phase = stratified ? static_cast<int>(t.kind) : 0;
      auto admitted =
          ctx->Admit(ApplyTransition(entry.state, t, &ctx->arena), phase);
      if (admitted.has_value()) {
        cs.push_back(Entry{std::move(admitted->state), phase, {}, false, 0});
        produced = true;
        break;
      }
    }
    if (entry.next < entry.transitions.size() || produced) {
      // Not yet explored: revisit later (round-robin).
      if (entry.next < entry.transitions.size()) {
        cs.push_back(std::move(entry));
      } else {
        ++ctx->stats.explored;
      }
    } else {
      ++ctx->stats.explored;
    }
  }
  return ctx->Finish(true);
}

/// Stratified depth-first search (Sec. 5.2). For each state, first the
/// closure under the current transition kind is explored depth-first, then
/// the state advances to the next kind. `vb_depth` counts the VB-stratum
/// recursion depth along the current path: once it reaches
/// limits.max_vb_depth (when set), the VB stratum is skipped and the state
/// advances to SC directly, so large views cannot trap the DFS inside the
/// exponential VB closure. `depth` indexes the per-depth transition-buffer
/// pool — each recursion level reuses its own buffer across visits.
void DfsVisit(SearchContext* ctx, TransitionBufferPool* pool, const State& s,
              int kind, size_t vb_depth, size_t depth) {
  if (kind >= internal::kNumPhases) {
    ++ctx->stats.explored;
    return;
  }
  if (kind == static_cast<int>(TransitionKind::kVB) &&
      ctx->limits.max_vb_depth > 0 &&
      vb_depth >= ctx->limits.max_vb_depth) {
    DfsVisit(ctx, pool, s, kind + 1, vb_depth, depth);
    return;
  }
  TransitionBuffer& buf = pool->At(depth);
  buf.Clear();
  EnumerateTransitionsInto(s, static_cast<TransitionKind>(kind), ctx->topts,
                           &buf);
  for (size_t i = 0; i < buf.size(); ++i) {
    if (ctx->OutOfBudget()) return;
    const size_t child_vb =
        vb_depth + (kind == static_cast<int>(TransitionKind::kVB));
    auto admitted = ctx->Admit(ApplyTransition(s, buf[i], &ctx->arena),
                               internal::DfsDedupRank(ctx->limits, kind,
                                                      child_vb));
    if (admitted.has_value()) {
      DfsVisit(ctx, pool, admitted->state, kind, child_vb, depth + 1);
    }
  }
  if (ctx->OutOfBudget()) return;
  DfsVisit(ctx, pool, s, kind + 1, vb_depth, depth);
}

SearchResult RunDfs(SearchContext* ctx, const State& s0) {
  ctx->Init(s0);
  TransitionBufferPool pool;
  DfsVisit(ctx, &pool, ctx->start, 0, 0, 0);
  return ctx->Finish(true);
}

/// Greedy stratified search (Sec. 5.2): per stratum, explore the closure
/// under that transition kind, then keep only the best state found.
SearchResult RunGstr(SearchContext* ctx, const State& s0) {
  ctx->Init(s0);
  State current = ctx->start;
  double current_cost = ctx->cost->StateCost(current);
  TransitionBuffer buf;
  for (int kind = 0; kind < internal::kNumPhases; ++kind) {
    std::deque<State> frontier;
    frontier.push_back(current);
    State phase_best = current;
    double phase_best_cost = current_cost;
    while (!frontier.empty()) {
      if (ctx->OutOfBudget()) return ctx->Finish(false);
      State s = std::move(frontier.front());
      frontier.pop_front();
      buf.Clear();
      EnumerateTransitionsInto(s, static_cast<TransitionKind>(kind),
                               ctx->topts, &buf);
      for (const Transition& t : buf) {
        if (ctx->OutOfBudget()) return ctx->Finish(false);
        auto admitted = ctx->Admit(ApplyTransition(s, t, &ctx->arena), kind);
        if (!admitted.has_value()) continue;
        if (internal::BetterState(admitted->cost,
                                  admitted->state.fingerprint(),
                                  phase_best_cost,
                                  phase_best.fingerprint())) {
          phase_best = admitted->state;
          phase_best_cost = admitted->cost;
        }
        frontier.push_back(std::move(admitted->state));
      }
      ++ctx->stats.explored;
    }
    current = std::move(phase_best);
    current_cost = phase_best_cost;
  }
  return ctx->Finish(true);
}

}  // namespace

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kExNaive: return "EXNAIVE";
    case StrategyKind::kExStr: return "EXSTR";
    case StrategyKind::kDfs: return "DFS";
    case StrategyKind::kGstr: return "GSTR";
    case StrategyKind::kPruning21: return "Pruning";
    case StrategyKind::kGreedy21: return "Greedy";
    case StrategyKind::kHeuristic21: return "Heuristic";
  }
  return "?";
}

Result<SearchResult> RunSearch(StrategyKind strategy, const State& s0,
                               const CostModel& cost_model,
                               const HeuristicOptions& heuristics,
                               const SearchLimits& limits) {
  if (limits.num_threads > 1) {
    switch (strategy) {
      case StrategyKind::kExNaive:
      case StrategyKind::kExStr:
      case StrategyKind::kDfs:
      case StrategyKind::kGstr:
        return parallel::RunParallelSearch(strategy, s0, cost_model,
                                           heuristics, limits);
      default:
        // The [21] competitors combine query spaces sequentially; they run
        // on the serial engine regardless of num_threads.
        break;
    }
  }
  SearchContext ctx(&cost_model, heuristics, limits);
  switch (strategy) {
    case StrategyKind::kExNaive:
      return RunExhaustive(&ctx, s0, /*stratified=*/false);
    case StrategyKind::kExStr:
      return RunExhaustive(&ctx, s0, /*stratified=*/true);
    case StrategyKind::kDfs:
      return RunDfs(&ctx, s0);
    case StrategyKind::kGstr:
      return RunGstr(&ctx, s0);
    case StrategyKind::kPruning21:
    case StrategyKind::kGreedy21:
    case StrategyKind::kHeuristic21:
      return RunCompetitorSearch(strategy, s0, cost_model, heuristics,
                                 limits);
  }
  return Status::InvalidArgument("unknown strategy");
}

}  // namespace rdfviews::vsel
