// TuningConfig::Validate — the one place bad knob combinations are named
// and rejected before any layer (session, pipeline, daemon verb) acts on
// them.
#include <cmath>
#include <string>

#include "vsel/options.h"

namespace rdfviews::vsel {

namespace {

Status Bad(const std::string& field, const std::string& why) {
  return Status::InvalidArgument("TuningConfig." + field + " " + why);
}

bool NonFinite(double v) { return !std::isfinite(v); }

}  // namespace

Status TuningConfig::Validate() const {
  // Search limits: budgets and caps may be "unlimited" (zero,
  // max_states included — the engines and the apportioner treat 0 as
  // uncapped) but never negative.
  if (NonFinite(limits.time_budget_sec) || limits.time_budget_sec < 0) {
    return Bad("limits.time_budget_sec",
               "must be >= 0 seconds (0 = unlimited)");
  }
  if (heuristics.vb_overlap < 0) {
    return Bad("heuristics.vb_overlap", "must be >= 0 shared nodes");
  }
  if (heuristics.vb_overlap_max_atoms == 0) {
    return Bad("heuristics.vb_overlap_max_atoms",
               "must be >= 1 atom (every view has at least one)");
  }

  // Cost weights: every component weight is a nonnegative finite scale.
  if (NonFinite(weights.cs) || weights.cs < 0)
    return Bad("weights.cs", "must be a finite weight >= 0");
  if (NonFinite(weights.cr) || weights.cr < 0)
    return Bad("weights.cr", "must be a finite weight >= 0");
  if (NonFinite(weights.cm) || weights.cm < 0)
    return Bad("weights.cm", "must be a finite weight >= 0");
  if (NonFinite(weights.c1) || weights.c1 < 0)
    return Bad("weights.c1", "must be a finite weight >= 0");
  if (NonFinite(weights.c2) || weights.c2 < 0)
    return Bad("weights.c2", "must be a finite weight >= 0");
  if (NonFinite(weights.f) || weights.f < 0)
    return Bad("weights.f", "must be a finite fan-out factor >= 0");

  // Retry / watchdog: at least one attempt, nonnegative backoffs, a
  // multiplier that does not shrink, and a cap no smaller than the start.
  if (robust.retry.max_attempts == 0) {
    return Bad("robust.retry.max_attempts",
               "must be >= 1 (the first try counts as an attempt)");
  }
  if (NonFinite(robust.retry.initial_backoff_sec) ||
      robust.retry.initial_backoff_sec < 0) {
    return Bad("robust.retry.initial_backoff_sec", "must be >= 0 seconds");
  }
  if (NonFinite(robust.retry.backoff_multiplier) ||
      robust.retry.backoff_multiplier < 1.0) {
    return Bad("robust.retry.backoff_multiplier",
               "must be >= 1 (backoffs never shrink)");
  }
  if (NonFinite(robust.retry.max_backoff_sec) ||
      robust.retry.max_backoff_sec < robust.retry.initial_backoff_sec) {
    return Bad("robust.retry.max_backoff_sec",
               "must be >= robust.retry.initial_backoff_sec "
               "(the cap cannot undercut the first backoff)");
  }
  if (NonFinite(robust.partition_deadline_sec) ||
      robust.partition_deadline_sec < 0) {
    return Bad("robust.partition_deadline_sec",
               "must be >= 0 seconds (0 = no watchdog)");
  }

  // Session cache: LRU knobs are floors (zero would evict everything the
  // update just produced), and the robust-backend knobs must form a
  // workable retry/breaker loop when robust_backend is on.
  if (cache.lru_floor == 0) {
    return Bad("cache.lru_floor", "must be >= 1 entry (it is a floor)");
  }
  if (cache.lru_per_partition == 0) {
    return Bad("cache.lru_per_partition",
               "must be >= 1 entry per partition");
  }
  if (cache.robust_backend && cache.backend_retry_attempts == 0) {
    return Bad("cache.backend_retry_attempts",
               "must be >= 1 when cache.robust_backend is set "
               "(conflicting cache knobs: a retrying backend that never "
               "attempts)");
  }
  if (NonFinite(cache.backend_retry_backoff_sec) ||
      cache.backend_retry_backoff_sec < 0) {
    return Bad("cache.backend_retry_backoff_sec", "must be >= 0 seconds");
  }
  if (cache.robust_backend && cache.breaker_failure_threshold == 0) {
    return Bad("cache.breaker_failure_threshold",
               "must be >= 1 when cache.robust_backend is set "
               "(conflicting cache knobs: a breaker that opens before the "
               "first failure would skip every operation)");
  }
  if (NonFinite(cache.breaker_open_sec) || cache.breaker_open_sec < 0) {
    return Bad("cache.breaker_open_sec", "must be >= 0 seconds");
  }

  // Partitioning: a cap without partitioning enabled is a contradiction —
  // reject instead of silently ignoring the knob.
  if (!partition.enabled && partition.max_partitions != 0) {
    return Bad("partition.max_partitions",
               "set while partition.enabled is false; enable partitioning "
               "or leave the cap at 0");
  }

  return Status::OK();
}

}  // namespace rdfviews::vsel
