// States of the search space (Sec. 3.1): a candidate view set plus one
// equivalent rewriting per workload query.
#ifndef RDFVIEWS_VSEL_STATE_H_
#define RDFVIEWS_VSEL_STATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "cq/ucq.h"
#include "engine/expr.h"
#include "vsel/view.h"

namespace rdfviews::vsel {

/// Order-independent 128-bit digest of a state's view multiset: the
/// component-wise sum of every view's StructuralHash. Maintained
/// incrementally by the state mutators, so transitions pay only for the
/// views they touch instead of re-canonicalizing the whole state.
using StateFingerprint = Hash128;

/// Read-only facade over the copy-on-write view storage: iteration and
/// indexing dereference the shared pointers, so the call sites that only
/// *read* views see plain `const View&`s.
class ViewList {
 public:
  class const_iterator {
   public:
    using inner = std::vector<ViewPtr>::const_iterator;
    explicit const_iterator(inner it) : it_(it) {}
    const View& operator*() const { return **it_; }
    const View* operator->() const { return it_->get(); }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.it_ != b.it_;
    }

   private:
    inner it_;
  };

  const View& operator[](size_t i) const { return *items_[i]; }
  const ViewPtr& ptr(size_t i) const { return items_[i]; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const_iterator begin() const { return const_iterator(items_.begin()); }
  const_iterator end() const { return const_iterator(items_.end()); }

 private:
  friend class State;
  std::vector<ViewPtr> items_;
};

/// A candidate view set <V, R> (Def. 2.3). Views are stored copy-on-write:
/// a state copy shares every View object with its parent, and transitions
/// replace only the touched slots through the mutators below, which keep
/// the incremental fingerprint and the id->index map in sync. Variable ids
/// and view ids are allocated from per-state counters so they stay globally
/// unique across views.
class State {
 public:
  const ViewList& views() const { return views_; }

  /// O(1) lookup of a view's slot by its id; -1 when absent.
  int ViewIndexById(uint32_t id) const {
    auto it = view_index_.find(id);
    return it == view_index_.end() ? -1 : static_cast<int>(it->second);
  }

  // ---- Copy-on-write mutators (fingerprint- and index-preserving) ----

  void AddView(ViewPtr v);
  void ReplaceView(size_t idx, ViewPtr v);
  void RemoveView(size_t idx);

  const std::vector<engine::ExprPtr>& rewritings() const {
    return rewritings_;
  }
  std::vector<engine::ExprPtr>* mutable_rewritings() { return &rewritings_; }

  cq::VarId FreshVar() { return next_var_++; }
  uint32_t FreshViewId() { return next_view_id_++; }
  cq::VarId next_var() const { return next_var_; }
  void set_next_var(cq::VarId v) { next_var_ = v; }
  uint32_t next_view_id() const { return next_view_id_; }
  void set_next_view_id(uint32_t v) { next_view_id_ = v; }

  /// The incrementally maintained fingerprint. Two states are equivalent
  /// iff they have the same view sets (Sec. 3.1); equal fingerprints
  /// identify duplicate states (up to 128-bit multiset-hash collisions).
  const StateFingerprint& fingerprint() const { return fingerprint_; }

  /// Full recomputation of the fingerprint from scratch; the debug-mode
  /// cross-check for the incremental maintenance (see ApplyTransition).
  StateFingerprint RecomputeFingerprint() const;

  /// Canonical signature: the sorted canonical strings of all views. The
  /// human-readable (and collision-free) form of the fingerprint; used by
  /// tests and debugging, not on the search hot path.
  std::string Signature() const;

  std::string ToString(const rdf::Dictionary* dict = nullptr) const;

  /// Per-state cost-model cache, owned by the state but interpreted by
  /// CostModel::Breakdown: per-view and per-rewriting cost terms tagged
  /// with the identity (shared pointer) they were computed for. Because a
  /// state copy shares those objects with its parent, a transition's child
  /// state reuses every term whose view/rewriting it did not touch.
  struct CostCache {
    /// Identity of the (model instance, weight configuration) the terms
    /// were computed under: a process-unique id, never reused, so a state
    /// that outlives its model can not falsely revalidate against a new
    /// model allocated at the same address.
    uint64_t model_key = 0;
    std::vector<ViewPtr> view_keys;
    std::vector<double> bytes_terms;  // per-view VSO contribution
    std::vector<double> vmc_terms;    // per-view VMC contribution
    std::vector<engine::ExprPtr> rec_keys;
    std::vector<double> rec_terms;  // per-rewriting REC contribution
    bool valid = false;
    double vso = 0;  // cached component sums for the all-terms-valid case
    double rec = 0;
    double vmc = 0;
    double total = 0;
  };
  CostCache& cost_cache() const { return cost_cache_; }

 private:
  ViewList views_;
  std::unordered_map<uint32_t, uint32_t> view_index_;  // view id -> slot
  StateFingerprint fingerprint_;
  std::vector<engine::ExprPtr> rewritings_;
  cq::VarId next_var_ = 0;
  uint32_t next_view_id_ = 0;
  mutable CostCache cost_cache_;
};

/// Validates a workload query for initial-state construction: non-empty
/// head of distinct variables, no constant head terms. Exposed so the
/// pipeline's ingest stage validates each query exactly once per run.
Status ValidateWorkloadQuery(const cq::ConjunctiveQuery& q);

/// Builds the initial state S0: one view per workload query (queries are
/// minimized first; a query with a Cartesian product is represented by its
/// independent connected sub-queries, Def. 2.1), and trivial scan
/// rewritings. Queries must have non-empty heads of distinct variables.
Result<State> MakeInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload);

/// As MakeInitialState, but over queries the caller already validated and
/// minimized (the single-minimization ingest path: `cq::Minimize` — the
/// expensive containment-based step — runs once per distinct query per
/// session, not once per stage).
Result<State> MakeInitialStateFromMinimized(
    const std::vector<cq::ConjunctiveQuery>& minimized);

/// As MakeReformulatedInitialState, with every disjunct of every query
/// already minimized by the caller (aligned with `workload`).
Result<State> MakeReformulatedInitialStateFromMinimized(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const std::vector<std::vector<cq::ConjunctiveQuery>>&
        minimized_disjuncts);

/// Builds the pre-reformulation initial state (Sec. 4.3): one view per
/// disjunct of each reformulated query, and union rewritings
/// R0 = { qi = q1i U ... U qnii }. Disjunct head constants (from rules 5/6)
/// are re-inserted positionally by Arrange nodes in the rewritings.
Result<State> MakeReformulatedInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const std::vector<cq::UnionOfQueries>& reformulated);

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_STATE_H_
