// States of the search space (Sec. 3.1): a candidate view set plus one
// equivalent rewriting per workload query.
#ifndef RDFVIEWS_VSEL_STATE_H_
#define RDFVIEWS_VSEL_STATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cq/ucq.h"
#include "engine/expr.h"
#include "vsel/view.h"

namespace rdfviews::vsel {

/// A candidate view set <V, R> (Def. 2.3). Immutable by convention:
/// transitions copy the state. Variable ids and view ids are allocated from
/// per-state counters so they stay globally unique across views.
class State {
 public:
  const std::vector<View>& views() const { return views_; }
  std::vector<View>* mutable_views() { return &views_; }

  const std::vector<engine::ExprPtr>& rewritings() const {
    return rewritings_;
  }
  std::vector<engine::ExprPtr>* mutable_rewritings() { return &rewritings_; }

  cq::VarId FreshVar() { return next_var_++; }
  uint32_t FreshViewId() { return next_view_id_++; }
  cq::VarId next_var() const { return next_var_; }
  void set_next_var(cq::VarId v) { next_var_ = v; }
  uint32_t next_view_id() const { return next_view_id_; }
  void set_next_view_id(uint32_t v) { next_view_id_ = v; }

  int ViewIndexById(uint32_t id) const {
    for (size_t i = 0; i < views_.size(); ++i) {
      if (views_[i].id == id) return static_cast<int>(i);
    }
    return -1;
  }

  /// Canonical signature: the sorted canonical strings of all views. Two
  /// states are equivalent iff they have the same view sets (Sec. 3.1), so
  /// equal signatures identify duplicate states.
  const std::string& Signature() const;

  /// Invalidates the cached signature; called by transitions after edits.
  void Touch() { signature_.clear(); }

  std::string ToString(const rdf::Dictionary* dict = nullptr) const;

 private:
  std::vector<View> views_;
  std::vector<engine::ExprPtr> rewritings_;
  cq::VarId next_var_ = 0;
  uint32_t next_view_id_ = 0;
  mutable std::string signature_;
};

/// Builds the initial state S0: one view per workload query (queries are
/// minimized first; a query with a Cartesian product is represented by its
/// independent connected sub-queries, Def. 2.1), and trivial scan
/// rewritings. Queries must have non-empty heads of distinct variables.
Result<State> MakeInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload);

/// Builds the pre-reformulation initial state (Sec. 4.3): one view per
/// disjunct of each reformulated query, and union rewritings
/// R0 = { qi = q1i U ... U qnii }. Disjunct head constants (from rules 5/6)
/// are re-inserted positionally by Arrange nodes in the rewritings.
Result<State> MakeReformulatedInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const std::vector<cq::UnionOfQueries>& reformulated);

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_STATE_H_
