// States of the search space (Sec. 3.1): a candidate view set plus one
// equivalent rewriting per workload query.
#ifndef RDFVIEWS_VSEL_STATE_H_
#define RDFVIEWS_VSEL_STATE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/status.h"
#include "cq/ucq.h"
#include "engine/expr.h"
#include "vsel/view.h"

namespace rdfviews::vsel {

/// Order-independent 128-bit digest of a state's view multiset: the
/// component-wise sum of every view's StructuralHash. Maintained
/// incrementally by the state mutators, so transitions pay only for the
/// views they touch instead of re-canonicalizing the whole state.
using StateFingerprint = Hash128;

/// Read-only facade over the flat view storage: iteration and indexing
/// dereference the shared pointers, so the call sites that only *read*
/// views see plain `const View&`s.
class ViewList {
 public:
  class const_iterator {
   public:
    explicit const_iterator(const ViewPtr* it) : it_(it) {}
    const View& operator*() const { return **it_; }
    const View* operator->() const { return it_->get(); }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.it_ != b.it_;
    }

   private:
    const ViewPtr* it_;
  };

  const View& operator[](size_t i) const { return *data_[i]; }
  const ViewPtr& ptr(size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const_iterator begin() const { return const_iterator(data_); }
  const_iterator end() const { return const_iterator(data_ + size_); }

 private:
  friend class State;
  const ViewPtr* data_ = nullptr;
  size_t size_ = 0;
};

/// Read-only facade over the flat rewriting storage. Returned by value
/// (two words); iteration yields `const engine::ExprPtr&`.
class RewritingList {
 public:
  const engine::ExprPtr& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const engine::ExprPtr* begin() const { return data_; }
  const engine::ExprPtr* end() const { return data_ + size_; }

 private:
  friend class State;
  const engine::ExprPtr* data_ = nullptr;
  size_t size_ = 0;
};

/// A candidate view set <V, R> (Def. 2.3). Views are stored copy-on-write:
/// a state copy shares every View object with its parent, and transitions
/// replace only the touched slots through the mutators below, which keep
/// the incremental fingerprint in sync.
///
/// Flat storage: one 16-aligned block holds, for view capacity C and
/// rewriting capacity R,
///
///   [ViewPtr slots ×C][double bytes_terms ×C][double vmc_terms ×C]
///   [uint32 ids ×C][uint32 term_keys ×C][ExprPtr rewritings ×R]
///   [RecEntry rec_terms ×R]
///
/// — one allocation per state instead of the previous vector + id→index
/// hash map + four cost-term vectors + rewritings vector + REC-cache
/// vector. The block comes from an Arena on the transition hot path
/// (CloneForTransition) or from the heap otherwise; either way the state
/// owns exactly one span and releases it in its destructor, so states
/// freely outlive the arena that allocated them (the arena's blocks are
/// reference counted).
///
/// bytes_terms/vmc_terms memoize the per-view cost terms *in the state
/// itself*: slot i's terms are valid iff term_keys[i] == ids[i] (mutators
/// poison term_keys for the slots they touch; copies inherit validity by
/// memcpy). Variable ids and view ids are allocated from per-state
/// counters so they stay globally unique across views.
class State {
 public:
  State() = default;
  State(const State& o);
  State(State&& o) noexcept;
  State& operator=(const State& o);
  State& operator=(State&& o) noexcept;
  ~State();

  /// The transition-hot-path copy: storage is bump-allocated from `arena`
  /// (heap when null) with two spare slots, so a transition's net view
  /// change (at most one add) never reallocates the child's block.
  State CloneForTransition(Arena* arena) const;

  const ViewList& views() const { return views_; }

  /// Lookup of a view's slot by its id; -1 when absent. A linear scan of
  /// the contiguous id array — states are small (≲ tens of views), so this
  /// beats the hash map it replaced on every real workload.
  int ViewIndexById(uint32_t id) const {
    const uint32_t* ids = Ids();
    for (uint32_t i = 0; i < size_; ++i) {
      if (ids[i] == id) return static_cast<int>(i);
    }
    return -1;
  }

  // ---- Copy-on-write mutators (fingerprint-preserving) ----

  void AddView(ViewPtr v);
  void ReplaceView(size_t idx, ViewPtr v);
  void RemoveView(size_t idx);

  RewritingList rewritings() const {
    RewritingList l;
    l.data_ = Rewritings();
    l.size_ = rew_size_;
    return l;
  }

  /// Appends a rewriting (initial-state construction, competitors). The new
  /// slot's REC cache entry starts invalid.
  void AddRewriting(engine::ExprPtr e);

  /// Replaces the whole rewriting list (merge, deserialization). Forgets
  /// every cached REC term; the transition hot path uses
  /// ReplaceScanRewritings below instead, which keeps the terms of
  /// untouched rewritings.
  void SetRewritings(std::vector<engine::ExprPtr> rs);

  /// Replaces every Scan of `view_id` in all rewritings by `replacement`,
  /// invalidating the cached REC term of exactly the rewritings that
  /// changed (Expr::ReplaceScans returns the identical subtree otherwise).
  void ReplaceScanRewritings(uint32_t view_id,
                             const engine::ExprPtr& replacement);

  cq::VarId FreshVar() { return next_var_++; }
  uint32_t FreshViewId() { return next_view_id_++; }
  cq::VarId next_var() const { return next_var_; }
  void set_next_var(cq::VarId v) { next_var_ = v; }
  uint32_t next_view_id() const { return next_view_id_; }
  void set_next_view_id(uint32_t v) { next_view_id_ = v; }

  /// The incrementally maintained fingerprint. Two states are equivalent
  /// iff they have the same view sets (Sec. 3.1); equal fingerprints
  /// identify duplicate states (up to 128-bit multiset-hash collisions).
  const StateFingerprint& fingerprint() const { return fingerprint_; }

  /// Full recomputation of the fingerprint from scratch; the debug-mode
  /// cross-check for the incremental maintenance (see ApplyTransition).
  StateFingerprint RecomputeFingerprint() const;

  /// Canonical signature: the sorted canonical strings of all views. The
  /// human-readable (and collision-free) form of the fingerprint; used by
  /// tests and debugging, not on the search hot path.
  std::string Signature() const;

  std::string ToString(const rdf::Dictionary* dict = nullptr) const;

  // ---- Memoized per-view cost terms (written by CostModel::Breakdown).
  // The setters are const: the term arrays are cache slots keyed by the
  // view id they were computed for, and writing them never changes the
  // state's logical value.

  uint32_t view_id(size_t i) const { return Ids()[i]; }
  bool ViewTermValid(size_t i) const { return TermKeys()[i] == Ids()[i]; }
  /// True iff every slot's memoized terms match its current view — one
  /// memcmp of the two contiguous id arrays.
  bool AllViewTermsValid() const {
    return size_ == 0 ||
           std::memcmp(Ids(), TermKeys(), size_ * sizeof(uint32_t)) == 0;
  }
  double ViewBytesTerm(size_t i) const { return BytesTerms()[i]; }
  double ViewVmcTerm(size_t i) const { return VmcTerms()[i]; }
  void SetViewTerm(size_t i, double bytes_term, double vmc_term) const {
    BytesTerms()[i] = bytes_term;
    VmcTerms()[i] = vmc_term;
    TermKeys()[i] = Ids()[i];
  }

  /// Per-state cost-model cache, owned by the state but interpreted by
  /// CostModel::Breakdown: cached component sums plus per-rewriting REC
  /// terms tagged with the rewriting identity they were computed for (the
  /// RecEntry array lives in the flat block, aligned with rewritings()).
  /// Because a state copy shares rewriting objects with its parent, a
  /// transition's child reuses every term whose rewriting it did not
  /// touch. Invalidation happens at mutation time (ReplaceScanRewritings /
  /// SetRewritings), so a null key never aliases a live rewriting.
  struct CostCache {
    /// Identity of the (model instance, weight configuration) the terms
    /// were computed under: a process-unique id, never reused, so a state
    /// that outlives its model can not falsely revalidate against a new
    /// model allocated at the same address.
    uint64_t model_key = 0;
    struct RecEntry {
      const engine::Expr* key = nullptr;  // rewriting the term was computed
                                          // for; null = invalidated
      double term = 0;                    // REC contribution
    };
    bool valid = false;
    double vso = 0;  // cached component sums for the all-terms-valid case
    double rec = 0;
    double vmc = 0;
    double total = 0;
  };
  CostCache& cost_cache() const { return cost_cache_; }
  /// The per-rewriting REC cache slots (rewritings().size() entries),
  /// writable from const for the same reason as SetViewTerm.
  CostCache::RecEntry* rec_entries() const { return RecEntries(); }

 private:
  static constexpr uint32_t kInvalidTermKey = 0xFFFFFFFFu;
  static constexpr size_t kBytesPerView =
      sizeof(ViewPtr) + 2 * sizeof(double) + 2 * sizeof(uint32_t);
  static constexpr size_t kBytesPerRewriting =
      sizeof(engine::ExprPtr) + sizeof(CostCache::RecEntry);

  static constexpr size_t BlockBytes(size_t view_cap, size_t rew_cap) {
    return view_cap * kBytesPerView + rew_cap * kBytesPerRewriting;
  }

  // Section pointers into the flat block. They are computed, not stored:
  // the layout is fixed given base_, cap_ and rew_cap_. The returned
  // pointers are non-const even from const methods — base_ is a pointer
  // member, so the pointee stays writable, which is exactly what the const
  // term-cache setters above rely on.
  ViewPtr* Slots() const { return reinterpret_cast<ViewPtr*>(base_); }
  double* BytesTerms() const {
    return reinterpret_cast<double*>(base_ + cap_ * sizeof(ViewPtr));
  }
  double* VmcTerms() const { return BytesTerms() + cap_; }
  uint32_t* Ids() const { return reinterpret_cast<uint32_t*>(VmcTerms() + cap_); }
  uint32_t* TermKeys() const { return Ids() + cap_; }
  engine::ExprPtr* Rewritings() const {
    return reinterpret_cast<engine::ExprPtr*>(base_ + cap_ * kBytesPerView);
  }
  CostCache::RecEntry* RecEntries() const {
    return reinterpret_cast<CostCache::RecEntry*>(Rewritings() + rew_cap_);
  }

  void SyncFacade() {
    views_.data_ = Slots();
    views_.size_ = size_;
  }

  void CopyFrom(const State& o, size_t slack, Arena* arena);
  void EnsureCapacity(size_t need);
  void EnsureRewritingCapacity(size_t need);
  void Reallocate(size_t new_cap, size_t new_rew_cap);
  void DestroyStorage();

  ViewList views_;  // facade over the slots; kept in sync by SyncFacade()
  char* base_ = nullptr;
  Arena::Block* origin_ = nullptr;  // null => heap block (operator new)
  uint32_t size_ = 0;
  uint32_t cap_ = 0;
  uint32_t rew_size_ = 0;
  uint32_t rew_cap_ = 0;
  StateFingerprint fingerprint_;
  cq::VarId next_var_ = 0;
  uint32_t next_view_id_ = 0;
  mutable CostCache cost_cache_;
};

/// Validates a workload query for initial-state construction: non-empty
/// head of distinct variables, no constant head terms. Exposed so the
/// pipeline's ingest stage validates each query exactly once per run.
Status ValidateWorkloadQuery(const cq::ConjunctiveQuery& q);

/// Builds the initial state S0: one view per workload query (queries are
/// minimized first; a query with a Cartesian product is represented by its
/// independent connected sub-queries, Def. 2.1), and trivial scan
/// rewritings. Queries must have non-empty heads of distinct variables.
Result<State> MakeInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload);

/// As MakeInitialState, but over queries the caller already validated and
/// minimized (the single-minimization ingest path: `cq::Minimize` — the
/// expensive containment-based step — runs once per distinct query per
/// session, not once per stage).
Result<State> MakeInitialStateFromMinimized(
    const std::vector<cq::ConjunctiveQuery>& minimized);

/// As MakeReformulatedInitialState, with every disjunct of every query
/// already minimized by the caller (aligned with `workload`).
Result<State> MakeReformulatedInitialStateFromMinimized(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const std::vector<std::vector<cq::ConjunctiveQuery>>&
        minimized_disjuncts);

/// Builds the pre-reformulation initial state (Sec. 4.3): one view per
/// disjunct of each reformulated query, and union rewritings
/// R0 = { qi = q1i U ... U qnii }. Disjunct head constants (from rules 5/6)
/// are re-inserted positionally by Arrange nodes in the rewritings.
Result<State> MakeReformulatedInitialState(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const std::vector<cq::UnionOfQueries>& reformulated);

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_STATE_H_
