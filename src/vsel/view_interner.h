// Hash-consing of view definitions with per-view cost-model memoization.
//
// Every distinct view the search ever creates — distinct up to variable
// renaming, with literal atom order preserved — is registered here exactly
// once, identified by its 128-bit cost hash (View::CostHash). The interner
// owns the per-view cost caches: estimated cardinality (keyed by the
// body-only cost hash, since |v|e depends only on the body) and estimated
// storage bytes (keyed by the full cost hash, since widths depend on the
// head). The keys are deliberately atom-order-sensitive because the raw
// estimators are (join-reduction anchors and first-occurrence widths), so
// a cache hit always returns the exact value the estimator would produce.
// With these caches the number of cost-model estimations per search run
// drops from O(states x views) to O(distinct views).
//
// (A dense stable id per entry was considered and dropped as having no
// consumer yet; see ROADMAP "Interner-backed transition enumeration".)
#ifndef RDFVIEWS_VSEL_VIEW_INTERNER_H_
#define RDFVIEWS_VSEL_VIEW_INTERNER_H_

#include <cstdint>
#include <unordered_map>

#include "common/hash.h"
#include "vsel/view.h"

namespace rdfviews::vsel {

class ViewInterner {
 public:
  /// Counters of cache traffic, for benchmarks and regression tests.
  struct Counters {
    uint64_t card_computed = 0;  // cardinality estimated from scratch
    uint64_t card_hits = 0;      // cardinality served from the cache
    uint64_t bytes_computed = 0;
    uint64_t bytes_hits = 0;
  };

  /// Number of distinct view definitions (up to renaming, literal atom
  /// order preserved) whose storage estimate was interned so far.
  size_t NumDistinctViews() const { return bytes_.size(); }

  /// Memoized estimated cardinality of the view's body; `compute` runs only
  /// on the first sight of this body shape.
  template <typename Fn>
  double Cardinality(const View& view, Fn&& compute) {
    auto [it, inserted] = cards_.try_emplace(view.CostBodyHash(), 0.0);
    if (inserted) {
      ++counters_.card_computed;
      it->second = compute();
    } else {
      ++counters_.card_hits;
    }
    return it->second;
  }

  /// Memoized estimated storage bytes of the view.
  template <typename Fn>
  double Bytes(const View& view, Fn&& compute) {
    auto [it, inserted] = bytes_.try_emplace(view.CostHash(), 0.0);
    if (inserted) {
      ++counters_.bytes_computed;
      it->second = compute();
    } else {
      ++counters_.bytes_hits;
    }
    return it->second;
  }

  const Counters& counters() const { return counters_; }
  void ResetCounters() { counters_ = Counters{}; }

  /// Drops every cached estimate (e.g., when the underlying statistics
  /// change).
  void Clear() {
    cards_.clear();
    bytes_.clear();
  }

 private:
  std::unordered_map<Hash128, double, Hash128Hasher> cards_;
  std::unordered_map<Hash128, double, Hash128Hasher> bytes_;
  Counters counters_;
};

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_VIEW_INTERNER_H_
