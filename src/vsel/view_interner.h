// Hash-consing of view definitions with per-view cost-model memoization.
//
// Every distinct view the search ever creates — distinct up to variable
// renaming, with literal atom order preserved — is registered here exactly
// once, identified by its 128-bit cost hash (View::CostHash). The interner
// owns the per-view caches:
//   - estimated cardinality, keyed by the body-only cost hash (|v|e depends
//     only on the body);
//   - estimated storage bytes, keyed by the full cost hash (widths depend
//     on the head);
//   - the view's transition graph (selection/join edge lists), keyed by the
//     full cost hash, so EnumerateTransitions builds a view's edges once
//     per distinct view instead of once per state holding it.
// The keys are deliberately atom-order-sensitive because the raw estimators
// are (join-reduction anchors and first-occurrence widths), so a cache hit
// always returns the exact value the estimator would produce. With these
// caches the number of cost-model estimations per search run drops from
// O(states x views) to O(distinct views).
//
// Thread safety: the maps are striped over kNumShards shards addressed by
// the low key bits, each behind its own mutex, so parallel search workers
// interning disjoint views rarely contend. `compute` runs *outside* the
// shard lock (it may recurse into other shards or into rdf::Statistics);
// two workers racing on the same fresh key may therefore both run the
// estimator, but the values are deterministic and the first insert wins, so
// every reader observes one consistent value. In a single-threaded run each
// distinct key is computed exactly once.
#ifndef RDFVIEWS_VSEL_VIEW_INTERNER_H_
#define RDFVIEWS_VSEL_VIEW_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/hash.h"
#include "common/telemetry/metrics.h"
#include "vsel/state_graph.h"
#include "vsel/view.h"

namespace rdfviews::vsel {

class ViewInterner {
 public:
  ViewInterner()
      : metrics_(telemetry::MetricsRegistry::Default()->RegisterCollector(
            [this](std::vector<telemetry::MetricSample>* out) {
              auto add = [out](const char* name, uint64_t v) {
                telemetry::MetricSample s;
                s.name = name;
                s.value = v;
                out->push_back(std::move(s));
              };
              const Counters& c = counters_;
              add("vsel_interner_card_hits_total",
                  c.card_hits.load(std::memory_order_relaxed));
              add("vsel_interner_card_computed_total",
                  c.card_computed.load(std::memory_order_relaxed));
              add("vsel_interner_bytes_hits_total",
                  c.bytes_hits.load(std::memory_order_relaxed));
              add("vsel_interner_bytes_computed_total",
                  c.bytes_computed.load(std::memory_order_relaxed));
            })) {}
  /// Counters of cache traffic, for benchmarks and regression tests.
  /// Relaxed atomics: exact under single-threaded use; under concurrency a
  /// racing compute of the same key counts once per racer (hits + computed
  /// always equals the number of calls).
  struct Counters {
    std::atomic<uint64_t> card_computed{0};  // cardinality estimator runs
    std::atomic<uint64_t> card_hits{0};      // cardinality cache hits
    std::atomic<uint64_t> bytes_computed{0};
    std::atomic<uint64_t> bytes_hits{0};

    Counters() = default;
    Counters(const Counters& o) { *this = o; }
    Counters& operator=(const Counters& o) {
      card_computed.store(o.card_computed.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      card_hits.store(o.card_hits.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      bytes_computed.store(o.bytes_computed.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      bytes_hits.store(o.bytes_hits.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      return *this;
    }
  };

  /// Number of distinct view definitions (up to renaming, literal atom
  /// order preserved) whose storage estimate was interned so far.
  size_t NumDistinctViews() const {
    size_t n = 0;
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      n += sh.bytes.size();
    }
    return n;
  }

  /// Memoized estimated cardinality of the view's body; `compute` runs only
  /// on the first sight of this body shape (once per racing thread).
  template <typename Fn>
  double Cardinality(const View& view, Fn&& compute) {
    return Memoize(view.CostBodyHash(), &Shard::cards, &Counters::card_hits,
                   &Counters::card_computed, std::forward<Fn>(compute));
  }

  /// Memoized estimated storage bytes of the view.
  template <typename Fn>
  double Bytes(const View& view, Fn&& compute) {
    return Memoize(view.CostHash(), &Shard::bytes, &Counters::bytes_hits,
                   &Counters::bytes_computed, std::forward<Fn>(compute));
  }

  /// Memoized transition graph (selection/join edge lists) of the view.
  /// The cached graph is shared by every view with the same cost hash:
  /// occurrence positions and constants are identical across such views,
  /// but JoinEdge::var holds the first-sighted view's variable ids and the
  /// edges' view_idx is meaningless — callers must use only the occurrence
  /// structure (EnumerateTransitions does).
  template <typename Fn>
  std::shared_ptr<const ViewGraph> Graph(const View& view, Fn&& compute) {
    const Hash128& key = view.CostHash();
    Shard& sh = ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      auto it = sh.graphs.find(key);
      if (it != sh.graphs.end()) return it->second;
    }
    auto graph = std::make_shared<const ViewGraph>(compute());
    std::lock_guard<std::mutex> lock(sh.mu);
    return sh.graphs.try_emplace(key, std::move(graph)).first->second;
  }

  /// Memoized View Break mask pairs of the view. Valid for every view with
  /// the same cost hash (identical variable-sharing structure ⇒ identical
  /// connected subset pairs). Returns nullptr when a list cached under
  /// *different* overlap options is found — the caller must then compute
  /// locally without caching (options are fixed within one run, so this
  /// only happens across runs sharing a cost model).
  template <typename Fn>
  std::shared_ptr<const VbBreakList> VbBreaks(const View& view,
                                              size_t vb_overlap,
                                              size_t vb_overlap_max_atoms,
                                              Fn&& compute) {
    const Hash128& key = view.CostHash();
    Shard& sh = ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      auto it = sh.vb_breaks.find(key);
      if (it != sh.vb_breaks.end()) {
        if (it->second->vb_overlap == vb_overlap &&
            it->second->vb_overlap_max_atoms == vb_overlap_max_atoms) {
          return it->second;
        }
        return nullptr;  // cached under different options
      }
    }
    auto breaks = std::make_shared<const VbBreakList>(compute());
    std::lock_guard<std::mutex> lock(sh.mu);
    return sh.vb_breaks.try_emplace(key, std::move(breaks)).first->second;
  }

  const Counters& counters() const { return counters_; }
  void ResetCounters() { counters_ = Counters{}; }

  /// Drops every cached estimate (e.g., when the underlying statistics
  /// change).
  void Clear() {
    for (Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.cards.clear();
      sh.bytes.clear();
      sh.graphs.clear();
      sh.vb_breaks.clear();
    }
  }

 private:
  static constexpr size_t kNumShards = 16;  // power of two

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Hash128, double, Hash128Hasher> cards;
    std::unordered_map<Hash128, double, Hash128Hasher> bytes;
    std::unordered_map<Hash128, std::shared_ptr<const ViewGraph>,
                       Hash128Hasher>
        graphs;
    std::unordered_map<Hash128, std::shared_ptr<const VbBreakList>,
                       Hash128Hasher>
        vb_breaks;
  };

  Shard& ShardFor(const Hash128& key) {
    return shards_[static_cast<size_t>(key.lo) & (kNumShards - 1)];
  }

  template <typename Fn>
  double Memoize(const Hash128& key,
                 std::unordered_map<Hash128, double, Hash128Hasher> Shard::*
                     map,
                 std::atomic<uint64_t> Counters::*hits,
                 std::atomic<uint64_t> Counters::*computed, Fn&& compute) {
    Shard& sh = ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      auto it = (sh.*map).find(key);
      if (it != (sh.*map).end()) {
        (counters_.*hits).fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    double value = compute();  // outside the lock; see header comment
    (counters_.*computed).fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sh.mu);
    return (sh.*map).try_emplace(key, value).first->second;
  }

  Shard shards_[kNumShards];
  Counters counters_;
  // Snapshot-time registry hook; unregisters itself on destruction, so the
  // registry never sees a dangling interner. Last member: destroyed first,
  // before the counters it reads.
  telemetry::CollectorHandle metrics_;
};

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_VIEW_INTERNER_H_
