#include "vsel/competitors.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/logging.h"
#include "cq/canonical.h"
#include "vsel/search.h"
#include "vsel/search_internal.h"
#include "vsel/transitions.h"

namespace rdfviews::vsel {

namespace {

using internal::SearchContext;

/// How many combined states Pruning / Heuristic keep per combination round
/// (cost-sorted). Greedy keeps 1. The paper's Pruning keeps every
/// non-dominated state (and explodes); 16 is the scaled-down analogue that
/// matches our seconds-scale budgets (see DESIGN.md).
constexpr size_t kPruningKeep = 16;
/// Cost factor over the round's best beyond which states are discarded.
constexpr double kPruneFactor = 100.0;

/// Extracts the 1-query initial state for workload query `qi` from S0:
/// the views its rewriting scans, with disjoint var / id ranges per query.
State ExtractSingleQueryState(const State& s0, size_t qi) {
  State out;
  std::unordered_set<uint32_t> used;
  s0.rewritings()[qi]->ForEachScan(
      [&](const engine::Expr& scan) { used.insert(scan.view_id()); });
  for (size_t i = 0; i < s0.views().size(); ++i) {
    // Shares the View object with s0 (copy-on-write).
    if (used.contains(s0.views()[i].id)) out.AddView(s0.views().ptr(i));
  }
  out.AddRewriting(s0.rewritings()[qi]);
  // Disjoint allocation ranges so that merged states never collide.
  out.set_next_var(s0.next_var() + static_cast<cq::VarId>(qi) * 1000000u);
  out.set_next_view_id(s0.next_view_id() +
                       static_cast<uint32_t>(qi) * 100000u);
  return out;
}

/// Per-query exploration as [21] describes it: "all possible edge removals,
/// then all possible view breaks" — a staged closure SC* then JC* then VB*,
/// with the relational original's transition repertoire (partition view
/// breaks, one orientation per join edge).
///
/// Returns false only when the *state* budget (the simulated heap) is
/// exhausted. Running out of time merely truncates the exploration: the
/// paper reports the [21] strategies as anytime on small workloads ("the
/// runs did not finish") but dying on memory for larger ones.
bool ClosePerQuerySpace(SearchContext* ctx, const State& start,
                        std::vector<State>* out) {
  TransitionOptions topts = ctx->topts;
  topts.vb_overlap = 0;
  topts.jc_both_orientations = false;

  std::unordered_set<StateFingerprint, Hash128Hasher> local_seen;
  local_seen.insert(start.fingerprint());
  out->push_back(start);

  const TransitionKind stages[3] = {TransitionKind::kSC, TransitionKind::kJC,
                                    TransitionKind::kVB};
  for (TransitionKind kind : stages) {
    // Close every state discovered so far (including earlier stages'
    // output) under this stage's transition.
    std::deque<State> frontier(out->begin(), out->end());
    while (!frontier.empty()) {
      if (ctx->OutOfBudget()) return !ctx->stats.memory_exhausted;
      State s = std::move(frontier.front());
      frontier.pop_front();
      for (const Transition& t : EnumerateTransitions(s, kind, topts)) {
        if (ctx->OutOfBudget()) return !ctx->stats.memory_exhausted;
        State next = ApplyTransition(s, t);
        ++ctx->stats.created;
        ++ctx->stats.transitions_applied;
        if (!local_seen.insert(next.fingerprint()).second) {
          ++ctx->stats.duplicates;
          continue;
        }
        // The global `seen` map is the memory ledger.
        ctx->seen.emplace(next.fingerprint(), 0);
        out->push_back(next);
        frontier.push_back(std::move(next));
      }
      ++ctx->stats.explored;
    }
  }
  return true;
}

State MergeStates(const State& a, const State& b) {
  State out = a;
  for (size_t i = 0; i < b.views().size(); ++i) {
    out.AddView(b.views().ptr(i));  // shared, not copied
  }
  for (const engine::ExprPtr& r : b.rewritings()) {
    out.AddRewriting(r);
  }
  out.set_next_var(std::max(a.next_var(), b.next_var()));
  out.set_next_view_id(std::max(a.next_view_id(), b.next_view_id()));
  return out;
}

struct Scored {
  State state;
  double cost;
};

uint64_t BodyKeyHash(const View& v) {
  return std::hash<std::string>{}(v.BodyKey());
}

/// Collects the hashed body keys of `s`; sets *has_dup when two views share
/// a body key, i.e. some VF transition applies inside the state. VF fuses
/// two views with isomorphic bodies, so two states with disjoint key sets
/// offer no cross-fusion and a dup-free state is VF-closed; hash collisions
/// can only add a spurious overlap/dup, which degrades to the unshared
/// full-closure path, never to a wrong result.
std::unordered_set<uint64_t> StateBodyKeys(const State& s, bool* has_dup) {
  std::unordered_set<uint64_t> keys;
  *has_dup = false;
  for (const View& v : s.views()) {
    if (!keys.insert(BodyKeyHash(v)).second) *has_dup = true;
  }
  return keys;
}

bool Intersects(const std::unordered_set<uint64_t>& a,
                const std::unordered_set<uint64_t>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (uint64_t k : small) {
    if (large.contains(k)) return true;
  }
  return false;
}

/// Per-round cache of one per-query piece: its body keys and — computed at
/// most once per round, shared by every partial it is combined with — its
/// own VF closure. Combining a known-closed partial with a piece whose keys
/// are disjoint needs no closure of the merged state at all: the closure of
/// the union is the union of the closures (VF preserves body-key sets, so
/// disjoint pieces never unlock new fusions in each other).
struct PieceInfo {
  const State* piece = nullptr;
  std::unordered_set<uint64_t> keys;
  bool has_internal_fusion = false;
  bool closure_ready = false;
  State closed;    // valid when closure_ready && steps > 0
  size_t steps = 0;
};

void EnsurePieceClosure(PieceInfo* info, SearchContext* ctx) {
  if (info->closure_ready) return;
  info->closure_ready = true;
  if (!info->has_internal_fusion) return;  // already closed, steps = 0
  info->closed = AvfClosure(*info->piece, ctx->topts, &info->steps);
  ctx->stats.created += info->steps;
}

/// Keeps the `keep` cheapest states within `factor` of the best. Only the
/// surviving prefix is ever needed in cost order, so this selects it with a
/// bounded heap (std::partial_sort over the first `keep` slots, O(n log
/// keep)) instead of deep-sorting the whole per-round Scored vector.
void PruneScored(std::vector<Scored>* states, size_t keep, double factor) {
  if (states->empty()) return;
  auto by_cost = [](const Scored& a, const Scored& b) {
    return a.cost < b.cost;
  };
  size_t keep_n = std::min(keep, states->size());
  std::partial_sort(states->begin(),
                    states->begin() + static_cast<std::ptrdiff_t>(keep_n),
                    states->end(), by_cost);
  states->resize(keep_n);
  double limit = states->front().cost * factor;
  size_t cut = states->size();
  for (size_t i = 0; i < states->size(); ++i) {
    if ((*states)[i].cost > limit) {
      cut = i;
      break;
    }
  }
  states->resize(cut);
}

}  // namespace

Result<SearchResult> RunCompetitorSearch(StrategyKind strategy,
                                         const State& s0,
                                         const CostModel& cost_model,
                                         const HeuristicOptions& heuristics,
                                         const SearchLimits& limits) {
  SearchContext ctx(&cost_model, heuristics, limits);
  ctx.Init(s0);
  const size_t num_queries = s0.rewritings().size();

  // Phase 1: per-query exhaustive spaces.
  std::vector<std::vector<State>> per_query(num_queries);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    State sq = ExtractSingleQueryState(s0, qi);
    if (!ClosePerQuerySpace(&ctx, sq, &per_query[qi])) {
      (void)ctx.Finish(false);
      return Status::ResourceExhausted(
          std::string(StrategyName(strategy)) +
          ": per-query state space exceeded the memory budget before a full "
          "candidate set was produced");
    }
  }

  // Heuristic: shrink each per-query list to its min-cost state plus states
  // offering fusion opportunities with other queries' min-cost states.
  if (strategy == StrategyKind::kHeuristic21) {
    // Body-canonical strings of views in every query's min-cost state.
    std::vector<size_t> min_idx(num_queries, 0);
    std::vector<std::unordered_set<std::string>> min_bodies(num_queries);
    for (size_t qi = 0; qi < num_queries; ++qi) {
      double best = 0;
      for (size_t i = 0; i < per_query[qi].size(); ++i) {
        double c = cost_model.StateCost(per_query[qi][i]);
        if (i == 0 || c < best) {
          best = c;
          min_idx[qi] = i;
        }
      }
      for (const View& v : per_query[qi][min_idx[qi]].views()) {
        min_bodies[qi].insert(v.BodyKey());
      }
    }
    for (size_t qi = 0; qi < num_queries; ++qi) {
      std::unordered_set<std::string> others;
      for (size_t qj = 0; qj < num_queries; ++qj) {
        if (qj == qi) continue;
        others.insert(min_bodies[qj].begin(), min_bodies[qj].end());
      }
      std::vector<State> kept;
      for (size_t i = 0; i < per_query[qi].size(); ++i) {
        bool fusable = false;
        for (const View& v : per_query[qi][i].views()) {
          if (others.contains(v.BodyKey())) {
            fusable = true;
            break;
          }
        }
        if (i == min_idx[qi] || fusable) {
          kept.push_back(per_query[qi][i]);
        }
      }
      per_query[qi] = std::move(kept);
    }
  }

  // Phase 2: combine query by query.
  std::vector<Scored> current;
  for (const State& s : per_query[0]) {
    current.push_back(Scored{s, cost_model.StateCost(s)});
  }
  size_t keep = strategy == StrategyKind::kGreedy21 ? 1 : kPruningKeep;
  PruneScored(&current, keep, kPruneFactor);

  for (size_t qi = 1; qi < num_queries; ++qi) {
    // Per-piece body keys and (lazily, at most once per round) per-piece VF
    // closures, shared across every surviving partial.
    std::vector<PieceInfo> pieces(per_query[qi].size());
    for (size_t i = 0; i < per_query[qi].size(); ++i) {
      pieces[i].piece = &per_query[qi][i];
      pieces[i].keys =
          StateBodyKeys(per_query[qi][i], &pieces[i].has_internal_fusion);
    }
    std::vector<Scored> next;
    for (const Scored& partial : current) {
      // The partial's keys and closed-ness, once per (partial, round): at
      // most `keep` survivors reach this point.
      bool partial_has_dup = false;
      std::unordered_set<uint64_t> partial_keys =
          StateBodyKeys(partial.state, &partial_has_dup);
      for (PieceInfo& info : pieces) {
        if (ctx.OutOfBudget()) {
          if (!ctx.stats.memory_exhausted) break;  // timeout: keep partials
          (void)ctx.Finish(false);
          return Status::ResourceExhausted(
              std::string(StrategyName(strategy)) +
              ": combination phase exceeded the memory budget");
        }
        State merged = MergeStates(partial.state, *info.piece);
        ++ctx.stats.created;
        ctx.seen.emplace(merged.fingerprint(), 0);
        next.push_back(Scored{merged, cost_model.StateCost(merged)});
        State fused;
        bool have_fused = false;
        if (!partial_has_dup && !Intersects(partial_keys, info.keys)) {
          // No fusion can touch the partial: the closure of the merged
          // state is partial ∪ closure(piece), with the piece closure
          // computed once per round instead of once per partial.
          EnsurePieceClosure(&info, &ctx);
          if (info.steps > 0) {
            fused = MergeStates(partial.state, info.closed);
            ++ctx.stats.created;
            have_fused = true;
          }
        } else {
          // Possible fusions against this partial: full closure as before.
          size_t steps = 0;
          State closed = AvfClosure(merged, ctx.topts, &steps);
          ctx.stats.created += steps;
          if (steps > 0) {
            fused = std::move(closed);
            have_fused = true;
          }
        }
        if (have_fused) {
          ctx.seen.emplace(fused.fingerprint(), 0);
          double c = cost_model.StateCost(fused);
          next.push_back(Scored{std::move(fused), c});
        }
      }
    }
    PruneScored(&next, keep, kPruneFactor);
    ctx.stats.discarded += next.size() > keep ? next.size() - keep : 0;
    if (next.empty()) {
      if (ctx.stats.cancelled) {
        // Cooperative cancellation is anytime even here: return the valid
        // current best (at worst S0) instead of an error, mirroring the
        // Sec. 5 strategies.
        return ctx.Finish(false);
      }
      // Timed out before any state covering this query could be combined.
      (void)ctx.Finish(false);
      return Status::TimedOut(
          std::string(StrategyName(strategy)) +
          ": time budget expired before a full candidate set was combined");
    }
    current = std::move(next);
  }

  RDFVIEWS_CHECK(!current.empty());
  const Scored& winner = *std::min_element(
      current.begin(), current.end(),
      [](const Scored& a, const Scored& b) { return a.cost < b.cost; });
  if (winner.cost < ctx.best_cost) {
    ctx.best = winner.state;
    ctx.best_cost = winner.cost;
    ctx.NotifyBest(winner.cost);
  }
  return ctx.Finish(true);
}

}  // namespace rdfviews::vsel
