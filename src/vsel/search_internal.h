// Shared search-bookkeeping context used by the strategies and the [21]
// competitor re-implementations. Internal header.
#ifndef RDFVIEWS_VSEL_SEARCH_INTERNAL_H_
#define RDFVIEWS_VSEL_SEARCH_INTERNAL_H_

#include <optional>
#include <unordered_map>

#include "common/arena.h"
#include "common/hash.h"
#include "common/timer.h"
#include "vsel/cost_model.h"
#include "vsel/options.h"
#include "vsel/state.h"
#include "vsel/transitions.h"

namespace rdfviews::vsel {

struct SearchResult;

namespace internal {

extern const int kNumPhases;

/// The deterministic better-than order on (cost, fingerprint) pairs used by
/// every strategy (serial and parallel) to track the running best: lower
/// cost wins, equal costs are broken by the fixed fingerprint order. The
/// best of a fully explored space is therefore a function of the explored
/// *set*, not of the exploration schedule — the property the parallel
/// engine relies on to report identical bests at every thread count.
inline bool BetterState(double cost, const StateFingerprint& fp,
                        double best_cost, const StateFingerprint& best_fp) {
  return cost < best_cost ||
         (cost == best_cost && Hash128Less(fp, best_fp));
}

/// Arms the stop_tt / stop_var conditions: a condition already satisfied by
/// S0 itself is disabled (Sec. 5.2).
inline void ArmStopConditions(const State& s0, bool* stop_var_active,
                              bool* stop_tt_active) {
  *stop_var_active = true;
  *stop_tt_active = true;
  for (const View& v : s0.views()) {
    if (v.def.NumConstants() == 0) *stop_var_active = false;
    if (v.def.len() == 1 && v.def.NumConstants() == 0 &&
        v.def.BodyVars().size() == 3) {
      *stop_tt_active = false;
    }
  }
}

/// The stop_var / stop_tt state filters (Sec. 5.2), evaluated against the
/// armed flags computed by ArmStopConditions.
inline bool StateViolatesStopConditions(const State& s,
                                        const HeuristicOptions& heur,
                                        bool stop_var_active,
                                        bool stop_tt_active) {
  if (heur.stop_var && stop_var_active) {
    for (const View& v : s.views()) {
      if (v.def.NumConstants() == 0) return true;
    }
  }
  if (heur.stop_tt && stop_tt_active) {
    for (const View& v : s.views()) {
      if (v.def.len() == 1 && v.def.NumConstants() == 0 &&
          v.def.BodyVars().size() == 3) {
        return true;
      }
    }
  }
  return false;
}

/// Revisit rank for the DFS seen-set. Without a VB cap the stratum alone
/// orders revisits (rank == kind). With limits.max_vb_depth set, two DFS
/// visits of the same state also differ in power by the VB budget left
/// along their paths: a VB-stratum visit at depth d explores view breaks
/// capped at (max - d) and then every later stratum, and a VB-stratum
/// visit at d >= max skips straight to SC — behaviorally a stratum-1
/// visit. Collapsing (kind, vb_depth) onto this total order (reopen on a
/// strictly smaller rank) makes the reopening fixpoint — and therefore a
/// capped DFS's reachable set and best — independent of arrival order, so
/// serial and parallel capped runs that exhaust their space report the
/// same best at every thread count. `vb_depth` is the depth at which the
/// admitted state's own subtree will be explored (the child's depth, not
/// the parent's).
inline int DfsDedupRank(const SearchLimits& limits, int kind,
                        size_t vb_depth) {
  if (limits.max_vb_depth == 0) return kind;
  const int cap = static_cast<int>(limits.max_vb_depth);
  if (kind == static_cast<int>(TransitionKind::kVB)) {
    return vb_depth < limits.max_vb_depth ? static_cast<int>(vb_depth) : cap;
  }
  return cap - 1 + kind;
}

/// Bookkeeping shared by all strategies: duplicate detection (by the
/// incrementally maintained 128-bit state fingerprint, with stratum
/// re-opening), AVF closure, stop conditions, best state tracking and
/// budget enforcement.
class SearchContext {
 public:
  SearchContext(const CostModel* cost_model,
                const HeuristicOptions& heuristics,
                const SearchLimits& limits);

  void Init(const State& s0);

  /// True once the time or state budget is exceeded or a cooperative stop
  /// was requested (and records which).
  bool OutOfBudget();

  /// Records a best-cost improvement in the stats trace and forwards it to
  /// the limits.on_progress observer, if any.
  void NotifyBest(double cost);

  struct Admitted {
    State state;
    double cost;
  };

  /// Processes a freshly produced state: applies AVF closure, stop
  /// conditions and duplicate detection, and tracks the best state.
  /// `phase` is the stratum (transition kind) that produced the state.
  std::optional<Admitted> Admit(State s, int phase);

  bool ViolatesStopConditions(const State& s) const;

  SearchResult Finish(bool completed);

  const CostModel* cost;
  HeuristicOptions heur;
  SearchLimits limits;
  TransitionOptions topts;
  Deadline deadline;
  SearchStats stats;
  /// Backs the flat storage of every state this context's run creates
  /// (ApplyTransition / AvfClosure route through it). Single-threaded by
  /// construction — one SearchContext per serial run. States escaping the
  /// run (the best) stay valid past the context: arena blocks are
  /// reference counted by the spans that live in them.
  Arena arena;
  // fingerprint -> min stratum at which the state was reached
  std::unordered_map<StateFingerprint, int, Hash128Hasher> seen;
  State best;
  /// The state the strategies explore from: S0, or its AVF closure when
  /// aggressive view fusion is on (VF only ever improves the cost, so the
  /// fused state dominates S0 and shrinks the space).
  State start;
  double best_cost = 0;
  bool stop_var_active = true;
  bool stop_tt_active = true;
};

}  // namespace internal
}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_SEARCH_INTERNAL_H_
