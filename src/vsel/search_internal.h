// Shared search-bookkeeping context used by the strategies and the [21]
// competitor re-implementations. Internal header.
#ifndef RDFVIEWS_VSEL_SEARCH_INTERNAL_H_
#define RDFVIEWS_VSEL_SEARCH_INTERNAL_H_

#include <optional>
#include <unordered_map>

#include "common/hash.h"
#include "common/timer.h"
#include "vsel/cost_model.h"
#include "vsel/options.h"
#include "vsel/state.h"
#include "vsel/transitions.h"

namespace rdfviews::vsel {

struct SearchResult;

namespace internal {

extern const int kNumPhases;

/// Bookkeeping shared by all strategies: duplicate detection (by the
/// incrementally maintained 128-bit state fingerprint, with stratum
/// re-opening), AVF closure, stop conditions, best state tracking and
/// budget enforcement.
class SearchContext {
 public:
  SearchContext(const CostModel* cost_model,
                const HeuristicOptions& heuristics,
                const SearchLimits& limits);

  void Init(const State& s0);

  /// True once the time or state budget is exceeded (and records which).
  bool OutOfBudget();

  struct Admitted {
    State state;
    double cost;
  };

  /// Processes a freshly produced state: applies AVF closure, stop
  /// conditions and duplicate detection, and tracks the best state.
  /// `phase` is the stratum (transition kind) that produced the state.
  std::optional<Admitted> Admit(State s, int phase);

  bool ViolatesStopConditions(const State& s) const;

  SearchResult Finish(bool completed);

  const CostModel* cost;
  HeuristicOptions heur;
  SearchLimits limits;
  TransitionOptions topts;
  Deadline deadline;
  SearchStats stats;
  // fingerprint -> min stratum at which the state was reached
  std::unordered_map<StateFingerprint, int, Hash128Hasher> seen;
  State best;
  /// The state the strategies explore from: S0, or its AVF closure when
  /// aggressive view fusion is on (VF only ever improves the cost, so the
  /// fused state dominates S0 and shrinks the space).
  State start;
  double best_cost = 0;
  bool stop_var_active = true;
  bool stop_tt_active = true;
};

}  // namespace internal
}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_SEARCH_INTERNAL_H_
