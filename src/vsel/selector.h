// Top-level view-selection API: workload in, recommended views + rewritings
// out, with the paper's four ways of handling RDF entailment (Sec. 4.3):
// ignore it, saturate the database, pre-reformulate the workload, or
// post-reformulate the winning views.
#ifndef RDFVIEWS_VSEL_SELECTOR_H_
#define RDFVIEWS_VSEL_SELECTOR_H_

#include <memory>

#include "common/status.h"
#include "common/telemetry/export.h"
#include "cq/query.h"
#include "cq/ucq.h"
#include "engine/relation.h"
#include "rdf/schema.h"
#include "rdf/statistics.h"
#include "rdf/triple_store.h"
#include "vsel/cost_model.h"
#include "vsel/options.h"
#include "vsel/search.h"

namespace rdfviews::vsel {

// EntailmentMode and the unified TuningConfig aggregate (with its
// back-compat alias SelectorOptions) live in vsel/options.h.

/// Per-partition health record of one pipeline run: how many attempts the
/// partition took, what the last failure was, and whether it ended
/// abandoned (degraded out of the recommendation) or recovered (succeeded
/// on a retry). Healthy first-try partitions get attempts == 1 and kOk.
struct PartitionHealth {
  /// Partition index within the run's PartitionPlan.
  size_t partition = 0;
  /// Queries in the partition (the degradation blast radius).
  size_t queries = 0;
  /// Search attempts made this update (0 = never ran: its pool task died
  /// before claiming the slot, or the update failed before stage 3).
  size_t attempts = 0;
  /// Last failure observed (kOk when the partition never failed).
  StatusCode last_code = StatusCode::kOk;
  std::string last_error;
  /// Wall seconds spent across all attempts, including backoff sleeps.
  double wall_spent_sec = 0;
  /// Exhausted its retry budget; its queries have null rewritings in the
  /// degraded Recommendation and the partition stays dirty in a session.
  bool abandoned = false;
  /// Failed at least once but succeeded on a later attempt.
  bool recovered = false;
};

/// Per-recommendation observability of the staged pipeline, including the
/// tuning-session reuse accounting: how the workload was partitioned, how
/// many partitions an incremental update served from the session cache vs
/// re-searched, and how much budget early finishers re-granted.
struct PipelineReport {
  /// How many independent sub-workloads the commonality graph produced
  /// (1 = monolithic search).
  size_t num_partitions = 1;
  /// Why partitioning fell back to a single partition (empty when the
  /// commonality graph was actually used).
  std::string partition_fallback_reason;
  /// Cross-partition duplicate views the merge stage folded away.
  size_t merged_duplicate_views = 0;
  /// Session updates only: partitions whose cached result was reused
  /// (clean) vs freshly searched (dirty). For a one-shot Recommend,
  /// reused == 0 and searched == num_partitions.
  size_t partitions_reused = 0;
  size_t partitions_searched = 0;
  /// Of the reused partitions, how many came from a persistent backend —
  /// deserialized from bytes, re-interned through the session's live
  /// ViewInterner and re-costed (cost asserted equal to the persisted one)
  /// before use. 0 when every reuse was served from process memory.
  size_t partitions_rehydrated = 0;
  /// Seconds of time budget early-finishing partitions returned to the
  /// shared pool for still-running ones (stage 3 re-granting).
  double budget_regranted_sec = 0;
  /// Partitions abandoned this update (the recommendation is degraded when
  /// nonzero; see Sec. "Failure semantics" in the README).
  size_t partitions_failed = 0;
  /// Retry attempts made beyond each partition's first try.
  size_t partition_retries = 0;
  /// One record per partition that needed the retry machinery this update
  /// (failed at least once, recovered, or was abandoned), ordered by
  /// partition index. Healthy runs leave it empty.
  std::vector<PartitionHealth> partition_health;

  /// The run's span tree plus a registry snapshot taken when the run
  /// finished (null when TelemetryOptions::trace is off). Shared const:
  /// copying a report/Recommendation stays cheap.
  std::shared_ptr<const telemetry::RunTelemetry> telemetry;
};

/// A recommended view set: everything needed to deploy the three-tier
/// scenario of the introduction — materialize `views` (away from the
/// database), then answer query i by executing rewritings[i] on them.
struct Recommendation {
  /// One definition per view of the best state; union views carry the
  /// post-reformulated disjuncts (a singleton union otherwise).
  std::vector<cq::UnionOfQueries> view_definitions;
  /// Column names per view, aligned with view_definitions.
  std::vector<std::vector<cq::VarId>> view_columns;
  /// View ids, aligned with view_definitions.
  std::vector<uint32_t> view_ids;
  /// One rewriting per workload query, over the views above.
  std::vector<engine::ExprPtr> rewritings;

  State best_state;
  SearchStats stats;
  EntailmentMode entailment = EntailmentMode::kNone;

  /// Cost-model memoization observability for the run: interner cache
  /// traffic, per-term reuse counts, and the number of distinct views the
  /// search ever created (the O(distinct views) bound on estimations).
  ViewInterner::Counters cost_cache_counters;
  CostModel::Counters cost_counters;
  size_t distinct_views_interned = 0;

  /// Pipeline and session observability (see PipelineReport).
  PipelineReport pipeline;

  /// The store the views must be materialized over: the saturated store for
  /// kSaturate, the original store otherwise (owned when saturated).
  std::shared_ptr<const rdf::TripleStore> materialization_store;
};

/// Materializes all recommended views over the recommendation's store.
struct MaterializedViews {
  std::vector<engine::Relation> relations;  // aligned with view ids
  std::vector<uint32_t> view_ids;

  const engine::Relation& ById(uint32_t view_id) const;
  size_t TotalBytes() const;
};

class ViewSelector {
 public:
  /// `schema` may be null when entailment is kNone.
  ViewSelector(const rdf::TripleStore* store, const rdf::Dictionary* dict,
               const rdf::Schema* schema = nullptr)
      : store_(store), dict_(dict), schema_(schema) {}

  /// One-shot convenience wrapper over vsel::TuningSession
  /// (vsel/session/session.h): equivalent to constructing a session and
  /// calling Update(workload) once, then discarding the session's caches.
  /// Continuous / evolving workloads should hold a TuningSession instead —
  /// it reuses partition search results, interned views, and warmed
  /// statistics across updates, and supports cancellation and progress
  /// streaming through RecommendAsync.
  Result<Recommendation> Recommend(
      const std::vector<cq::ConjunctiveQuery>& workload,
      const SelectorOptions& options) const;

 private:
  const rdf::TripleStore* store_;
  const rdf::Dictionary* dict_;
  const rdf::Schema* schema_;
};

/// Materializes the recommended views.
MaterializedViews Materialize(const Recommendation& rec);

/// Executes rewriting `query_index` over the materialized views.
engine::Relation AnswerQuery(const Recommendation& rec,
                             const MaterializedViews& views,
                             size_t query_index);

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_SELECTOR_H_
