// A PartitionCacheBackend decorator adding retry-with-backoff and a
// circuit breaker in front of any delegate backend (enabled through
// SessionCacheOptions::robust_backend).
//
// Semantics layered on the delegate:
//
//   - Get: a storage-layer failure (any non-OK, non-NotFound Status — an
//     existing entry the delegate could not open/read) is retried up to
//     `max_attempts` times with deterministic jittered backoff; a genuine
//     miss (NotFound) is returned immediately and counts as backend
//     health. Put: retried on any non-OK Status the same way.
//   - A run of `breaker.failure_threshold` consecutive exhausted
//     operations opens the breaker: for `breaker.open_sec` every operation
//     is skipped outright (a skipped Get reports NotFound, a skipped Put
//     Unavailable-style Internal),
//     each skip counted, so a wedged shared filesystem costs one
//     failure window, not one timeout per partition per update. After the
//     window one half-open probe operation is let through; its outcome
//     closes or re-opens the breaker.
//
// Failure containment only — the decorator never changes what a healthy
// delegate returns. Maintenance calls (Clear / Size / Trim /
// NoteRehydrationRejected) pass straight through, ungated: they must work
// on a sick backend too.
#ifndef RDFVIEWS_VSEL_ROBUST_RETRYING_CACHE_BACKEND_H_
#define RDFVIEWS_VSEL_ROBUST_RETRYING_CACHE_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "vsel/robust/circuit_breaker.h"
#include "vsel/robust/retry.h"
#include "vsel/serialize/partition_cache.h"

namespace rdfviews::vsel::robust {

class RetryingCacheBackend : public serialize::PartitionCacheBackend {
 public:
  struct Options {
    /// Attempts per operation, including the first.
    size_t max_attempts = 3;
    /// Backoff between attempts (see RetryPolicy; multiplier 2, capped at
    /// 16x the initial).
    double initial_backoff_sec = 0.002;
    uint64_t jitter_seed = 0x5eedull;
    CircuitBreaker::Options breaker;
  };

  /// Non-owning: `delegate` must outlive the decorator.
  RetryingCacheBackend(serialize::PartitionCacheBackend* delegate,
                       Options options);
  /// Owning: the decorator keeps the delegate alive (the session wraps its
  /// backend — self-constructed or caller-supplied — through this one).
  RetryingCacheBackend(
      std::shared_ptr<serialize::PartitionCacheBackend> owned,
      Options options);

  Status Get(const std::string& key, Fetched* out) override;
  Status Put(const std::string& key,
             const pipeline::PartitionSearchResult& result) override;
  void Clear() override;
  size_t Size() const override;
  void Trim(size_t max_entries) override;
  Status Invalidate(const std::string& key) override;
  void NoteRehydrationRejected() override;
  /// The delegate's counters plus this decorator's `retries` and
  /// `breaker_skips` (and with breaker-skipped Gets folded into `misses`,
  /// so hit/miss accounting stays coherent for the session).
  Counters counters() const override;

  const CircuitBreaker& breaker() const { return breaker_; }
  serialize::PartitionCacheBackend* delegate() const { return delegate_; }

 private:
  std::shared_ptr<serialize::PartitionCacheBackend> owned_;
  serialize::PartitionCacheBackend* delegate_;
  RetryPolicy retry_;
  size_t max_attempts_;
  CircuitBreaker breaker_;
  void RegisterMetrics();

  std::atomic<uint64_t> op_counter_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> skipped_gets_{0};
  std::atomic<uint64_t> skipped_puts_{0};
  // Own deltas only (backend="retrying"); the delegate registers its own
  // series, so nothing is double-counted. Last member: unregisters first.
  telemetry::CollectorHandle metrics_;
};

}  // namespace rdfviews::vsel::robust

#endif  // RDFVIEWS_VSEL_ROBUST_RETRYING_CACHE_BACKEND_H_
