// A single-thread deadline watchdog: Arm(deadline, source) registers "fire
// this StopSource in `deadline` seconds unless disarmed first", and one
// background thread sleeps until the earliest registered deadline and
// fires whatever is due.
//
// Pipeline stage 3 arms one entry per partition search *attempt*: the
// armed StopSource is combined (StopToken::Combine) with the caller's own
// token into the token the search — and any injected hang under it
// (fault::ScopedHangToken) — polls, so an attempt that wedges anywhere
// cooperative is cut loose after its hard per-partition deadline without
// the containment loop itself having to wait on it. Disarm on the happy
// path is cheap (erase under the lock); a fired entry counts toward
// fired() so the loop can distinguish "deadline cut it" from "user
// cancelled".
//
// The thread is started lazily on first Arm and joined in the destructor;
// a Watchdog that is never armed costs nothing.
#ifndef RDFVIEWS_VSEL_ROBUST_WATCHDOG_H_
#define RDFVIEWS_VSEL_ROBUST_WATCHDOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "common/stop_token.h"

namespace rdfviews::vsel::robust {

class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers `source` to be fired `deadline_sec` seconds from now.
  /// Returns a ticket for Disarm. Non-positive deadlines fire immediately
  /// (still through the watchdog thread, still counted).
  uint64_t Arm(double deadline_sec, StopSource source);

  /// Cancels a pending entry. Idempotent; disarming an already-fired
  /// ticket is a no-op (the firing is not undone — the attempt's combined
  /// token has already observed it).
  void Disarm(uint64_t ticket);

  /// True iff this ticket's deadline elapsed and its source was fired.
  bool Fired(uint64_t ticket) const;

  /// Total entries fired since construction.
  uint64_t fired() const;

 private:
  struct Entry {
    std::chrono::steady_clock::time_point due;
    StopSource source;
  };

  void Loop();

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::map<uint64_t, Entry> pending_;
  std::map<uint64_t, bool> fired_tickets_;  // ticket -> fired (vs disarmed)
  uint64_t next_ticket_ = 1;
  uint64_t fired_count_ = 0;
  bool stopping_ = false;
  bool thread_started_ = false;
  std::thread thread_;
};

}  // namespace rdfviews::vsel::robust

#endif  // RDFVIEWS_VSEL_ROBUST_WATCHDOG_H_
