#include "vsel/robust/circuit_breaker.h"

#include <utility>

namespace rdfviews::vsel::robust {

CircuitBreaker::CircuitBreaker(Options options, Clock clock)
    : options_(std::move(options)), clock_(std::move(clock)) {
  if (!clock_) clock_ = [] { return std::chrono::steady_clock::now(); };
  if (options_.failure_threshold == 0) options_.failure_threshold = 1;
  metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
      [this](std::vector<telemetry::MetricSample>* out) {
        uint64_t skips, opens, closes;
        {
          std::lock_guard<std::mutex> lock(mu_);
          skips = skips_;
          opens = opens_;
          closes = closes_;
        }
        auto add = [out](const char* name, uint64_t v) {
          telemetry::MetricSample s;
          s.name = name;
          s.value = v;
          out->push_back(std::move(s));
        };
        add("vsel_breaker_skips_total", skips);
        add("vsel_breaker_opens_total", opens);
        add("vsel_breaker_closes_total", closes);
      });
}

CircuitBreaker::State CircuitBreaker::StateLocked() const {
  if (state_ != State::kOpen) return state_;
  const double open_for =
      std::chrono::duration<double>(clock_() - opened_at_).count();
  return open_for >= options_.open_sec ? State::kHalfOpen : State::kOpen;
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (StateLocked()) {
    case State::kClosed:
      return true;
    case State::kOpen:
      ++skips_;
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        ++skips_;
        return false;
      }
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kClosed) ++closes_;  // successful half-open probe
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to a fresh open window.
    state_ = State::kOpen;
    opened_at_ = clock_();
    probe_in_flight_ = false;
    ++opens_;
    return;
  }
  if (++consecutive_failures_ >= options_.failure_threshold &&
      state_ == State::kClosed) {
    state_ = State::kOpen;
    opened_at_ = clock_();
    ++opens_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StateLocked();
}

uint64_t CircuitBreaker::skips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skips_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

uint64_t CircuitBreaker::closes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closes_;
}

}  // namespace rdfviews::vsel::robust
