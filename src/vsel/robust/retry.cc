#include "vsel/robust/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/hash.h"

namespace rdfviews::vsel::robust {

double BackoffDelaySec(const RetryPolicy& policy, uint64_t stream,
                       size_t attempt) {
  if (attempt < 2) return 0;
  if (policy.initial_backoff_sec <= 0) return 0;
  double delay = policy.initial_backoff_sec;
  for (size_t k = 2; k < attempt; ++k) {
    delay *= policy.backoff_multiplier;
    if (delay >= policy.max_backoff_sec) break;  // further growth is moot
  }
  // Uniform in [0.5, 1.0] from (seed, stream, attempt): deterministic per
  // plan, decorrelated across streams.
  const uint64_t u =
      Mix64(policy.jitter_seed ^ Mix64(stream ^ (uint64_t{attempt} << 32)));
  const double unit = static_cast<double>(u >> 11) * 0x1.0p-53;
  delay *= 0.5 + 0.5 * unit;
  return std::min(delay, policy.max_backoff_sec);
}

double SleepWithStop(double sec, const StopToken* stop) {
  if (sec <= 0) return 0;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    if (stop != nullptr && stop->stop_requested()) break;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed >= sec) break;
    const double remaining = sec - elapsed;
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(remaining, 0.001)));
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace rdfviews::vsel::robust
