// Deterministic retry backoff, shared by the pipeline's per-partition
// containment loop (search_stage.cc) and the RetryingCacheBackend
// decorator.
//
// The backoff for attempt k of stream s (a partition index, or a backend
// operation counter) is
//
//   initial * multiplier^(k-2) * jitter(seed, s, k)
//
// with jitter a deterministic uniform draw in [0.5, 1.0] — so two runs with
// the same plan sleep the same sequence (chaos tests can assert exact
// convergence), while distinct partitions retrying the same shared resource
// still decorrelate. Sleeps honor a stop token at millisecond granularity:
// cancelling an update never waits out a backoff.
#ifndef RDFVIEWS_VSEL_ROBUST_RETRY_H_
#define RDFVIEWS_VSEL_ROBUST_RETRY_H_

#include <cstddef>
#include <cstdint>

#include "common/stop_token.h"
#include "vsel/options.h"

namespace rdfviews::vsel::robust {

/// Backoff in seconds to sleep *before* attempt `attempt` (2-based: the
/// first attempt never sleeps, so BackoffDelaySec(p, s, 1) == 0). Jittered
/// deterministically from (policy.jitter_seed, stream, attempt) and capped
/// at policy.max_backoff_sec; callers additionally clip to their remaining
/// time budget.
double BackoffDelaySec(const RetryPolicy& policy, uint64_t stream,
                       size_t attempt);

/// Sleeps up to `sec` seconds, polling `stop` (when non-null) every
/// millisecond; returns the seconds actually slept. Non-positive `sec`
/// returns immediately.
double SleepWithStop(double sec, const StopToken* stop);

}  // namespace rdfviews::vsel::robust

#endif  // RDFVIEWS_VSEL_ROBUST_RETRY_H_
