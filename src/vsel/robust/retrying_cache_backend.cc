#include "vsel/robust/retrying_cache_backend.h"

#include <utility>

#include "common/telemetry/trace.h"

namespace rdfviews::vsel::robust {

namespace {

RetryPolicy MakePolicy(const RetryingCacheBackend::Options& options) {
  RetryPolicy policy;
  policy.max_attempts = options.max_attempts == 0 ? 1 : options.max_attempts;
  policy.initial_backoff_sec = options.initial_backoff_sec;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_sec = options.initial_backoff_sec * 16;
  policy.jitter_seed = options.jitter_seed;
  return policy;
}

}  // namespace

RetryingCacheBackend::RetryingCacheBackend(
    serialize::PartitionCacheBackend* delegate, Options options)
    : delegate_(delegate),
      retry_(MakePolicy(options)),
      max_attempts_(retry_.max_attempts),
      breaker_(options.breaker) {
  RegisterMetrics();
}

RetryingCacheBackend::RetryingCacheBackend(
    std::shared_ptr<serialize::PartitionCacheBackend> owned, Options options)
    : owned_(std::move(owned)),
      delegate_(owned_.get()),
      retry_(MakePolicy(options)),
      max_attempts_(retry_.max_attempts),
      breaker_(options.breaker) {
  RegisterMetrics();
}

void RetryingCacheBackend::RegisterMetrics() {
  metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
      [this](std::vector<telemetry::MetricSample>* out) {
        const uint64_t skipped_gets =
            skipped_gets_.load(std::memory_order_relaxed);
        Counters own;
        // Skipped Gets are lookups absorbed at this layer (they never reach
        // the delegate's series); counting them as this label's misses keeps
        // gets == hits + misses + io_failures true per label and in total.
        own.misses = skipped_gets;
        own.retries = retries_.load(std::memory_order_relaxed);
        own.breaker_skips =
            skipped_gets + skipped_puts_.load(std::memory_order_relaxed);
        serialize::AppendCacheCounterSamples(own, "retrying", out);
      });
}

Status RetryingCacheBackend::Get(const std::string& key, Fetched* out) {
  if (!breaker_.Allow()) {
    skipped_gets_.fetch_add(1, std::memory_order_relaxed);
    telemetry::TraceEvent("cache.breaker.skip", {{"op", "get"}});
    // A skipped lookup is just a miss to the session; the message keeps the
    // skip distinguishable from genuine absence for anyone who looks.
    return Status::NotFound("cache lookup skipped: circuit breaker open");
  }
  const uint64_t stream = op_counter_.fetch_add(1, std::memory_order_relaxed);
  for (size_t attempt = 1;; ++attempt) {
    Status s = delegate_->Get(key, out);
    if (s.ok() || s.code() == StatusCode::kNotFound) {
      // A genuine miss is backend health too: the storage answered.
      breaker_.RecordSuccess();
      return s;
    }
    if (attempt >= max_attempts_) {
      breaker_.RecordFailure();
      return s;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    {
      telemetry::TraceSpan span("cache.retry.backoff");
      span.Annotate("op", "get");
      span.Annotate("attempt", static_cast<uint64_t>(attempt));
      SleepWithStop(BackoffDelaySec(retry_, stream, attempt + 1), nullptr);
    }
  }
}

Status RetryingCacheBackend::Put(const std::string& key,
                                 const pipeline::PartitionSearchResult& result) {
  if (!breaker_.Allow()) {
    skipped_puts_.fetch_add(1, std::memory_order_relaxed);
    telemetry::TraceEvent("cache.breaker.skip", {{"op", "put"}});
    // A skipped store is a future miss.
    return Status::Internal("cache store skipped: circuit breaker open");
  }
  const uint64_t stream = op_counter_.fetch_add(1, std::memory_order_relaxed);
  for (size_t attempt = 1;; ++attempt) {
    Status s = delegate_->Put(key, result);
    if (s.ok()) {
      breaker_.RecordSuccess();
      return s;
    }
    if (attempt >= max_attempts_) {
      breaker_.RecordFailure();
      return s;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    {
      telemetry::TraceSpan span("cache.retry.backoff");
      span.Annotate("op", "put");
      span.Annotate("attempt", static_cast<uint64_t>(attempt));
      SleepWithStop(BackoffDelaySec(retry_, stream, attempt + 1), nullptr);
    }
  }
}

void RetryingCacheBackend::Clear() { delegate_->Clear(); }

size_t RetryingCacheBackend::Size() const { return delegate_->Size(); }

void RetryingCacheBackend::Trim(size_t max_entries) {
  delegate_->Trim(max_entries);
}

Status RetryingCacheBackend::Invalidate(const std::string& key) {
  return delegate_->Invalidate(key);
}

void RetryingCacheBackend::NoteRehydrationRejected() {
  delegate_->NoteRehydrationRejected();
}

serialize::PartitionCacheBackend::Counters RetryingCacheBackend::counters()
    const {
  Counters c = delegate_->counters();
  c.retries += retries_.load(std::memory_order_relaxed);
  c.breaker_skips += skipped_gets_.load(std::memory_order_relaxed) +
                     skipped_puts_.load(std::memory_order_relaxed);
  // Skipped Gets never reached the delegate; fold them into misses so the
  // session's hit/miss accounting still sums to its lookup count.
  c.misses += skipped_gets_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace rdfviews::vsel::robust
