// A classic three-state circuit breaker (closed / open / half-open),
// guarding the session's partition-result cache backend against a wedged
// or persistently failing store.
//
//   closed    — operations flow; `failure_threshold` *consecutive* failures
//               trip the breaker open (any success resets the run).
//   open      — Allow() refuses for `open_sec`; every refusal is a counted
//               skip (the RetryingCacheBackend reports them as breaker
//               skips, and a skipped Get is just a cache miss).
//   half-open — after `open_sec`, exactly one probe operation is let
//               through: success re-closes the breaker, failure re-opens
//               it for another window.
//
// Thread-safe. The clock is injectable so unit tests can step time instead
// of sleeping through open windows.
#ifndef RDFVIEWS_VSEL_ROBUST_CIRCUIT_BREAKER_H_
#define RDFVIEWS_VSEL_ROBUST_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/telemetry/metrics.h"

namespace rdfviews::vsel::robust {

class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures that open the breaker.
    size_t failure_threshold = 5;
    /// Seconds an open breaker refuses before the half-open probe.
    double open_sec = 1.0;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  explicit CircuitBreaker(Options options, Clock clock = nullptr);

  /// True when the caller may attempt the operation (closed, or the
  /// half-open probe slot). False counts a skip. A true return from
  /// half-open claims the probe: concurrent callers get false until the
  /// probe reports back.
  bool Allow();

  /// Reports the outcome of an allowed operation.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  uint64_t skips() const;
  uint64_t opens() const;
  /// Successful half-open probes (open → closed recoveries).
  uint64_t closes() const;

 private:
  State StateLocked() const;

  Options options_;
  Clock clock_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  size_t consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};
  uint64_t skips_ = 0;
  uint64_t opens_ = 0;
  uint64_t closes_ = 0;
  // Last member: unregisters before the counters above die. The collector
  // takes mu_, which is only ever acquired *after* the registry lock
  // (snapshot path) or with no registry lock held — never the inverse.
  telemetry::CollectorHandle metrics_;
};

}  // namespace rdfviews::vsel::robust

#endif  // RDFVIEWS_VSEL_ROBUST_CIRCUIT_BREAKER_H_
