#include "vsel/robust/watchdog.h"

#include <utility>

namespace rdfviews::vsel::robust {

Watchdog::~Watchdog() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

uint64_t Watchdog::Arm(double deadline_sec, StopSource source) {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  const auto due = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           deadline_sec > 0 ? deadline_sec : 0));
  pending_.emplace(ticket, Entry{due, std::move(source)});
  if (!thread_started_) {
    thread_started_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  lock.unlock();
  wake_.notify_all();
  return ticket;
}

void Watchdog::Disarm(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = pending_.find(ticket);
  if (it == pending_.end()) return;  // already fired (or never existed)
  pending_.erase(it);
  fired_tickets_.emplace(ticket, false);
}

bool Watchdog::Fired(uint64_t ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fired_tickets_.find(ticket);
  return it != fired_tickets_.end() && it->second;
}

uint64_t Watchdog::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_count_;
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return;
    if (pending_.empty()) {
      wake_.wait(lock,
                 [this] { return stopping_ || !pending_.empty(); });
      continue;
    }
    // Earliest deadline across pending entries.
    auto earliest = pending_.begin();
    for (auto it = std::next(pending_.begin()); it != pending_.end(); ++it) {
      if (it->second.due < earliest->second.due) earliest = it;
    }
    const auto due = earliest->second.due;
    if (std::chrono::steady_clock::now() < due) {
      // A new Arm may register an earlier deadline; re-scan on wake.
      wake_.wait_until(lock, due);
      continue;
    }
    StopSource source = std::move(earliest->second.source);
    const uint64_t ticket = earliest->first;
    pending_.erase(earliest);
    fired_tickets_.emplace(ticket, true);
    ++fired_count_;
    // Firing is a relaxed atomic store; safe under the lock, but release it
    // anyway so a long chain of due entries never blocks Arm/Disarm.
    lock.unlock();
    source.RequestStop();
    lock.lock();
  }
}

}  // namespace rdfviews::vsel::robust
