// Re-implementations of the relational view-selection strategies of
// Theodoratos, Ligoudistianos & Sellis [21], used as competitors in Sec. 6.
//
// All three follow the divide-and-conquer scheme described in Sec. 6.1:
//  1. Break the initial state into 1-query states and exhaustively apply
//     all edge removals (SC/JC) and view breaks (VB) to each.
//  2. Re-combine per-query states into multi-query states query by query,
//     fusing views when possible.
//  3. Prune according to the strategy:
//     - Pruning: discards duplicate / clearly-dominated combined states;
//     - Greedy: keeps only the best combined state at each step;
//     - Heuristic: first reduces each per-query list to the min-cost state
//       plus states offering view-fusion opportunities, then combines.
// Because every combination of partial states is a valid state, the number
// of combined states explodes; the paper observes these strategies exhaust
// memory on 10-atom workloads before producing any full candidate set,
// which our state budget reproduces (Result == ResourceExhausted).
#ifndef RDFVIEWS_VSEL_COMPETITORS_H_
#define RDFVIEWS_VSEL_COMPETITORS_H_

#include "common/status.h"
#include "vsel/cost_model.h"
#include "vsel/options.h"
#include "vsel/state.h"

namespace rdfviews::vsel {

struct SearchResult;

Result<SearchResult> RunCompetitorSearch(StrategyKind strategy,
                                         const State& s0,
                                         const CostModel& cost_model,
                                         const HeuristicOptions& heuristics,
                                         const SearchLimits& limits);

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_COMPETITORS_H_
