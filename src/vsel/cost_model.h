// The state cost estimation of Section 3.3:
//   c(S) = cs * VSO(S) + cr * REC(S) + cm * VMC(S)
// with
//   VSO  — view space occupancy, from exact per-atom counts plus the
//          textbook uniformity/independence estimates [18];
//   REC  — rewriting evaluation cost, sum over rewritings of
//          c1 * io(r) + c2 * cpu(r), io(r) = sum of scanned view sizes;
//   VMC  — view maintenance cost, sum over views of f^len(v).
//
// Projection CPU is priced at zero so that the paper's monotonicity claims
// hold exactly: SC never decreases the state cost, VF never increases it.
//
// The model is memoized at two levels. Per *distinct view* (up to variable
// renaming), estimated cardinalities and byte sizes live in a ViewInterner,
// so each distinct view is costed exactly once per run. Per *state*, the
// cost is a cached sum of per-view and per-rewriting terms tagged with the
// shared object they were computed for (State::CostCache): a transition's
// successor state re-derives only the terms of the views and rewritings the
// transition touched, every other term is reused from the parent.
//
// Thread safety: one CostModel may be shared by all search workers. The
// interner is sharded, the counters are atomic, and the statistics cache is
// internally synchronized. The only non-shared piece is the *per-state*
// cache: Breakdown writes state.cost_cache(), so each State object must be
// costed by one thread at a time (the parallel engine guarantees this —
// states are owned by exactly one worker between frontier handoffs).
#ifndef RDFVIEWS_VSEL_COST_MODEL_H_
#define RDFVIEWS_VSEL_COST_MODEL_H_

#include <atomic>
#include <unordered_map>

#include "rdf/statistics.h"
#include "vsel/options.h"
#include "vsel/state.h"
#include "vsel/view_interner.h"

namespace rdfviews::vsel {

/// Breakdown of a state's cost.
struct CostBreakdown {
  double vso = 0;
  double rec = 0;
  double vmc = 0;
  double total = 0;
};

class CostModel {
 public:
  CostModel(const rdf::Statistics* stats, const CostWeights& weights)
      : stats_(stats), weights_(weights), cache_key_(NextCacheKey()) {
    metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
        [this](std::vector<telemetry::MetricSample>* out) {
          auto add = [out](const char* name, uint64_t v) {
            telemetry::MetricSample s;
            s.name = name;
            s.value = v;
            out->push_back(std::move(s));
          };
          const Counters& c = counters_;
          add("vsel_cost_state_costs_total",
              c.state_costs.load(std::memory_order_relaxed));
          add("vsel_cost_card_raw_total",
              c.card_raw.load(std::memory_order_relaxed));
          add("vsel_cost_rec_computed_total",
              c.rec_computed.load(std::memory_order_relaxed));
          add("vsel_cost_rec_reused_total",
              c.rec_reused.load(std::memory_order_relaxed));
          add("vsel_cost_view_terms_computed_total",
              c.view_terms_computed.load(std::memory_order_relaxed));
          add("vsel_cost_view_terms_reused_total",
              c.view_terms_reused.load(std::memory_order_relaxed));
        });
  }

  const CostWeights& weights() const { return weights_; }
  void set_weights(const CostWeights& w) {
    weights_ = w;
    // REC terms bake in c1/c2 and VMC terms bake in f; cached sums from the
    // previous weights must not be reused.
    cache_key_ = NextCacheKey();
  }

  /// Disables (or re-enables) all memoization; with memoization off, every
  /// call takes the pre-refactor full-recomputation path. The reference
  /// mode for equivalence tests and A/B benchmarks.
  void set_memoization(bool on) { memoize_ = on; }
  bool memoization() const { return memoize_; }

  /// |v|e: estimated cardinality of a view body (Sec. 3.3, View space
  /// occupancy): exact per-atom counts, then per-shared-variable reduction
  /// factors 1/max(d1, d2) over a spanning structure of each variable's
  /// occurrence clique. Uncached: the raw estimator.
  double ViewCardinality(const cq::ConjunctiveQuery& def) const;

  /// Estimated storage bytes: |v|e times the summed average width of the
  /// head columns (widths by triple-table column of first occurrence).
  /// Uncached: the raw estimator.
  double ViewBytes(const View& view) const;

  /// Memoized variants: served from the interner after the first sight of
  /// the view's canonical form.
  double CachedViewCardinality(const View& view) const;
  double CachedViewBytes(const View& view) const;

  double Vso(const State& state) const;
  double Rec(const State& state) const;
  double Vmc(const State& state) const;

  /// Memoized state cost: reuses the per-view / per-rewriting terms cached
  /// in `state` (carried over from the parent state by the copy-on-write
  /// transition machinery) and recomputes only invalidated terms.
  CostBreakdown Breakdown(const State& state) const;
  double StateCost(const State& state) const { return Breakdown(state).total; }

  /// Full recomputation without touching any cache; the pre-refactor
  /// reference implementation.
  CostBreakdown BreakdownUncached(const State& state) const;

  /// Sec. 6 "Weights of cost components": picks cm so that cm*VMC(S0) is
  /// within two orders of magnitude of the other components.
  static double CalibrateCm(const CostBreakdown& s0_breakdown,
                            const CostWeights& weights);

  /// The interner backing the per-distinct-view caches (cache-traffic
  /// counters, distinct-view counts). Const-qualified because costing is
  /// logically read-only: the interner is internally synchronized.
  ViewInterner& interner() const { return interner_; }

  /// The statistics provider the estimators read. Exposed so callers (the
  /// parallel engine, benches) can pre-warm its pattern-count cache before
  /// fanning out workers.
  const rdf::Statistics& stats() const { return *stats_; }

  /// Counters for benchmarks: how often state costs and rewriting estimates
  /// were computed vs. reused. Relaxed atomics so concurrent search workers
  /// can share one model; totals are exact, per-event ordering is not.
  struct Counters {
    std::atomic<uint64_t> state_costs{0};   // Breakdown() calls
    std::atomic<uint64_t> card_raw{0};      // raw ViewCardinality runs
    std::atomic<uint64_t> rec_computed{0};  // per-rewriting from scratch
    std::atomic<uint64_t> rec_reused{0};    // per-rewriting reused
    std::atomic<uint64_t> view_terms_computed{0};
    std::atomic<uint64_t> view_terms_reused{0};

    Counters() = default;
    Counters(const Counters& o) { *this = o; }
    Counters& operator=(const Counters& o) {
      auto copy = [](std::atomic<uint64_t>* dst,
                     const std::atomic<uint64_t>& src) {
        dst->store(src.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      };
      copy(&state_costs, o.state_costs);
      copy(&card_raw, o.card_raw);
      copy(&rec_computed, o.rec_computed);
      copy(&rec_reused, o.rec_reused);
      copy(&view_terms_computed, o.view_terms_computed);
      copy(&view_terms_reused, o.view_terms_reused);
      return *this;
    }
  };
  const Counters& counters() const { return counters_; }
  void ResetCounters() {
    counters_ = Counters{};
    interner_.ResetCounters();
  }

 private:
  struct NodeEstimate {
    double card = 0;
    double io = 0;   // sum of scanned view cardinalities in the subtree
    double cpu = 0;  // accumulated cpu cost of the subtree
    std::unordered_map<cq::VarId, double> distinct;
  };

  NodeEstimate EstimateExpr(const engine::Expr& expr, const State& state,
                            bool cached) const;

  /// REC contribution of one rewriting: c1 * io + c2 * cpu.
  double RecTerm(const engine::Expr& expr, const State& state,
                 bool cached) const;

  /// Process-unique id for a (model instance, weight configuration); the
  /// validity tag of State::CostCache entries. Never reused, so stale
  /// caches can not alias a new model at a recycled address.
  static uint64_t NextCacheKey();

  const rdf::Statistics* stats_;
  CostWeights weights_;
  uint64_t cache_key_ = 0;
  bool memoize_ = true;
  mutable ViewInterner interner_;
  mutable Counters counters_;
  // Last member: unregistered before counters_ dies.
  telemetry::CollectorHandle metrics_;
};

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_COST_MODEL_H_
