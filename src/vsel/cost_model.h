// The state cost estimation of Section 3.3:
//   c(S) = cs * VSO(S) + cr * REC(S) + cm * VMC(S)
// with
//   VSO  — view space occupancy, from exact per-atom counts plus the
//          textbook uniformity/independence estimates [18];
//   REC  — rewriting evaluation cost, sum over rewritings of
//          c1 * io(r) + c2 * cpu(r), io(r) = sum of scanned view sizes;
//   VMC  — view maintenance cost, sum over views of f^len(v).
//
// Projection CPU is priced at zero so that the paper's monotonicity claims
// hold exactly: SC never decreases the state cost, VF never increases it.
#ifndef RDFVIEWS_VSEL_COST_MODEL_H_
#define RDFVIEWS_VSEL_COST_MODEL_H_

#include <unordered_map>

#include "rdf/statistics.h"
#include "vsel/options.h"
#include "vsel/state.h"

namespace rdfviews::vsel {

/// Breakdown of a state's cost.
struct CostBreakdown {
  double vso = 0;
  double rec = 0;
  double vmc = 0;
  double total = 0;
};

class CostModel {
 public:
  CostModel(const rdf::Statistics* stats, const CostWeights& weights)
      : stats_(stats), weights_(weights) {}

  const CostWeights& weights() const { return weights_; }
  void set_weights(const CostWeights& w) { weights_ = w; }

  /// |v|e: estimated cardinality of a view body (Sec. 3.3, View space
  /// occupancy): exact per-atom counts, then per-shared-variable reduction
  /// factors 1/max(d1, d2) over a spanning structure of each variable's
  /// occurrence clique.
  double ViewCardinality(const cq::ConjunctiveQuery& def) const;

  /// Estimated storage bytes: |v|e times the summed average width of the
  /// head columns (widths by triple-table column of first occurrence).
  double ViewBytes(const View& view) const;

  double Vso(const State& state) const;
  double Rec(const State& state) const;
  double Vmc(const State& state) const;

  CostBreakdown Breakdown(const State& state) const;
  double StateCost(const State& state) const { return Breakdown(state).total; }

  /// Sec. 6 "Weights of cost components": picks cm so that cm*VMC(S0) is
  /// within two orders of magnitude of the other components.
  static double CalibrateCm(const CostBreakdown& s0_breakdown,
                            const CostWeights& weights);

 private:
  struct NodeEstimate {
    double card = 0;
    double io = 0;   // sum of scanned view cardinalities in the subtree
    double cpu = 0;  // accumulated cpu cost of the subtree
    std::unordered_map<cq::VarId, double> distinct;
  };

  NodeEstimate EstimateExpr(const engine::Expr& expr,
                            const State& state) const;

  const rdf::Statistics* stats_;
  CostWeights weights_;
};

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_COST_MODEL_H_
