#include "vsel/parallel/parallel_search.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/telemetry/metrics.h"
#include "common/thread_pool.h"
#include "vsel/parallel/parallel_context.h"
#include "vsel/parallel/sharded_frontier.h"
#include "vsel/search.h"
#include "vsel/search_internal.h"
#include "vsel/transitions.h"

namespace rdfviews::vsel::parallel {

namespace {

/// Entries processed per frontier lock acquisition.
constexpr size_t kExpandBatch = 8;

/// Frontiers are per-run stack objects, so their steal counts are folded
/// into the process-wide registry when the run retires its frontier.
void PublishSteals(uint64_t steals) {
  if (steals == 0) return;
  static telemetry::Counter* const counter =
      telemetry::MetricsRegistry::Default()->GetCounter(
          "vsel_frontier_steals_total");
  counter->Add(steals);
}

size_t FrontierShards(size_t workers) {
  return std::max<size_t>(16, workers * 4);
}

/// Frontier home of a state: fingerprint-shard addressing, so a state's
/// queue placement is a deterministic function of its identity.
size_t ShardHint(const StateFingerprint& fp) {
  return static_cast<size_t>(fp.lo);
}

// ---- EXNAIVE / EXSTR: sharded round-robin candidate set ------------------

/// One candidate-set entry, as in the serial engine: a state plus the
/// cursor into its (lazily loaded) applicable transitions.
struct ExEntry {
  State state;
  int phase = 0;
  std::vector<Transition> transitions;
  bool loaded = false;
  size_t next = 0;
};

/// One round-robin visit: apply transitions until one produces a new state
/// (pushing it onto the frontier), then requeue the entry if transitions
/// remain — the serial discipline, executed concurrently per entry.
void ProcessExEntry(ParallelSearchContext* ctx,
                    ShardedFrontier<ExEntry>* frontier, bool stratified,
                    ExEntry entry, SearchStats* local) {
  if (!entry.loaded) {
    entry.loaded = true;
    int start_kind = stratified ? entry.phase : 0;
    for (int k = start_kind; k < internal::kNumPhases; ++k) {
      std::vector<Transition> ts = EnumerateTransitions(
          entry.state, static_cast<TransitionKind>(k), ctx->topts);
      entry.transitions.insert(entry.transitions.end(), ts.begin(),
                               ts.end());
    }
  }
  while (entry.next < entry.transitions.size()) {
    if (ctx->OutOfBudget()) return;  // anytime truncation: drop the entry
    const Transition& t = entry.transitions[entry.next++];
    int phase = stratified ? static_cast<int>(t.kind) : 0;
    auto admitted =
        ctx->Admit(ApplyTransition(entry.state, t), phase, local);
    if (admitted.has_value()) {
      frontier->Push(
          ShardHint(admitted->state.fingerprint()),
          ExEntry{std::move(admitted->state), phase, {}, false, 0});
      break;
    }
  }
  if (entry.next < entry.transitions.size()) {
    frontier->Push(ShardHint(entry.state.fingerprint()), std::move(entry));
  } else {
    ++local->explored;
  }
}

SearchResult RunParallelExhaustive(ParallelSearchContext* ctx,
                                   const State& s0, bool stratified,
                                   size_t workers) {
  ctx->Init(s0);
  ShardedFrontier<ExEntry> frontier(FrontierShards(workers));
  frontier.Push(ShardHint(ctx->start.fingerprint()),
                ExEntry{ctx->start, 0, {}, false, 0});
  {
    ThreadPool pool(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.Submit([ctx, &frontier, stratified, w] {
        SearchStats local;
        std::vector<ExEntry> batch;
        for (;;) {
          batch.clear();
          size_t n = frontier.PopBatch(w, kExpandBatch, &batch,
                                       [ctx] { return ctx->OutOfBudget(); });
          if (n == 0) break;
          for (ExEntry& e : batch) {
            ProcessExEntry(ctx, &frontier, stratified, std::move(e), &local);
          }
          frontier.TaskDone(n);
        }
        ctx->MergeWorkerStats(local);
      });
    }
    pool.WaitIdle();
  }
  PublishSteals(frontier.steals());
  return ctx->Finish(!ctx->stopped());
}

// ---- DFS: root-parallel stratified depth-first ---------------------------

/// The serial DfsVisit against the shared context: closure under the
/// current kind depth-first, then advance the state to the next kind.
void DfsVisitDeep(ParallelSearchContext* ctx, const State& s, int kind,
                  SearchStats* local) {
  if (kind >= internal::kNumPhases) {
    ++local->explored;
    return;
  }
  for (const Transition& t : EnumerateTransitions(
           s, static_cast<TransitionKind>(kind), ctx->topts)) {
    if (ctx->OutOfBudget()) return;
    auto admitted = ctx->Admit(ApplyTransition(s, t), kind, local);
    if (admitted.has_value()) DfsVisitDeep(ctx, admitted->state, kind, local);
  }
  if (ctx->OutOfBudget()) return;
  DfsVisitDeep(ctx, s, kind + 1, local);
}

/// A root task: one transition applicable to the start state; the admitted
/// child's whole subtree is explored by the claiming worker.
struct DfsTask {
  Transition t;
  int kind = 0;
};

SearchResult RunParallelDfs(ParallelSearchContext* ctx, const State& s0,
                            size_t workers) {
  ctx->Init(s0);
  ShardedFrontier<DfsTask> frontier(FrontierShards(workers));
  size_t seeds = 0;
  for (int k = 0; k < internal::kNumPhases; ++k) {
    for (const Transition& t : EnumerateTransitions(
             ctx->start, static_cast<TransitionKind>(k), ctx->topts)) {
      frontier.Push(seeds++, DfsTask{t, k});  // round-robin over shards
    }
  }
  {
    ThreadPool pool(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.Submit([ctx, &frontier, w] {
        SearchStats local;
        std::vector<DfsTask> batch;
        for (;;) {
          batch.clear();
          // Batch of 1: every task is a whole subtree.
          size_t n = frontier.PopBatch(w, 1, &batch,
                                       [ctx] { return ctx->OutOfBudget(); });
          if (n == 0) break;
          for (const DfsTask& task : batch) {
            if (ctx->OutOfBudget()) continue;
            auto admitted = ctx->Admit(ApplyTransition(ctx->start, task.t),
                                       task.kind, &local);
            if (admitted.has_value()) {
              DfsVisitDeep(ctx, admitted->state, task.kind, &local);
            }
          }
          frontier.TaskDone(n);
        }
        ctx->MergeWorkerStats(local);
      });
    }
    pool.WaitIdle();
  }
  PublishSteals(frontier.steals());
  // The root itself tops out the kind ladder (the serial engine counts it
  // explored once its last stratum is done).
  SearchStats root;
  root.explored = 1;
  ctx->MergeWorkerStats(root);
  return ctx->Finish(!ctx->stopped());
}

// ---- GSTR: per-stratum frontiers with pool-wide barriers -----------------

SearchResult RunParallelGstr(ParallelSearchContext* ctx, const State& s0,
                             size_t workers) {
  ctx->Init(s0);
  ThreadPool pool(workers);
  State current = ctx->start;
  double current_cost = ctx->cost->StateCost(current);
  for (int kind = 0; kind < internal::kNumPhases && !ctx->stopped();
       ++kind) {
    std::mutex best_mu;
    State phase_best = current;
    double phase_best_cost = current_cost;
    ShardedFrontier<State> frontier(FrontierShards(workers));
    frontier.Push(ShardHint(current.fingerprint()), current);
    for (size_t w = 0; w < workers; ++w) {
      pool.Submit([&, w, kind] {
        SearchStats local;
        std::vector<State> batch;
        for (;;) {
          batch.clear();
          size_t n = frontier.PopBatch(w, kExpandBatch, &batch,
                                       [&] { return ctx->OutOfBudget(); });
          if (n == 0) break;
          for (State& s : batch) {
            for (const Transition& t : EnumerateTransitions(
                     s, static_cast<TransitionKind>(kind), ctx->topts)) {
              if (ctx->OutOfBudget()) break;
              auto admitted = ctx->Admit(ApplyTransition(s, t), kind, &local);
              if (!admitted.has_value()) continue;
              {
                std::lock_guard<std::mutex> lock(best_mu);
                if (internal::BetterState(
                        admitted->cost, admitted->state.fingerprint(),
                        phase_best_cost, phase_best.fingerprint())) {
                  phase_best = admitted->state;
                  phase_best_cost = admitted->cost;
                }
              }
              frontier.Push(ShardHint(admitted->state.fingerprint()),
                            std::move(admitted->state));
            }
            ++local.explored;
          }
          frontier.TaskDone(n);
        }
        ctx->MergeWorkerStats(local);
      });
    }
    pool.WaitIdle();  // stratum barrier: the closure is complete (or cut)
    PublishSteals(frontier.steals());
    current = std::move(phase_best);
    current_cost = phase_best_cost;
  }
  return ctx->Finish(!ctx->stopped());
}

}  // namespace

Result<SearchResult> RunParallelSearch(StrategyKind strategy, const State& s0,
                                       const CostModel& cost_model,
                                       const HeuristicOptions& heuristics,
                                       const SearchLimits& limits) {
  const size_t workers = std::max<size_t>(1, limits.num_threads);
  ParallelSearchContext ctx(&cost_model, heuristics, limits);
  switch (strategy) {
    case StrategyKind::kExNaive:
      return RunParallelExhaustive(&ctx, s0, /*stratified=*/false, workers);
    case StrategyKind::kExStr:
      return RunParallelExhaustive(&ctx, s0, /*stratified=*/true, workers);
    case StrategyKind::kDfs:
      return RunParallelDfs(&ctx, s0, workers);
    case StrategyKind::kGstr:
      return RunParallelGstr(&ctx, s0, workers);
    default:
      return Status::InvalidArgument(
          std::string(StrategyName(strategy)) +
          " has no parallel engine (runs serial)");
  }
}

}  // namespace rdfviews::vsel::parallel
