#include "vsel/parallel/parallel_search.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "common/arena.h"
#include "common/telemetry/metrics.h"
#include "common/thread_pool.h"
#include "vsel/parallel/parallel_context.h"
#include "vsel/parallel/sharded_frontier.h"
#include "vsel/search.h"
#include "vsel/search_internal.h"
#include "vsel/transitions.h"

namespace rdfviews::vsel::parallel {

namespace {

/// Entries processed per frontier lock acquisition.
constexpr size_t kExpandBatch = 8;

/// Live metric sinks wired into every per-run frontier: steal counts and
/// the waiting-worker gauge are updated as the events happen, so a mid-run
/// TelemetrySnapshot() observes them (frontiers used to fold steals into
/// the registry only at run retirement).
FrontierMetrics LiveFrontierMetrics() {
  static telemetry::Counter* const steals =
      telemetry::MetricsRegistry::Default()->GetCounter(
          "vsel_frontier_steals_total");
  static telemetry::Gauge* const waiting =
      telemetry::MetricsRegistry::Default()->GetGauge(
          "vsel_frontier_waiting_workers");
  return FrontierMetrics{steals, waiting};
}

/// Subtrees donated by serially-recursing DFS workers to starving peers.
telemetry::Counter* DonationCounter() {
  static telemetry::Counter* const counter =
      telemetry::MetricsRegistry::Default()->GetCounter(
          "vsel_dfs_donations_total");
  return counter;
}

size_t FrontierShards(size_t workers) {
  return std::max<size_t>(16, workers * 4);
}

/// Frontier home of a state: fingerprint-shard addressing, so a state's
/// queue placement is a deterministic function of its identity.
size_t ShardHint(const StateFingerprint& fp) {
  return static_cast<size_t>(fp.lo);
}

// ---- EXNAIVE / EXSTR: sharded round-robin candidate set ------------------

/// One candidate-set entry, as in the serial engine: a state plus the
/// cursor into its (lazily loaded) applicable transitions.
struct ExEntry {
  State state;
  int phase = 0;
  TransitionBuffer transitions;
  bool loaded = false;
  size_t next = 0;
};

/// One round-robin visit: apply transitions until one produces a new state
/// (pushing it onto the frontier), then requeue the entry if transitions
/// remain — the serial discipline, executed concurrently per entry.
/// `arena` is the calling worker's arena; the entry itself may have been
/// created on another worker's arena (published via the frontier mutex),
/// but all states produced here land on the caller's.
void ProcessExEntry(ParallelSearchContext* ctx,
                    ShardedFrontier<ExEntry>* frontier, bool stratified,
                    ExEntry entry, SearchStats* local, Arena* arena) {
  if (!entry.loaded) {
    entry.loaded = true;
    // One batched sweep fills the entry's buffer in kind-major order,
    // identical to the per-kind concatenation it replaces.
    TransitionKind start_kind =
        static_cast<TransitionKind>(stratified ? entry.phase : 0);
    EnumerateTransitionsBatch(entry.state, start_kind, ctx->topts,
                              &entry.transitions);
  }
  while (entry.next < entry.transitions.size()) {
    if (ctx->OutOfBudget()) return;  // anytime truncation: drop the entry
    const Transition& t = entry.transitions[entry.next++];
    int phase = stratified ? static_cast<int>(t.kind) : 0;
    auto admitted =
        ctx->Admit(ApplyTransition(entry.state, t, arena), phase, local,
                   arena);
    if (admitted.has_value()) {
      frontier->Push(
          ShardHint(admitted->state.fingerprint()),
          ExEntry{std::move(admitted->state), phase, {}, false, 0});
      break;
    }
  }
  if (entry.next < entry.transitions.size()) {
    frontier->Push(ShardHint(entry.state.fingerprint()), std::move(entry));
  } else {
    ++local->explored;
  }
}

SearchResult RunParallelExhaustive(ParallelSearchContext* ctx,
                                   const State& s0, bool stratified,
                                   size_t workers) {
  ctx->Init(s0);
  ShardedFrontier<ExEntry> frontier(FrontierShards(workers),
                                    LiveFrontierMetrics());
  frontier.Push(ShardHint(ctx->start.fingerprint()),
                ExEntry{ctx->start, 0, {}, false, 0});
  {
    ThreadPool pool(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.Submit([ctx, &frontier, stratified, w] {
        SearchStats local;
        Arena arena;  // worker-private; blocks outlive it via refcounts
        std::vector<ExEntry> batch;
        for (;;) {
          batch.clear();
          size_t n = frontier.PopBatch(w, kExpandBatch, &batch,
                                       [ctx] { return ctx->OutOfBudget(); });
          if (n == 0) break;
          for (ExEntry& e : batch) {
            ProcessExEntry(ctx, &frontier, stratified, std::move(e), &local,
                           &arena);
          }
          frontier.TaskDone(n);
        }
        ctx->MergeWorkerStats(local);
      });
    }
    pool.WaitIdle();
  }
  return ctx->Finish(!ctx->stopped());
}

// ---- DFS: depth-first with starvation-aware subtree donation -------------

/// A DFS frontier task: a run of sibling transitions of `base` at stratum
/// `kind`, plus (when `advance_after`) the obligation to advance `base` to
/// the next stratum once the siblings are done. A null `base` means the
/// run's start state. Root seeds are single-transition tasks; donation
/// (below) creates multi-sibling tasks mid-run.
struct DfsTask {
  std::shared_ptr<const State> base;  // null = ctx->start
  std::vector<Transition> ts;
  int kind = 0;
  bool advance_after = false;
  size_t vb_depth = 0;
};

/// The serial DfsVisit against the shared context: closure under the
/// current kind depth-first, then advance the state to the next kind —
/// with one addition: when the frontier reports starving workers and this
/// node still has unexplored siblings, those siblings (and this node's
/// stratum advance) are packaged into a DfsTask and donated, and the donor
/// recurses into just the current child. The explored *set* is unchanged —
/// the donated task performs exactly the work the donor skips — so the
/// deterministic (cost, fingerprint) best of a completed run is preserved.
/// `vb_depth`/`depth` mirror the serial engine: VB-stratum recursion depth
/// for the max_vb_depth cap, and the per-depth transition-buffer index.
void DfsVisitDeep(ParallelSearchContext* ctx,
                  ShardedFrontier<DfsTask>* frontier,
                  TransitionBufferPool* pool, Arena* arena, const State& s,
                  int kind, size_t vb_depth, size_t depth,
                  SearchStats* local) {
  if (kind >= internal::kNumPhases) {
    ++local->explored;
    return;
  }
  if (kind == static_cast<int>(TransitionKind::kVB) &&
      ctx->limits.max_vb_depth > 0 &&
      vb_depth >= ctx->limits.max_vb_depth) {
    DfsVisitDeep(ctx, frontier, pool, arena, s, kind + 1, vb_depth, depth,
                 local);
    return;
  }
  TransitionBuffer& buf = pool->At(depth);
  buf.Clear();
  EnumerateTransitionsInto(s, static_cast<TransitionKind>(kind), ctx->topts,
                           &buf);
  for (size_t i = 0; i < buf.size(); ++i) {
    if (ctx->OutOfBudget()) return;
    if (i + 1 < buf.size() && frontier->Starving()) {
      // Donate the unexplored tail siblings and this node's advance to the
      // next stratum; keep only buf[i]'s subtree for ourselves. The base
      // state is copied to worker-independent heap storage (the donee
      // outlives this worker's arena frames).
      DfsTask rest;
      rest.base = std::make_shared<const State>(s);
      rest.ts.assign(buf.begin() + i + 1, buf.end());
      rest.kind = kind;
      rest.advance_after = true;
      rest.vb_depth = vb_depth;
      frontier->Push(ShardHint(s.fingerprint()), std::move(rest));
      DonationCounter()->Add(1);
      const size_t child_vb =
          vb_depth + (kind == static_cast<int>(TransitionKind::kVB));
      auto admitted = ctx->Admit(
          ApplyTransition(s, buf[i], arena),
          internal::DfsDedupRank(ctx->limits, kind, child_vb), local, arena);
      if (admitted.has_value()) {
        DfsVisitDeep(ctx, frontier, pool, arena, admitted->state, kind,
                     child_vb, depth + 1, local);
      }
      return;  // the donated task owns the rest of this node's work
    }
    const size_t child_vb =
        vb_depth + (kind == static_cast<int>(TransitionKind::kVB));
    auto admitted = ctx->Admit(
        ApplyTransition(s, buf[i], arena),
        internal::DfsDedupRank(ctx->limits, kind, child_vb), local, arena);
    if (admitted.has_value()) {
      DfsVisitDeep(ctx, frontier, pool, arena, admitted->state, kind,
                   child_vb, depth + 1, local);
    }
  }
  if (ctx->OutOfBudget()) return;
  DfsVisitDeep(ctx, frontier, pool, arena, s, kind + 1, vb_depth, depth,
               local);
}

/// Processes one claimed task: applies each sibling transition and explores
/// the admitted child's subtree. Multi-sibling tasks re-split under
/// starvation exactly like in-recursion nodes do.
void ProcessDfsTask(ParallelSearchContext* ctx,
                    ShardedFrontier<DfsTask>* frontier,
                    TransitionBufferPool* pool, Arena* arena, DfsTask task,
                    SearchStats* local) {
  const State& base = task.base ? *task.base : ctx->start;
  for (size_t i = 0; i < task.ts.size(); ++i) {
    if (ctx->OutOfBudget()) return;
    if (i + 1 < task.ts.size() && frontier->Starving()) {
      DfsTask rest;
      rest.base = task.base;  // shared; null still means ctx->start
      rest.ts.assign(task.ts.begin() + i + 1, task.ts.end());
      rest.kind = task.kind;
      rest.advance_after = task.advance_after;
      rest.vb_depth = task.vb_depth;
      frontier->Push(ShardHint(base.fingerprint()), std::move(rest));
      DonationCounter()->Add(1);
      const size_t child_vb =
          task.vb_depth +
          (task.kind == static_cast<int>(TransitionKind::kVB));
      auto admitted = ctx->Admit(
          ApplyTransition(base, task.ts[i], arena),
          internal::DfsDedupRank(ctx->limits, task.kind, child_vb), local,
          arena);
      if (admitted.has_value()) {
        DfsVisitDeep(ctx, frontier, pool, arena, admitted->state, task.kind,
                     child_vb, 0, local);
      }
      return;  // the re-split task owns the remaining siblings/advance
    }
    const size_t child_vb =
        task.vb_depth + (task.kind == static_cast<int>(TransitionKind::kVB));
    auto admitted = ctx->Admit(
        ApplyTransition(base, task.ts[i], arena),
        internal::DfsDedupRank(ctx->limits, task.kind, child_vb), local,
        arena);
    if (admitted.has_value()) {
      DfsVisitDeep(ctx, frontier, pool, arena, admitted->state, task.kind,
                   child_vb, 0, local);
    }
  }
  if (task.advance_after) {
    if (ctx->OutOfBudget()) return;
    DfsVisitDeep(ctx, frontier, pool, arena, base, task.kind + 1,
                 task.vb_depth, 0, local);
  }
}

SearchResult RunParallelDfs(ParallelSearchContext* ctx, const State& s0,
                            size_t workers) {
  ctx->Init(s0);
  ShardedFrontier<DfsTask> frontier(FrontierShards(workers),
                                    LiveFrontierMetrics());
  size_t seeds = 0;
  TransitionBuffer seed_buf;
  for (int k = 0; k < internal::kNumPhases; ++k) {
    seed_buf.Clear();
    EnumerateTransitionsInto(ctx->start, static_cast<TransitionKind>(k),
                             ctx->topts, &seed_buf);
    for (const Transition& t : seed_buf) {
      // Round-robin over shards; single-transition seeds, no advance (the
      // root's ladder is walked by the seed loop itself).
      frontier.Push(seeds++, DfsTask{nullptr, {t}, k, false, 0});
    }
  }
  {
    ThreadPool pool(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.Submit([ctx, &frontier, w] {
        SearchStats local;
        Arena arena;  // worker-private; blocks outlive it via refcounts
        TransitionBufferPool bufpool;
        std::vector<DfsTask> batch;
        for (;;) {
          batch.clear();
          // Batch of 1: every task is a whole subtree.
          size_t n = frontier.PopBatch(w, 1, &batch,
                                       [ctx] { return ctx->OutOfBudget(); });
          if (n == 0) break;
          for (DfsTask& task : batch) {
            if (ctx->OutOfBudget()) continue;
            ProcessDfsTask(ctx, &frontier, &bufpool, &arena,
                           std::move(task), &local);
          }
          frontier.TaskDone(n);
        }
        ctx->MergeWorkerStats(local);
      });
    }
    pool.WaitIdle();
  }
  // The root itself tops out the kind ladder (the serial engine counts it
  // explored once its last stratum is done).
  SearchStats root;
  root.explored = 1;
  ctx->MergeWorkerStats(root);
  return ctx->Finish(!ctx->stopped());
}

// ---- GSTR: per-stratum frontiers with pool-wide barriers -----------------

SearchResult RunParallelGstr(ParallelSearchContext* ctx, const State& s0,
                             size_t workers) {
  ctx->Init(s0);
  ThreadPool pool(workers);
  State current = ctx->start;
  double current_cost = ctx->cost->StateCost(current);
  for (int kind = 0; kind < internal::kNumPhases && !ctx->stopped();
       ++kind) {
    std::mutex best_mu;
    State phase_best = current;
    double phase_best_cost = current_cost;
    ShardedFrontier<State> frontier(FrontierShards(workers),
                                    LiveFrontierMetrics());
    frontier.Push(ShardHint(current.fingerprint()), current);
    for (size_t w = 0; w < workers; ++w) {
      pool.Submit([&, w, kind] {
        SearchStats local;
        Arena arena;  // worker-private; blocks outlive it via refcounts
        TransitionBuffer buf;
        std::vector<State> batch;
        for (;;) {
          batch.clear();
          size_t n = frontier.PopBatch(w, kExpandBatch, &batch,
                                       [&] { return ctx->OutOfBudget(); });
          if (n == 0) break;
          for (State& s : batch) {
            buf.Clear();
            EnumerateTransitionsInto(s, static_cast<TransitionKind>(kind),
                                     ctx->topts, &buf);
            for (const Transition& t : buf) {
              if (ctx->OutOfBudget()) break;
              auto admitted =
                  ctx->Admit(ApplyTransition(s, t, &arena), kind, &local,
                             &arena);
              if (!admitted.has_value()) continue;
              {
                std::lock_guard<std::mutex> lock(best_mu);
                if (internal::BetterState(
                        admitted->cost, admitted->state.fingerprint(),
                        phase_best_cost, phase_best.fingerprint())) {
                  phase_best = admitted->state;
                  phase_best_cost = admitted->cost;
                }
              }
              frontier.Push(ShardHint(admitted->state.fingerprint()),
                            std::move(admitted->state));
            }
            ++local.explored;
          }
          frontier.TaskDone(n);
        }
        ctx->MergeWorkerStats(local);
      });
    }
    pool.WaitIdle();  // stratum barrier: the closure is complete (or cut)
    current = std::move(phase_best);
    current_cost = phase_best_cost;
  }
  return ctx->Finish(!ctx->stopped());
}

}  // namespace

Result<SearchResult> RunParallelSearch(StrategyKind strategy, const State& s0,
                                       const CostModel& cost_model,
                                       const HeuristicOptions& heuristics,
                                       const SearchLimits& limits) {
  const size_t workers = std::max<size_t>(1, limits.num_threads);
  ParallelSearchContext ctx(&cost_model, heuristics, limits);
  switch (strategy) {
    case StrategyKind::kExNaive:
      return RunParallelExhaustive(&ctx, s0, /*stratified=*/false, workers);
    case StrategyKind::kExStr:
      return RunParallelExhaustive(&ctx, s0, /*stratified=*/true, workers);
    case StrategyKind::kDfs:
      return RunParallelDfs(&ctx, s0, workers);
    case StrategyKind::kGstr:
      return RunParallelGstr(&ctx, s0, workers);
    default:
      return Status::InvalidArgument(
          std::string(StrategyName(strategy)) +
          " has no parallel engine (runs serial)");
  }
}

}  // namespace rdfviews::vsel::parallel
