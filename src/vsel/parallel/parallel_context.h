// Shared bookkeeping of a parallel search run: the concurrent seen-set, the
// deterministically tie-broken global best, global budget/stop latches, and
// per-worker statistics that are merged on exit. The semantics mirror the
// serial internal::SearchContext member for member; anything observable
// about a *completed* run (the admitted state set, the best state) is
// identical by construction, only scheduling-dependent counters (duplicate
// sightings, traces) may differ.
#ifndef RDFVIEWS_VSEL_PARALLEL_PARALLEL_CONTEXT_H_
#define RDFVIEWS_VSEL_PARALLEL_PARALLEL_CONTEXT_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/timer.h"
#include "vsel/cost_model.h"
#include "vsel/options.h"
#include "vsel/parallel/concurrent_seen.h"
#include "vsel/state.h"
#include "vsel/transitions.h"

namespace rdfviews::vsel {

struct SearchResult;

namespace parallel {

/// The running best as an atomically published (cost, fingerprint) record
/// with the engine-wide deterministic tie-breaking (internal::BetterState):
/// lower cost wins, equal costs break on the fingerprint order. A relaxed
/// atomic of the published cost lets workers reject non-improving states
/// without touching the lock; the full record (state copy, fingerprint,
/// improvement trace) lives behind a mutex that is only taken for
/// candidates that might win.
class BestTracker {
 public:
  /// Seeds the tracker with the initial state (records trace point at t=0).
  void Reset(const State& s, double cost);

  /// Offers a candidate; records it iff it beats the current best under the
  /// deterministic order. Returns whether it was recorded.
  bool Offer(const State& s, double cost, double elapsed_sec);

  /// Lock-free upper bound of the best cost (exact between Offers).
  double PublishedCost() const {
    return published_cost_.load(std::memory_order_relaxed);
  }

  State best_state() const;
  double best_cost() const;
  std::vector<std::pair<double, double>> trace() const;

 private:
  std::atomic<double> published_cost_{0};
  mutable std::mutex mu_;
  State state_;
  double cost_ = 0;
  std::vector<std::pair<double, double>> trace_;
};

/// Shared context of one parallel run. Construction + Init happen on the
/// caller's thread; afterwards every member is either immutable (options,
/// start state, armed stop conditions), internally synchronized (seen-set,
/// best tracker, latches), or worker-local (the SearchStats each worker
/// accumulates and merges at exit).
class ParallelSearchContext {
 public:
  ParallelSearchContext(const CostModel* cost_model,
                        const HeuristicOptions& heuristics,
                        const SearchLimits& limits);

  /// Mirrors internal::SearchContext::Init: arms stop conditions, seeds the
  /// seen-set and the best with S0 (and its AVF closure when avf is on),
  /// and pre-warms the statistics cache with the relaxations of every atom
  /// of S0 — all patterns the search can ever count — so workers read a
  /// warm, effectively immutable cache.
  void Init(const State& s0);

  /// True once the global time or state budget is exceeded (latched; any
  /// worker observing exhaustion stops all of them).
  bool OutOfBudget();
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  struct Admitted {
    State state;
    double cost;
  };

  /// The serial Admit against the shared structures: AVF closure, stop
  /// conditions, concurrent duplicate detection with stratum re-opening,
  /// and best tracking. Counter traffic goes to the worker-local `stats`;
  /// `arena` (optional) backs the flat storage of any closure states — pass
  /// the calling worker's arena, never one shared across workers.
  std::optional<Admitted> Admit(State s, int phase, SearchStats* stats,
                                Arena* arena = nullptr);

  /// Merges a worker's local counters into the run totals (call once per
  /// worker, as it exits).
  void MergeWorkerStats(const SearchStats& local);

  /// Aggregates everything into the final result.
  SearchResult Finish(bool completed);

  const CostModel* cost;
  HeuristicOptions heur;
  SearchLimits limits;
  TransitionOptions topts;
  Deadline deadline;
  ConcurrentSeenSet seen;
  BestTracker best;
  /// The state the strategies explore from: S0 or its AVF closure.
  State start;

 private:
  bool stop_var_active_ = true;
  bool stop_tt_active_ = true;
  std::atomic<bool> stop_{false};
  std::atomic<bool> time_exhausted_{false};
  std::atomic<bool> memory_exhausted_{false};
  std::atomic<bool> cancelled_{false};
  std::mutex stats_mu_;
  SearchStats totals_;  // Init traffic + merged worker counters
};

}  // namespace parallel
}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_PARALLEL_PARALLEL_CONTEXT_H_
