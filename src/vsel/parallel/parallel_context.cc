#include "vsel/parallel/parallel_context.h"

#include "vsel/search.h"
#include "vsel/search_internal.h"

namespace rdfviews::vsel::parallel {

void BestTracker::Reset(const State& s, double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = s;
  cost_ = cost;
  trace_.clear();
  trace_.emplace_back(0.0, cost);
  published_cost_.store(cost, std::memory_order_relaxed);
}

bool BestTracker::Offer(const State& s, double cost, double elapsed_sec) {
  // A candidate strictly above the published cost can never win: the
  // recorded cost only decreases, and ties are resolved under the lock.
  if (cost > published_cost_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!internal::BetterState(cost, s.fingerprint(), cost_,
                             state_.fingerprint())) {
    return false;
  }
  state_ = s;
  cost_ = cost;
  published_cost_.store(cost, std::memory_order_relaxed);
  trace_.emplace_back(elapsed_sec, cost);
  return true;
}

State BestTracker::best_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

double BestTracker::best_cost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cost_;
}

std::vector<std::pair<double, double>> BestTracker::trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

ParallelSearchContext::ParallelSearchContext(const CostModel* cost_model,
                                             const HeuristicOptions& heuristics,
                                             const SearchLimits& limits)
    : cost(cost_model),
      heur(heuristics),
      limits(limits),
      topts(TransitionOptions::FromHeuristics(heuristics)),
      deadline(limits.time_budget_sec) {
  topts.graph_cache = &cost_model->interner();
}

void ParallelSearchContext::Init(const State& s0) {
  internal::ArmStopConditions(s0, &stop_var_active_, &stop_tt_active_);

  // Every pattern a search state can count is a relaxation of an S0 atom
  // (SC replaces constants by variables; VB/JC/VF only redistribute atoms).
  // Pre-counting them here makes the statistics cache read-only for the
  // workers. The warm-up respects the time budget atom by atom — a cut
  // leaves the tail to the (thread-safe) lazy fill, it does not lose
  // correctness.
  for (const View& v : s0.views()) {
    for (const cq::Atom& a : v.def.atoms()) {
      if (deadline.Expired()) break;
      cost->stats().CollectWithRelaxations(a.ToPattern());
    }
  }

  double c0 = cost->StateCost(s0);
  best.Reset(s0, c0);
  totals_.initial_cost = c0;
  seen.Insert(s0.fingerprint(), 0);
  start = s0;
  if (heur.avf) {
    size_t steps = 0;
    State closed = AvfClosure(s0, topts, &steps);
    if (steps > 0) {
      totals_.created += steps;
      totals_.discarded += steps - 1;  // intermediates; the fixpoint is kept
      seen.Insert(closed.fingerprint(), 0);
      double c = cost->StateCost(closed);
      best.Offer(closed, c, deadline.ElapsedSeconds());
      start = std::move(closed);
    }
  }
}

bool ParallelSearchContext::OutOfBudget() {
  if (stop_.load(std::memory_order_relaxed)) return true;
  if (limits.stop.stop_requested()) {
    cancelled_.store(true, std::memory_order_relaxed);
    stop_.store(true, std::memory_order_relaxed);
    return true;
  }
  if (deadline.Expired()) {
    time_exhausted_.store(true, std::memory_order_relaxed);
    stop_.store(true, std::memory_order_relaxed);
    return true;
  }
  if (limits.max_states > 0 && seen.size() >= limits.max_states) {
    memory_exhausted_.store(true, std::memory_order_relaxed);
    stop_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::optional<ParallelSearchContext::Admitted> ParallelSearchContext::Admit(
    State s, int phase, SearchStats* stats, Arena* arena) {
  ++stats->created;
  ++stats->transitions_applied;
  if (heur.avf) {
    size_t steps = 0;
    s = AvfClosure(s, topts, &steps, arena);
    stats->created += steps;
    stats->discarded += steps;
  }
  if (internal::StateViolatesStopConditions(s, heur, stop_var_active_,
                                            stop_tt_active_)) {
    ++stats->discarded;
    return std::nullopt;
  }
  switch (seen.AdmitAtPhase(s.fingerprint(), phase)) {
    case ConcurrentSeenSet::Outcome::kRejected:
      ++stats->duplicates;
      return std::nullopt;
    case ConcurrentSeenSet::Outcome::kReopened:
      // Re-opened at an earlier stratum: earlier-kind transitions now
      // apply; counts as a duplicate sighting, like the serial engine.
      ++stats->duplicates;
      break;
    case ConcurrentSeenSet::Outcome::kInserted:
      break;
  }
  double c = cost->StateCost(s);
  if (best.Offer(s, c, deadline.ElapsedSeconds()) && limits.on_progress) {
    ProgressEvent ev;
    ev.kind = ProgressEvent::Kind::kBestImproved;
    ev.best_cost = c;
    ev.elapsed_sec = deadline.ElapsedSeconds();
    limits.on_progress(ev);
  }
  return Admitted{std::move(s), c};
}

void ParallelSearchContext::MergeWorkerStats(const SearchStats& local) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  totals_.created += local.created;
  totals_.duplicates += local.duplicates;
  totals_.discarded += local.discarded;
  totals_.explored += local.explored;
  totals_.transitions_applied += local.transitions_applied;
}

SearchResult ParallelSearchContext::Finish(bool completed) {
  SearchStats stats = totals_;
  stats.time_exhausted = time_exhausted_.load(std::memory_order_relaxed);
  stats.memory_exhausted = memory_exhausted_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.completed = completed && !stats.time_exhausted &&
                    !stats.memory_exhausted && !stats.cancelled;
  stats.elapsed_sec = deadline.ElapsedSeconds();
  stats.best_cost = best.best_cost();
  stats.best_trace = best.trace();
  return SearchResult{best.best_state(), stats};
}

}  // namespace rdfviews::vsel::parallel
