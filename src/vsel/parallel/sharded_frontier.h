// Sharded work frontier for the parallel search strategies.
//
// Items live in per-shard deques addressed by a caller-provided hint (the
// engines use the state fingerprint's low bits, so a state's frontier home
// is deterministic). A worker pops a batch from its home shard first and
// steals from the others when its home is dry, which keeps lock traffic at
// one shard mutex per batch in the common case.
//
// Termination is cooperative: `pending` counts items that were pushed but
// whose processing has not been confirmed via TaskDone(). PopBatch returns
// 0 only when the frontier has quiesced (no items anywhere and nothing in
// flight, so nothing can be pushed anymore) or the search was cancelled —
// exactly the two ways a strategy's expansion loop ends.
#ifndef RDFVIEWS_VSEL_PARALLEL_SHARDED_FRONTIER_H_
#define RDFVIEWS_VSEL_PARALLEL_SHARDED_FRONTIER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/telemetry/metrics.h"

namespace rdfviews::vsel::parallel {

/// Live metric sinks for a frontier. All pointers are optional; when set
/// they are updated incrementally as events happen (not at run retirement),
/// so a concurrent TelemetrySnapshot() observes mid-run steal counts and
/// starvation gauges.
struct FrontierMetrics {
  telemetry::Counter* steals = nullptr;          // +1 per stolen batch
  telemetry::Gauge* waiting_workers = nullptr;   // workers blocked in PopBatch
};

template <typename T>
class ShardedFrontier {
 public:
  /// `num_shards` is rounded up to a power of two.
  explicit ShardedFrontier(size_t num_shards, FrontierMetrics metrics = {})
      : metrics_(metrics) {
    size_t n = 1;
    while (n < num_shards) n <<= 1;
    mask_ = n - 1;
    shards_ = std::make_unique<Shard[]>(n);
  }

  void Push(size_t shard_hint, T item) {
    // Count before publishing: if the item became visible first, a racing
    // consumer could pop and TaskDone it before this increment, driving
    // `pending` to zero with work still outstanding and releasing sleeping
    // workers early.
    pending_.fetch_add(1, std::memory_order_acq_rel);
    queued_.fetch_add(1, std::memory_order_relaxed);
    Shard& sh = shards_[shard_hint & mask_];
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.items.push_back(std::move(item));
    }
    wake_.notify_one();
  }

  /// Pops up to `max_batch` items, preferring the shard `home & mask`.
  /// Blocks until items arrive, the frontier quiesces, or `cancelled`
  /// returns true; returns the number of items appended to `out` (0 means
  /// "done"). The caller must invoke TaskDone() once per popped item after
  /// processing it (including any Pushes its processing performs).
  size_t PopBatch(size_t home, size_t max_batch, std::vector<T>* out,
                  const std::function<bool()>& cancelled) {
    for (;;) {
      for (size_t i = 0; i <= mask_; ++i) {
        Shard& sh = shards_[(home + i) & mask_];
        std::lock_guard<std::mutex> lock(sh.mu);
        size_t got = 0;
        while (got < max_batch && !sh.items.empty()) {
          out->push_back(std::move(sh.items.front()));
          sh.items.pop_front();
          ++got;
        }
        if (got > 0) {
          queued_.fetch_sub(got, std::memory_order_relaxed);
          if (i > 0) {
            steals_.fetch_add(1, std::memory_order_relaxed);
            if (metrics_.steals != nullptr) metrics_.steals->Add(1);
          }
          return got;
        }
      }
      if (pending_.load(std::memory_order_acquire) == 0) return 0;
      if (cancelled()) return 0;
      // Nothing visible but work is in flight: its processor may push more.
      // Sleep briefly; Push wakes us early, the timeout re-checks
      // cancellation (budget exhaustion is latched by processing workers).
      // While asleep this worker counts as waiting — the signal producers
      // consult (via Starving()) to decide whether to donate subtrees.
      const size_t waiting_now =
          waiting_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (metrics_.waiting_workers != nullptr) {
        metrics_.waiting_workers->Set(static_cast<int64_t>(waiting_now));
      }
      {
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_.wait_for(lock, std::chrono::milliseconds(1));
      }
      const size_t waiting_after =
          waiting_.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (metrics_.waiting_workers != nullptr) {
        metrics_.waiting_workers->Set(static_cast<int64_t>(waiting_after));
      }
    }
  }

  /// Confirms the completion of `n` popped items. When the last in-flight
  /// item completes without having pushed successors, the frontier has
  /// quiesced and every sleeping worker is woken to exit.
  void TaskDone(size_t n = 1) {
    if (pending_.fetch_sub(n, std::memory_order_acq_rel) == n) {
      wake_.notify_all();
    }
  }

  /// Batches served from a non-home shard (work stealing events).
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// True when at least one worker is blocked waiting for work and no
  /// queued item could feed it. Producers deep in a serial recursion use
  /// this as the donation trigger: a relaxed heuristic read — it may be
  /// stale by the time the donor pushes, which only costs one extra (or one
  /// missed) donation, never correctness.
  bool Starving() const {
    return waiting_.load(std::memory_order_relaxed) > 0 &&
           queued_.load(std::memory_order_relaxed) == 0;
  }

  /// Items currently queued in shards (pushed, not yet popped).
  size_t queued() const { return queued_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::deque<T> items;
  };

  std::unique_ptr<Shard[]> shards_;
  size_t mask_ = 0;
  FrontierMetrics metrics_;
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> waiting_{0};
  std::atomic<uint64_t> steals_{0};
  std::mutex wake_mu_;
  std::condition_variable wake_;
};

}  // namespace rdfviews::vsel::parallel

#endif  // RDFVIEWS_VSEL_PARALLEL_SHARDED_FRONTIER_H_
