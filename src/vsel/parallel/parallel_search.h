// Worker-pool parallel frontier expansion for the Sec. 5 strategies.
//
// Selected through SearchLimits::num_threads > 1 (RunSearch dispatches
// here). Three engines share one ParallelSearchContext:
//   - EXNAIVE / EXSTR: the serial round-robin candidate set becomes a
//     sharded frontier of partially-expanded entries; workers pull batches,
//     apply one new-state-producing transition per visit and requeue, so
//     the fair round-robin discipline is kept per entry while entries
//     progress concurrently.
//   - DFS: root-parallel — every transition applicable to the start state
//     (at each stratum of the kind ladder) seeds one task; a worker runs
//     the serial stratified depth-first recursion of its subtree against
//     the shared seen-set and best.
//   - GSTR: per-stratum frontiers with a pool-wide barrier between strata;
//     the stratum's surviving best is chosen under the deterministic
//     (cost, fingerprint) order, so the greedy trajectory is reproducible.
//
// Determinism: a run that exhausts the space admits exactly the serial
// engine's distinct state set (duplicate detection is keyed by the same
// 128-bit fingerprints; stratum re-opening converges to the same fixpoint
// regardless of arrival order), and the reported best is the unique
// (cost, fingerprint)-minimal admitted state — identical at every thread
// count, including the serial engine at num_threads=1. Budget-truncated
// runs are anytime: they return the best of whatever subset was reached.
#ifndef RDFVIEWS_VSEL_PARALLEL_PARALLEL_SEARCH_H_
#define RDFVIEWS_VSEL_PARALLEL_PARALLEL_SEARCH_H_

#include "common/status.h"
#include "vsel/cost_model.h"
#include "vsel/options.h"
#include "vsel/state.h"

namespace rdfviews::vsel {

struct SearchResult;

namespace parallel {

/// Runs `strategy` from `s0` over limits.num_threads workers. Supports the
/// four Sec. 5 strategies; the [21] competitors are rejected (RunSearch
/// routes them to the serial engine instead).
Result<SearchResult> RunParallelSearch(StrategyKind strategy, const State& s0,
                                       const CostModel& cost_model,
                                       const HeuristicOptions& heuristics,
                                       const SearchLimits& limits);

}  // namespace parallel
}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_PARALLEL_PARALLEL_SEARCH_H_
