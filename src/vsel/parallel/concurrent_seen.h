// Concurrent duplicate-detection set keyed by 128-bit state fingerprints.
//
// The serial engine's `seen` map (fingerprint -> min stratum reached, with
// stratum re-opening) sharded over independently-locked buckets addressed
// by the fingerprint's low bits. Workers admitting states with different
// fingerprints almost always hit different shards, so the map scales with
// the worker count; the per-shard critical section is a single hash-map
// probe. The total entry count is kept in a relaxed atomic so the global
// state budget (SearchLimits::max_states) can be enforced without touching
// any shard lock.
#ifndef RDFVIEWS_VSEL_PARALLEL_CONCURRENT_SEEN_H_
#define RDFVIEWS_VSEL_PARALLEL_CONCURRENT_SEEN_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/hash.h"
#include "vsel/state.h"

namespace rdfviews::vsel::parallel {

class ConcurrentSeenSet {
 public:
  /// `num_shards` is rounded up to a power of two.
  explicit ConcurrentSeenSet(size_t num_shards = 64) {
    size_t n = 1;
    while (n < num_shards) n <<= 1;
    mask_ = n - 1;
    shards_ = std::make_unique<Shard[]>(n);
  }

  enum class Outcome {
    kInserted,  // first sighting: admit
    kReopened,  // seen before, but at a later stratum: admit again with the
                // earlier stratum (counts as a duplicate, like serial)
    kRejected,  // duplicate at the same or an earlier stratum
  };

  /// The serial engine's try_emplace-with-reopening, atomically:
  ///   - fingerprint unseen            -> kInserted, record `phase`
  ///   - recorded stratum <= `phase`   -> kRejected
  ///   - recorded stratum >  `phase`   -> kReopened, lower it to `phase`
  Outcome AdmitAtPhase(const StateFingerprint& fp, int phase) {
    Shard& sh = shards_[static_cast<size_t>(fp.lo) & mask_];
    std::lock_guard<std::mutex> lock(sh.mu);
    auto [it, inserted] = sh.map.try_emplace(fp, phase);
    if (inserted) {
      size_.fetch_add(1, std::memory_order_relaxed);
      return Outcome::kInserted;
    }
    if (it->second <= phase) return Outcome::kRejected;
    it->second = phase;
    return Outcome::kReopened;
  }

  /// Seeds an entry (initial state, AVF closure of S0); keeps an existing
  /// entry untouched.
  void Insert(const StateFingerprint& fp, int phase) {
    Shard& sh = shards_[static_cast<size_t>(fp.lo) & mask_];
    std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.map.try_emplace(fp, phase).second) {
      size_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Number of distinct fingerprints ever admitted. Exact (every successful
  /// insert increments it); readable without locks.
  size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::unordered_map<StateFingerprint, int, Hash128Hasher> map;
  };

  std::unique_ptr<Shard[]> shards_;
  size_t mask_ = 0;
  std::atomic<size_t> size_{0};
};

}  // namespace rdfviews::vsel::parallel

#endif  // RDFVIEWS_VSEL_PARALLEL_CONCURRENT_SEEN_H_
