// Knobs of the view-selection search.
#ifndef RDFVIEWS_VSEL_OPTIONS_H_
#define RDFVIEWS_VSEL_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stop_token.h"

namespace rdfviews::vsel {

namespace pipeline {
class PartitionExecutor;  // vsel/pipeline/executor.h
}  // namespace pipeline

/// Search strategies: ours (Sec. 5) and the competitors of [21] (Sec. 6.1).
enum class StrategyKind {
  kExNaive,      // Algorithm 2
  kExStr,        // exhaustive stratified (VB* SC* JC* VF* paths)
  kDfs,          // stratified depth-first
  kGstr,         // greedy stratified
  kPruning21,    // Theodoratos et al. "Pruning"
  kGreedy21,     // Theodoratos et al. "Greedy"
  kHeuristic21,  // Theodoratos et al. "Heuristic"
};

const char* StrategyName(StrategyKind kind);

/// Optimizations and stop conditions (Sec. 5.2).
struct HeuristicOptions {
  /// AVF: aggressively fuse views (apply VF to fixpoint) on every new state.
  bool avf = false;
  /// STV: discard states where some view has only variables.
  bool stop_var = false;
  /// stop_tt: discard states where some view is the full triple table.
  bool stop_tt = false;
  /// View-break overlap budget: 0 enumerates only partitions into two
  /// connected components; 1 additionally allows covers sharing one node
  /// (Def. 3.2 allows arbitrary overlapping covers; see DESIGN.md).
  int vb_overlap = 1;
  /// Views larger than this only get partition-style view breaks.
  size_t vb_overlap_max_atoms = 14;
};

/// One observable event of a running recommendation. Emitted through
/// SearchLimits::on_progress so callers can stream anytime results: every
/// strategy is anytime (Sec. 5), and the best-so-far only improves.
struct ProgressEvent {
  enum class Kind {
    /// The running best state improved; `best_cost` is the new best.
    kBestImproved,
    /// One pipeline partition finished (or was served from a session
    /// cache); `partition` / `partitions_total` locate it.
    kPartitionDone,
    /// One attempt at a partition's search failed (threw, returned an
    /// error, or overran its watchdog deadline); `attempt` is the failed
    /// attempt (1-based). A kPartitionRetry or kPartitionAbandoned for the
    /// same partition follows.
    kPartitionFailed,
    /// A failed partition is about to be retried; `attempt` is the
    /// *upcoming* attempt number.
    kPartitionRetry,
    /// A partition exhausted its retry budget (or its time slice) and was
    /// abandoned for this update: the recommendation degrades to the
    /// surviving partitions and, in a session, the partition stays dirty
    /// for the next Update. `attempt` is the last attempt made. Terminal
    /// for the partition, like kPartitionDone.
    kPartitionAbandoned,
  };
  Kind kind = Kind::kBestImproved;
  /// Best cost known when the event fired (search-local for kBestImproved).
  double best_cost = 0;
  /// Seconds since the emitting search started.
  double elapsed_sec = 0;
  /// kPartition*: which partition, out of how many.
  size_t partition = 0;
  size_t partitions_total = 1;
  /// kPartitionFailed / kPartitionRetry / kPartitionAbandoned (and
  /// kPartitionDone after a recovery): the 1-based attempt number; 0 for
  /// events outside the retry machinery.
  size_t attempt = 0;
};

/// Progress observer. May be invoked concurrently from search worker
/// threads and from the partition pool: implementations must be
/// thread-safe, must not block, and must not re-enter the search API.
using ProgressFn = std::function<void(const ProgressEvent&)>;

/// Hard limits turning the search into an anytime algorithm.
struct SearchLimits {
  /// Wall-clock budget in seconds; <= 0 means unlimited (stop_time).
  double time_budget_sec = 0;
  /// Cap on the number of distinct states remembered; exceeding it aborts
  /// the search reporting memory exhaustion (the paper's JVM OOM analogue).
  size_t max_states = 5000000;
  /// Search worker threads. 1 (or 0) runs the serial engine unchanged;
  /// > 1 routes EXNAIVE/EXSTR/DFS/GSTR through the parallel frontier
  /// engine (src/vsel/parallel/): sharded frontiers, a concurrent
  /// fingerprint-keyed seen-set, and a deterministically tie-broken global
  /// best, so a run that exhausts the space reports the same best state at
  /// any thread count. The [21] competitor strategies are inherently
  /// sequential (query-by-query combination) and always run serial.
  size_t num_threads = 1;
  /// DFS only: cap on the VB-stratum recursion depth along a search path.
  /// Once a path has applied this many view breaks, the VB stratum is
  /// skipped and the state advances to SC directly — so a 10-atom view's
  /// exponential VB closure cannot starve the SC/JC/VF strata under a
  /// finite time budget. Changes which states a truncated DFS reaches, so
  /// the value participates in the session-cache identity. 0 (default) =
  /// unlimited, the paper's exact DFS. Serial and parallel DFS apply the
  /// cap identically: duplicate detection ranks revisits by the remaining
  /// VB budget (internal::DfsDedupRank), so a capped run that exhausts its
  /// space admits the same distinct view-set states at every thread
  /// count. The reported best can still differ across thread counts when
  /// two arrival paths build different (equally valid) rewriting plans
  /// for the same view set: states are deduplicated by their view-set
  /// fingerprint, and the cost of the plan that happened to arrive first
  /// is the one recorded.
  size_t max_vb_depth = 0;
  /// Cooperative cancellation: every engine (serial, parallel frontier,
  /// [21] competitors) polls this token wherever it polls the deadline, so
  /// a stop request terminates the search within a bounded number of state
  /// expansions and the run returns its valid current-best (anytime)
  /// result with SearchStats::cancelled set. Empty = never cancelled.
  StopToken stop;
  /// Optional progress observer (see ProgressEvent). Null = no reporting.
  ProgressFn on_progress;
};

/// Workload partitioning knobs of the recommendation pipeline
/// (src/vsel/pipeline/). The pipeline splits the workload along the
/// connected components of its commonality graph (queries connected iff
/// they share a constant some SC/JC/VF transition chain could exploit) and
/// searches each sub-workload independently; see README "Recommendation
/// pipeline" for the soundness argument.
struct PartitionOptions {
  /// Partition the workload before searching. Disabled, or when the split
  /// would be unsound (stop_var off, or a query with a constant-free
  /// component), the pipeline runs one partition over the whole workload —
  /// exactly the monolithic search.
  bool enabled = true;
  /// Cap on the number of partitions; components beyond the cap are packed
  /// into the least-loaded partition (by query count). 0 = one partition
  /// per commonality component.
  size_t max_partitions = 0;
  /// Run per-partition searches concurrently on a worker pool when
  /// SearchLimits::num_threads > 1 and more than one partition exists (each
  /// partition search then runs serially). With a single partition, the
  /// parallel frontier engine keeps num_threads instead.
  bool parallel_partitions = true;
};

/// Per-partition retry policy of pipeline stage 3 (and, with the backend
/// knobs in SessionCacheOptions, of the RetryingCacheBackend decorator): a
/// failed attempt is retried up to max_attempts total tries, sleeping an
/// exponentially growing, deterministically jittered backoff in between.
/// Backoffs and retry attempts are budget-aware: a partition never sleeps
/// or re-searches past its apportioned time slice.
struct RetryPolicy {
  /// Total attempts per partition, including the first (1 = never retry —
  /// the default, so a deterministic failure is not paid for twice unless
  /// the caller opts in).
  size_t max_attempts = 1;
  /// Backoff before retry k (k >= 2): initial * multiplier^(k-2), scaled
  /// by a jitter factor in [0.5, 1.0] drawn deterministically from
  /// (jitter_seed, partition, attempt), capped at max_backoff_sec, and
  /// clipped to the partition's remaining time budget.
  double initial_backoff_sec = 0.005;
  double backoff_multiplier = 2.0;
  double max_backoff_sec = 0.25;
  uint64_t jitter_seed = 0x5eedull;
};

/// Failure-containment knobs of the recommendation pipeline. Stage 3 always
/// runs every partition search behind an exception -> Status boundary (a
/// throwing, failing or hung partition is retried per `retry`, then
/// abandoned — never propagated); MergePartitions then degrades gracefully,
/// recommending over the surviving partitions and reporting the failed ones
/// in PipelineReport::partition_health. Only when *no* partition survives
/// does the update return an error.
struct RobustnessOptions {
  RetryPolicy retry;
  /// Hard per-attempt watchdog deadline in seconds: a partition attempt
  /// still running after this long has its stop token fired (composed into
  /// the search's token via StopToken::Combine), releasing cooperative
  /// waits — including injected hangs — and failing the attempt as
  /// TimedOut. 0 (default) disables the watchdog; the plain time budget
  /// (SearchLimits::time_budget_sec) still truncates healthy searches.
  double partition_deadline_sec = 0;
};

/// Storage knobs of a TuningSession's per-partition result cache (see
/// vsel/serialize/partition_cache.h). The cache maps canonical workload
/// keys to completed search outcomes; these options pick where those pairs
/// live and how many an in-memory backend retains.
struct SessionCacheOptions {
  /// When non-empty, partition results persist as one identity-tagged file
  /// per canonical key under this directory (DirCacheBackend): they survive
  /// process restarts, and concurrent sessions pointed at the same
  /// directory reuse each other's completed searches. Empty (the default)
  /// keeps the in-process LRU backend. A caller-supplied backend passed to
  /// the TuningSession constructor overrides this knob entirely.
  ///
  /// Pair this with `auto_calibrate_cm = false` (fixed cost weights): a
  /// calibrating session deliberately ignores cached entries on its
  /// *first* update (cm calibration must see every partition's S0), so
  /// with calibration on, one-shot `Recommend` calls write the cache but
  /// never read it — only multi-update sessions warm-start, from their
  /// second update on.
  std::string cache_dir;
  /// In-memory backends are trimmed after every update to
  /// max(lru_floor, lru_per_partition x current partitions) entries,
  /// evicting least-recently-used keys: recently retired sub-workloads stay
  /// instantly re-addable, but a drifting log can not grow the session
  /// without bound. Persistent backends ignore the trim (the filesystem
  /// owns capacity there).
  size_t lru_floor = 64;
  size_t lru_per_partition = 4;
  /// Wrap the session's backend (self-constructed *or* caller-supplied) in
  /// a robust::RetryingCacheBackend: transient storage failures are retried
  /// with deterministic backoff, and a run of consecutive failures opens a
  /// circuit breaker that skips the backend entirely (counted) until a
  /// half-open probe succeeds — so a wedged shared filesystem costs one
  /// timeout per breaker window, not one per partition. Off by default;
  /// the knobs below only apply when set.
  bool robust_backend = false;
  /// Attempts per backend operation (including the first).
  size_t backend_retry_attempts = 3;
  /// Initial backoff between backend retries (doubles per retry, jittered
  /// deterministically, capped at 16x).
  double backend_retry_backoff_sec = 0.002;
  /// Consecutive failures (across operations) that open the breaker.
  size_t breaker_failure_threshold = 5;
  /// How long an open breaker skips the backend before a half-open probe.
  double breaker_open_sec = 1.0;
};

/// Observability knobs (src/common/telemetry/). Metrics are process-wide
/// and always on (their hot-path cost is one relaxed atomic per event);
/// tracing is per-run and controls whether a pipeline Run / session Update
/// records a span tree into its report's `telemetry` attachment.
struct TelemetryOptions {
  /// Record spans (pipeline stages, partition attempts, retries, watchdog
  /// fires, cache and serialization operations) for each run. Disarmed,
  /// every span site costs one thread-local read and a branch.
  bool trace = true;
};

/// Weights of the cost components (Sec. 3.3 and Sec. 6 "Weights of cost
/// components").
struct CostWeights {
  double cs = 1.0;   // view space occupancy weight
  double cr = 1.0;   // rewriting evaluation weight
  double cm = 0.5;   // view maintenance weight
  double c1 = 1.0;   // REC: io weight
  double c2 = 0.05;  // REC: cpu weight
  double f = 2.0;    // VMC: per-join fan-out factor
};

/// How implicit triples are reflected in the recommendation (Sec. 4.3).
enum class EntailmentMode {
  kNone,             // plain RDF, no implicit triples
  kSaturate,         // search and materialize over the saturated store
  kPreReformulate,   // reformulate the workload, search over the union
  kPostReformulate,  // search with saturated statistics, reformulate the
                     // winning views before materializing
};

const char* EntailmentModeName(EntailmentMode mode);

/// The one configuration surface of the tuning stack: everything a
/// recommendation run needs — strategy, heuristics, limits, cost weights,
/// entailment handling, partitioning, session cache storage, failure
/// containment, and observability — in a single validated aggregate. The
/// same struct configures ViewSelector::Recommend, TuningSession, the
/// pipeline stages, and (through serialize::SerializeTuningConfig, one wire
/// form) both the vseld open-session and dispatch-partition verbs.
/// `SelectorOptions` remains as a back-compat alias.
struct TuningConfig {
  StrategyKind strategy = StrategyKind::kDfs;
  HeuristicOptions heuristics{.avf = true, .stop_var = true};
  SearchLimits limits;
  CostWeights weights;
  /// Recalibrate cm from S0 as in Sec. 6 ("Weights of cost components").
  bool auto_calibrate_cm = true;
  EntailmentMode entailment = EntailmentMode::kNone;
  /// Workload partitioning (the pipeline's stage 2); see PartitionOptions.
  PartitionOptions partition;
  /// Session partition-result cache storage; see SessionCacheOptions.
  SessionCacheOptions cache;
  /// Failure containment of the pipeline's stage 3 (retry policy, watchdog
  /// deadline); see RobustnessOptions.
  RobustnessOptions robust;
  /// Observability: per-run span recording; see TelemetryOptions.
  TelemetryOptions telemetry;
  /// Where stage 3 runs each dirty partition's search attempts: null (the
  /// default) keeps the in-process pipeline::LocalExecutor; a
  /// vseld::FleetExecutor dispatches attempts to registered remote workers.
  /// Process-local like `limits.stop` / `limits.on_progress` — never
  /// serialized, never part of the cache identity.
  std::shared_ptr<pipeline::PartitionExecutor> executor;

  /// Rejects configurations no layer could honor, naming the offending
  /// field: negative budgets and backoffs, zero floors (retry attempts,
  /// LRU capacities — max_states stays 0 = unlimited), and conflicting
  /// cache / partition knob combinations. Every entry point that accepts a
  /// TuningConfig (TuningSession, pipeline::Run, ViewSelector::Recommend,
  /// and the vseld open-session / dispatch-partition verbs) validates
  /// before doing any work, so a bad config fails fast with the same
  /// diagnostic everywhere instead of misbehaving mid-run.
  Status Validate() const;
};

/// Back-compat alias: nine PRs of call sites name the aggregate
/// SelectorOptions; they migrate mechanically.
using SelectorOptions = TuningConfig;

/// Counters exposed by every strategy (the quantities of Figure 5).
struct SearchStats {
  uint64_t created = 0;
  uint64_t duplicates = 0;
  uint64_t discarded = 0;
  uint64_t explored = 0;
  uint64_t transitions_applied = 0;

  double initial_cost = 0;
  double best_cost = 0;
  /// (elapsed seconds, best cost) every time the best state improves.
  std::vector<std::pair<double, double>> best_trace;

  bool completed = false;           // search space exhausted
  bool memory_exhausted = false;    // max_states hit
  bool time_exhausted = false;      // time budget hit
  bool cancelled = false;           // SearchLimits::stop fired
  double elapsed_sec = 0;

  /// Relative cost reduction (c(S0) - c(Sb)) / c(S0), Sec. 6.1.
  double RelativeCostReduction() const {
    if (initial_cost <= 0) return 0;
    return (initial_cost - best_cost) / initial_cost;
  }

  /// Search throughput: candidate states generated per second.
  double StatesPerSecond() const {
    if (elapsed_sec <= 0) return 0;
    return static_cast<double>(created) / elapsed_sec;
  }
};

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_OPTIONS_H_
