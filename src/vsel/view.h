// A view of a candidate view set.
#ifndef RDFVIEWS_VSEL_VIEW_H_
#define RDFVIEWS_VSEL_VIEW_H_

#include <string>
#include <vector>

#include "cq/query.h"

namespace rdfviews::vsel {

/// A materializable view: a conjunctive query whose head consists of
/// distinct variables. The view's relation columns are named by those
/// variables, which are globally unique within a state.
struct View {
  uint32_t id = 0;
  cq::ConjunctiveQuery def;

  /// Column names = head variables in head order.
  std::vector<cq::VarId> Columns() const {
    std::vector<cq::VarId> cols;
    cols.reserve(def.head().size());
    for (const cq::Term& t : def.head()) cols.push_back(t.var());
    return cols;
  }

  std::string Name() const { return "v" + std::to_string(id); }
};

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_VIEW_H_
