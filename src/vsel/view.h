// A view of a candidate view set.
#ifndef RDFVIEWS_VSEL_VIEW_H_
#define RDFVIEWS_VSEL_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "cq/canonical.h"
#include "cq/query.h"

namespace rdfviews::vsel {

/// A materializable view: a conjunctive query whose head consists of
/// distinct variables. The view's relation columns are named by those
/// variables, which are globally unique within a state.
///
/// Views are shared immutably between states (copy-on-write: transitions
/// clone only the views they touch), so the canonical identity of a view —
/// its head-inclusive canonical string, the body-only canonical string, and
/// their 128-bit hashes — is computed at most once per View object and then
/// reused by every state holding it. State fingerprints and the view
/// interner are built from these memoized keys.
struct View {
  uint32_t id = 0;
  cq::ConjunctiveQuery def;

  /// Column names = head variables in head order.
  std::vector<cq::VarId> Columns() const {
    std::vector<cq::VarId> cols;
    cols.reserve(def.head().size());
    for (const cq::Term& t : def.head()) cols.push_back(t.var());
    return cols;
  }

  std::string Name() const { return "v" + std::to_string(id); }

  /// Head-inclusive canonical string: equal keys <=> views identical up to
  /// variable renaming (the per-view unit of the state signature).
  const std::string& CanonicalKey() const {
    if (!canonical_ready_) {
      canon_ = cq::CanonicalString(def, /*include_head=*/true);
      canonical_ready_ = true;
    }
    return canon_;
  }

  /// Body-only canonical string: equal keys <=> isomorphic bodies (the View
  /// Fusion compatibility test, Def. 3.5).
  const std::string& BodyKey() const {
    if (!body_ready_) {
      body_canon_ = cq::CanonicalString(def, /*include_head=*/false);
      body_ready_ = true;
    }
    return body_canon_;
  }

  /// 128-bit hash of CanonicalKey(); summed into the state fingerprint.
  const Hash128& StructuralHash() const {
    if (!hash_ready_) {
      const std::string& key = CanonicalKey();
      hash_ = HashBytes128(key.data(), key.size());
      hash_ready_ = true;
    }
    return hash_;
  }

  /// Cost-model cache keys. Unlike the canonical identity above, these are
  /// *atom-order-sensitive*: the estimators anchor join-reduction factors
  /// and column widths on literal first occurrences, so two views whose
  /// bodies are isomorphic only up to atom reordering can have different
  /// raw estimates. The keys rename variables to dense indices by first
  /// occurrence (renaming-insensitive) but keep atoms in literal order, so
  /// a cache hit is guaranteed to return the exact raw-estimator value.
  /// CostBodyHash keys the cardinality cache (body-only); CostHash
  /// additionally covers the head (byte estimates depend on head widths).
  const Hash128& CostBodyHash() const {
    if (!cost_hash_ready_) ComputeCostHashes();
    return cost_body_hash_;
  }
  const Hash128& CostHash() const {
    if (!cost_hash_ready_) ComputeCostHashes();
    return cost_hash_;
  }

  /// Fills every memoized identity key at once, consulting a process-wide
  /// cache keyed by the dense-renamed structural bytes (StructuralKey):
  /// equal keys imply defs identical up to variable renaming, hence equal
  /// canonical strings and hashes. Search transitions re-derive the same
  /// few distinct views tens of thousands of times, so the expensive
  /// canonicalizations run only on the first derivation; every later
  /// MakeView of an equal def copies the cached identity.
  void FillIdentityCached() const;

 private:
  /// The dense-renamed structural byte key: atoms in literal order with
  /// variables renamed to first-occurrence indices, then '|', then the
  /// head terms under the same renaming. Atom-order-sensitive and
  /// renaming-insensitive. `body_len` receives the length of the
  /// atoms-only prefix (the CostBodyHash input).
  std::string StructuralKey(size_t* body_len) const;

  void ComputeCostHashes() const;

  // Memoized canonical identity. MakeView fills every key eagerly before
  // the View is wrapped into a shared ViewPtr, so a published View is deeply
  // immutable and safe to read from any number of search worker threads;
  // the lazy fill below only runs for Views costed or canonicalized before
  // publication (e.g., stack-local temporaries in tests).
  mutable std::string canon_;
  mutable std::string body_canon_;
  mutable Hash128 hash_;
  mutable Hash128 cost_hash_;
  mutable Hash128 cost_body_hash_;
  mutable bool canonical_ready_ = false;
  mutable bool body_ready_ = false;
  mutable bool hash_ready_ = false;
  mutable bool cost_hash_ready_ = false;
};

using ViewPtr = std::shared_ptr<const View>;

/// Wraps a view for copy-on-write sharing. All memoized identity keys are
/// computed *here*, before the object becomes visible to other threads, so
/// the lazily-filled mutable fields are never written after publication
/// (the prerequisite for sharing ViewPtrs across search workers).
inline ViewPtr MakeView(View v) {
  v.FillIdentityCached();  // fills every key, via the identity cache
  return std::make_shared<const View>(std::move(v));
}

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_VIEW_H_
