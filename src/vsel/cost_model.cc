#include "vsel/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rdfviews::vsel {

namespace {

constexpr rdf::Column kColumns[3] = {rdf::Column::kS, rdf::Column::kP,
                                     rdf::Column::kO};

/// First body occurrence column of each variable, for width/distinct lookup.
std::unordered_map<cq::VarId, rdf::Column> FirstColumns(
    const cq::ConjunctiveQuery& def) {
  std::unordered_map<cq::VarId, rdf::Column> out;
  for (const cq::Atom& a : def.atoms()) {
    for (rdf::Column c : kColumns) {
      cq::Term t = a.at(c);
      if (t.is_var()) out.emplace(t.var(), c);
    }
  }
  return out;
}

}  // namespace

double CostModel::ViewCardinality(const cq::ConjunctiveQuery& def) const {
  ++counters_.card_raw;
  if (def.atoms().empty()) return 0;

  // Per-atom exact counts and per-occurrence distinct estimates.
  std::vector<double> atom_card(def.atoms().size(), 0);
  for (size_t i = 0; i < def.atoms().size(); ++i) {
    const cq::Atom& atom = def.atoms()[i];
    double card =
        static_cast<double>(stats_->CountPattern(atom.ToPattern()));
    // Repeated variable inside one atom: an implicit equality selection.
    for (int a = 0; a < 3; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        cq::Term ta = atom.at(kColumns[a]);
        cq::Term tb = atom.at(kColumns[b]);
        if (ta.is_var() && tb.is_var() && ta.var() == tb.var()) {
          double d = std::max<double>(
              1.0, static_cast<double>(stats_->DistinctValues(kColumns[b])));
          card /= d;
        }
      }
    }
    atom_card[i] = card;
  }

  double card = 1.0;
  for (double c : atom_card) card *= c;

  // Join reduction: for each variable, its occurrences across atoms form a
  // clique; apply 1/max(d_i, d_first) for every occurrence after the first,
  // where d = min(|atom|, distinct(col)) under uniformity.
  auto occurrence_distinct = [&](const cq::Occurrence& occ) {
    double col_distinct = static_cast<double>(
        stats_->DistinctValues(occ.column));
    return std::max(1.0, std::min(atom_card[occ.atom], col_distinct));
  };
  for (const auto& [var, occs] : def.VarOccurrences()) {
    for (size_t i = 1; i < occs.size(); ++i) {
      if (occs[i].atom == occs[i - 1].atom) continue;  // intra-atom handled
      double d = std::max(occurrence_distinct(occs[i]),
                          occurrence_distinct(occs[0]));
      card /= std::max(1.0, d);
    }
  }
  return card;
}

namespace {

/// Summed average width of the head columns.
double HeadWidth(const View& view, const rdf::Statistics& stats) {
  std::unordered_map<cq::VarId, rdf::Column> cols = FirstColumns(view.def);
  double width = 0;
  for (const cq::Term& t : view.def.head()) {
    auto it = cols.find(t.var());
    double w = it != cols.end() ? stats.AvgWidth(it->second) : 8.0;
    width += w;
  }
  return width;
}

}  // namespace

double CostModel::ViewBytes(const View& view) const {
  return ViewCardinality(view.def) * HeadWidth(view, *stats_);
}

double CostModel::CachedViewCardinality(const View& view) const {
  if (!memoize_) return ViewCardinality(view.def);
  return interner_.Cardinality(view,
                               [&] { return ViewCardinality(view.def); });
}

double CostModel::CachedViewBytes(const View& view) const {
  if (!memoize_) return ViewBytes(view);
  return interner_.Bytes(view, [&] {
    return CachedViewCardinality(view) * HeadWidth(view, *stats_);
  });
}

double CostModel::Vso(const State& state) const {
  double total = 0;
  for (const View& v : state.views()) total += ViewBytes(v);
  return total;
}

CostModel::NodeEstimate CostModel::EstimateExpr(const engine::Expr& expr,
                                                const State& state,
                                                bool cached) const {
  using Kind = engine::Expr::Kind;
  NodeEstimate out;
  switch (expr.kind()) {
    case Kind::kScan: {
      int idx = state.ViewIndexById(expr.view_id());
      RDFVIEWS_CHECK_MSG(idx >= 0, "rewriting scans unknown view v"
                                       << expr.view_id());
      const View& v = state.views()[static_cast<size_t>(idx)];
      out.card = cached ? CachedViewCardinality(v) : ViewCardinality(v.def);
      out.io = out.card;
      std::unordered_map<cq::VarId, rdf::Column> cols = FirstColumns(v.def);
      for (cq::VarId name : expr.scan_columns()) {
        // Columns are positionally the view's head; map through head order.
        out.distinct[name] = out.card;
      }
      // Refine with the column-kind distinct bound.
      const std::vector<cq::VarId> head = v.Columns();
      for (size_t i = 0; i < head.size() && i < expr.scan_columns().size();
           ++i) {
        auto it = cols.find(head[i]);
        if (it == cols.end()) continue;
        double d = static_cast<double>(stats_->DistinctValues(it->second));
        double& slot = out.distinct[expr.scan_columns()[i]];
        slot = std::max(1.0, std::min(slot, d));
      }
      break;
    }
    case Kind::kSelect: {
      NodeEstimate child = EstimateExpr(*expr.child(), state, cached);
      double selectivity = 1.0;
      for (const engine::Condition& c : expr.conditions()) {
        auto it = child.distinct.find(c.lhs);
        double d = it != child.distinct.end() ? std::max(1.0, it->second)
                                              : child.card;
        if (!c.rhs_is_const) {
          auto jt = child.distinct.find(c.var_rhs);
          double d2 = jt != child.distinct.end() ? std::max(1.0, jt->second)
                                                 : child.card;
          d = std::max(d, d2);
        }
        selectivity /= std::max(1.0, d);
      }
      out = child;
      out.card = child.card * selectivity;
      out.cpu += child.card;  // one filtering pass over the input
      for (auto& [var, d] : out.distinct) d = std::min(d, out.card);
      break;
    }
    case Kind::kProject: {
      NodeEstimate child = EstimateExpr(*expr.child(), state, cached);
      out = child;  // projection is free (see header)
      break;
    }
    case Kind::kRename: {
      NodeEstimate child = EstimateExpr(*expr.child(), state, cached);
      out.card = child.card;
      out.io = child.io;
      out.cpu = child.cpu;
      for (const auto& [var, d] : child.distinct) {
        auto it = expr.rename_map().find(var);
        out.distinct[it == expr.rename_map().end() ? var : it->second] = d;
      }
      break;
    }
    case Kind::kJoin: {
      NodeEstimate l = EstimateExpr(*expr.left(), state, cached);
      NodeEstimate r = EstimateExpr(*expr.right(), state, cached);
      out.io = l.io + r.io;
      out.cpu = l.cpu + r.cpu;
      double card = l.card * r.card;
      auto reduce = [&](cq::VarId lv, cq::VarId rv) {
        double dl = l.distinct.contains(lv) ? l.distinct.at(lv) : l.card;
        double dr = r.distinct.contains(rv) ? r.distinct.at(rv) : r.card;
        card /= std::max(1.0, std::max(dl, dr));
      };
      // Natural join keys.
      for (const auto& [var, d] : l.distinct) {
        if (r.distinct.contains(var)) reduce(var, var);
      }
      for (const auto& [lv, rv] : expr.join_pairs()) reduce(lv, rv);
      out.card = card;
      // Hash join: build + probe + output.
      out.cpu += l.card + r.card + card;
      out.distinct = l.distinct;
      for (const auto& [var, d] : r.distinct) {
        auto [it, inserted] = out.distinct.emplace(var, d);
        if (!inserted) it->second = std::min(it->second, d);
      }
      for (auto& [var, d] : out.distinct) d = std::min(d, out.card);
      break;
    }
    case Kind::kUnion: {
      for (const engine::ExprPtr& c : expr.children()) {
        NodeEstimate child = EstimateExpr(*c, state, cached);
        out.card += child.card;
        out.io += child.io;
        out.cpu += child.cpu;
      }
      break;
    }
    case Kind::kArrange: {
      NodeEstimate child = EstimateExpr(*expr.child(), state, cached);
      out.card = child.card;
      out.io = child.io;
      out.cpu = child.cpu;
      for (const engine::ArrangeCol& a : expr.arrange_spec()) {
        if (a.is_const) {
          out.distinct[a.output_name] = 1.0;
        } else if (child.distinct.contains(a.source)) {
          out.distinct[a.output_name] = child.distinct.at(a.source);
        }
      }
      break;
    }
  }
  return out;
}

double CostModel::RecTerm(const engine::Expr& expr, const State& state,
                          bool cached) const {
  NodeEstimate e = EstimateExpr(expr, state, cached);
  return weights_.c1 * e.io + weights_.c2 * e.cpu;
}

double CostModel::Rec(const State& state) const {
  double total = 0;
  for (const engine::ExprPtr& r : state.rewritings()) {
    total += RecTerm(*r, state, /*cached=*/false);
  }
  return total;
}

double CostModel::Vmc(const State& state) const {
  double total = 0;
  for (const View& v : state.views()) {
    total += std::pow(weights_.f, static_cast<double>(v.def.len()));
  }
  return total;
}

CostBreakdown CostModel::BreakdownUncached(const State& state) const {
  CostBreakdown b;
  b.vso = Vso(state);
  b.rec = Rec(state);
  b.vmc = Vmc(state);
  b.total = weights_.cs * b.vso + weights_.cr * b.rec + weights_.cm * b.vmc;
  return b;
}

uint64_t CostModel::NextCacheKey() {
  static std::atomic<uint64_t> next{0};
  return ++next;
}

CostBreakdown CostModel::Breakdown(const State& state) const {
  ++counters_.state_costs;
  if (!memoize_) return BreakdownUncached(state);

  State::CostCache& cache = state.cost_cache();
  const ViewList& views = state.views();
  const RewritingList rewritings = state.rewritings();
  // Terms cached under a different (model, weights) key cannot be reused.
  const bool model_ok = cache.model_key == cache_key_;

  // Fast path: the state was costed under this model and not mutated since
  // (every mutator clears cache.valid), so the cached sums are current.
  if (model_ok && cache.valid) {
    counters_.view_terms_reused += views.size();
    counters_.rec_reused += rewritings.size();
    CostBreakdown b;
    b.vso = cache.vso;
    b.rec = cache.rec;
    b.vmc = cache.vmc;
    b.total = cache.total;
    return b;
  }

  // Slow path: re-sum, reusing every memoized term whose key still matches.
  // The per-view terms live in the state's flat block (slot i valid iff
  // term_keys[i] == ids[i]); mutators poison exactly the slots they touch,
  // so a transition's child recomputes only its delta.
  CostBreakdown b;
  for (size_t i = 0; i < views.size(); ++i) {
    double bytes;
    double vmc;
    if (model_ok && state.ViewTermValid(i)) {
      bytes = state.ViewBytesTerm(i);
      vmc = state.ViewVmcTerm(i);
      ++counters_.view_terms_reused;
    } else {
      const ViewPtr& vp = views.ptr(i);
      bytes = CachedViewBytes(*vp);
      vmc = std::pow(weights_.f, static_cast<double>(vp->def.len()));
      state.SetViewTerm(i, bytes, vmc);
      ++counters_.view_terms_computed;
    }
    b.vso += bytes;
    b.vmc += vmc;
  }

  // The REC slots live in the state's flat block, aligned with the
  // rewritings; fresh slots carry a null key, which never matches a live
  // rewriting (the state nulls keys at mutation time, so a recycled Expr
  // address can never falsely revalidate).
  State::CostCache::RecEntry* rec_entries = state.rec_entries();
  for (size_t i = 0; i < rewritings.size(); ++i) {
    const engine::ExprPtr& r = rewritings[i];
    State::CostCache::RecEntry& e = rec_entries[i];
    // Transitions rebuild only the rewritings that scanned a replaced view
    // (Expr::ReplaceScans returns the identical subtree otherwise), and
    // State::ReplaceScanRewritings nulls the entries of the rewritings it
    // changed, so pointer equality certifies the cached term is current.
    if (model_ok && e.key == r.get()) {
      b.rec += e.term;
      ++counters_.rec_reused;
    } else {
      e.term = RecTerm(*r, state, /*cached=*/true);
      e.key = r.get();
      b.rec += e.term;
      ++counters_.rec_computed;
    }
  }

  b.total = weights_.cs * b.vso + weights_.cr * b.rec + weights_.cm * b.vmc;

  cache.model_key = cache_key_;
  cache.valid = true;
  cache.vso = b.vso;
  cache.rec = b.rec;
  cache.vmc = b.vmc;
  cache.total = b.total;
  return b;
}

double CostModel::CalibrateCm(const CostBreakdown& s0,
                              const CostWeights& weights) {
  double other = weights.cs * s0.vso + weights.cr * s0.rec;
  if (s0.vmc <= 0 || other <= 0) return weights.cm;
  // Place cm*VMC two orders of magnitude under the other components.
  double cm = other / (100.0 * s0.vmc);
  return std::clamp(cm, 1e-9, 1e9);
}

}  // namespace rdfviews::vsel
