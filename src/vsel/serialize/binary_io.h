// Endianness-stable binary encoding primitives for the persistence layer.
//
// Every multi-byte value is written byte-by-byte in little-endian order, so
// files produced on any host decode identically on any other — the same
// property a fleet of tuning nodes sharing a cache directory relies on.
// Doubles travel as their IEEE-754 bit patterns (all hosts we target are
// IEEE-754; the bit pattern round-trips NaNs and signed zeros exactly).
//
// The reader is hardened against hostile or truncated input: every read
// checks the remaining length first, an overrun latches the `failed` flag
// (subsequent reads return zero values), and length-prefixed strings verify
// the length against the remaining bytes *before* allocating, so a corrupted
// length field surfaces as a decode failure rather than a bad_alloc.
#ifndef RDFVIEWS_VSEL_SERIALIZE_BINARY_IO_H_
#define RDFVIEWS_VSEL_SERIALIZE_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rdfviews::vsel::serialize {

/// Append-only little-endian encoder over a growable byte buffer.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  /// IEEE-754 bit pattern, little-endian.
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  /// Length-prefixed byte string.
  void Str(std::string_view s) {
    U64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return buf_; }
  std::string TakeBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : data_(bytes) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  double F64() {
    uint64_t bits = U64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string Str() {
    uint64_t len = U64();
    // Validate against the remaining bytes before allocating: a corrupted
    // length must decode-fail, not exhaust memory.
    if (failed_ || len > remaining()) {
      failed_ = true;
      return std::string();
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  /// A length prefix for a sequence whose elements occupy at least
  /// `min_element_bytes` each: rejects counts the remaining bytes cannot
  /// possibly hold, so corrupted counts fail fast instead of driving huge
  /// reserve() calls or million-iteration loops of failing reads.
  uint64_t Count(size_t min_element_bytes) {
    uint64_t n = U64();
    if (failed_ ||
        (min_element_bytes > 0 && n > remaining() / min_element_bytes)) {
      failed_ = true;
      return 0;
    }
    return n;
  }

  bool failed() const { return failed_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

  /// True once the input was consumed exactly and without errors.
  bool AtEnd() const { return !failed_ && pos_ == data_.size(); }

 private:
  bool Need(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace rdfviews::vsel::serialize

#endif  // RDFVIEWS_VSEL_SERIALIZE_BINARY_IO_H_
