// Pluggable storage for a TuningSession's per-partition search results.
//
// The session's invalidation rule (session.h) keys completed partition
// outcomes by canonical workload keys — renaming-insensitive, minimized,
// self-contained. This file extracts the *storage* of those (key, outcome)
// pairs from the session into a backend interface with two implementations:
//
//   - InMemoryCacheBackend: the session's historical behavior — an
//     LRU-stamped map confined to one process. Still the default.
//   - DirCacheBackend: one file per canonical key under a cache root, in
//     the versioned, identity-tagged, checksummed binary format of
//     serialize.h. Outcomes survive process restarts, and any number of
//     concurrent sessions (or tuning nodes mounting a shared directory)
//     may point at the same root: writes go to a private temp file and
//     commit with an atomic rename, so readers observe either the old or
//     the new complete file, never a torn one. All failure handling is
//     best-effort-miss: a missing, corrupt, foreign-identity or
//     mid-replacement file is a cache miss (counted, never an error), and
//     two racing writers of the same key leave whichever committed last —
//     both wrote the same completed search result, so either is correct.
//
// Entries served by a persistent backend crossed a process boundary:
// `Fetched::needs_rehydration` tells the session to re-intern the state's
// views through its live CostModel and re-cost it, accepting the entry only
// if the recomputed cost equals the persisted one (the last line of defense
// against statistics or weight drift the identity tag did not encode).
#ifndef RDFVIEWS_VSEL_SERIALIZE_PARTITION_CACHE_H_
#define RDFVIEWS_VSEL_SERIALIZE_PARTITION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/telemetry/metrics.h"
#include "vsel/pipeline/pipeline.h"
#include "vsel/serialize/serialize.h"

namespace rdfviews::vsel::serialize {

/// Storage interface for (canonical workload key -> completed partition
/// outcome) pairs. Implementations must be safe to call from multiple
/// threads (sessions sharing one backend object) and must treat every
/// storage failure as a miss — a cache can always fall back to searching.
class PartitionCacheBackend {
 public:
  struct Fetched {
    pipeline::PartitionSearchResult result;
    /// True when the entry crossed a process boundary (was deserialized):
    /// the session must rehydrate it (re-intern + re-cost) before trusting
    /// it. In-memory entries are live objects and skip rehydration.
    bool needs_rehydration = false;
  };

  /// Best-effort traffic counters (exact under single-threaded use).
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Entries present but unusable: corrupt, foreign identity, or a
    /// filename-hash collision with a different key.
    uint64_t rejected = 0;
    /// Entries that decoded fine (counted as hits) but failed the
    /// session's rehydration checks — re-cost mismatch or structural
    /// misfit — and were discarded (see NoteRehydrationRejected).
    uint64_t rehydration_rejected = 0;
    uint64_t stored = 0;
    uint64_t store_failures = 0;
    /// Misses caused by the storage layer misbehaving (open/read failure
    /// on an *existing* entry) rather than by genuine absence — the subset
    /// of `misses` a RetryingCacheBackend decorator retries.
    uint64_t io_failures = 0;
    /// DirCacheBackend only: crash-orphaned temp files swept at
    /// construction (see the reap_temp_older_than_sec constructor knob).
    uint64_t temp_files_reaped = 0;
    /// RetryingCacheBackend decorator only: operations retried after a
    /// transient failure, and operations skipped outright by an open
    /// circuit breaker.
    uint64_t retries = 0;
    uint64_t breaker_skips = 0;
  };

  virtual ~PartitionCacheBackend() = default;

  /// Looks up `key`. The Status *is* the contract: OK means hit (`*out` is
  /// filled), NotFound means the entry genuinely is not there, and any
  /// other code means the storage layer misbehaved (open/read failure on
  /// an existing entry, a wedged filesystem, a severed transport) — the
  /// distinction a retrying decorator keys on, formerly an ad-hoc
  /// `io_failed` out-parameter side channel. Corrupt or foreign-identity
  /// entries are NotFound (the partition is simply re-searched), never an
  /// error. Callers that only care hit-vs-miss test `.ok()`.
  virtual Status Get(const std::string& key, Fetched* out) = 0;

  /// Stores a completed outcome under `key` (best-effort; replaces any
  /// previous entry). Non-OK means the store failed — callers may ignore
  /// it (a failed Put is a future miss), decorators retry on it.
  virtual Status Put(const std::string& key,
                     const pipeline::PartitionSearchResult& result) = 0;

  /// Drops any cached copy of `key` alone (best-effort; non-OK when the
  /// storage layer failed to drop an existing entry). The base
  /// implementation is a no-op: the plain backends re-validate entries on
  /// every Get, so a poisoned entry already degrades to a miss there. A
  /// *caching decorator tier* (TieredCacheBackend's in-memory front) must
  /// honor it — the session calls Invalidate when an entry it was served
  /// fails rehydration (identity / cost drift), and without the drop the
  /// front would keep serving the same poisoned bytes on every update.
  virtual Status Invalidate(const std::string& key) {
    (void)key;
    return Status::OK();
  }

  /// Drops every entry this backend can reach.
  virtual void Clear() = 0;

  /// Number of entries currently addressable.
  virtual size_t Size() const = 0;

  /// Capacity hint after each session update: in-memory backends evict
  /// least-recently-used entries beyond `max_entries`; persistent backends
  /// may ignore it (the filesystem is the capacity owner there).
  virtual void Trim(size_t max_entries) { (void)max_entries; }

  /// Called by the session when an entry this backend served (a counted
  /// hit) failed rehydration and was discarded, so the counters tell the
  /// drift story instead of silently reporting hits with zero reuse.
  virtual void NoteRehydrationRejected() {}

  virtual Counters counters() const { return Counters{}; }
};

/// Emits one backend's counters as registry samples labeled
/// `backend="<label>"`. The registry series re-derive the counts so the
/// invariant `gets == hits + misses + io_failures` holds exactly: the
/// native Counters treat an io_failure as a kind of miss (misses includes
/// it), so the emitted misses series is genuine absences only.
void AppendCacheCounterSamples(const PartitionCacheBackend::Counters& c,
                               const char* label,
                               std::vector<telemetry::MetricSample>* out);

/// The session's historical in-process cache: an LRU-stamped map. Entries
/// are live objects (shared COW views), so Get returns them without
/// rehydration.
class InMemoryCacheBackend : public PartitionCacheBackend {
 public:
  InMemoryCacheBackend();

  Status Get(const std::string& key, Fetched* out) override;
  Status Put(const std::string& key,
             const pipeline::PartitionSearchResult& result) override;
  void Clear() override;
  size_t Size() const override;
  void Trim(size_t max_entries) override;
  void NoteRehydrationRejected() override;
  Counters counters() const override;

 private:
  struct Entry {
    pipeline::PartitionSearchResult result;
    uint64_t last_used = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t use_counter_ = 0;
  Counters counters_;
  // Last member: unregisters before counters_/mu_ die.
  telemetry::CollectorHandle metrics_;
};

/// One file per canonical key under `root`, named by the hex of the key's
/// 128-bit hash (keys themselves are long binary canonical strings; the
/// embedded key is verified on load, so a filename collision degrades to a
/// miss). See the header comment for the contention semantics.
class DirCacheBackend : public PartitionCacheBackend {
 public:
  /// Creates `root` (and parents) when absent. `identity` tags every file
  /// written and gates every file read. Temp files older than
  /// `reap_temp_older_than_sec` under the root are removed (and counted in
  /// Counters::temp_files_reaped): they are writes orphaned by a crashed
  /// process — live writers rename within milliseconds — and without the
  /// sweep a crash-looping job leaks one per attempt forever. Pass <= 0 to
  /// disable the sweep (tests exercising racing writers do).
  DirCacheBackend(std::string root, const CacheIdentity& identity,
                  double reap_temp_older_than_sec = 3600.0);

  Status Get(const std::string& key, Fetched* out) override;
  Status Put(const std::string& key,
             const pipeline::PartitionSearchResult& result) override;
  /// Removes `key`'s entry file (this identity's), so a poisoned entry is
  /// a one-time miss instead of a rehydration-rejection on every session.
  Status Invalidate(const std::string& key) override;
  void NoteRehydrationRejected() override;
  /// Removes every cache entry file under the root — all identities, plus
  /// any crash-orphaned temp files (the caller owns the directory).
  void Clear() override;
  /// Counts entry files under the root (any identity).
  size_t Size() const override;
  Counters counters() const override;

  const std::string& root() const { return root_; }
  const CacheIdentity& identity() const { return identity_; }

 private:
  std::string PathForKey(const std::string& key) const;

  std::string root_;
  CacheIdentity identity_;
  mutable std::mutex mu_;  // guards counters_ only
  Counters counters_;
  // Last member: unregisters before counters_/mu_ die.
  telemetry::CollectorHandle metrics_;
};

}  // namespace rdfviews::vsel::serialize

#endif  // RDFVIEWS_VSEL_SERIALIZE_PARTITION_CACHE_H_
