#include "vsel/serialize/serialize.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "rdf/statistics.h"

namespace rdfviews::vsel::serialize {

namespace {

constexpr uint32_t kPartitionOutcomeMagic = 0x4F505652;  // "RVPO"
constexpr uint32_t kRecommendationMagic = 0x43525652;    // "RVRC"

/// Guard against stack exhaustion on hostile expression nesting: real
/// rewritings are a few levels deep (select/project over joins of scans);
/// anything deeper than this in a file is rejected as corrupt.
constexpr int kMaxExprDepth = 4096;

void SerializeTerm(const cq::Term& t, ByteWriter* w) {
  w->U8(t.is_var() ? 0 : 1);
  w->U32(t.is_var() ? t.var() : t.constant());
}

cq::Term DeserializeTerm(ByteReader* r) {
  uint8_t tag = r->U8();
  uint32_t value = r->U32();
  return tag == 0 ? cq::Term::Var(value)
                  : cq::Term::Const(static_cast<rdf::TermId>(value));
}

void SerializeCondition(const engine::Condition& c, ByteWriter* w) {
  w->U32(c.lhs);
  w->U8(c.rhs_is_const ? 1 : 0);
  w->U32(c.rhs_is_const ? c.const_rhs : c.var_rhs);
}

engine::Condition DeserializeCondition(ByteReader* r) {
  cq::VarId lhs = r->U32();
  bool is_const = r->U8() != 0;
  uint32_t rhs = r->U32();
  return is_const ? engine::Condition::Eq(lhs, rhs)
                  : engine::Condition::EqVar(lhs, rhs);
}

Result<engine::ExprPtr> DeserializeExprAtDepth(ByteReader* r, int depth);

Result<std::vector<engine::ExprPtr>> DeserializeChildren(ByteReader* r,
                                                         int depth,
                                                         uint64_t count) {
  std::vector<engine::ExprPtr> children;
  children.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Result<engine::ExprPtr> child = DeserializeExprAtDepth(r, depth);
    if (!child.ok()) return child.status();
    children.push_back(std::move(*child));
  }
  return children;
}

Result<engine::ExprPtr> DeserializeExprAtDepth(ByteReader* r, int depth) {
  if (depth > kMaxExprDepth) {
    return Status::ParseError("expression nesting exceeds " +
                              std::to_string(kMaxExprDepth));
  }
  const uint8_t kind = r->U8();
  if (r->failed()) return Status::ParseError("truncated expression");
  switch (static_cast<engine::Expr::Kind>(kind)) {
    case engine::Expr::Kind::kScan: {
      uint32_t view_id = r->U32();
      uint64_t n = r->Count(4);
      std::vector<cq::VarId> columns;
      columns.reserve(n);
      for (uint64_t i = 0; i < n; ++i) columns.push_back(r->U32());
      if (r->failed()) return Status::ParseError("truncated scan");
      return engine::Expr::Scan(view_id, std::move(columns));
    }
    case engine::Expr::Kind::kSelect: {
      uint64_t n = r->Count(9);
      std::vector<engine::Condition> conditions;
      conditions.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        conditions.push_back(DeserializeCondition(r));
      }
      Result<engine::ExprPtr> child = DeserializeExprAtDepth(r, depth + 1);
      if (!child.ok()) return child.status();
      if (r->failed()) return Status::ParseError("truncated select");
      return engine::Expr::Select(std::move(*child), std::move(conditions));
    }
    case engine::Expr::Kind::kProject: {
      uint64_t n = r->Count(4);
      std::vector<cq::VarId> columns;
      columns.reserve(n);
      for (uint64_t i = 0; i < n; ++i) columns.push_back(r->U32());
      Result<engine::ExprPtr> child = DeserializeExprAtDepth(r, depth + 1);
      if (!child.ok()) return child.status();
      if (r->failed()) return Status::ParseError("truncated project");
      return engine::Expr::Project(std::move(*child), std::move(columns));
    }
    case engine::Expr::Kind::kJoin: {
      uint64_t n = r->Count(8);
      std::vector<std::pair<cq::VarId, cq::VarId>> pairs;
      pairs.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        cq::VarId a = r->U32();
        cq::VarId b = r->U32();
        pairs.emplace_back(a, b);
      }
      Result<engine::ExprPtr> left = DeserializeExprAtDepth(r, depth + 1);
      if (!left.ok()) return left.status();
      Result<engine::ExprPtr> right = DeserializeExprAtDepth(r, depth + 1);
      if (!right.ok()) return right.status();
      if (r->failed()) return Status::ParseError("truncated join");
      return engine::Expr::Join(std::move(*left), std::move(*right),
                                std::move(pairs));
    }
    case engine::Expr::Kind::kRename: {
      uint64_t n = r->Count(8);
      std::unordered_map<cq::VarId, cq::VarId> mapping;
      mapping.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        cq::VarId from = r->U32();
        cq::VarId to = r->U32();
        if (!mapping.emplace(from, to).second) {
          return Status::ParseError("duplicate rename source column");
        }
      }
      Result<engine::ExprPtr> child = DeserializeExprAtDepth(r, depth + 1);
      if (!child.ok()) return child.status();
      if (r->failed()) return Status::ParseError("truncated rename");
      return engine::Expr::Rename(std::move(*child), std::move(mapping));
    }
    case engine::Expr::Kind::kUnion: {
      uint64_t n = r->Count(1);
      if (n == 0) return Status::ParseError("union with no children");
      Result<std::vector<engine::ExprPtr>> children =
          DeserializeChildren(r, depth + 1, n);
      if (!children.ok()) return children.status();
      return engine::Expr::Union(std::move(*children));
    }
    case engine::Expr::Kind::kArrange: {
      uint64_t n = r->Count(9);  // exact wire size: U8 + U32 + U32
      std::vector<engine::ArrangeCol> spec;
      spec.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        engine::ArrangeCol col;
        col.is_const = r->U8() != 0;
        uint32_t payload = r->U32();
        if (col.is_const) {
          col.value = payload;
        } else {
          col.source = payload;
        }
        col.output_name = r->U32();
        spec.push_back(col);
      }
      Result<engine::ExprPtr> child = DeserializeExprAtDepth(r, depth + 1);
      if (!child.ok()) return child.status();
      if (r->failed()) return Status::ParseError("truncated arrange");
      return engine::Expr::Arrange(std::move(*child), std::move(spec));
    }
  }
  return Status::ParseError("unknown expression kind " +
                            std::to_string(kind));
}

/// Largest variable id named anywhere in an expression tree (scan and
/// project columns, condition operands, join pairs, rename endpoints,
/// arrange sources and outputs). Used to validate persisted id counters.
void MaxVarInExpr(const engine::Expr& e, bool* any, cq::VarId* max_var) {
  auto note = [&](cq::VarId v) {
    if (!*any || v > *max_var) *max_var = v;
    *any = true;
  };
  switch (e.kind()) {
    case engine::Expr::Kind::kScan:
      for (cq::VarId c : e.scan_columns()) note(c);
      break;
    case engine::Expr::Kind::kSelect:
      for (const engine::Condition& c : e.conditions()) {
        note(c.lhs);
        if (!c.rhs_is_const) note(c.var_rhs);
      }
      break;
    case engine::Expr::Kind::kProject:
      for (cq::VarId c : e.project_columns()) note(c);
      break;
    case engine::Expr::Kind::kJoin:
      for (const auto& [a, b] : e.join_pairs()) {
        note(a);
        note(b);
      }
      break;
    case engine::Expr::Kind::kRename:
      for (const auto& [from, to] : e.rename_map()) {
        note(from);
        note(to);
      }
      break;
    case engine::Expr::Kind::kUnion:
      break;
    case engine::Expr::Kind::kArrange:
      for (const engine::ArrangeCol& col : e.arrange_spec()) {
        if (!col.is_const) note(col.source);
        note(col.output_name);
      }
      break;
  }
  for (const engine::ExprPtr& child : e.children()) {
    MaxVarInExpr(*child, any, max_var);
  }
}

/// Bottom-up schema check of a deserialized expression: every operator's
/// referenced columns must resolve in its input's output schema and union
/// children must agree on width — exactly the invariants the executor
/// fatally asserts (engine/executor.cc), which for a fabricated blob must
/// surface as a bad file at load time, not a crash in the consumer.
/// Returns the node's output columns (mirroring Expr::OutputColumns).
/// Depth is bounded: the tree came out of DeserializeExprAtDepth.
Result<std::vector<cq::VarId>> ValidateExprSchema(const engine::Expr& e) {
  auto has = [](const std::vector<cq::VarId>& cols, cq::VarId v) {
    return std::find(cols.begin(), cols.end(), v) != cols.end();
  };
  switch (e.kind()) {
    case engine::Expr::Kind::kScan:
      return e.scan_columns();
    case engine::Expr::Kind::kSelect: {
      Result<std::vector<cq::VarId>> child = ValidateExprSchema(*e.child());
      if (!child.ok()) return child.status();
      for (const engine::Condition& c : e.conditions()) {
        if (!has(*child, c.lhs) ||
            (!c.rhs_is_const && !has(*child, c.var_rhs))) {
          return Status::ParseError(
              "selection on a column absent from its input");
        }
      }
      return child;
    }
    case engine::Expr::Kind::kProject: {
      Result<std::vector<cq::VarId>> child = ValidateExprSchema(*e.child());
      if (!child.ok()) return child.status();
      for (cq::VarId c : e.project_columns()) {
        if (!has(*child, c)) {
          return Status::ParseError(
              "projection on a column absent from its input");
        }
      }
      return e.project_columns();
    }
    case engine::Expr::Kind::kJoin: {
      Result<std::vector<cq::VarId>> left = ValidateExprSchema(*e.left());
      if (!left.ok()) return left.status();
      Result<std::vector<cq::VarId>> right = ValidateExprSchema(*e.right());
      if (!right.ok()) return right.status();
      for (const auto& [a, b] : e.join_pairs()) {
        if (!has(*left, a) || !has(*right, b)) {
          return Status::ParseError(
              "join pair on columns absent from its inputs");
        }
      }
      std::vector<cq::VarId> cols = std::move(*left);
      for (cq::VarId c : *right) {
        if (!has(cols, c)) cols.push_back(c);
      }
      return cols;
    }
    case engine::Expr::Kind::kRename: {
      Result<std::vector<cq::VarId>> child = ValidateExprSchema(*e.child());
      if (!child.ok()) return child.status();
      for (cq::VarId& c : *child) {
        auto it = e.rename_map().find(c);
        if (it != e.rename_map().end()) c = it->second;
      }
      return child;
    }
    case engine::Expr::Kind::kUnion: {
      Result<std::vector<cq::VarId>> first =
          ValidateExprSchema(*e.children()[0]);
      if (!first.ok()) return first.status();
      for (size_t i = 1; i < e.children().size(); ++i) {
        Result<std::vector<cq::VarId>> part =
            ValidateExprSchema(*e.children()[i]);
        if (!part.ok()) return part.status();
        if (part->size() != first->size()) {
          return Status::ParseError("union children with mismatched widths");
        }
      }
      return first;
    }
    case engine::Expr::Kind::kArrange: {
      Result<std::vector<cq::VarId>> child = ValidateExprSchema(*e.child());
      if (!child.ok()) return child.status();
      std::vector<cq::VarId> cols;
      cols.reserve(e.arrange_spec().size());
      for (const engine::ArrangeCol& col : e.arrange_spec()) {
        if (!col.is_const && !has(*child, col.source)) {
          return Status::ParseError(
              "arrange on a column absent from its input");
        }
        cols.push_back(col.output_name);
      }
      return cols;
    }
  }
  return Status::ParseError("unknown expression kind");
}

/// Appends the 128-bit digest of everything written so far, sealing the
/// blob against corruption.
std::string SealBlob(ByteWriter w) {
  const std::string& body = w.bytes();
  Hash128 sum = HashBytes128(body.data(), body.size());
  w.U64(sum.lo);
  w.U64(sum.hi);
  return w.TakeBytes();
}

/// Validates the common blob envelope: magic, format version, checksum and
/// identity, in an order that reports the most specific failure (a wrong
/// magic is "not one of ours", a wrong version is a format skew, a checksum
/// mismatch is corruption, a wrong identity is a different environment).
/// `identity == nullptr` skips the identity comparison (the peek path).
/// On success returns a reader positioned at the payload, spanning
/// everything between the header and the trailing digest.
Result<ByteReader> OpenBlob(std::string_view bytes, uint32_t magic,
                            const CacheIdentity* identity,
                            const char* what) {
  // Header (8) + identity (16) + checksum (16).
  if (bytes.size() < 40) {
    return Status::ParseError(std::string("truncated ") + what);
  }
  ByteReader header(bytes);
  if (header.U32() != magic) {
    return Status::ParseError(std::string("not a serialized ") + what);
  }
  uint32_t version = header.U32();
  if (version != kFormatVersion) {
    return Status::ParseError(
        std::string(what) + " format version " + std::to_string(version) +
        " (this build reads " + std::to_string(kFormatVersion) + ")");
  }
  Hash128 sum =
      HashBytes128(bytes.data(), bytes.size() - 2 * sizeof(uint64_t));
  ByteReader tail(bytes.substr(bytes.size() - 2 * sizeof(uint64_t)));
  Hash128 stored{tail.U64(), tail.U64()};
  if (stored != sum) {
    return Status::ParseError(std::string("corrupted ") + what +
                              " (checksum mismatch)");
  }
  uint64_t store_tag = header.U64();
  uint64_t config_tag = header.U64();
  if (identity != nullptr && (store_tag != identity->store_tag ||
                              config_tag != identity->config_tag)) {
    return Status::InvalidArgument(
        std::string(what) +
        " was produced under a different store / configuration identity");
  }
  return ByteReader(
      bytes.substr(header.pos(), bytes.size() - header.pos() - 16));
}

void WriteBlobHeader(uint32_t magic, const CacheIdentity& identity,
                     ByteWriter* w) {
  w->U32(magic);
  w->U32(kFormatVersion);
  w->U64(identity.store_tag);
  w->U64(identity.config_tag);
}

}  // namespace

CacheIdentity ComputeCacheIdentity(const rdf::TripleStore& store,
                                   const SelectorOptions& options) {
  CacheIdentity id;
  id.store_tag = rdf::SnapshotStoreTag(store);
  size_t seed = 0x52445643;  // "RDVC"
  HashCombine(&seed, static_cast<size_t>(options.strategy));
  HashCombine(&seed, options.heuristics.avf);
  HashCombine(&seed, options.heuristics.stop_var);
  HashCombine(&seed, options.heuristics.stop_tt);
  HashCombine(&seed, static_cast<size_t>(options.heuristics.vb_overlap));
  HashCombine(&seed, options.heuristics.vb_overlap_max_atoms);
  auto combine_double = [&seed](double v) {
    uint64_t bits;
    __builtin_memcpy(&bits, &v, sizeof(bits));
    HashCombine(&seed, static_cast<size_t>(bits));
  };
  combine_double(options.weights.cs);
  combine_double(options.weights.cr);
  combine_double(options.weights.cm);
  combine_double(options.weights.c1);
  combine_double(options.weights.c2);
  combine_double(options.weights.f);
  HashCombine(&seed, static_cast<size_t>(options.entailment));
  HashCombine(&seed, options.auto_calibrate_cm);
  // max_vb_depth changes which states a truncated DFS reaches, so cached
  // partition results are only valid under the same cap.
  HashCombine(&seed, options.limits.max_vb_depth);
  id.config_tag = Mix64(static_cast<uint64_t>(seed));
  return id;
}

std::string IdentityKeyBytes(const CacheIdentity& identity) {
  std::string bytes;
  bytes.reserve(16);
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(
        static_cast<char>((identity.store_tag >> (8 * i)) & 0xff));
    bytes.push_back(
        static_cast<char>((identity.config_tag >> (8 * i)) & 0xff));
  }
  return bytes;
}

void SerializeQuery(const cq::ConjunctiveQuery& q, ByteWriter* w) {
  w->Str(q.name());
  w->U64(q.head().size());
  for (const cq::Term& t : q.head()) SerializeTerm(t, w);
  w->U64(q.atoms().size());
  for (const cq::Atom& a : q.atoms()) {
    SerializeTerm(a.s, w);
    SerializeTerm(a.p, w);
    SerializeTerm(a.o, w);
  }
}

Result<cq::ConjunctiveQuery> DeserializeQuery(ByteReader* r) {
  std::string name = r->Str();
  uint64_t num_head = r->Count(5);
  std::vector<cq::Term> head;
  head.reserve(num_head);
  for (uint64_t i = 0; i < num_head; ++i) head.push_back(DeserializeTerm(r));
  uint64_t num_atoms = r->Count(15);
  std::vector<cq::Atom> atoms;
  atoms.reserve(num_atoms);
  for (uint64_t i = 0; i < num_atoms; ++i) {
    cq::Atom a;
    a.s = DeserializeTerm(r);
    a.p = DeserializeTerm(r);
    a.o = DeserializeTerm(r);
    atoms.push_back(a);
  }
  if (r->failed()) return Status::ParseError("truncated query");
  return cq::ConjunctiveQuery(std::move(name), std::move(head),
                              std::move(atoms));
}

void SerializeUnion(const cq::UnionOfQueries& u, ByteWriter* w) {
  w->Str(u.name());
  w->U64(u.size());
  for (const cq::ConjunctiveQuery& q : u.disjuncts()) SerializeQuery(q, w);
}

Result<cq::UnionOfQueries> DeserializeUnion(ByteReader* r) {
  std::string name = r->Str();
  uint64_t n = r->Count(16);
  cq::UnionOfQueries u(std::move(name));
  size_t arity = 0;
  for (uint64_t i = 0; i < n; ++i) {
    Result<cq::ConjunctiveQuery> q = DeserializeQuery(r);
    if (!q.ok()) return q.status();
    if (i == 0) {
      arity = q->head().size();
    } else if (q->head().size() != arity) {
      return Status::ParseError("union disjuncts with mismatched arities");
    }
    if (!u.Add(std::move(*q))) {
      return Status::ParseError("duplicate disjunct in serialized union");
    }
  }
  return u;
}

void SerializeExpr(const engine::ExprPtr& expr, ByteWriter* w) {
  const engine::Expr& e = *expr;
  w->U8(static_cast<uint8_t>(e.kind()));
  switch (e.kind()) {
    case engine::Expr::Kind::kScan:
      w->U32(e.view_id());
      w->U64(e.scan_columns().size());
      for (cq::VarId c : e.scan_columns()) w->U32(c);
      return;
    case engine::Expr::Kind::kSelect:
      w->U64(e.conditions().size());
      for (const engine::Condition& c : e.conditions()) {
        SerializeCondition(c, w);
      }
      SerializeExpr(e.child(), w);
      return;
    case engine::Expr::Kind::kProject:
      w->U64(e.project_columns().size());
      for (cq::VarId c : e.project_columns()) w->U32(c);
      SerializeExpr(e.child(), w);
      return;
    case engine::Expr::Kind::kJoin:
      w->U64(e.join_pairs().size());
      for (const auto& [a, b] : e.join_pairs()) {
        w->U32(a);
        w->U32(b);
      }
      SerializeExpr(e.left(), w);
      SerializeExpr(e.right(), w);
      return;
    case engine::Expr::Kind::kRename: {
      // Hash-map iteration order is not deterministic; write sorted so the
      // same tree always yields the same bytes (stable checksums and
      // content-addressed dedup downstream).
      std::vector<std::pair<cq::VarId, cq::VarId>> entries(
          e.rename_map().begin(), e.rename_map().end());
      std::sort(entries.begin(), entries.end());
      w->U64(entries.size());
      for (const auto& [from, to] : entries) {
        w->U32(from);
        w->U32(to);
      }
      SerializeExpr(e.child(), w);
      return;
    }
    case engine::Expr::Kind::kUnion:
      w->U64(e.children().size());
      for (const engine::ExprPtr& child : e.children()) {
        SerializeExpr(child, w);
      }
      return;
    case engine::Expr::Kind::kArrange:
      w->U64(e.arrange_spec().size());
      for (const engine::ArrangeCol& col : e.arrange_spec()) {
        w->U8(col.is_const ? 1 : 0);
        w->U32(col.is_const ? static_cast<uint32_t>(col.value) : col.source);
        w->U32(col.output_name);
      }
      SerializeExpr(e.child(), w);
      return;
  }
}

Result<engine::ExprPtr> DeserializeExpr(ByteReader* r) {
  return DeserializeExprAtDepth(r, 0);
}

void SerializeView(const View& v, ByteWriter* w) {
  w->U32(v.id);
  SerializeQuery(v.def, w);
}

Result<ViewPtr> DeserializeView(ByteReader* r) {
  View v;
  v.id = r->U32();
  Result<cq::ConjunctiveQuery> def = DeserializeQuery(r);
  if (!def.ok()) return def.status();
  v.def = std::move(*def);
  // A view's head must be distinct variables (its relation's column names);
  // the def must be a well-formed query, or costing / canonicalization
  // downstream would trip invariants instead of reporting a bad file.
  std::unordered_set<cq::VarId> head_vars;
  for (const cq::Term& t : v.def.head()) {
    if (t.is_const() || !head_vars.insert(t.var()).second) {
      return Status::ParseError("view head is not distinct variables");
    }
  }
  Status valid = v.def.Validate();
  if (!valid.ok()) {
    return Status::ParseError("invalid view definition: " + valid.message());
  }
  return MakeView(std::move(v));
}

void SerializeState(const State& s, ByteWriter* w) {
  w->U64(s.views().size());
  for (const View& v : s.views()) SerializeView(v, w);
  w->U64(s.rewritings().size());
  for (const engine::ExprPtr& e : s.rewritings()) SerializeExpr(e, w);
  w->U32(s.next_var());
  w->U32(s.next_view_id());
}

Result<State> DeserializeState(ByteReader* r) {
  State s;
  uint64_t num_views = r->Count(16);
  for (uint64_t i = 0; i < num_views; ++i) {
    Result<ViewPtr> v = DeserializeView(r);
    if (!v.ok()) return v.status();
    if (s.ViewIndexById((*v)->id) >= 0) {
      return Status::ParseError("duplicate view id in serialized state");
    }
    s.AddView(std::move(*v));
  }
  uint64_t num_rewritings = r->Count(2);
  std::vector<engine::ExprPtr> rewritings;
  rewritings.reserve(num_rewritings);
  for (uint64_t i = 0; i < num_rewritings; ++i) {
    Result<engine::ExprPtr> e = DeserializeExpr(r);
    if (!e.ok()) return e.status();
    // Every scan must resolve to a view of this state *and* carry exactly
    // that view's column count — costing and merge re-basing would chase
    // dangling ids otherwise, and the executor fatally asserts relation
    // width against scan width.
    bool dangling = false;
    (*e)->ForEachScan([&](const engine::Expr& scan) {
      int idx = s.ViewIndexById(scan.view_id());
      if (idx < 0 ||
          scan.scan_columns().size() !=
              s.views()[static_cast<size_t>(idx)].def.head().size()) {
        dangling = true;
      }
    });
    if (dangling) {
      return Status::ParseError(
          "rewriting scan does not match any state view");
    }
    Result<std::vector<cq::VarId>> schema = ValidateExprSchema(**e);
    if (!schema.ok()) return schema.status();
    rewritings.push_back(std::move(*e));
  }
  s.SetRewritings(std::move(rewritings));
  s.set_next_var(r->U32());
  s.set_next_view_id(r->U32());
  if (r->failed()) return Status::ParseError("truncated state");
  // The id counters must dominate every id actually used — the merge stage
  // offsets later partitions by next_var / allocates ids from next_view_id,
  // so a too-small fabricated counter (the checksum is integrity, not
  // authenticity) would silently collide ids across partitions — and must
  // not exceed the used ids by more than a generous slack either, or a
  // huge fabricated counter would wrap the merge stage's uint32 offset
  // accumulation instead of failing here. Legitimate states carry at most
  // a few hundred discarded-intermediate allocations above their max used
  // id (search depth x vars per transition), far under the slack.
  constexpr uint64_t kMaxIdSlack = 1u << 20;
  bool any_var = false;
  cq::VarId max_var = 0;
  uint32_t max_view_id = 0;
  for (const View& v : s.views()) {
    cq::VarId m = v.def.MaxVarId();
    if (m > 0 || !v.def.BodyVars().empty() || !v.def.HeadVars().empty()) {
      if (!any_var || m > max_var) max_var = m;
      any_var = true;
    }
    max_view_id = std::max(max_view_id, v.id);
    if (v.id >= s.next_view_id()) {
      return Status::ParseError("state view id beyond next_view_id");
    }
  }
  for (const engine::ExprPtr& e : s.rewritings()) {
    MaxVarInExpr(*e, &any_var, &max_var);
  }
  if (any_var && max_var >= s.next_var()) {
    return Status::ParseError("state variable id beyond next_var");
  }
  if (s.next_var() > static_cast<uint64_t>(any_var ? max_var : 0) +
                         kMaxIdSlack ||
      s.next_view_id() > static_cast<uint64_t>(max_view_id) + kMaxIdSlack) {
    return Status::ParseError("implausibly large state id counter");
  }
  return s;
}

void SerializeStats(const SearchStats& stats, ByteWriter* w) {
  w->U64(stats.created);
  w->U64(stats.duplicates);
  w->U64(stats.discarded);
  w->U64(stats.explored);
  w->U64(stats.transitions_applied);
  w->F64(stats.initial_cost);
  w->F64(stats.best_cost);
  w->U64(stats.best_trace.size());
  for (const auto& [t, cost] : stats.best_trace) {
    w->F64(t);
    w->F64(cost);
  }
  uint8_t flags = 0;
  if (stats.completed) flags |= 1;
  if (stats.memory_exhausted) flags |= 2;
  if (stats.time_exhausted) flags |= 4;
  if (stats.cancelled) flags |= 8;
  w->U8(flags);
  w->F64(stats.elapsed_sec);
}

Result<SearchStats> DeserializeStats(ByteReader* r) {
  SearchStats stats;
  stats.created = r->U64();
  stats.duplicates = r->U64();
  stats.discarded = r->U64();
  stats.explored = r->U64();
  stats.transitions_applied = r->U64();
  stats.initial_cost = r->F64();
  stats.best_cost = r->F64();
  uint64_t trace = r->Count(16);
  stats.best_trace.reserve(trace);
  for (uint64_t i = 0; i < trace; ++i) {
    double t = r->F64();
    double cost = r->F64();
    stats.best_trace.emplace_back(t, cost);
  }
  uint8_t flags = r->U8();
  stats.completed = (flags & 1) != 0;
  stats.memory_exhausted = (flags & 2) != 0;
  stats.time_exhausted = (flags & 4) != 0;
  stats.cancelled = (flags & 8) != 0;
  stats.elapsed_sec = r->F64();
  if (r->failed()) return Status::ParseError("truncated search stats");
  return stats;
}

std::string SerializePartitionOutcome(
    std::string_view key, const pipeline::PartitionSearchResult& outcome,
    const CacheIdentity& identity) {
  ByteWriter w;
  WriteBlobHeader(kPartitionOutcomeMagic, identity, &w);
  w.Str(key);
  w.F64(outcome.initial_cost);
  SerializeStats(outcome.search.stats, &w);
  SerializeState(outcome.search.best, &w);
  return SealBlob(std::move(w));
}

Result<pipeline::PartitionSearchResult> DeserializePartitionOutcome(
    std::string_view bytes, std::string_view expected_key,
    const CacheIdentity& identity) {
  Result<ByteReader> payload = OpenBlob(bytes, kPartitionOutcomeMagic,
                                        &identity, "partition outcome");
  if (!payload.ok()) return payload.status();
  ByteReader& r = *payload;
  std::string key = r.Str();
  if (r.failed()) return Status::ParseError("truncated partition outcome");
  if (!expected_key.empty() && key != expected_key) {
    return Status::InvalidArgument(
        "partition outcome holds a different canonical workload key");
  }
  pipeline::PartitionSearchResult outcome;
  outcome.initial_cost = r.F64();
  Result<SearchStats> stats = DeserializeStats(&r);
  if (!stats.ok()) return stats.status();
  outcome.search.stats = std::move(*stats);
  Result<State> best = DeserializeState(&r);
  if (!best.ok()) return best.status();
  outcome.search.best = std::move(*best);
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after partition outcome");
  }
  return outcome;
}

Result<std::string> PeekPartitionOutcomeKey(std::string_view bytes) {
  // Peeking must not trust unvalidated bytes either: the full envelope
  // check runs, minus the identity comparison (any identity peeks).
  Result<ByteReader> payload = OpenBlob(bytes, kPartitionOutcomeMagic,
                                        /*identity=*/nullptr,
                                        "partition outcome");
  if (!payload.ok()) return payload.status();
  std::string key = payload->Str();
  if (payload->failed()) {
    return Status::ParseError("truncated partition outcome");
  }
  return key;
}

std::string SerializeRecommendation(const Recommendation& rec,
                                    const CacheIdentity& identity) {
  ByteWriter w;
  WriteBlobHeader(kRecommendationMagic, identity, &w);
  w.U8(static_cast<uint8_t>(rec.entailment));
  w.U64(rec.view_definitions.size());
  for (size_t i = 0; i < rec.view_definitions.size(); ++i) {
    w.U32(rec.view_ids[i]);
    w.U64(rec.view_columns[i].size());
    for (cq::VarId c : rec.view_columns[i]) w.U32(c);
    SerializeUnion(rec.view_definitions[i], &w);
  }
  w.U64(rec.rewritings.size());
  for (const engine::ExprPtr& e : rec.rewritings) SerializeExpr(e, &w);
  SerializeState(rec.best_state, &w);
  SerializeStats(rec.stats, &w);
  return SealBlob(std::move(w));
}

Result<Recommendation> DeserializeRecommendation(
    std::string_view bytes, const CacheIdentity& identity,
    std::shared_ptr<const rdf::TripleStore> materialization_store) {
  Result<ByteReader> payload =
      OpenBlob(bytes, kRecommendationMagic, &identity, "recommendation");
  if (!payload.ok()) return payload.status();
  ByteReader& r = *payload;
  Recommendation rec;
  rec.materialization_store = std::move(materialization_store);
  uint8_t entailment = r.U8();
  if (entailment > static_cast<uint8_t>(EntailmentMode::kPostReformulate)) {
    return Status::ParseError("unknown entailment mode in recommendation");
  }
  rec.entailment = static_cast<EntailmentMode>(entailment);
  uint64_t num_views = r.Count(32);
  rec.view_definitions.reserve(num_views);
  rec.view_columns.reserve(num_views);
  rec.view_ids.reserve(num_views);
  for (uint64_t i = 0; i < num_views; ++i) {
    rec.view_ids.push_back(r.U32());
    uint64_t num_cols = r.Count(4);
    std::vector<cq::VarId> cols;
    cols.reserve(num_cols);
    for (uint64_t c = 0; c < num_cols; ++c) cols.push_back(r.U32());
    rec.view_columns.push_back(std::move(cols));
    Result<cq::UnionOfQueries> u = DeserializeUnion(&r);
    if (!u.ok()) return u.status();
    // The materializer asserts each view relation's width against
    // view_columns, and evaluates at least one disjunct: both must be
    // load-time rejections for a tampered blob, not client crashes.
    if (u->empty()) {
      return Status::ParseError("recommendation view with no disjuncts");
    }
    if (u->disjuncts()[0].head().size() != rec.view_columns.back().size()) {
      return Status::ParseError(
          "recommendation view columns do not match its definition arity");
    }
    rec.view_definitions.push_back(std::move(*u));
  }
  uint64_t num_rewritings = r.Count(2);
  rec.rewritings.reserve(num_rewritings);
  std::unordered_map<uint32_t, size_t> view_widths;
  for (size_t i = 0; i < rec.view_ids.size(); ++i) {
    // Mirrors DeserializeState: duplicate ids would let the width map
    // collapse entries and wave a wrong-width scan past the check below.
    if (!view_widths.try_emplace(rec.view_ids[i],
                                 rec.view_columns[i].size())
             .second) {
      return Status::ParseError("duplicate view id in recommendation");
    }
  }
  for (uint64_t i = 0; i < num_rewritings; ++i) {
    Result<engine::ExprPtr> e = DeserializeExpr(&r);
    if (!e.ok()) return e.status();
    // The client executes these over MaterializedViews addressed by
    // rec.view_ids, and the executor fatally asserts each scanned
    // relation's width: an unresolvable or wrong-width scan must be a bad
    // file here, not a crash in the client.
    bool dangling = false;
    (*e)->ForEachScan([&](const engine::Expr& scan) {
      auto it = view_widths.find(scan.view_id());
      if (it == view_widths.end() ||
          scan.scan_columns().size() != it->second) {
        dangling = true;
      }
    });
    if (dangling) {
      return Status::ParseError(
          "rewriting scan does not match any recommendation view");
    }
    Result<std::vector<cq::VarId>> schema = ValidateExprSchema(**e);
    if (!schema.ok()) return schema.status();
    rec.rewritings.push_back(std::move(*e));
  }
  Result<State> best = DeserializeState(&r);
  if (!best.ok()) return best.status();
  rec.best_state = std::move(*best);
  Result<SearchStats> stats = DeserializeStats(&r);
  if (!stats.ok()) return stats.status();
  rec.stats = std::move(*stats);
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after recommendation");
  }
  return rec;
}

std::string SerializeRecommendationCanonical(const Recommendation& rec,
                                             const CacheIdentity& identity) {
  // Cheap shallow copy: states, views and rewritings are shared pointers.
  Recommendation canonical = rec;
  canonical.stats.elapsed_sec = 0;
  canonical.stats.best_trace.clear();
  return SerializeRecommendation(canonical, identity);
}

void SerializeTuningConfig(const TuningConfig& o, ByteWriter* w) {
  w->U8(static_cast<uint8_t>(o.strategy));
  w->U8(o.heuristics.avf ? 1 : 0);
  w->U8(o.heuristics.stop_var ? 1 : 0);
  w->U8(o.heuristics.stop_tt ? 1 : 0);
  w->U32(static_cast<uint32_t>(o.heuristics.vb_overlap));
  w->U64(o.heuristics.vb_overlap_max_atoms);
  w->F64(o.limits.time_budget_sec);
  w->U64(o.limits.max_states);
  w->U64(o.limits.num_threads);
  w->U64(o.limits.max_vb_depth);
  w->F64(o.weights.cs);
  w->F64(o.weights.cr);
  w->F64(o.weights.cm);
  w->F64(o.weights.c1);
  w->F64(o.weights.c2);
  w->F64(o.weights.f);
  w->U8(o.auto_calibrate_cm ? 1 : 0);
  w->U8(static_cast<uint8_t>(o.entailment));
  w->U8(o.partition.enabled ? 1 : 0);
  w->U64(o.partition.max_partitions);
  w->U8(o.partition.parallel_partitions ? 1 : 0);
  w->U64(o.robust.retry.max_attempts);
  w->F64(o.robust.retry.initial_backoff_sec);
  w->F64(o.robust.retry.backoff_multiplier);
  w->F64(o.robust.retry.max_backoff_sec);
  w->U64(o.robust.retry.jitter_seed);
  w->F64(o.robust.partition_deadline_sec);
  w->U8(o.telemetry.trace ? 1 : 0);
}

Result<TuningConfig> DeserializeTuningConfig(ByteReader* r) {
  TuningConfig o;
  uint8_t strategy = r->U8();
  if (strategy > static_cast<uint8_t>(StrategyKind::kHeuristic21)) {
    return Status::ParseError("options hold an unknown strategy kind");
  }
  o.strategy = static_cast<StrategyKind>(strategy);
  o.heuristics.avf = r->U8() != 0;
  o.heuristics.stop_var = r->U8() != 0;
  o.heuristics.stop_tt = r->U8() != 0;
  o.heuristics.vb_overlap = static_cast<int>(r->U32());
  o.heuristics.vb_overlap_max_atoms = r->U64();
  o.limits.time_budget_sec = r->F64();
  o.limits.max_states = r->U64();
  o.limits.num_threads = r->U64();
  o.limits.max_vb_depth = r->U64();
  o.weights.cs = r->F64();
  o.weights.cr = r->F64();
  o.weights.cm = r->F64();
  o.weights.c1 = r->F64();
  o.weights.c2 = r->F64();
  o.weights.f = r->F64();
  o.auto_calibrate_cm = r->U8() != 0;
  uint8_t entailment = r->U8();
  if (entailment > static_cast<uint8_t>(EntailmentMode::kPostReformulate)) {
    return Status::ParseError("options hold an unknown entailment mode");
  }
  o.entailment = static_cast<EntailmentMode>(entailment);
  o.partition.enabled = r->U8() != 0;
  o.partition.max_partitions = r->U64();
  o.partition.parallel_partitions = r->U8() != 0;
  o.robust.retry.max_attempts = r->U64();
  o.robust.retry.initial_backoff_sec = r->F64();
  o.robust.retry.backoff_multiplier = r->F64();
  o.robust.retry.max_backoff_sec = r->F64();
  o.robust.retry.jitter_seed = r->U64();
  o.robust.partition_deadline_sec = r->F64();
  o.telemetry.trace = r->U8() != 0;
  if (r->failed()) return Status::ParseError("truncated options");
  return o;
}

}  // namespace rdfviews::vsel::serialize
