#include "vsel/serialize/tiered_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace rdfviews::vsel::serialize {

TieredCacheBackend::TieredCacheBackend(
    std::shared_ptr<PartitionCacheBackend> back, size_t front_capacity)
    : back_(std::move(back)), front_capacity_(front_capacity) {
  metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
      [this](std::vector<telemetry::MetricSample>* out) {
        AppendCacheCounterSamples(counters(), "tiered", out);
        telemetry::MetricSample hits;
        hits.name = "vsel_tiered_front_hits_total";
        hits.value = FrontHits();
        out->push_back(std::move(hits));
        telemetry::MetricSample promos;
        promos.name = "vsel_tiered_back_promotions_total";
        promos.value = BackPromotions();
        out->push_back(std::move(promos));
        telemetry::MetricSample entries;
        entries.name = "vsel_tiered_front_entries";
        entries.kind = telemetry::MetricKind::kGauge;
        entries.gauge_value = static_cast<int64_t>(FrontSize());
        out->push_back(std::move(entries));
      });
}

Status TieredCacheBackend::Get(const std::string& key, Fetched* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = front_.find(key);
    if (it != front_.end()) {
      it->second.last_used = ++use_counter_;
      ++counters_.hits;
      ++front_hits_;
      // Cheap copy: shared COW views / rewritings, like the in-memory
      // backend. needs_rehydration travels as cached (see the header).
      *out = it->second.fetched;
      return Status::OK();
    }
  }
  // Back I/O outside the lock: a slow directory or network tier must not
  // serialize every front hit behind it.
  Fetched fetched;
  Status back_status = back_->Get(key, &fetched);
  std::lock_guard<std::mutex> lock(mu_);
  if (!back_status.ok()) {
    ++counters_.misses;
    if (back_status.code() != StatusCode::kNotFound) ++counters_.io_failures;
    return back_status;
  }
  ++counters_.hits;
  if (front_capacity_ > 0) {
    ++back_promotions_;
    FrontEntry& e = front_[key];
    e.fetched = fetched;
    e.last_used = ++use_counter_;
    EvictToCapacityLocked(front_capacity_);
  }
  *out = std::move(fetched);
  return Status::OK();
}

Status TieredCacheBackend::Put(const std::string& key,
                               const pipeline::PartitionSearchResult& result) {
  Status back_status = back_->Put(key, result);
  std::lock_guard<std::mutex> lock(mu_);
  if (front_capacity_ > 0) {
    // The live entry needs no rehydration — it never left the process.
    FrontEntry& e = front_[key];
    e.fetched.result = result;
    e.fetched.needs_rehydration = false;
    e.last_used = ++use_counter_;
    EvictToCapacityLocked(front_capacity_);
  }
  if (back_status.ok()) {
    ++counters_.stored;
  } else {
    // The front still serves the entry this process's lifetime; the
    // failure only cost durability.
    ++counters_.store_failures;
  }
  return back_status;
}

Status TieredCacheBackend::Invalidate(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    front_.erase(key);
  }
  return back_->Invalidate(key);
}

void TieredCacheBackend::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    front_.clear();
  }
  back_->Clear();
}

size_t TieredCacheBackend::Size() const { return back_->Size(); }

void TieredCacheBackend::Trim(size_t max_entries) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    EvictToCapacityLocked(std::min(front_capacity_, max_entries));
  }
  back_->Trim(max_entries);
}

void TieredCacheBackend::NoteRehydrationRejected() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rehydration_rejected;
  }
  back_->NoteRehydrationRejected();
}

PartitionCacheBackend::Counters TieredCacheBackend::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t TieredCacheBackend::FrontSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return front_.size();
}

uint64_t TieredCacheBackend::FrontHits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return front_hits_;
}

uint64_t TieredCacheBackend::BackPromotions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return back_promotions_;
}

void TieredCacheBackend::EvictToCapacityLocked(size_t capacity) {
  while (front_.size() > capacity) {
    auto lru = front_.begin();
    for (auto it = std::next(front_.begin()); it != front_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    front_.erase(lru);
  }
}

}  // namespace rdfviews::vsel::serialize
