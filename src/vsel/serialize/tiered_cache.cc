#include "vsel/serialize/tiered_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace rdfviews::vsel::serialize {

TieredCacheBackend::TieredCacheBackend(
    std::shared_ptr<PartitionCacheBackend> back, size_t front_capacity)
    : back_(std::move(back)), front_capacity_(front_capacity) {
  metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
      [this](std::vector<telemetry::MetricSample>* out) {
        AppendCacheCounterSamples(counters(), "tiered", out);
        telemetry::MetricSample hits;
        hits.name = "vsel_tiered_front_hits_total";
        hits.value = FrontHits();
        out->push_back(std::move(hits));
        telemetry::MetricSample promos;
        promos.name = "vsel_tiered_back_promotions_total";
        promos.value = BackPromotions();
        out->push_back(std::move(promos));
        telemetry::MetricSample entries;
        entries.name = "vsel_tiered_front_entries";
        entries.kind = telemetry::MetricKind::kGauge;
        entries.gauge_value = static_cast<int64_t>(FrontSize());
        out->push_back(std::move(entries));
      });
}

std::optional<PartitionCacheBackend::Fetched> TieredCacheBackend::Get(
    const std::string& key, bool* io_failed) {
  if (io_failed != nullptr) *io_failed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = front_.find(key);
    if (it != front_.end()) {
      it->second.last_used = ++use_counter_;
      ++counters_.hits;
      ++front_hits_;
      // Cheap copy: shared COW views / rewritings, like the in-memory
      // backend. needs_rehydration travels as cached (see the header).
      return it->second.fetched;
    }
  }
  // Back I/O outside the lock: a slow directory or network tier must not
  // serialize every front hit behind it.
  bool back_io_failed = false;
  std::optional<Fetched> fetched = back_->Get(key, &back_io_failed);
  if (io_failed != nullptr) *io_failed = back_io_failed;
  std::lock_guard<std::mutex> lock(mu_);
  if (!fetched.has_value()) {
    ++counters_.misses;
    if (back_io_failed) ++counters_.io_failures;
    return std::nullopt;
  }
  ++counters_.hits;
  if (front_capacity_ > 0) {
    ++back_promotions_;
    FrontEntry& e = front_[key];
    e.fetched = *fetched;
    e.last_used = ++use_counter_;
    EvictToCapacityLocked(front_capacity_);
  }
  return fetched;
}

bool TieredCacheBackend::Put(const std::string& key,
                             const pipeline::PartitionSearchResult& result) {
  bool back_ok = back_->Put(key, result);
  std::lock_guard<std::mutex> lock(mu_);
  if (front_capacity_ > 0) {
    // The live entry needs no rehydration — it never left the process.
    FrontEntry& e = front_[key];
    e.fetched.result = result;
    e.fetched.needs_rehydration = false;
    e.last_used = ++use_counter_;
    EvictToCapacityLocked(front_capacity_);
  }
  if (back_ok) {
    ++counters_.stored;
  } else {
    // The front still serves the entry this process's lifetime; the
    // failure only cost durability.
    ++counters_.store_failures;
  }
  return back_ok;
}

void TieredCacheBackend::Invalidate(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    front_.erase(key);
  }
  back_->Invalidate(key);
}

void TieredCacheBackend::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    front_.clear();
  }
  back_->Clear();
}

size_t TieredCacheBackend::Size() const { return back_->Size(); }

void TieredCacheBackend::Trim(size_t max_entries) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    EvictToCapacityLocked(std::min(front_capacity_, max_entries));
  }
  back_->Trim(max_entries);
}

void TieredCacheBackend::NoteRehydrationRejected() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rehydration_rejected;
  }
  back_->NoteRehydrationRejected();
}

PartitionCacheBackend::Counters TieredCacheBackend::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t TieredCacheBackend::FrontSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return front_.size();
}

uint64_t TieredCacheBackend::FrontHits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return front_hits_;
}

uint64_t TieredCacheBackend::BackPromotions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return back_promotions_;
}

void TieredCacheBackend::EvictToCapacityLocked(size_t capacity) {
  while (front_.size() > capacity) {
    auto lru = front_.begin();
    for (auto it = std::next(front_.begin()); it != front_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    front_.erase(lru);
  }
}

}  // namespace rdfviews::vsel::serialize
