// Two-tier partition-result cache: an in-memory LRU front over a slower
// back backend (DirCacheBackend on a shared directory, a network backend,
// or any decorated stack of them), write-through on Put.
//
// The daemon serves many sessions whose updates revisit the same canonical
// workload keys; with a bare DirCacheBackend every revisit re-reads and
// re-decodes the entry file. The front keeps the *decoded* Fetched entry
// (live shared COW objects) in process memory, so a repeat Get costs one
// map lookup — the back is only consulted on a front miss, and a back hit
// is promoted into the front for the next caller.
//
// Coherence rules:
//   - Put writes through: the live entry lands in the front (served
//     without rehydration, like InMemoryCacheBackend) and the bytes go to
//     the back. A failed back Put is counted but does not evict the front
//     entry — the entry is correct, it just will not survive the process.
//   - A front entry promoted from the back keeps needs_rehydration = true:
//     it crossed a process boundary once, so every session that fetches it
//     must re-intern and re-cost it (the front saves the read + decode,
//     not the validation).
//   - Invalidate(key) — called by the session when a served entry fails
//     rehydration (identity or cost drift the tags missed) — evicts the
//     front copy and forwards to the back, so the poisoned entry degrades
//     to a back-tier re-validation instead of being served forever.
//   - Clear() clears both tiers; Trim(n) trims the front to
//     min(n, front_capacity) and forwards n to the back.
//
// Thread-safe like every backend (sessions of one daemon share one
// instance per cache identity). Counters describe the *tiered* view — a
// front hit is a hit — with the front/back split exposed through the
// registry series labeled backend="tiered".
#ifndef RDFVIEWS_VSEL_SERIALIZE_TIERED_CACHE_H_
#define RDFVIEWS_VSEL_SERIALIZE_TIERED_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/telemetry/metrics.h"
#include "vsel/serialize/partition_cache.h"

namespace rdfviews::vsel::serialize {

class TieredCacheBackend : public PartitionCacheBackend {
 public:
  /// `back` is the authoritative slow tier (owned). `front_capacity` caps
  /// the in-memory front; 0 disables the front entirely (every call passes
  /// straight through — useful for A/B measurement).
  explicit TieredCacheBackend(std::shared_ptr<PartitionCacheBackend> back,
                              size_t front_capacity = 256);

  Status Get(const std::string& key, Fetched* out) override;
  Status Put(const std::string& key,
             const pipeline::PartitionSearchResult& result) override;
  Status Invalidate(const std::string& key) override;
  void Clear() override;
  /// The back tier's entry count (the authoritative, durable population;
  /// the front is a subset plus at most the entries whose back Put failed).
  size_t Size() const override;
  void Trim(size_t max_entries) override;
  void NoteRehydrationRejected() override;
  Counters counters() const override;

  /// Front-tier observability: current entries and lifetime hit counts.
  size_t FrontSize() const;
  uint64_t FrontHits() const;
  uint64_t BackPromotions() const;

  PartitionCacheBackend* back() const { return back_.get(); }

 private:
  struct FrontEntry {
    Fetched fetched;
    uint64_t last_used = 0;
  };

  void EvictToCapacityLocked(size_t capacity);

  std::shared_ptr<PartitionCacheBackend> back_;
  const size_t front_capacity_;
  mutable std::mutex mu_;  // guards front_, use_counter_, counters_
  std::unordered_map<std::string, FrontEntry> front_;
  uint64_t use_counter_ = 0;
  Counters counters_;
  uint64_t front_hits_ = 0;
  uint64_t back_promotions_ = 0;
  // Last member: unregisters before the state it reads dies.
  telemetry::CollectorHandle metrics_;
};

}  // namespace rdfviews::vsel::serialize

#endif  // RDFVIEWS_VSEL_SERIALIZE_TIERED_CACHE_H_
