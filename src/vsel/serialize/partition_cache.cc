#include "vsel/serialize/partition_cache.h"

#include <cerrno>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/telemetry/trace.h"

namespace rdfviews::vsel::serialize {

namespace fs = std::filesystem;

namespace {

constexpr char kEntrySuffix[] = ".rvpo";
/// In-flight writes; a crash between write and rename orphans one, so
/// Clear() sweeps this extension too (Get/Size never look at them).
constexpr char kTempSuffix[] = ".tmp";

/// Reads a whole file into a string; nullopt on any failure. `io_error`
/// distinguishes why: false means the file simply does not exist (a
/// genuine cache miss), true means the storage layer misbehaved — open
/// failure other than ENOENT, or a read error mid-way — which a retrying
/// caller may reasonably try again.
std::optional<std::string> ReadFileBytes(const std::string& path,
                                         bool* io_error) {
  *io_error = false;
  if (!fault::Maybe(fault::sites::kDirCacheGetOpen).ok()) {
    *io_error = true;
    return std::nullopt;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *io_error = errno != ENOENT;
    return std::nullopt;
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (ok && !fault::Maybe(fault::sites::kDirCacheGetRead).ok()) ok = false;
  if (!ok) {
    *io_error = true;
    return std::nullopt;
  }
  return bytes;
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) std::remove(path.c_str());
  return ok;
}

}  // namespace

void AppendCacheCounterSamples(const PartitionCacheBackend::Counters& c,
                               const char* label,
                               std::vector<telemetry::MetricSample>* out) {
  const std::string labels = std::string("backend=\"") + label + "\"";
  auto add = [&](const char* name, uint64_t v) {
    telemetry::MetricSample s;
    s.name = name;
    s.labels = labels;
    s.value = v;
    out->push_back(std::move(s));
  };
  // Native Counters count an io_failure inside misses; the registry series
  // split them so gets == hits + misses + io_failures exactly.
  add("vsel_cache_gets_total", c.hits + c.misses);
  add("vsel_cache_hits_total", c.hits);
  add("vsel_cache_misses_total", c.misses - c.io_failures);
  add("vsel_cache_io_failures_total", c.io_failures);
  add("vsel_cache_rejected_total", c.rejected);
  add("vsel_cache_rehydration_rejected_total", c.rehydration_rejected);
  add("vsel_cache_stored_total", c.stored);
  add("vsel_cache_store_failures_total", c.store_failures);
  add("vsel_cache_temp_files_reaped_total", c.temp_files_reaped);
  add("vsel_cache_retries_total", c.retries);
  add("vsel_cache_breaker_skips_total", c.breaker_skips);
}

// ---- InMemoryCacheBackend --------------------------------------------------

InMemoryCacheBackend::InMemoryCacheBackend() {
  metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
      [this](std::vector<telemetry::MetricSample>* out) {
        AppendCacheCounterSamples(counters(), "memory", out);
      });
}

Status InMemoryCacheBackend::Get(const std::string& key, Fetched* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    return Status::NotFound("no cached outcome");  // memory never I/O-fails
  }
  it->second.last_used = ++use_counter_;
  ++counters_.hits;
  // Cheap copy: the result's views / rewritings are shared COW pointers.
  *out = Fetched{it->second.result, /*needs_rehydration=*/false};
  return Status::OK();
}

Status InMemoryCacheBackend::Put(const std::string& key,
                                 const pipeline::PartitionSearchResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = Entry{result, ++use_counter_};
  ++counters_.stored;
  return Status::OK();
}

void InMemoryCacheBackend::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t InMemoryCacheBackend::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void InMemoryCacheBackend::Trim(size_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() <= max_entries) return;
  std::vector<std::pair<uint64_t, const std::string*>> by_age;
  by_age.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    by_age.emplace_back(entry.last_used, &key);
  }
  std::sort(by_age.begin(), by_age.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i + max_entries < by_age.size(); ++i) {
    entries_.erase(*by_age[i].second);
  }
}

void InMemoryCacheBackend::NoteRehydrationRejected() {
  // Reachable when sessions share one backend object: a sibling session's
  // entry can fail the consuming session's cost check (calibration skew).
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rehydration_rejected;
}

PartitionCacheBackend::Counters InMemoryCacheBackend::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

// ---- DirCacheBackend -------------------------------------------------------

DirCacheBackend::DirCacheBackend(std::string root,
                                 const CacheIdentity& identity,
                                 double reap_temp_older_than_sec)
    : root_(std::move(root)), identity_(identity) {
  metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
      [this](std::vector<telemetry::MetricSample>* out) {
        AppendCacheCounterSamples(counters(), "dir", out);
      });
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    RDFVIEWS_LOG(kWarning) << "partition cache root " << root_
                           << " not creatable: " << ec.message()
                           << " (every lookup will miss)";
    return;
  }
  if (reap_temp_older_than_sec <= 0) return;
  // Reap crash-orphaned temp files: live writers rename within
  // milliseconds of creating theirs, so anything older than the threshold
  // belongs to a process that died mid-Put. Best-effort throughout — a
  // concurrent reaper racing us on the same file just loses the remove.
  const auto cutoff = fs::file_time_type::clock::now() -
                      std::chrono::duration_cast<fs::file_time_type::duration>(
                          std::chrono::duration<double>(
                              reap_temp_older_than_sec));
  uint64_t reaped = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_, ec)) {
    if (entry.path().extension() != kTempSuffix) continue;
    std::error_code ft_ec;
    const auto mtime = fs::last_write_time(entry.path(), ft_ec);
    if (ft_ec || mtime > cutoff) continue;
    std::error_code rm_ec;
    if (fs::remove(entry.path(), rm_ec) && !rm_ec) ++reaped;
  }
  if (reaped > 0) {
    RDFVIEWS_LOG(kInfo) << "partition cache " << root_ << ": reaped "
                        << reaped << " orphaned temp file(s)";
    std::lock_guard<std::mutex> lock(mu_);
    counters_.temp_files_reaped += reaped;
  }
}

std::string DirCacheBackend::PathForKey(const std::string& key) const {
  // The identity participates in the name, not just in the file header:
  // differently-configured jobs sharing one root then *coexist* (each
  // warms its own entries) instead of identity-rejecting and overwriting
  // each other's files on every run.
  const std::string salted = IdentityKeyBytes(identity_) + key;
  Hash128 h = HashBytes128(salted.data(), salted.size());
  char name[33];
  std::snprintf(name, sizeof(name), "%016llx%016llx",
                static_cast<unsigned long long>(h.hi),
                static_cast<unsigned long long>(h.lo));
  return root_ + "/" + name + kEntrySuffix;
}

Status DirCacheBackend::Get(const std::string& key, Fetched* out) {
  bool io_error = false;
  std::optional<std::string> bytes = ReadFileBytes(PathForKey(key), &io_error);
  if (!bytes.has_value()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.misses;
    if (io_error) {
      ++counters_.io_failures;
      return Status::Internal("partition cache read failed under " + root_);
    }
    return Status::NotFound("no cached outcome");
  }
  Result<pipeline::PartitionSearchResult> outcome = [&] {
    telemetry::TraceSpan span("serialize.decode");
    span.Annotate("bytes", static_cast<uint64_t>(bytes->size()));
    static telemetry::Histogram* const sizes =
        telemetry::MetricsRegistry::Default()->GetHistogram(
            "vsel_serialize_bytes", "op=\"decode\"");
    sizes->Observe(bytes->size());
    return DeserializePartitionOutcome(*bytes, key, identity_);
  }();
  if (!outcome.ok()) {
    // Corrupt / foreign-identity / hash-collision entries are misses, not
    // errors: the partition simply stays dirty and gets re-searched (and
    // its fresh result overwrites this file).
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.misses;
    ++counters_.rejected;
    return Status::NotFound("cached entry unusable: " +
                            outcome.status().message());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.hits;
  }
  *out = Fetched{std::move(*outcome), /*needs_rehydration=*/true};
  return Status::OK();
}

Status DirCacheBackend::Put(const std::string& key,
                            const pipeline::PartitionSearchResult& result) {
  const std::string path = PathForKey(key);
  // Private temp name (pid + process-wide counter — per-backend counters
  // would collide across two backend instances in one process writing the
  // same key), committed with an atomic rename: concurrent sessions on a
  // shared directory never observe a torn file, and racing writers of one
  // key both wrote the same completed search, so last-rename-wins is
  // correct. The ".tmp" extension keeps crash-orphaned writes out of
  // Get/Size and sweepable by Clear.
  static std::atomic<uint64_t> process_temp_counter{0};
  const std::string tmp =
      path + "." + std::to_string(::getpid()) + "." +
      std::to_string(
          process_temp_counter.fetch_add(1, std::memory_order_relaxed)) +
      kTempSuffix;
  std::string bytes = [&] {
    telemetry::TraceSpan span("serialize.encode");
    std::string encoded = SerializePartitionOutcome(key, result, identity_);
    span.Annotate("bytes", static_cast<uint64_t>(encoded.size()));
    static telemetry::Histogram* const sizes =
        telemetry::MetricsRegistry::Default()->GetHistogram(
            "vsel_serialize_bytes", "op=\"encode\"");
    sizes->Observe(encoded.size());
    return encoded;
  }();
  bool ok = fault::Maybe(fault::sites::kDirCachePutWrite).ok() &&
            WriteFileBytes(tmp, bytes);
  if (ok) {
    if (!fault::Maybe(fault::sites::kDirCachePutRename).ok()) {
      // Behave exactly as if rename(2) failed: remove the temp, report the
      // store failure (the entry is a future miss, never a torn file).
      std::remove(tmp.c_str());
      ok = false;
    } else {
      std::error_code ec;
      fs::rename(tmp, path, ec);
      if (ec) {
        std::remove(tmp.c_str());
        ok = false;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++counters_.stored;
    return Status::OK();
  }
  ++counters_.store_failures;
  return Status::Internal("partition cache write failed under " + root_);
}

Status DirCacheBackend::Invalidate(const std::string& key) {
  const std::string path = PathForKey(key);
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal("partition cache entry not removable: " + path);
  }
  return Status::OK();
}

void DirCacheBackend::Clear() {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_, ec)) {
    const fs::path ext = entry.path().extension();
    if (ext == kEntrySuffix || ext == kTempSuffix) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

size_t DirCacheBackend::Size() const {
  size_t n = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_, ec)) {
    if (entry.path().extension() == kEntrySuffix) ++n;
  }
  return n;
}

void DirCacheBackend::NoteRehydrationRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rehydration_rejected;
}

PartitionCacheBackend::Counters DirCacheBackend::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace rdfviews::vsel::serialize
