#include "vsel/serialize/partition_cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace rdfviews::vsel::serialize {

namespace fs = std::filesystem;

namespace {

constexpr char kEntrySuffix[] = ".rvpo";
/// In-flight writes; a crash between write and rename orphans one, so
/// Clear() sweeps this extension too (Get/Size never look at them).
constexpr char kTempSuffix[] = ".tmp";

/// Reads a whole file into a string; nullopt on any failure (missing file,
/// permission error, read error mid-way).
std::optional<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return bytes;
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) std::remove(path.c_str());
  return ok;
}

}  // namespace

// ---- InMemoryCacheBackend --------------------------------------------------

std::optional<PartitionCacheBackend::Fetched> InMemoryCacheBackend::Get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  it->second.last_used = ++use_counter_;
  ++counters_.hits;
  // Cheap copy: the result's views / rewritings are shared COW pointers.
  return Fetched{it->second.result, /*needs_rehydration=*/false};
}

void InMemoryCacheBackend::Put(const std::string& key,
                               const pipeline::PartitionSearchResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = Entry{result, ++use_counter_};
  ++counters_.stored;
}

void InMemoryCacheBackend::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t InMemoryCacheBackend::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void InMemoryCacheBackend::Trim(size_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() <= max_entries) return;
  std::vector<std::pair<uint64_t, const std::string*>> by_age;
  by_age.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    by_age.emplace_back(entry.last_used, &key);
  }
  std::sort(by_age.begin(), by_age.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i + max_entries < by_age.size(); ++i) {
    entries_.erase(*by_age[i].second);
  }
}

void InMemoryCacheBackend::NoteRehydrationRejected() {
  // Reachable when sessions share one backend object: a sibling session's
  // entry can fail the consuming session's cost check (calibration skew).
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rehydration_rejected;
}

PartitionCacheBackend::Counters InMemoryCacheBackend::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

// ---- DirCacheBackend -------------------------------------------------------

DirCacheBackend::DirCacheBackend(std::string root,
                                 const CacheIdentity& identity)
    : root_(std::move(root)), identity_(identity) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    RDFVIEWS_LOG(kWarning) << "partition cache root " << root_
                           << " not creatable: " << ec.message()
                           << " (every lookup will miss)";
  }
}

std::string DirCacheBackend::PathForKey(const std::string& key) const {
  // The identity participates in the name, not just in the file header:
  // differently-configured jobs sharing one root then *coexist* (each
  // warms its own entries) instead of identity-rejecting and overwriting
  // each other's files on every run.
  const std::string salted = IdentityKeyBytes(identity_) + key;
  Hash128 h = HashBytes128(salted.data(), salted.size());
  char name[33];
  std::snprintf(name, sizeof(name), "%016llx%016llx",
                static_cast<unsigned long long>(h.hi),
                static_cast<unsigned long long>(h.lo));
  return root_ + "/" + name + kEntrySuffix;
}

std::optional<PartitionCacheBackend::Fetched> DirCacheBackend::Get(
    const std::string& key) {
  std::optional<std::string> bytes = ReadFileBytes(PathForKey(key));
  if (!bytes.has_value()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.misses;
    return std::nullopt;
  }
  Result<pipeline::PartitionSearchResult> outcome =
      DeserializePartitionOutcome(*bytes, key, identity_);
  if (!outcome.ok()) {
    // Corrupt / foreign-identity / hash-collision entries are misses, not
    // errors: the partition simply stays dirty and gets re-searched (and
    // its fresh result overwrites this file).
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.misses;
    ++counters_.rejected;
    return std::nullopt;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.hits;
  }
  return Fetched{std::move(*outcome), /*needs_rehydration=*/true};
}

void DirCacheBackend::Put(const std::string& key,
                          const pipeline::PartitionSearchResult& result) {
  const std::string path = PathForKey(key);
  // Private temp name (pid + process-wide counter — per-backend counters
  // would collide across two backend instances in one process writing the
  // same key), committed with an atomic rename: concurrent sessions on a
  // shared directory never observe a torn file, and racing writers of one
  // key both wrote the same completed search, so last-rename-wins is
  // correct. The ".tmp" extension keeps crash-orphaned writes out of
  // Get/Size and sweepable by Clear.
  static std::atomic<uint64_t> process_temp_counter{0};
  const std::string tmp =
      path + "." + std::to_string(::getpid()) + "." +
      std::to_string(
          process_temp_counter.fetch_add(1, std::memory_order_relaxed)) +
      kTempSuffix;
  std::string bytes = SerializePartitionOutcome(key, result, identity_);
  bool ok = WriteFileBytes(tmp, bytes);
  if (ok) {
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      std::remove(tmp.c_str());
      ok = false;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++counters_.stored;
  } else {
    ++counters_.store_failures;
  }
}

void DirCacheBackend::Clear() {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_, ec)) {
    const fs::path ext = entry.path().extension();
    if (ext == kEntrySuffix || ext == kTempSuffix) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

size_t DirCacheBackend::Size() const {
  size_t n = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_, ec)) {
    if (entry.path().extension() == kEntrySuffix) ++n;
  }
  return n;
}

void DirCacheBackend::NoteRehydrationRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rehydration_rejected;
}

PartitionCacheBackend::Counters DirCacheBackend::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace rdfviews::vsel::serialize
