// Versioned binary serialization of search results: engine::Expr trees,
// Views, States, per-partition search outcomes, and full Recommendations.
//
// This is the persistence half of the ROADMAP's "distributed sessions"
// item: a TuningSession's partition results are self-contained and keyed by
// renaming-insensitive canonical workload keys, so once an outcome
// round-trips through bytes, shipping (key, bytes) pairs to a shared cache
// directory — or to a remote worker — lets a fleet of tuning nodes (or
// successive CI runs) reuse each other's completed searches.
//
// Format properties:
//   - *Versioned.* Every top-level blob starts with a magic + format
//     version; readers reject unknown versions (ParseError) instead of
//     misinterpreting bytes.
//   - *Endianness-stable.* All integers are explicit little-endian and
//     doubles travel as IEEE-754 bit patterns (see binary_io.h), so blobs
//     written on one host load on any other.
//   - *Identity-tagged.* Top-level blobs embed a CacheIdentity — the
//     measured store's statistics tag (rdf::SnapshotStoreTag) plus a hash
//     of every option that shapes a search outcome (strategy, heuristics,
//     cost weights, entailment mode). Loading under a different identity is
//     rejected (InvalidArgument), exactly like rdf::LoadSnapshot refusing a
//     snapshot measured on a different store.
//   - *Checksummed.* Top-level blobs end with a 128-bit digest of the
//     preceding bytes, so corruption anywhere in the payload is detected
//     (ParseError) rather than half-trusted. Structural validation (view
//     ids resolvable from every rewriting scan, union arities consistent)
//     backstops the checksum for logic errors.
//
// Deserialized states are *structurally* complete but cost-cold: their
// per-state cost caches are empty and their views are fresh objects. The
// session re-interns them through its live CostModel (which registers every
// view in the ViewInterner) and re-costs the state, asserting the result
// equals the persisted cost — a drifted store or weight configuration that
// slipped past the identity tag is caught there and the entry discarded.
#ifndef RDFVIEWS_VSEL_SERIALIZE_SERIALIZE_H_
#define RDFVIEWS_VSEL_SERIALIZE_SERIALIZE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "cq/query.h"
#include "rdf/triple_store.h"
#include "cq/ucq.h"
#include "engine/expr.h"
#include "vsel/pipeline/pipeline.h"
#include "vsel/selector.h"
#include "vsel/serialize/binary_io.h"
#include "vsel/state.h"
#include "vsel/view.h"

namespace rdfviews::vsel::serialize {

/// Current format version of every top-level blob (partition outcomes and
/// recommendations). Bump on any encoding change; readers reject other
/// versions.
inline constexpr uint32_t kFormatVersion = 1;

/// The identity a persisted search outcome is only valid under.
struct CacheIdentity {
  /// rdf::SnapshotStoreTag of the store the statistics were measured on
  /// (the raw store; entailment-derived stores follow deterministically
  /// from it and the schema, and drift is additionally caught by the
  /// re-cost assertion on load).
  uint64_t store_tag = 0;
  /// Hash of the options that shape a completed search's best state:
  /// strategy, heuristics, cost weights, entailment mode, and the cm
  /// auto-calibration flag. Search *limits* are deliberately excluded — a
  /// completed (space-exhausted) search finds the same best under any
  /// budget.
  uint64_t config_tag = 0;

  friend bool operator==(const CacheIdentity&,
                         const CacheIdentity&) = default;
};

/// Computes the identity for a (store, options) environment.
CacheIdentity ComputeCacheIdentity(const rdf::TripleStore& store,
                                   const SelectorOptions& options);

/// The identity as 16 raw little-endian bytes (store_tag and config_tag
/// interleaved): the canonical salt sessions prepend to cache keys and
/// DirCacheBackend folds into entry file names, so every component that
/// must address the same key space derives it from this one function.
std::string IdentityKeyBytes(const CacheIdentity& identity);

// ---- Building blocks (exposed for the round-trip test suites) -------------

void SerializeQuery(const cq::ConjunctiveQuery& q, ByteWriter* w);
Result<cq::ConjunctiveQuery> DeserializeQuery(ByteReader* r);

void SerializeUnion(const cq::UnionOfQueries& u, ByteWriter* w);
Result<cq::UnionOfQueries> DeserializeUnion(ByteReader* r);

void SerializeExpr(const engine::ExprPtr& expr, ByteWriter* w);
Result<engine::ExprPtr> DeserializeExpr(ByteReader* r);

void SerializeView(const View& v, ByteWriter* w);
Result<ViewPtr> DeserializeView(ByteReader* r);

/// States serialize as views + rewritings + id counters; the fingerprint,
/// the id->slot index and the memoized per-view keys are rebuilt on load
/// (they are pure functions of the definitions). Deserialization validates
/// that view ids are unique and that every rewriting scan resolves to a
/// view of the state, so downstream costing can not hit a dangling id.
void SerializeState(const State& s, ByteWriter* w);
Result<State> DeserializeState(ByteReader* r);

void SerializeStats(const SearchStats& stats, ByteWriter* w);
Result<SearchStats> DeserializeStats(ByteReader* r);

/// The wire-transportable subset of TuningConfig: every deterministic
/// scalar knob that shapes a search outcome (strategy, heuristics, limits,
/// weights, calibration, entailment, partitioning, robustness, tracing).
/// Process-local fields deliberately do NOT travel: the stop token, the
/// progress callback and the partition executor (live objects), and the
/// SessionCacheOptions block (a remote client must not dictate the
/// server's storage paths or backend policy — the owner of the session
/// picks those). This single wire form is what both the vseld open-session
/// verb and the fleet dispatch-partition verb carry. Deserialization
/// validates enum ranges, so a hostile frame cannot smuggle an
/// out-of-range strategy or entailment mode into a switch.
void SerializeTuningConfig(const TuningConfig& config, ByteWriter* w);
Result<TuningConfig> DeserializeTuningConfig(ByteReader* r);

/// Back-compat aliases from before the TuningConfig consolidation.
inline void SerializeOptions(const SelectorOptions& options, ByteWriter* w) {
  SerializeTuningConfig(options, w);
}
inline Result<SelectorOptions> DeserializeOptions(ByteReader* r) {
  return DeserializeTuningConfig(r);
}

// ---- Top-level blobs -------------------------------------------------------

/// One completed partition search, tagged with its canonical workload key.
std::string SerializePartitionOutcome(
    std::string_view key, const pipeline::PartitionSearchResult& outcome,
    const CacheIdentity& identity);

/// Loads a partition outcome. NotFound-style misses are the caller's
/// concern; this fails with ParseError on truncation / corruption /
/// version mismatch, and InvalidArgument when the identity or the embedded
/// canonical key does not match the expectation (`expected_key` empty
/// accepts any key).
Result<pipeline::PartitionSearchResult> DeserializePartitionOutcome(
    std::string_view bytes, std::string_view expected_key,
    const CacheIdentity& identity);

/// The canonical key embedded in a serialized partition outcome (for cache
/// directory listings / debugging). Fails like DeserializePartitionOutcome
/// but without decoding the payload.
Result<std::string> PeekPartitionOutcomeKey(std::string_view bytes);

/// A full Recommendation: view definitions, columns, ids, rewritings, best
/// state, stats and entailment mode. The materialization store and the
/// observability counters do not travel — counters restart at zero, and
/// the loader re-attaches the store through the `materialization_store`
/// parameter (required before vsel::Materialize; derive the expected
/// identity from the same store via ComputeCacheIdentity so a foreign
/// attachment is rejected up front). A null store is fine for clients that
/// only execute rewritings over already-materialized relations
/// (vsel::AnswerQuery), the offline-client deployment.
std::string SerializeRecommendation(const Recommendation& rec,
                                    const CacheIdentity& identity);
Result<Recommendation> DeserializeRecommendation(
    std::string_view bytes, const CacheIdentity& identity,
    std::shared_ptr<const rdf::TripleStore> materialization_store = nullptr);

/// SerializeRecommendation with the wall-clock-dependent stats fields
/// (elapsed_sec, the timestamped best_trace) normalized away: two runs
/// that found the same best state produce byte-identical canonical blobs.
/// The vseld end-to-end parity gate compares a daemon-served
/// recommendation against an in-process one through this form.
std::string SerializeRecommendationCanonical(const Recommendation& rec,
                                             const CacheIdentity& identity);

}  // namespace rdfviews::vsel::serialize

#endif  // RDFVIEWS_VSEL_SERIALIZE_SERIALIZE_H_
