#include "vsel/transitions.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/telemetry/metrics.h"
#include "cq/canonical.h"
#include "cq/containment.h"
#include "vsel/view_interner.h"

namespace rdfviews::vsel {

namespace {

constexpr rdf::Column kColumns[3] = {rdf::Column::kS, rdf::Column::kP,
                                     rdf::Column::kO};

using engine::Expr;
using engine::ExprPtr;

std::unordered_set<cq::VarId> VarsOfMask(const std::vector<cq::Atom>& atoms,
                                         uint64_t mask) {
  std::unordered_set<cq::VarId> vars;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (!(mask & (1ull << i))) continue;
    for (rdf::Column c : kColumns) {
      cq::Term t = atoms[i].at(c);
      if (t.is_var()) vars.insert(t.var());
    }
  }
  return vars;
}

bool MaskConnected(const std::vector<cq::Atom>& atoms, uint64_t mask) {
  std::vector<cq::Atom> sub;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (mask & (1ull << i)) sub.push_back(atoms[i]);
  }
  if (sub.empty()) return false;
  std::vector<int> comp = AtomComponents(sub);
  for (int c : comp) {
    if (c != 0) return false;
  }
  return true;
}

/// Replaces every Scan of `view_id` in all rewritings by `replacement`.
/// Routed through the state so it invalidates the cached REC terms of
/// exactly the rewritings that change.
void SubstituteView(State* state, uint32_t view_id, const ExprPtr& replacement) {
  state->ReplaceScanRewritings(view_id, replacement);
}

/// Appends Var(v) to the head if not already present.
void AddHeadVar(cq::ConjunctiveQuery* def, cq::VarId v) {
  for (const cq::Term& t : def->head()) {
    if (t.is_var() && t.var() == v) return;
  }
  def->mutable_head()->push_back(cq::Term::Var(v));
}

/// Builds the sub-view over the atoms in `mask` (Def. 3.2): head = (head of
/// v restricted to the sub-body) plus every variable shared with the other
/// side. The result is minimized (views are minimal by Def. 2.1).
cq::ConjunctiveQuery MakeSubView(const cq::ConjunctiveQuery& parent,
                                 uint64_t mask,
                                 const std::unordered_set<cq::VarId>& shared) {
  cq::ConjunctiveQuery def;
  std::unordered_set<cq::VarId> vars;
  for (size_t i = 0; i < parent.atoms().size(); ++i) {
    if (!(mask & (1ull << i))) continue;
    def.mutable_atoms()->push_back(parent.atoms()[i]);
    for (rdf::Column c : kColumns) {
      cq::Term t = parent.atoms()[i].at(c);
      if (t.is_var()) vars.insert(t.var());
    }
  }
  for (const cq::Term& t : parent.head()) {
    if (t.is_var() && vars.contains(t.var())) AddHeadVar(&def, t.var());
  }
  std::vector<cq::VarId> extra;
  for (cq::VarId v : shared) {
    if (vars.contains(v)) extra.push_back(v);
  }
  std::sort(extra.begin(), extra.end());
  for (cq::VarId v : extra) AddHeadVar(&def, v);
  return cq::Minimize(def);
}

State ApplySc(const State& in, const Transition& t, Arena* arena) {
  State out = in.CloneForTransition(arena);
  const View& v = in.views()[t.view_idx];
  const uint32_t old_id = v.id;
  const std::vector<cq::VarId> old_cols = v.Columns();

  cq::Term old_term =
      v.def.atoms()[t.sc_occurrence.atom].at(t.sc_occurrence.column);
  RDFVIEWS_CHECK_MSG(old_term.is_const(), "SC on a non-constant position");
  const rdf::TermId constant = old_term.constant();

  const cq::VarId w = out.FreshVar();
  View nv;
  nv.id = out.FreshViewId();
  nv.def = v.def;
  (*nv.def.mutable_atoms())[t.sc_occurrence.atom].set(t.sc_occurrence.column,
                                                      cq::Term::Var(w));
  nv.def.mutable_head()->push_back(cq::Term::Var(w));
  nv.def.set_name(nv.Name());
  ExprPtr repl = Expr::Project(
      Expr::Select(Expr::Scan(nv.id, nv.Columns()),
                   {engine::Condition::Eq(w, constant)}),
      old_cols);
  out.ReplaceView(t.view_idx, MakeView(std::move(nv)));
  SubstituteView(&out, old_id, repl);
  return out;
}

State ApplyJc(const State& in, const Transition& t, Arena* arena) {
  State out = in.CloneForTransition(arena);
  const View& v = in.views()[t.view_idx];
  const uint32_t old_id = v.id;
  const std::vector<cq::VarId> old_cols = v.Columns();

  cq::Term replaced =
      v.def.atoms()[t.jc_replace.atom].at(t.jc_replace.column);
  RDFVIEWS_CHECK_MSG(replaced.is_var(), "JC on a non-variable position");
  const cq::VarId x = replaced.var();
  const cq::VarId xp = out.FreshVar();

  cq::ConjunctiveQuery def2 = v.def;
  (*def2.mutable_atoms())[t.jc_replace.atom].set(t.jc_replace.column,
                                                 cq::Term::Var(xp));
  AddHeadVar(&def2, x);
  AddHeadVar(&def2, xp);

  std::vector<int> comp = AtomComponents(def2.atoms());
  int num_comp = *std::max_element(comp.begin(), comp.end()) + 1;
  RDFVIEWS_CHECK_MSG(num_comp <= 2, "JC split a view into >2 components");

  if (num_comp == 1) {
    View nv;
    nv.id = out.FreshViewId();
    nv.def = std::move(def2);
    nv.def.set_name(nv.Name());
    ExprPtr repl = Expr::Project(
        Expr::Select(Expr::Scan(nv.id, nv.Columns()),
                     {engine::Condition::EqVar(x, xp)}),
        old_cols);
    out.ReplaceView(t.view_idx, MakeView(std::move(nv)));
    SubstituteView(&out, old_id, repl);
    return out;
  }

  // The view splits in two: one component holds x's remaining occurrences,
  // the other holds x' (Def. 3.4 case 2).
  uint64_t mask_a = 0;
  uint64_t mask_b = 0;
  for (size_t i = 0; i < def2.atoms().size(); ++i) {
    if (comp[i] == 0) {
      mask_a |= 1ull << i;
    } else {
      mask_b |= 1ull << i;
    }
  }
  std::unordered_set<cq::VarId> no_shared;  // components share no variables
  cq::ConjunctiveQuery def_a = MakeSubView(def2, mask_a, no_shared);
  cq::ConjunctiveQuery def_b = MakeSubView(def2, mask_b, no_shared);

  View va;
  va.id = out.FreshViewId();
  va.def = std::move(def_a);
  va.def.set_name(va.Name());
  View vb;
  vb.id = out.FreshViewId();
  vb.def = std::move(def_b);
  vb.def.set_name(vb.Name());

  // The explicit join predicate joins x with x'; orient by side.
  std::unordered_set<cq::VarId> vars_a = VarsOfMask(def2.atoms(), mask_a);
  std::pair<cq::VarId, cq::VarId> pair =
      vars_a.contains(x) ? std::make_pair(x, xp) : std::make_pair(xp, x);

  ExprPtr repl = Expr::Project(
      Expr::Join(Expr::Scan(va.id, va.Columns()),
                 Expr::Scan(vb.id, vb.Columns()), {pair}),
      old_cols);
  out.ReplaceView(t.view_idx, MakeView(std::move(va)));
  out.AddView(MakeView(std::move(vb)));
  SubstituteView(&out, old_id, repl);
  return out;
}

State ApplyVb(const State& in, const Transition& t, Arena* arena) {
  State out = in.CloneForTransition(arena);
  const View& v = in.views()[t.view_idx];
  const uint32_t old_id = v.id;
  const std::vector<cq::VarId> old_cols = v.Columns();

  std::unordered_set<cq::VarId> vars_a = VarsOfMask(v.def.atoms(), t.vb_mask_a);
  std::unordered_set<cq::VarId> vars_b = VarsOfMask(v.def.atoms(), t.vb_mask_b);
  std::unordered_set<cq::VarId> shared;
  for (cq::VarId u : vars_a) {
    if (vars_b.contains(u)) shared.insert(u);
  }

  View va;
  va.id = out.FreshViewId();
  va.def = MakeSubView(v.def, t.vb_mask_a, shared);
  va.def.set_name(va.Name());
  View vb;
  vb.id = out.FreshViewId();
  vb.def = MakeSubView(v.def, t.vb_mask_b, shared);
  vb.def.set_name(vb.Name());

  // Natural join re-joins on the shared variable names.
  ExprPtr repl = Expr::Project(
      Expr::Join(Expr::Scan(va.id, va.Columns()),
                 Expr::Scan(vb.id, vb.Columns()), {}),
      old_cols);
  out.ReplaceView(t.view_idx, MakeView(std::move(va)));
  out.AddView(MakeView(std::move(vb)));
  SubstituteView(&out, old_id, repl);
  return out;
}

State ApplyVf(const State& in, const Transition& t, Arena* arena) {
  State out = in.CloneForTransition(arena);
  const View& v1 = in.views()[t.view_idx];
  const View& v2 = in.views()[t.view_idx2];

  cq::CanonicalForm c1 = cq::Canonicalize(v1.def, /*include_head=*/false);
  cq::CanonicalForm c2 = cq::Canonicalize(v2.def, /*include_head=*/false);
  RDFVIEWS_CHECK_MSG(c1.repr == c2.repr, "VF on non-isomorphic views");

  // mu maps v2 variables onto v1 variables through the canonical indices.
  std::unordered_map<uint32_t, cq::VarId> inverse_c1;
  for (const auto& [var, idx] : c1.var_map) inverse_c1[idx] = var;
  std::unordered_map<cq::VarId, cq::VarId> mu;
  for (const auto& [var, idx] : c2.var_map) {
    auto it = inverse_c1.find(idx);
    RDFVIEWS_CHECK(it != inverse_c1.end());
    mu[var] = it->second;
  }

  View v3;
  v3.id = out.FreshViewId();
  v3.def = v1.def;
  for (const cq::Term& t2 : v2.def.head()) {
    AddHeadVar(&v3.def, mu.at(t2.var()));
  }
  v3.def.set_name(v3.Name());

  ExprPtr repl1 =
      Expr::Project(Expr::Scan(v3.id, v3.Columns()), v1.Columns());

  // Rename v3's columns into v2's namespace. The map is total over v3's
  // columns: unmapped ones get fresh names so no output name collides with
  // a v2 name (v1 and v2 may share variables after overlapping view breaks).
  std::unordered_map<cq::VarId, cq::VarId> rename;
  for (const cq::Term& t2 : v2.def.head()) {
    rename[mu.at(t2.var())] = t2.var();
  }
  for (cq::VarId col : v3.Columns()) {
    if (!rename.contains(col)) rename[col] = out.FreshVar();
  }
  ExprPtr repl2 = Expr::Project(
      Expr::Rename(Expr::Scan(v3.id, v3.Columns()), rename), v2.Columns());

  // Replace v1's slot with v3 and erase v2. The substitutions read v1/v2's
  // ids, so grab them before the slots change.
  const uint32_t v1_id = v1.id;
  const uint32_t v2_id = v2.id;
  out.ReplaceView(t.view_idx, MakeView(std::move(v3)));
  out.RemoveView(t.view_idx2);
  SubstituteView(&out, v1_id, repl1);
  SubstituteView(&out, v2_id, repl2);
  return out;
}

/// Resolves a view's transition graph: from the interner's per-distinct-view
/// cache when TransitionOptions carries one, rebuilt locally otherwise. The
/// edges are consumed for their occurrence structure only (identical across
/// views sharing a cost hash; see BuildViewGraph(const View&, ...)).
class GraphRef {
 public:
  GraphRef(const View& view, const TransitionOptions& options) {
    if (options.graph_cache != nullptr) {
      cached_ = options.graph_cache->Graph(
          view, [&] { return BuildViewGraph(view, /*view_idx=*/0); });
    } else {
      local_ = BuildViewGraph(view, /*view_idx=*/0);
    }
  }

  const ViewGraph* get() const {
    return cached_ != nullptr ? cached_.get() : &local_;
  }
  const ViewGraph* operator->() const { return get(); }

 private:
  std::shared_ptr<const ViewGraph> cached_;
  ViewGraph local_;
};

/// Enumerates the connected (mask_a, mask_b) break pairs of one atom set —
/// the per-distinct-view computation behind EnumerateVb, cached in the
/// interner so the 2^n subset sweep with its connectivity checks runs once
/// per distinct view instead of once per (state, view) visit.
VbBreakList ComputeVbBreaks(const std::vector<cq::Atom>& atoms,
                            const TransitionOptions& options) {
  VbBreakList breaks;
  breaks.vb_overlap = options.vb_overlap;
  breaks.vb_overlap_max_atoms = options.vb_overlap_max_atoms;
  const size_t n = atoms.size();
  const uint64_t full = (n == 64) ? ~0ull : ((1ull << n) - 1);

  // Partition-style breaks.
  for (uint64_t a = 1; a < full; ++a) {
    uint64_t b = full ^ a;
    if (a >= b) continue;  // unordered pair
    if (!MaskConnected(atoms, a) || !MaskConnected(atoms, b)) continue;
    breaks.pairs.emplace_back(a, b);
  }

  // Overlapping covers sharing `vb_overlap` nodes (we support 1).
  if (options.vb_overlap >= 1 && n <= options.vb_overlap_max_atoms) {
    for (size_t pivot = 0; pivot < n; ++pivot) {
      const uint64_t pbit = 1ull << pivot;
      const uint64_t rest = full ^ pbit;
      // Enumerate subsets of `rest` as side A's exclusive part.
      for (uint64_t ax = rest; ax != 0; ax = (ax - 1) & rest) {
        uint64_t bx = rest ^ ax;
        if (bx == 0) continue;  // B would be a subset of A
        uint64_t a = ax | pbit;
        uint64_t b = bx | pbit;
        if (a >= b) continue;
        if (!MaskConnected(atoms, a) || !MaskConnected(atoms, b)) continue;
        breaks.pairs.emplace_back(a, b);
      }
    }
  }
  return breaks;
}

void EnumerateVb(const State& state, const TransitionOptions& options,
                 std::vector<Transition>* out) {
  for (uint32_t vi = 0; vi < state.views().size(); ++vi) {
    const View& view = state.views()[vi];
    const std::vector<cq::Atom>& atoms = view.def.atoms();
    const size_t n = atoms.size();
    // Def. 3.2 requires |Nv| > 2; the upper cap bounds the 2^n enumeration.
    if (n < 3 || n > options.vb_max_atoms) continue;

    std::shared_ptr<const VbBreakList> cached;
    VbBreakList local;
    if (options.graph_cache != nullptr) {
      cached = options.graph_cache->VbBreaks(
          view, options.vb_overlap, options.vb_overlap_max_atoms,
          [&] { return ComputeVbBreaks(atoms, options); });
    }
    if (cached == nullptr) local = ComputeVbBreaks(atoms, options);
    const VbBreakList& breaks = cached != nullptr ? *cached : local;

    for (const auto& [a, b] : breaks.pairs) {
      Transition t;
      t.kind = TransitionKind::kVB;
      t.view_idx = vi;
      t.vb_mask_a = a;
      t.vb_mask_b = b;
      out->push_back(t);
    }
  }
}

/// Appends the SC transitions of view `vi` given its resolved graph.
void AppendScEdges(uint32_t vi, const ViewGraph& g,
                   std::vector<Transition>* out) {
  for (const SelectionEdge& e : g.selection_edges) {
    Transition t;
    t.kind = TransitionKind::kSC;
    t.view_idx = vi;
    t.sc_occurrence = e.occurrence;
    out->push_back(t);
  }
}

/// Appends the JC transitions of view `vi` given its resolved graph.
void AppendJcEdges(uint32_t vi, const ViewGraph& g,
                   const TransitionOptions& options,
                   std::vector<Transition>* out) {
  for (const JoinEdge& e : g.join_edges) {
    // Cutting ni.ai=nj.aj renames the ni.ai occurrence; both
    // orientations are distinct transitions (Def. 3.4).
    Transition t;
    t.kind = TransitionKind::kJC;
    t.view_idx = vi;
    t.jc_replace = e.a;
    t.jc_other = e.b;
    out->push_back(t);
    if (options.jc_both_orientations) {
      std::swap(t.jc_replace, t.jc_other);
      out->push_back(t);
    }
  }
}

void EnumerateSc(const State& state, const TransitionOptions& options,
                 std::vector<Transition>* out) {
  for (uint32_t vi = 0; vi < state.views().size(); ++vi) {
    GraphRef g(state.views()[vi], options);
    AppendScEdges(vi, *g.get(), out);
  }
}

void EnumerateJc(const State& state, const TransitionOptions& options,
                 std::vector<Transition>* out) {
  for (uint32_t vi = 0; vi < state.views().size(); ++vi) {
    GraphRef g(state.views()[vi], options);
    AppendJcEdges(vi, *g.get(), options, out);
  }
}

/// One pass over the view stripe resolving each view's graph exactly once:
/// SC edges go straight to `out`, JC edges stage in `jc_scratch` and are
/// spliced after, preserving the kind-major order of the per-kind API.
void EnumerateScJcStriped(const State& state, const TransitionOptions& options,
                          std::vector<Transition>* out,
                          std::vector<Transition>* jc_scratch) {
  jc_scratch->clear();
  for (uint32_t vi = 0; vi < state.views().size(); ++vi) {
    GraphRef g(state.views()[vi], options);
    AppendScEdges(vi, *g.get(), out);
    AppendJcEdges(vi, *g.get(), options, jc_scratch);
  }
  out->insert(out->end(), jc_scratch->begin(), jc_scratch->end());
}

void EnumerateVf(const State& state, std::vector<Transition>* out) {
  // Bucket by the memoized body-only canonical key: shared View objects are
  // canonicalized once ever, not once per state that holds them.
  std::unordered_map<std::string, std::vector<uint32_t>> by_body;
  for (uint32_t vi = 0; vi < state.views().size(); ++vi) {
    by_body[state.views()[vi].BodyKey()].push_back(vi);
  }
  for (const auto& [body, group] : by_body) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        Transition t;
        t.kind = TransitionKind::kVF;
        t.view_idx = group[i];
        t.view_idx2 = group[j];
        out->push_back(t);
      }
    }
  }
}

}  // namespace

const char* TransitionName(TransitionKind kind) {
  switch (kind) {
    case TransitionKind::kVB: return "VB";
    case TransitionKind::kSC: return "SC";
    case TransitionKind::kJC: return "JC";
    case TransitionKind::kVF: return "VF";
  }
  return "?";
}

std::string Transition::ToString() const {
  std::ostringstream out;
  out << TransitionName(kind) << "(view#" << view_idx;
  switch (kind) {
    case TransitionKind::kSC:
      out << ", atom " << sc_occurrence.atom << "."
          << rdf::ColumnName(sc_occurrence.column);
      break;
    case TransitionKind::kJC:
      out << ", cut " << jc_replace.atom << "."
          << rdf::ColumnName(jc_replace.column) << " = " << jc_other.atom
          << "." << rdf::ColumnName(jc_other.column);
      break;
    case TransitionKind::kVB:
      out << ", masks " << vb_mask_a << "/" << vb_mask_b;
      break;
    case TransitionKind::kVF:
      out << ", view#" << view_idx2;
      break;
  }
  out << ")";
  return out.str();
}

namespace {

/// Per-kind enumeration into a plain vector: the single implementation
/// behind both the legacy vector API and the buffered APIs.
void EnumerateKindInto(const State& state, TransitionKind kind,
                       const TransitionOptions& options,
                       std::vector<Transition>* out) {
  switch (kind) {
    case TransitionKind::kSC:
      EnumerateSc(state, options, out);
      break;
    case TransitionKind::kJC:
      EnumerateJc(state, options, out);
      break;
    case TransitionKind::kVB:
      EnumerateVb(state, options, out);
      break;
    case TransitionKind::kVF:
      EnumerateVf(state, out);
      break;
  }
}

telemetry::Histogram* BatchSizeHistogram() {
  static telemetry::Histogram* const h =
      telemetry::MetricsRegistry::Default()->GetHistogram(
          "vsel_transitions_batch_size");
  return h;
}

telemetry::Counter* EnumeratedCounter() {
  static telemetry::Counter* const c =
      telemetry::MetricsRegistry::Default()->GetCounter(
          "vsel_transitions_enumerated_total");
  return c;
}

}  // namespace

std::vector<Transition> EnumerateTransitions(
    const State& state, TransitionKind kind,
    const TransitionOptions& options) {
  std::vector<Transition> out;
  EnumerateKindInto(state, kind, options, &out);
  return out;
}

size_t EnumerateTransitionsInto(const State& state, TransitionKind kind,
                                const TransitionOptions& options,
                                TransitionBuffer* buf) {
  const size_t before = buf->items_.size();
  EnumerateKindInto(state, kind, options, &buf->items_);
  const size_t n = buf->items_.size() - before;
  BatchSizeHistogram()->Observe(static_cast<double>(n));
  EnumeratedCounter()->Add(n);
  return n;
}

size_t EnumerateTransitionsBatch(const State& state, TransitionKind from_kind,
                                 const TransitionOptions& options,
                                 TransitionBuffer* buf) {
  const size_t before = buf->items_.size();
  const int from = static_cast<int>(from_kind);
  if (from <= static_cast<int>(TransitionKind::kVB)) {
    EnumerateVb(state, options, &buf->items_);
  }
  const bool want_sc = from <= static_cast<int>(TransitionKind::kSC);
  const bool want_jc = from <= static_cast<int>(TransitionKind::kJC);
  if (want_sc && want_jc) {
    EnumerateScJcStriped(state, options, &buf->items_, &buf->jc_scratch_);
  } else if (want_sc) {
    EnumerateSc(state, options, &buf->items_);
  } else if (want_jc) {
    EnumerateJc(state, options, &buf->items_);
  }
  if (from <= static_cast<int>(TransitionKind::kVF)) {
    EnumerateVf(state, &buf->items_);
  }
  const size_t n = buf->items_.size() - before;
  BatchSizeHistogram()->Observe(static_cast<double>(n));
  EnumeratedCounter()->Add(n);
  return n;
}

State ApplyTransition(const State& state, const Transition& t, Arena* arena) {
  auto apply = [&]() -> State {
    switch (t.kind) {
      case TransitionKind::kSC: return ApplySc(state, t, arena);
      case TransitionKind::kJC: return ApplyJc(state, t, arena);
      case TransitionKind::kVB: return ApplyVb(state, t, arena);
      case TransitionKind::kVF: return ApplyVf(state, t, arena);
    }
    RDFVIEWS_CHECK_MSG(false, "unreachable");
    return state;
  };
  State out = apply();
  // Debug cross-check: the incrementally maintained fingerprint must equal
  // a from-scratch recomputation over the successor's views.
  RDFVIEWS_DCHECK(out.fingerprint() == out.RecomputeFingerprint());
  return out;
}

State AvfClosure(const State& state, const TransitionOptions& options,
                 size_t* steps, Arena* arena) {
  State current = state;
  TransitionBuffer fusions;
  while (true) {
    fusions.Clear();
    if (EnumerateTransitionsInto(current, TransitionKind::kVF, options,
                                 &fusions) == 0) {
      return current;
    }
    current = ApplyTransition(current, fusions[0], arena);
    if (steps != nullptr) ++*steps;
  }
}

}  // namespace rdfviews::vsel
