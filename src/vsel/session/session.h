// Tuning sessions: the long-lived, incremental, cancellable view-selection
// API. Where ViewSelector::Recommend answers "what views for this
// workload?" once, a TuningSession answers it *continuously* as the
// workload evolves — the regime of a live SPARQL endpoint whose query log
// streams in (and the paper's anytime framing, Sec. 5: every strategy can
// be stopped at any moment with a valid best-so-far).
//
// Lifecycle:
//
//     TuningSession session(&store, &dict, options);
//     Recommendation r0 = *session.Update(initial_queries);
//     ...workload drifts...
//     Recommendation r1 = *session.Update(new_queries, dropped_names);
//
// Each Update runs the staged pipeline (ingest → partition → search →
// merge), but the session carries state across updates:
//   - per-query minimization / reformulation results (exact-key cache), so
//     only never-seen queries are minimized;
//   - one statistics snapshot and one CostModel (with its hash-consing
//     ViewInterner), so every distinct view is costed once per *session*;
//   - a per-partition result cache keyed by the partition's canonical
//     workload key (minimized, renaming-insensitive): partitions whose
//     sub-workload is unchanged — the clean partitions — are served from
//     cache, and only the *dirty* partitions (touched by the delta) are
//     re-searched. An N+k-query update therefore costs O(dirty partitions),
//     not O(N).
//
// Invalidation rule: a partition is dirty iff its canonical workload key —
// the concatenated renaming-insensitive keys of its member queries'
// minimized forms, in workload order — was never completed before. Adding
// or removing a query changes the key of exactly the partitions whose
// commonality component it touches (plus any re-packing under
// max_partitions). Results of searches that did not complete (time/memory
// exhausted, cancelled) are never cached.
//
// Exactness: whenever the partition decomposition is provably exact (see
// pipeline.h) and every partition search completes, an incremental Update
// yields a recommendation with the same view-set signature and cost as a
// from-scratch Recommend over the final workload. cm auto-calibration runs
// on the session's *first* update and the weights are then frozen, so
// cached and fresh partition results stay cost-comparable; compare against
// a from-scratch run with the same weights (or auto_calibrate_cm = false).
//
// Cancellation & observability: Update honors SelectorOptions::limits.stop
// (a cooperative StopToken checked by every engine — serial, parallel
// frontier, [21] competitors) and streams ProgressEvents (best-cost
// improvements, per-partition completions) through limits.on_progress.
// UpdateAsync / RecommendAsync run the update on a background thread and
// return a TuningHandle with Poll / Current / Cancel / Wait — Cancel stops
// all partitions within a bounded number of state expansions, and Wait
// then returns the valid current-best recommendation.
#ifndef RDFVIEWS_VSEL_SESSION_SESSION_H_
#define RDFVIEWS_VSEL_SESSION_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/stop_token.h"
#include "common/telemetry/export.h"
#include "vsel/pipeline/pipeline.h"
#include "vsel/selector.h"
#include "vsel/serialize/partition_cache.h"

namespace rdfviews::vsel {

/// What TuningSession::TelemetrySnapshot returns: a fresh process-wide
/// registry snapshot plus the last completed update's span bundle.
struct SessionTelemetry {
  telemetry::MetricsSnapshot metrics;
  /// The last successful Update's telemetry (same object the update's
  /// Recommendation carries in pipeline.telemetry); null before the first
  /// completed update or when tracing is disabled.
  std::shared_ptr<const telemetry::RunTelemetry> last_update;
};

/// Snapshot of an asynchronous update's progress (TuningHandle::Current).
/// The counts are monotone over the run, so polling callers can render a
/// live "anytime" view.
struct TuningProgress {
  /// Cost carried by the latest best-cost improvement event — the
  /// *emitting search's* local best (0 until the first event). With
  /// several partitions searching, costs from different partitions are
  /// not comparable to each other (the global cost is their sum), so
  /// treat this as an activity indicator, not a global optimum.
  double best_cost = 0;
  /// How many best-cost improvement events have fired.
  uint64_t improvements = 0;
  /// Partitions finished (searched, served from cache, or abandoned after
  /// exhausting their retry budget) / total.
  size_t partitions_done = 0;
  size_t partitions_total = 0;
  /// Partitions abandoned so far this update (each also counts toward
  /// partitions_done; the recommendation will be degraded when nonzero).
  size_t partitions_failed = 0;
  /// Retry attempts made beyond partitions' first tries so far.
  size_t partition_retries = 0;
  bool cancel_requested = false;
  bool done = false;
};

/// Handle to one in-flight asynchronous update. Thread-safe. Destroying the
/// handle cancels the update and joins the worker (always from the
/// destroying thread — the worker itself only ever holds the handle's
/// internal shared state, never the handle).
class TuningHandle {
 public:
  ~TuningHandle();
  TuningHandle(const TuningHandle&) = delete;
  TuningHandle& operator=(const TuningHandle&) = delete;

  /// True once the update finished (successfully, with an error, or after
  /// a cancellation) and Wait() will not block.
  bool Poll() const;

  /// The live progress snapshot.
  TuningProgress Current() const;

  /// Requests a cooperative stop: every engine observes the token within a
  /// bounded number of state expansions and returns its current best.
  void Cancel();

  /// Blocks until the update finishes and returns its recommendation (the
  /// valid current-best one after a Cancel). May be called repeatedly.
  Result<Recommendation> Wait();

 private:
  friend class TuningSession;
  /// Everything the worker thread touches; kept alive by the worker's own
  /// shared_ptr, so dropping the handle mid-run is safe.
  struct Shared {
    StopSource stop;
    std::atomic<bool> done{false};
    mutable std::mutex mu;  // guards progress and result
    TuningProgress progress;
    Result<Recommendation> result = Status::Internal("update still running");
  };

  TuningHandle() : shared_(std::make_shared<Shared>()) {}
  void Join();

  std::shared_ptr<Shared> shared_;
  std::mutex join_mu_;  // serializes Wait() / destructor joins
  std::thread worker_;
};

/// A long-lived view-selection session over one (store, dictionary, schema,
/// options) environment and an evolving workload. Not thread-safe: one
/// update (sync or async) may be in flight at a time, and the session must
/// outlive every handle it returned. The store / dictionary / schema must
/// outlive the session.
class TuningSession {
 public:
  /// `schema` may be null when options.entailment is kNone. The options —
  /// strategy, heuristics, limits, weights, entailment, partitioning — are
  /// fixed for the session's lifetime (they shape every cached result).
  ///
  /// `cache_backend` chooses where completed partition outcomes live (see
  /// vsel/serialize/partition_cache.h). Null picks from the options: a
  /// DirCacheBackend rooted at options.cache.cache_dir when that is set —
  /// outcomes then persist across process restarts, and any number of
  /// concurrent sessions (this process or others) may share the directory —
  /// otherwise the historical in-process LRU backend. Backend-served
  /// entries that crossed a process boundary are *rehydrated* before use:
  /// their views re-interned through the session's live CostModel and the
  /// state re-costed, and an entry whose recomputed cost does not match the
  /// persisted one (statistics or weight drift the identity tag missed) is
  /// discarded — the partition is simply re-searched.
  TuningSession(
      const rdf::TripleStore* store, const rdf::Dictionary* dict,
      const SelectorOptions& options, const rdf::Schema* schema = nullptr,
      std::shared_ptr<serialize::PartitionCacheBackend> cache_backend =
          nullptr);
  ~TuningSession();

  /// Applies a workload delta and recommends for the result: `add_queries`
  /// are appended, queries whose name is in `remove_queries` are dropped
  /// (every listed name must match at least one current query). Only dirty
  /// partitions are re-searched; see the header comment. The session's
  /// workload advances even when the update is cancelled mid-search (the
  /// returned recommendation is the valid current best; the partitions cut
  /// short simply stay dirty for the next update).
  ///
  /// Failure semantics (see SelectorOptions::robust): a partition search
  /// that throws, fails, or overruns its watchdog deadline is retried per
  /// the session's RetryPolicy and then abandoned — Update still returns a
  /// valid *degraded* recommendation over the surviving partitions
  /// (stats.completed == false, null rewritings for the failed partitions'
  /// queries, the failure roster in pipeline.partition_health). Abandoned
  /// partitions are never cached, so they stay dirty: the next Update
  /// re-searches exactly them. Only when no partition survives does Update
  /// return an error, and an erroring Update leaves the session untouched.
  Result<Recommendation> Update(
      const std::vector<cq::ConjunctiveQuery>& add_queries,
      const std::vector<std::string>& remove_queries = {});

  /// Re-recommends over the current workload without a delta (all clean
  /// partitions served from cache; useful after a cancelled update).
  Result<Recommendation> Recommend() { return Update({}, {}); }

  /// Asynchronous variants: run the update on a background thread and
  /// return a handle with Poll / Current / Cancel / Wait. One update may
  /// be in flight per session at a time (InvalidArgument otherwise,
  /// reported through the handle's Wait).
  std::shared_ptr<TuningHandle> UpdateAsync(
      std::vector<cq::ConjunctiveQuery> add_queries,
      std::vector<std::string> remove_queries = {});
  std::shared_ptr<TuningHandle> RecommendAsync() {
    return UpdateAsync({}, {});
  }

  /// The current workload, in order (adds append, removals compact).
  const std::vector<cq::ConjunctiveQuery>& workload() const {
    return workload_;
  }

  /// Number of entries the backend currently holds. For the in-memory
  /// backend these are exactly this session's clean candidates; for a
  /// directory backend this counts the entry files under the root, *any*
  /// identity — a shared directory includes other configurations' entries.
  size_t cached_partitions() const { return cache_backend_->Size(); }

  /// Drops every cached partition result (the next update re-searches all
  /// partitions); for a directory backend this removes the entry files.
  /// The per-query minimization caches and the cost model survive — they
  /// are delta-independent.
  void InvalidateCachedResults() { cache_backend_->Clear(); }

  /// The backend holding the cached partition results (for observability:
  /// hit/miss/rejection counters, shared-directory inspection).
  const serialize::PartitionCacheBackend& cache_backend() const {
    return *cache_backend_;
  }

  /// A fresh process-wide metrics snapshot plus the last completed update's
  /// span bundle (see SessionTelemetry). Thread-safe: may be called while an
  /// asynchronous update is in flight — it observes the previous update's
  /// spans and the registry's live counters.
  SessionTelemetry TelemetrySnapshot() const;

 private:
  Result<Recommendation> DoUpdate(
      const std::vector<cq::ConjunctiveQuery>& add_queries,
      const std::vector<std::string>& remove_queries,
      const StopToken* stop_override, const ProgressFn& progress_override);

  const rdf::TripleStore* store_;
  const rdf::Dictionary* dict_;
  const rdf::Schema* schema_;
  SelectorOptions options_;
  /// TuningConfig::Validate() verdict captured at construction; a rejected
  /// config fails every Update with the field-naming diagnostic (the
  /// constructor itself cannot return a Status).
  Status config_status_;
  std::vector<cq::ConjunctiveQuery> workload_;
  pipeline::SessionCaches caches_;
  std::unique_ptr<CostModel> cost_model_;
  /// Set after the first update's cm calibration; later updates freeze the
  /// weights so cached best states stay cost-comparable.
  bool calibrated_ = false;
  /// Canonical workload key -> completed search outcome storage (see the
  /// constructor comment). After every update the backend is trimmed to
  /// max(cache.lru_floor, cache.lru_per_partition x current partitions)
  /// entries (in-memory backends evict LRU; persistent ones ignore it).
  std::shared_ptr<serialize::PartitionCacheBackend> cache_backend_;
  /// The session's CacheIdentity bytes, prepended to every canonical key
  /// before it reaches the backend: canonical workload keys are
  /// option-independent, so without the salt two sessions with different
  /// strategies/heuristics/weights sharing one backend object would serve
  /// each other results searched under foreign options.
  std::string cache_key_prefix_;
  /// One in-flight update per session.
  std::atomic<bool> busy_{false};
  /// Last completed update's telemetry, for TelemetrySnapshot(). Guarded by
  /// its own mutex because async updates publish from the worker thread.
  mutable std::mutex telemetry_mu_;
  std::shared_ptr<const telemetry::RunTelemetry> last_run_;
};

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_SESSION_SESSION_H_
