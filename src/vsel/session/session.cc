#include "vsel/session/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "vsel/pipeline/executor.h"
#include "vsel/robust/retrying_cache_backend.h"

namespace rdfviews::vsel {

// ---- TuningHandle ----------------------------------------------------------

TuningHandle::~TuningHandle() {
  Cancel();
  Join();
}

void TuningHandle::Join() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (worker_.joinable()) worker_.join();
}

bool TuningHandle::Poll() const {
  return shared_->done.load(std::memory_order_acquire);
}

TuningProgress TuningHandle::Current() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  TuningProgress p = shared_->progress;
  p.cancel_requested = shared_->stop.stop_requested();
  p.done = shared_->done.load(std::memory_order_acquire);
  return p;
}

void TuningHandle::Cancel() { shared_->stop.RequestStop(); }

Result<Recommendation> TuningHandle::Wait() {
  Join();
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->result;
}

// ---- TuningSession ---------------------------------------------------------

TuningSession::TuningSession(
    const rdf::TripleStore* store, const rdf::Dictionary* dict,
    const SelectorOptions& options, const rdf::Schema* schema,
    std::shared_ptr<serialize::PartitionCacheBackend> cache_backend)
    : store_(store),
      dict_(dict),
      schema_(schema),
      options_(options),
      cache_backend_(std::move(cache_backend)) {
  RDFVIEWS_CHECK(store_ != nullptr && store_->built());
  config_status_ = options_.Validate();
  const serialize::CacheIdentity identity =
      serialize::ComputeCacheIdentity(*store_, options_);
  if (cache_backend_ == nullptr) {
    if (!options_.cache.cache_dir.empty()) {
      cache_backend_ = std::make_shared<serialize::DirCacheBackend>(
          options_.cache.cache_dir, identity);
    } else {
      cache_backend_ = std::make_shared<serialize::InMemoryCacheBackend>();
    }
  }
  if (options_.cache.robust_backend) {
    // Wrap whatever backend we ended up with (self-constructed or
    // caller-supplied) in the retry + circuit-breaker decorator; the
    // decorator shares ownership of the delegate.
    robust::RetryingCacheBackend::Options ro;
    ro.max_attempts = options_.cache.backend_retry_attempts;
    ro.initial_backoff_sec = options_.cache.backend_retry_backoff_sec;
    ro.breaker.failure_threshold = options_.cache.breaker_failure_threshold;
    ro.breaker.open_sec = options_.cache.breaker_open_sec;
    cache_backend_ =
        std::make_shared<robust::RetryingCacheBackend>(cache_backend_, ro);
  }
  // Identity-salt every key handed to the backend (see cache_key_prefix_):
  // sessions with different options sharing one backend object address
  // disjoint key spaces instead of consuming each other's outcomes.
  cache_key_prefix_ = serialize::IdentityKeyBytes(identity);
}

TuningSession::~TuningSession() = default;

Result<Recommendation> TuningSession::Update(
    const std::vector<cq::ConjunctiveQuery>& add_queries,
    const std::vector<std::string>& remove_queries) {
  if (busy_.exchange(true)) {
    return Status::InvalidArgument(
        "TuningSession: an update is already in flight");
  }
  Result<Recommendation> rec =
      DoUpdate(add_queries, remove_queries, nullptr, nullptr);
  busy_.store(false);
  return rec;
}

std::shared_ptr<TuningHandle> TuningSession::UpdateAsync(
    std::vector<cq::ConjunctiveQuery> add_queries,
    std::vector<std::string> remove_queries) {
  // Private constructor: not make_shared-able.
  std::shared_ptr<TuningHandle> handle(new TuningHandle());
  std::shared_ptr<TuningHandle::Shared> shared = handle->shared_;
  if (busy_.exchange(true)) {
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->result = Status::InvalidArgument(
        "TuningSession: an update is already in flight");
    shared->done.store(true, std::memory_order_release);
    return handle;
  }
  StopToken token = shared->stop.token();
  ProgressFn track = [shared](const ProgressEvent& ev) {
    std::lock_guard<std::mutex> lock(shared->mu);
    switch (ev.kind) {
      case ProgressEvent::Kind::kBestImproved:
        shared->progress.best_cost = ev.best_cost;
        ++shared->progress.improvements;
        break;
      case ProgressEvent::Kind::kPartitionDone:
        ++shared->progress.partitions_done;
        shared->progress.partitions_total = ev.partitions_total;
        break;
      case ProgressEvent::Kind::kPartitionFailed:
        // Not terminal: a retry or an abandonment for the same partition
        // follows, and only those move the done/failed counts.
        break;
      case ProgressEvent::Kind::kPartitionRetry:
        ++shared->progress.partition_retries;
        break;
      case ProgressEvent::Kind::kPartitionAbandoned:
        ++shared->progress.partitions_done;
        ++shared->progress.partitions_failed;
        shared->progress.partitions_total = ev.partitions_total;
        break;
    }
  };
  // The worker holds only the Shared block (never the handle), so the
  // handle may be dropped mid-run: its destructor cancels + joins from the
  // destroying thread, and the shared state outlives both. The session
  // itself must outlive the worker (enforced by the handle's join — every
  // handle must be destroyed before the session, see the class comment).
  handle->worker_ = std::thread([this, shared, token, track,
                                 add = std::move(add_queries),
                                 remove = std::move(remove_queries)] {
    Result<Recommendation> rec = DoUpdate(add, remove, &token, track);
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      shared->result = std::move(rec);
    }
    busy_.store(false);
    shared->done.store(true, std::memory_order_release);
  });
  return handle;
}

Result<Recommendation> TuningSession::DoUpdate(
    const std::vector<cq::ConjunctiveQuery>& add_queries,
    const std::vector<std::string>& remove_queries,
    const StopToken* stop_override, const ProgressFn& progress_override) {
  if (!config_status_.ok()) return config_status_;
  // One tracer per update, armed through the thread-local context so every
  // stage below — and every cache access, serialize round-trip, partition
  // attempt, and backoff sleep inside them — lands in one tree rooted at
  // session.update. (pipeline::Run is the one-shot analogue.)
  std::unique_ptr<telemetry::Tracer> tracer;
  std::unique_ptr<telemetry::ScopedTraceContext> scope;
  if (options_.telemetry.trace) {
    tracer = std::make_unique<telemetry::Tracer>();
    scope = std::make_unique<telemetry::ScopedTraceContext>(
        telemetry::TraceContext{tracer.get(), 0});
  }
  telemetry::TraceSpan root("session.update");
  root.Annotate("adds", static_cast<uint64_t>(add_queries.size()));
  root.Annotate("removes", static_cast<uint64_t>(remove_queries.size()));

  // 1. Apply the delta to a working copy (committed only on success).
  std::vector<cq::ConjunctiveQuery> next = workload_;
  if (!remove_queries.empty()) {
    std::unordered_set<std::string> drop(remove_queries.begin(),
                                         remove_queries.end());
    std::unordered_set<std::string> matched;
    std::erase_if(next, [&](const cq::ConjunctiveQuery& q) {
      if (!drop.contains(q.name())) return false;
      matched.insert(q.name());
      return true;
    });
    for (const std::string& name : remove_queries) {
      if (!matched.contains(name)) {
        return Status::NotFound("TuningSession: no workload query named " +
                                name);
      }
    }
  }
  next.insert(next.end(), add_queries.begin(), add_queries.end());
  root.Annotate("queries", static_cast<uint64_t>(next.size()));

  // 2. Effective options for this update: freeze cm after the first
  // calibration, and splice in the async stop token / progress tracker
  // (both compose with whatever the caller put into options_.limits).
  SelectorOptions opts = options_;
  if (calibrated_) opts.auto_calibrate_cm = false;
  if (stop_override != nullptr) {
    opts.limits.stop = StopToken::Combine(options_.limits.stop,
                                          *stop_override);
  }
  if (progress_override) {
    ProgressFn user = options_.limits.on_progress;
    ProgressFn track = progress_override;
    opts.limits.on_progress = [user, track](const ProgressEvent& ev) {
      track(ev);
      if (user) user(ev);
    };
  }

  // 3. Ingest through the session caches: only never-seen queries are
  // validated / reformulated / minimized, and the statistics provider +
  // materialization store are built exactly once per session.
  Result<pipeline::IngestResult> ingest = [&] {
    telemetry::TraceSpan span("pipeline.ingest");
    return pipeline::Ingest(store_, dict_, schema_, next, opts,
                            /*external_stats=*/nullptr, &caches_);
  }();
  if (!ingest.ok()) return ingest.status();
  if (cost_model_ == nullptr) {
    cost_model_ = std::make_unique<CostModel>(ingest->stats, opts.weights);
  }

  // 4. Partition and classify: backend hit -> clean, miss -> dirty.
  // Entries a persistent backend served crossed a process boundary and are
  // rehydrated first — re-interned and re-costed through the live model —
  // and discarded (the partition stays dirty) if the cost does not hold.
  pipeline::PartitionPlan plan = [&] {
    telemetry::TraceSpan span("pipeline.partition");
    return pipeline::PartitionWorkload(*ingest, opts);
  }();
  std::vector<pipeline::PreseededOutcome> preseeded(plan.groups.size());
  std::vector<std::unique_ptr<pipeline::PartitionSearchResult>> fetched(
      plan.groups.size());
  // Cached entries are only usable once this session's weights are
  // settled: a first update that still has cm calibration ahead of it must
  // search *every* partition — the calibration gate in SearchPartitions
  // needs every S0, and cached costs (a persistent file's, or a shared
  // backend's entries from an already-calibrated sibling session) were
  // computed under weights this model does not carry yet — so the backend
  // is not even consulted. With auto_calibrate_cm off — the recommended
  // configuration for persistent caches — restarts warm-start from the
  // very first update.
  const bool accept_cached = calibrated_ || !options_.auto_calibrate_cm;
  for (size_t p = 0; accept_cached && p < plan.groups.size(); ++p) {
    serialize::PartitionCacheBackend::Fetched hit;
    const bool have_hit = [&] {
      telemetry::TraceSpan span("cache.get");
      span.Annotate("partition", static_cast<uint64_t>(p));
      const auto t0 = std::chrono::steady_clock::now();
      // Any non-OK — genuine absence or a storage failure the backend
      // stack could not absorb — leaves the partition dirty; the session
      // can always fall back to searching.
      Status fetched = cache_backend_->Get(cache_key_prefix_ +
                                               plan.group_keys[p],
                                           &hit);
      static telemetry::Histogram* const latency =
          telemetry::MetricsRegistry::Default()->GetHistogram(
              "vsel_cache_op_ns", "op=\"get\"");
      latency->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      span.Annotate("hit", fetched.ok() ? "1" : "0");
      return fetched.ok();
    }();
    if (!have_hit) continue;
    // The re-cost check always runs for entries that crossed a process
    // boundary, and also for in-memory entries when the session's
    // *configured* calibration is on (opts carries the frozen effective
    // flag, always off here): a caller-shared backend can hold a sibling
    // session's entries searched under a *different* calibrated cm —
    // identical identity salt, different first workload — which only the
    // cost assertion can tell apart. (For this session's own entries the
    // check is nearly free: the state's memoized cost cache is valid.)
    if ((hit.needs_rehydration || options_.auto_calibrate_cm) &&
        !pipeline::RehydratePartitionOutcome(&hit.result,
                                             plan.groups[p].size(),
                                             *cost_model_)) {
      // Drop any decorator-tier copy of the poisoned entry first, so a
      // caching front (TieredCacheBackend) cannot keep serving it.
      (void)cache_backend_->Invalidate(cache_key_prefix_ +
                                       plan.group_keys[p]);
      cache_backend_->NoteRehydrationRejected();
      continue;
    }
    fetched[p] = std::make_unique<pipeline::PartitionSearchResult>(
        std::move(hit.result));
    preseeded[p] = {fetched[p].get(), hit.needs_rehydration};
  }

  // 5. Search the dirty partitions (cache hits are copied through). A
  // failed partition comes back as a failed PartitionOutcome, never as a
  // stage error (SearchPartitions only errors on stage-wide setup).
  PipelineReport report;
  Result<std::vector<pipeline::PartitionOutcome>> searches =
      [&]() -> Result<std::vector<pipeline::PartitionOutcome>> {
    telemetry::TraceSpan span("pipeline.search");
    span.Annotate("partitions", static_cast<uint64_t>(plan.groups.size()));
    return pipeline::SearchPartitions(*ingest, plan, cost_model_.get(), opts,
                                      &preseeded, &report);
  }();
  if (!searches.ok()) return searches.status();

  // 6. Collect the cacheable outcomes before the merge consumes the
  // results vector: every fresh partition whose search exhausted its space
  // is reusable. Truncated results (time / memory / cancel) and abandoned
  // partitions are *not* cached — those partitions stay dirty so a later
  // update (or Recommend()) retries exactly them.
  std::vector<std::pair<std::string, pipeline::PartitionSearchResult>>
      cacheable;
  for (size_t p = 0; p < plan.groups.size(); ++p) {
    if (preseeded[p].result != nullptr) continue;
    const pipeline::PartitionOutcome& o = (*searches)[p];
    if (o.ok() && o.result.search.stats.completed) {
      // Cheap COW copy, filed under the identity-salted key.
      cacheable.emplace_back(cache_key_prefix_ + plan.group_keys[p],
                             o.result);
    }
  }

  // 7. Merge cached + fresh partitions into the recommendation.
  Result<Recommendation> rec = [&] {
    telemetry::TraceSpan span("pipeline.merge");
    return pipeline::MergePartitions(*ingest, plan, std::move(*searches),
                                     cost_model_.get(), opts, &report);
  }();
  if (!rec.ok()) return rec.status();

  // 8. Commit only now that the whole update succeeded (a cancelled update
  // *is* a success — its recommendation is the valid current best): the
  // workload advances, the weights freeze, the completed searches become
  // reusable. A failed update leaves the session exactly as it was, so the
  // caller can retry the same delta.
  workload_ = std::move(next);
  calibrated_ = true;
  for (const auto& [key, result] : cacheable) {
    telemetry::TraceSpan span("cache.put");
    const auto t0 = std::chrono::steady_clock::now();
    // A failed Put is a future miss, never an update failure.
    (void)cache_backend_->Put(key, result);
    static telemetry::Histogram* const latency =
        telemetry::MetricsRegistry::Default()->GetHistogram(
            "vsel_cache_op_ns", "op=\"put\"");
    latency->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  // Bound the in-memory cache (persistent backends ignore the hint): keep
  // the most recently used max(lru_floor, lru_per_partition x partitions)
  // entries, so recently retired sub-workloads remain instantly
  // re-addable while a drifting log can not grow the session unboundedly.
  cache_backend_->Trim(
      std::max(options_.cache.lru_floor,
               options_.cache.lru_per_partition * plan.groups.size()));

  // Close the root before harvesting so the exported tree is balanced, then
  // publish: the recommendation carries the bundle, and TelemetrySnapshot
  // serves it as the session's last completed update.
  if (tracer != nullptr) {
    root.End();
    auto bundle = std::make_shared<telemetry::RunTelemetry>();
    bundle->spans = tracer->Spans();
    bundle->metrics = telemetry::MetricsRegistry::Default()->Snapshot();
    rec->pipeline.telemetry = bundle;
    std::lock_guard<std::mutex> lock(telemetry_mu_);
    last_run_ = std::move(bundle);
  }
  return rec;
}

SessionTelemetry TuningSession::TelemetrySnapshot() const {
  SessionTelemetry out;
  out.metrics = telemetry::MetricsRegistry::Default()->Snapshot();
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  out.last_update = last_run_;
  return out;
}

}  // namespace rdfviews::vsel
