#include "vsel/session/session.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace rdfviews::vsel {

// ---- TuningHandle ----------------------------------------------------------

TuningHandle::~TuningHandle() {
  Cancel();
  Join();
}

void TuningHandle::Join() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (worker_.joinable()) worker_.join();
}

bool TuningHandle::Poll() const {
  return shared_->done.load(std::memory_order_acquire);
}

TuningProgress TuningHandle::Current() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  TuningProgress p = shared_->progress;
  p.cancel_requested = shared_->stop.stop_requested();
  p.done = shared_->done.load(std::memory_order_acquire);
  return p;
}

void TuningHandle::Cancel() { shared_->stop.RequestStop(); }

Result<Recommendation> TuningHandle::Wait() {
  Join();
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->result;
}

// ---- TuningSession ---------------------------------------------------------

TuningSession::TuningSession(const rdf::TripleStore* store,
                             const rdf::Dictionary* dict,
                             const SelectorOptions& options,
                             const rdf::Schema* schema)
    : store_(store), dict_(dict), schema_(schema), options_(options) {
  RDFVIEWS_CHECK(store_ != nullptr && store_->built());
}

TuningSession::~TuningSession() = default;

Result<Recommendation> TuningSession::Update(
    const std::vector<cq::ConjunctiveQuery>& add_queries,
    const std::vector<std::string>& remove_queries) {
  if (busy_.exchange(true)) {
    return Status::InvalidArgument(
        "TuningSession: an update is already in flight");
  }
  Result<Recommendation> rec =
      DoUpdate(add_queries, remove_queries, nullptr, nullptr);
  busy_.store(false);
  return rec;
}

std::shared_ptr<TuningHandle> TuningSession::UpdateAsync(
    std::vector<cq::ConjunctiveQuery> add_queries,
    std::vector<std::string> remove_queries) {
  // Private constructor: not make_shared-able.
  std::shared_ptr<TuningHandle> handle(new TuningHandle());
  std::shared_ptr<TuningHandle::Shared> shared = handle->shared_;
  if (busy_.exchange(true)) {
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->result = Status::InvalidArgument(
        "TuningSession: an update is already in flight");
    shared->done.store(true, std::memory_order_release);
    return handle;
  }
  StopToken token = shared->stop.token();
  ProgressFn track = [shared](const ProgressEvent& ev) {
    std::lock_guard<std::mutex> lock(shared->mu);
    switch (ev.kind) {
      case ProgressEvent::Kind::kBestImproved:
        shared->progress.best_cost = ev.best_cost;
        ++shared->progress.improvements;
        break;
      case ProgressEvent::Kind::kPartitionDone:
        ++shared->progress.partitions_done;
        shared->progress.partitions_total = ev.partitions_total;
        break;
    }
  };
  // The worker holds only the Shared block (never the handle), so the
  // handle may be dropped mid-run: its destructor cancels + joins from the
  // destroying thread, and the shared state outlives both. The session
  // itself must outlive the worker (enforced by the handle's join — every
  // handle must be destroyed before the session, see the class comment).
  handle->worker_ = std::thread([this, shared, token, track,
                                 add = std::move(add_queries),
                                 remove = std::move(remove_queries)] {
    Result<Recommendation> rec = DoUpdate(add, remove, &token, track);
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      shared->result = std::move(rec);
    }
    busy_.store(false);
    shared->done.store(true, std::memory_order_release);
  });
  return handle;
}

Result<Recommendation> TuningSession::DoUpdate(
    const std::vector<cq::ConjunctiveQuery>& add_queries,
    const std::vector<std::string>& remove_queries,
    const StopToken* stop_override, const ProgressFn& progress_override) {
  // 1. Apply the delta to a working copy (committed only on success).
  std::vector<cq::ConjunctiveQuery> next = workload_;
  if (!remove_queries.empty()) {
    std::unordered_set<std::string> drop(remove_queries.begin(),
                                         remove_queries.end());
    std::unordered_set<std::string> matched;
    std::erase_if(next, [&](const cq::ConjunctiveQuery& q) {
      if (!drop.contains(q.name())) return false;
      matched.insert(q.name());
      return true;
    });
    for (const std::string& name : remove_queries) {
      if (!matched.contains(name)) {
        return Status::NotFound("TuningSession: no workload query named " +
                                name);
      }
    }
  }
  next.insert(next.end(), add_queries.begin(), add_queries.end());

  // 2. Effective options for this update: freeze cm after the first
  // calibration, and splice in the async stop token / progress tracker
  // (both compose with whatever the caller put into options_.limits).
  SelectorOptions opts = options_;
  if (calibrated_) opts.auto_calibrate_cm = false;
  if (stop_override != nullptr) {
    opts.limits.stop = StopToken::Combine(options_.limits.stop,
                                          *stop_override);
  }
  if (progress_override) {
    ProgressFn user = options_.limits.on_progress;
    ProgressFn track = progress_override;
    opts.limits.on_progress = [user, track](const ProgressEvent& ev) {
      track(ev);
      if (user) user(ev);
    };
  }

  // 3. Ingest through the session caches: only never-seen queries are
  // validated / reformulated / minimized, and the statistics provider +
  // materialization store are built exactly once per session.
  Result<pipeline::IngestResult> ingest = pipeline::Ingest(
      store_, dict_, schema_, next, opts, /*external_stats=*/nullptr,
      &caches_);
  if (!ingest.ok()) return ingest.status();
  if (cost_model_ == nullptr) {
    cost_model_ = std::make_unique<CostModel>(ingest->stats, opts.weights);
  }

  // 4. Partition and classify: cached key -> clean, unseen key -> dirty.
  const uint64_t generation = ++update_counter_;
  pipeline::PartitionPlan plan = pipeline::PartitionWorkload(*ingest, opts);
  std::vector<const pipeline::PartitionSearchResult*> preseeded(
      plan.groups.size(), nullptr);
  for (size_t p = 0; p < plan.groups.size(); ++p) {
    auto it = partition_cache_.find(plan.group_keys[p]);
    if (it != partition_cache_.end()) {
      it->second.last_used = generation;
      preseeded[p] = &it->second.result;
    }
  }

  // 5. Search the dirty partitions (cache hits are copied through).
  PipelineReport report;
  Result<std::vector<pipeline::PartitionSearchResult>> searches =
      pipeline::SearchPartitions(*ingest, plan, cost_model_.get(), opts,
                                 &preseeded, &report);
  if (!searches.ok()) return searches.status();

  // 6. Collect the cacheable outcomes before the merge consumes the
  // results vector: every fresh partition whose search exhausted its space
  // is reusable. Truncated results (time / memory / cancel) are *not*
  // cached — those partitions stay dirty so a later update (or
  // Recommend()) retries them.
  std::vector<std::pair<std::string, pipeline::PartitionSearchResult>>
      cacheable;
  for (size_t p = 0; p < plan.groups.size(); ++p) {
    if (preseeded[p] != nullptr) continue;
    const pipeline::PartitionSearchResult& r = (*searches)[p];
    if (r.search.stats.completed) {
      cacheable.emplace_back(plan.group_keys[p], r);  // cheap COW copy
    }
  }

  // 7. Merge cached + fresh partitions into the recommendation.
  Result<Recommendation> rec = pipeline::MergePartitions(
      *ingest, plan, std::move(*searches), cost_model_.get(), opts, &report);
  if (!rec.ok()) return rec.status();

  // 8. Commit only now that the whole update succeeded (a cancelled update
  // *is* a success — its recommendation is the valid current best): the
  // workload advances, the weights freeze, the completed searches become
  // reusable. A failed update leaves the session exactly as it was, so the
  // caller can retry the same delta.
  workload_ = std::move(next);
  calibrated_ = true;
  for (auto& [key, result] : cacheable) {
    partition_cache_[key] = CachedPartition{std::move(result), generation};
  }
  // Bound the cache: keep the most recently used max(64, 4x partitions)
  // entries, so recently retired sub-workloads remain instantly
  // re-addable while a drifting log can not grow the session unboundedly.
  const size_t cap = std::max<size_t>(64, 4 * plan.groups.size());
  if (partition_cache_.size() > cap) {
    std::vector<std::pair<uint64_t, const std::string*>> by_age;
    by_age.reserve(partition_cache_.size());
    for (const auto& [key, cached] : partition_cache_) {
      by_age.emplace_back(cached.last_used, &key);
    }
    std::sort(by_age.begin(), by_age.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i + cap < by_age.size(); ++i) {
      partition_cache_.erase(*by_age[i].second);
    }
  }
  return rec;
}

}  // namespace rdfviews::vsel
