#include "vsel/selector.h"

#include "common/logging.h"
#include "engine/executor.h"
#include "engine/materializer.h"
#include "vsel/session/session.h"

namespace rdfviews::vsel {

const char* EntailmentModeName(EntailmentMode mode) {
  switch (mode) {
    case EntailmentMode::kNone: return "none";
    case EntailmentMode::kSaturate: return "saturate";
    case EntailmentMode::kPreReformulate: return "pre-reformulation";
    case EntailmentMode::kPostReformulate: return "post-reformulation";
  }
  return "?";
}

Result<Recommendation> ViewSelector::Recommend(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const SelectorOptions& options) const {
  RDFVIEWS_CHECK(store_ != nullptr && store_->built());
  // The selector is the one-shot convenience wrapper over a TuningSession:
  // one update over the whole workload, caches discarded with the session.
  // Through the session this runs the staged pipeline (src/vsel/pipeline/),
  // so there is exactly one recommendation code path.
  TuningSession session(store_, dict_, options, schema_);
  return session.Update(workload);
}

const engine::Relation& MaterializedViews::ById(uint32_t view_id) const {
  for (size_t i = 0; i < view_ids.size(); ++i) {
    if (view_ids[i] == view_id) return relations[i];
  }
  RDFVIEWS_CHECK_MSG(false, "view v" << view_id << " not materialized");
  static engine::Relation empty;
  return empty;
}

size_t MaterializedViews::TotalBytes() const {
  size_t total = 0;
  for (const engine::Relation& r : relations) total += r.ByteSize();
  return total;
}

MaterializedViews Materialize(const Recommendation& rec) {
  MaterializedViews out;
  out.view_ids = rec.view_ids;
  for (size_t i = 0; i < rec.view_definitions.size(); ++i) {
    out.relations.push_back(engine::MaterializeUnionView(
        rec.view_definitions[i], rec.view_columns[i],
        *rec.materialization_store));
  }
  return out;
}

engine::Relation AnswerQuery(const Recommendation& rec,
                             const MaterializedViews& views,
                             size_t query_index) {
  RDFVIEWS_CHECK(query_index < rec.rewritings.size());
  engine::Relation result = engine::Execute(
      *rec.rewritings[query_index],
      [&](uint32_t id) -> const engine::Relation& { return views.ById(id); });
  result.DedupRows();
  return result;
}

}  // namespace rdfviews::vsel
