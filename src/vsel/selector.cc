#include "vsel/selector.h"

#include <algorithm>

#include "common/logging.h"
#include "engine/executor.h"
#include "engine/materializer.h"
#include "rdf/saturation.h"
#include "reform/reformulate.h"

namespace rdfviews::vsel {

const char* EntailmentModeName(EntailmentMode mode) {
  switch (mode) {
    case EntailmentMode::kNone: return "none";
    case EntailmentMode::kSaturate: return "saturate";
    case EntailmentMode::kPreReformulate: return "pre-reformulation";
    case EntailmentMode::kPostReformulate: return "post-reformulation";
  }
  return "?";
}

namespace {

/// Pre-collects the statistics the paper gathers before the search: the
/// count of every workload atom and of all its relaxations (Sec. 3.3).
void CollectWorkloadStatistics(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const rdf::Statistics& stats) {
  for (const cq::ConjunctiveQuery& q : workload) {
    for (const cq::Atom& atom : q.atoms()) {
      stats.CollectWithRelaxations(atom.ToPattern());
    }
  }
}

}  // namespace

Result<Recommendation> ViewSelector::Recommend(
    const std::vector<cq::ConjunctiveQuery>& workload,
    const SelectorOptions& options) const {
  RDFVIEWS_CHECK(store_ != nullptr && store_->built());
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  const bool needs_schema =
      options.entailment != EntailmentMode::kNone;
  if (needs_schema && (schema_ == nullptr || schema_->empty())) {
    return Status::InvalidArgument(
        "entailment mode requires a non-empty RDF schema");
  }

  Recommendation rec;
  rec.entailment = options.entailment;

  // --- Statistics and the store to materialize on. -----------------------
  std::unique_ptr<rdf::Statistics> stats;
  std::shared_ptr<const rdf::TripleStore> mat_store(store_,
                                                    [](const auto*) {});
  switch (options.entailment) {
    case EntailmentMode::kNone:
    case EntailmentMode::kPreReformulate:
      stats = std::make_unique<rdf::Statistics>(store_);
      break;
    case EntailmentMode::kSaturate: {
      auto saturated = std::make_shared<rdf::TripleStore>(
          rdf::Saturate(*store_, *schema_, {}, dict_));
      mat_store = saturated;
      stats = std::make_unique<rdf::Statistics>(saturated.get());
      // Keep the saturated store alive through the statistics object: the
      // shared_ptr is stored in the recommendation below.
      break;
    }
    case EntailmentMode::kPostReformulate:
      stats =
          std::make_unique<reform::ReformulatedStatistics>(store_, schema_);
      break;
  }
  rec.materialization_store = mat_store;

  // --- Initial state. -----------------------------------------------------
  Result<State> s0 = [&]() -> Result<State> {
    if (options.entailment == EntailmentMode::kPreReformulate) {
      std::vector<cq::UnionOfQueries> reformulated;
      for (const cq::ConjunctiveQuery& q : workload) {
        reform::ReformulationResult r = reform::Reformulate(q, *schema_);
        if (!r.complete) {
          return Status::ResourceExhausted(
              "reformulation of " + q.name() + " exceeded the query budget");
        }
        reformulated.push_back(std::move(r.ucq));
      }
      return MakeReformulatedInitialState(workload, reformulated);
    }
    return MakeInitialState(workload);
  }();
  if (!s0.ok()) return s0.status();

  // Pre-collect statistics for every view atom of the initial state (the
  // paper's statistics-gathering phase); further patterns are computed and
  // cached on demand.
  std::vector<cq::ConjunctiveQuery> stat_sources;
  for (const View& v : s0->views()) stat_sources.push_back(v.def);
  CollectWorkloadStatistics(stat_sources, *stats);

  // --- Cost model (with cm calibration) and search. -----------------------
  CostModel cost_model(stats.get(), options.weights);
  if (options.auto_calibrate_cm) {
    CostBreakdown b = cost_model.Breakdown(*s0);
    CostWeights w = options.weights;
    w.cm = CostModel::CalibrateCm(b, w);
    cost_model.set_weights(w);
  }
  Result<SearchResult> search =
      RunSearch(options.strategy, *s0, cost_model, options.heuristics,
                options.limits);
  if (!search.ok()) return search.status();

  rec.best_state = search->best;
  rec.stats = search->stats;
  rec.cost_counters = cost_model.counters();
  rec.cost_cache_counters = cost_model.interner().counters();
  rec.distinct_views_interned = cost_model.interner().NumDistinctViews();

  // --- Final view definitions (post-reformulation happens here). ----------
  for (const View& v : rec.best_state.views()) {
    cq::UnionOfQueries def(v.Name());
    if (options.entailment == EntailmentMode::kPostReformulate) {
      reform::ReformulationResult r = reform::Reformulate(v.def, *schema_);
      if (!r.complete) {
        return Status::ResourceExhausted(
            "post-reformulation of view " + v.Name() +
            " exceeded the query budget");
      }
      def = std::move(r.ucq);
    } else {
      def.Add(v.def);
    }
    rec.view_definitions.push_back(std::move(def));
    rec.view_columns.push_back(v.Columns());
    rec.view_ids.push_back(v.id);
  }
  rec.rewritings = rec.best_state.rewritings();
  return rec;
}

const engine::Relation& MaterializedViews::ById(uint32_t view_id) const {
  for (size_t i = 0; i < view_ids.size(); ++i) {
    if (view_ids[i] == view_id) return relations[i];
  }
  RDFVIEWS_CHECK_MSG(false, "view v" << view_id << " not materialized");
  static engine::Relation empty;
  return empty;
}

size_t MaterializedViews::TotalBytes() const {
  size_t total = 0;
  for (const engine::Relation& r : relations) total += r.ByteSize();
  return total;
}

MaterializedViews Materialize(const Recommendation& rec) {
  MaterializedViews out;
  out.view_ids = rec.view_ids;
  for (size_t i = 0; i < rec.view_definitions.size(); ++i) {
    out.relations.push_back(engine::MaterializeUnionView(
        rec.view_definitions[i], rec.view_columns[i],
        *rec.materialization_store));
  }
  return out;
}

engine::Relation AnswerQuery(const Recommendation& rec,
                             const MaterializedViews& views,
                             size_t query_index) {
  RDFVIEWS_CHECK(query_index < rec.rewritings.size());
  engine::Relation result = engine::Execute(
      *rec.rewritings[query_index],
      [&](uint32_t id) -> const engine::Relation& { return views.ById(id); });
  result.DedupRows();
  return result;
}

}  // namespace rdfviews::vsel
