// Search strategies over the space of candidate view sets (Section 5):
// EXNAIVE (Algorithm 2), EXSTR, DFS and GSTR, with the AVF optimization and
// the stop_tt / stop_var / stop_time conditions.
#ifndef RDFVIEWS_VSEL_SEARCH_H_
#define RDFVIEWS_VSEL_SEARCH_H_

#include "common/status.h"
#include "vsel/cost_model.h"
#include "vsel/options.h"
#include "vsel/state.h"
#include "vsel/transitions.h"

namespace rdfviews::vsel {

struct SearchResult {
  State best;
  SearchStats stats;
};

/// Runs `strategy` from the initial state `s0`. All strategies are anytime:
/// they return the best state found when the space is exhausted, the time
/// budget expires, or the state budget (memory) is exceeded; for the [21]
/// competitor strategies, memory exhaustion before a full candidate set
/// yields an error status (they have no anytime solution, Sec. 6.2).
Result<SearchResult> RunSearch(StrategyKind strategy, const State& s0,
                               const CostModel& cost_model,
                               const HeuristicOptions& heuristics,
                               const SearchLimits& limits);

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_SEARCH_H_
