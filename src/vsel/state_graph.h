// The state graph of Definition 3.1: one node per view atom, join edges
// between attribute occurrences of a shared variable, and selection edges
// for constants. The graph of each view is a connected component.
#ifndef RDFVIEWS_VSEL_STATE_GRAPH_H_
#define RDFVIEWS_VSEL_STATE_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "cq/query.h"
#include "vsel/state.h"

namespace rdfviews::vsel {

/// A selection edge v:n.a = c (Def. 3.1).
struct SelectionEdge {
  uint32_t view_idx = 0;          // index into state.views()
  cq::Occurrence occurrence;      // the constant's position
  rdf::TermId constant = 0;
};

/// A join edge v:ni.ai = nj.aj. Every unordered pair of occurrences of the
/// same variable yields one edge (so star queries become cliques, Sec. 6.2);
/// repeated variables inside one atom yield intra-atom edges.
struct JoinEdge {
  uint32_t view_idx = 0;
  cq::Occurrence a;
  cq::Occurrence b;               // a < b in (atom, column) order
  cq::VarId var = 0;
};

/// Edge lists for one view's graph.
struct ViewGraph {
  std::vector<SelectionEdge> selection_edges;
  std::vector<JoinEdge> join_edges;
};

/// The View Break transitions of one view as (mask_a, mask_b) atom-subset
/// pairs (both connected, a < b), precomputed once per distinct view. The
/// pairs depend only on the view's variable-sharing structure and the two
/// overlap options recorded here; a consumer with different options must
/// recompute instead of using the cached list.
struct VbBreakList {
  size_t vb_overlap = 0;
  size_t vb_overlap_max_atoms = 0;
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
};

/// Computes the graph of one view.
ViewGraph BuildViewGraph(const State& state, uint32_t view_idx);

/// Computes the graph of a view outside any state; the edges carry
/// `view_idx` as their view index. This is the form the ViewInterner's
/// graph cache stores (keyed by the view's cost hash): every view with the
/// same cost hash has identical occurrence structure and constants, so the
/// cached edge lists apply to all of them — only JoinEdge::var is specific
/// to the first-sighted view's variable names.
ViewGraph BuildViewGraph(const View& view, uint32_t view_idx);

/// All edges of the state graph G(S).
struct StateGraph {
  std::vector<SelectionEdge> selection_edges;
  std::vector<JoinEdge> join_edges;

  static StateGraph Of(const State& state);
};

/// Connected components of a set of atoms under shared variables; returns a
/// component id per atom.
std::vector<int> AtomComponents(const std::vector<cq::Atom>& atoms);

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_STATE_GRAPH_H_
