// View canonical-identity computation, backed by a process-wide cache.
//
// Canonicalizing a conjunctive query (iterative refinement + string
// rendering, twice per view: head-inclusive and body-only) dominates the
// cost of creating a view. The search re-derives the same few distinct
// views enormous numbers of times — a fused pair of shared parent views
// produces byte-identical defs along every path — so the canonical strings
// and hashes are cached under the dense-renamed structural key: two defs
// with equal keys are identical up to a variable bijection, and canonical
// forms are invariant under renaming, so sharing the cached identity is
// exact, never approximate.
#include "vsel/view.h"

#include <array>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/telemetry/metrics.h"

namespace rdfviews::vsel {

namespace {

/// One cached canonical identity. Immutable once published; hits copy the
/// strings into the requesting View.
struct Identity {
  std::string canon;
  std::string body_canon;
  Hash128 hash;
};

struct IdentityShard {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const Identity>> map;
};

constexpr size_t kIdentityShards = 16;

/// Leaked intentionally: Views may be canonicalized during static
/// destruction of test fixtures; a leaked cache has no destruction order.
std::array<IdentityShard, kIdentityShards>& Shards() {
  static auto* shards = new std::array<IdentityShard, kIdentityShards>();
  return *shards;
}

telemetry::Counter* HitCounter() {
  static telemetry::Counter* const c =
      telemetry::MetricsRegistry::Default()->GetCounter(
          "vsel_view_identity_cache_hits_total");
  return c;
}

telemetry::Counter* MissCounter() {
  static telemetry::Counter* const c =
      telemetry::MetricsRegistry::Default()->GetCounter(
          "vsel_view_identity_cache_misses_total");
  return c;
}

}  // namespace

std::string View::StructuralKey(size_t* body_len) const {
  std::string key;
  key.reserve(def.atoms().size() * 15 + def.head().size() * 5 + 1);
  std::unordered_map<cq::VarId, uint32_t> index;
  auto append_term = [&key, &index](const cq::Term& t) {
    if (t.is_const()) {
      key.push_back('c');
      uint64_t c = t.constant();
      key.append(reinterpret_cast<const char*>(&c), sizeof(c));
    } else {
      key.push_back('v');
      uint32_t idx = static_cast<uint32_t>(
          index.try_emplace(t.var(), index.size()).first->second);
      key.append(reinterpret_cast<const char*>(&idx), sizeof(idx));
    }
  };
  for (const cq::Atom& a : def.atoms()) {
    append_term(a.s);
    append_term(a.p);
    append_term(a.o);
  }
  if (body_len != nullptr) *body_len = key.size();
  key.push_back('|');
  for (const cq::Term& t : def.head()) append_term(t);
  return key;
}

void View::ComputeCostHashes() const {
  size_t body_len = 0;
  std::string key = StructuralKey(&body_len);
  cost_body_hash_ = HashBytes128(key.data(), body_len);
  cost_hash_ = HashBytes128(key.data(), key.size());
  cost_hash_ready_ = true;
}

void View::FillIdentityCached() const {
  size_t body_len = 0;
  std::string key = StructuralKey(&body_len);
  if (!cost_hash_ready_) {
    cost_body_hash_ = HashBytes128(key.data(), body_len);
    cost_hash_ = HashBytes128(key.data(), key.size());
    cost_hash_ready_ = true;
  }
  if (canonical_ready_ && body_ready_ && hash_ready_) return;
  IdentityShard& shard =
      Shards()[static_cast<size_t>(cost_hash_.lo) % kIdentityShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      const Identity& id = *it->second;
      canon_ = id.canon;
      body_canon_ = id.body_canon;
      hash_ = id.hash;
      canonical_ready_ = true;
      body_ready_ = true;
      hash_ready_ = true;
      HitCounter()->Add(1);
      return;
    }
  }
  // Miss: canonicalize outside the lock (the expensive part). A racing
  // equal-key miss computes the same immutable identity; last insert wins.
  auto id = std::make_shared<Identity>();
  id->canon = cq::CanonicalString(def, /*include_head=*/true);
  id->body_canon = cq::CanonicalString(def, /*include_head=*/false);
  id->hash = HashBytes128(id->canon.data(), id->canon.size());
  canon_ = id->canon;
  body_canon_ = id->body_canon;
  hash_ = id->hash;
  canonical_ready_ = true;
  body_ready_ = true;
  hash_ready_ = true;
  MissCounter()->Add(1);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.emplace(std::move(key), std::move(id));
}

}  // namespace rdfviews::vsel
