#include "vsel/state_graph.h"

#include <unordered_map>

#include "common/disjoint_sets.h"

namespace rdfviews::vsel {

namespace {
constexpr rdf::Column kColumns[3] = {rdf::Column::kS, rdf::Column::kP,
                                     rdf::Column::kO};
}  // namespace

ViewGraph BuildViewGraph(const State& state, uint32_t view_idx) {
  return BuildViewGraph(state.views()[view_idx], view_idx);
}

ViewGraph BuildViewGraph(const View& view, uint32_t view_idx) {
  ViewGraph graph;
  const cq::ConjunctiveQuery& def = view.def;
  for (uint32_t ai = 0; ai < def.atoms().size(); ++ai) {
    for (rdf::Column c : kColumns) {
      cq::Term t = def.atoms()[ai].at(c);
      if (t.is_const()) {
        graph.selection_edges.push_back(
            SelectionEdge{view_idx, cq::Occurrence{ai, c}, t.constant()});
      }
    }
  }
  for (const auto& [var, occs] : def.VarOccurrences()) {
    for (size_t i = 0; i < occs.size(); ++i) {
      for (size_t j = i + 1; j < occs.size(); ++j) {
        graph.join_edges.push_back(JoinEdge{view_idx, occs[i], occs[j], var});
      }
    }
  }
  return graph;
}

StateGraph StateGraph::Of(const State& state) {
  StateGraph g;
  for (uint32_t vi = 0; vi < state.views().size(); ++vi) {
    ViewGraph vg = BuildViewGraph(state, vi);
    g.selection_edges.insert(g.selection_edges.end(),
                             vg.selection_edges.begin(),
                             vg.selection_edges.end());
    g.join_edges.insert(g.join_edges.end(), vg.join_edges.begin(),
                        vg.join_edges.end());
  }
  return g;
}

std::vector<int> AtomComponents(const std::vector<cq::Atom>& atoms) {
  const size_t n = atoms.size();
  DisjointSets sets(n);
  std::unordered_map<cq::VarId, size_t> first_atom;
  for (size_t i = 0; i < n; ++i) {
    for (rdf::Column c : kColumns) {
      cq::Term t = atoms[i].at(c);
      if (!t.is_var()) continue;
      auto [it, inserted] = first_atom.emplace(t.var(), i);
      if (!inserted) sets.Union(i, it->second);
    }
  }
  std::vector<int> comp(n);
  std::unordered_map<size_t, int> root_to_id;
  int next_id = 0;
  for (size_t i = 0; i < n; ++i) {
    auto [it, inserted] = root_to_id.emplace(sets.Find(i), next_id);
    if (inserted) ++next_id;
    comp[i] = it->second;
  }
  return comp;
}

}  // namespace rdfviews::vsel
