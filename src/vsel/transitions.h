// The four state transitions of Section 3.2:
//   SC — Selection Cut (Def. 3.3): replace a constant by a fresh head var,
//        compensating with a selection in the rewritings.
//   JC — Join Cut (Def. 3.4): break one join edge; the view either survives
//        with an explicit selection X = X', or splits into two views joined
//        back in the rewritings.
//   VB — View Break (Def. 3.2): split a view with >= 3 atoms into two
//        connected (possibly overlapping) sub-views, natural-joined back.
//   VF — View Fusion (Def. 3.5): fuse two views with isomorphic bodies into
//        one view whose head is the union of both heads.
#ifndef RDFVIEWS_VSEL_TRANSITIONS_H_
#define RDFVIEWS_VSEL_TRANSITIONS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vsel/options.h"
#include "vsel/state.h"
#include "vsel/state_graph.h"

namespace rdfviews::vsel {

class ViewInterner;

enum class TransitionKind : uint8_t { kVB = 0, kSC = 1, kJC = 2, kVF = 3 };

const char* TransitionName(TransitionKind kind);

/// A transition descriptor: cheap to enumerate, applied on demand.
struct Transition {
  TransitionKind kind = TransitionKind::kSC;
  uint32_t view_idx = 0;

  // SC: the selection edge being cut.
  cq::Occurrence sc_occurrence;

  // JC: the join edge; `jc_replace` is the occurrence that receives the
  // fresh variable (Def. 3.4 cuts ni.ci), `jc_other` the other endpoint.
  cq::Occurrence jc_replace;
  cq::Occurrence jc_other;

  // VB: bitmasks (over atom indices) of the two covering subsets.
  uint64_t vb_mask_a = 0;
  uint64_t vb_mask_b = 0;

  // VF: the second fused view.
  uint32_t view_idx2 = 0;

  std::string ToString() const;
};

/// Options controlling transition enumeration (VB cover generation).
struct TransitionOptions {
  int vb_overlap = 1;
  size_t vb_overlap_max_atoms = 14;
  /// Views larger than this get no view breaks at all (2^n enumeration).
  size_t vb_max_atoms = 16;
  /// Enumerate both orientations of each join edge (Def. 3.4 cuts ni.ai;
  /// cutting nj.aj is a distinct transition). The [21] competitor
  /// re-implementation uses a single orientation, as the relational
  /// original does.
  bool jc_both_orientations = true;
  /// When set, SC/JC enumeration fetches each view's selection/join edge
  /// lists from this interner's graph cache (keyed by the view's cost
  /// hash), so a distinct view's graph is built once per run instead of
  /// once per state holding it — as cost estimates already are. Null keeps
  /// the uncached per-state rebuild.
  ViewInterner* graph_cache = nullptr;

  static TransitionOptions FromHeuristics(const HeuristicOptions& h) {
    TransitionOptions t;
    t.vb_overlap = h.vb_overlap;
    t.vb_overlap_max_atoms = h.vb_overlap_max_atoms;
    return t;
  }
};

class TransitionBuffer;

/// Enumerates all applicable transitions of `kind` on `state`.
std::vector<Transition> EnumerateTransitions(const State& state,
                                             TransitionKind kind,
                                             const TransitionOptions& options);

/// Appends all applicable transitions of `kind` on `state` to `buf`
/// (which the caller owns and reuses across calls — the batch API's whole
/// point is that the enumeration hot path performs no per-call vector
/// allocation once the buffer has warmed up). Returns the number appended.
/// The transitions appear in exactly the order EnumerateTransitions
/// produces them.
size_t EnumerateTransitionsInto(const State& state, TransitionKind kind,
                                const TransitionOptions& options,
                                TransitionBuffer* buf);

/// Appends the transitions of every kind in [from_kind .. kVF] to `buf`,
/// in kind-major order (all VB, then all SC, then all JC, then all VF —
/// byte-identical to concatenating EnumerateTransitions per kind). SC and
/// JC are enumerated per view-graph stripe: one graph resolution per view
/// feeds both edge lists, instead of one resolution per (view, kind).
/// Returns the number appended.
size_t EnumerateTransitionsBatch(const State& state, TransitionKind from_kind,
                                 const TransitionOptions& options,
                                 TransitionBuffer* buf);

/// Reusable caller-owned output buffer for the batch enumeration API.
class TransitionBuffer {
 public:
  void Clear() { items_.clear(); }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const Transition& operator[](size_t i) const { return items_[i]; }
  const Transition* begin() const { return items_.data(); }
  const Transition* end() const { return items_.data() + items_.size(); }

 private:
  friend size_t EnumerateTransitionsInto(const State&, TransitionKind,
                                         const TransitionOptions&,
                                         TransitionBuffer*);
  friend size_t EnumerateTransitionsBatch(const State&, TransitionKind,
                                          const TransitionOptions&,
                                          TransitionBuffer*);
  std::vector<Transition> items_;
  std::vector<Transition> jc_scratch_;  // JC staging for the striped sweep
};

/// Depth-indexed buffer pool for recursive users (DFS): each recursion
/// depth reuses its own TransitionBuffer across visits, so a whole DFS
/// run allocates O(max depth) buffers total. Buffers are heap-boxed so
/// references stay valid while deeper levels grow the pool.
class TransitionBufferPool {
 public:
  TransitionBuffer& At(size_t depth) {
    while (buffers_.size() <= depth) {
      buffers_.push_back(std::make_unique<TransitionBuffer>());
    }
    return *buffers_[depth];
  }

 private:
  std::vector<std::unique_ptr<TransitionBuffer>> buffers_;
};

/// Applies a transition, producing the successor state. Fails only on
/// malformed descriptors. The successor's flat storage is bump-allocated
/// from `arena` when one is given (heap otherwise); see
/// State::CloneForTransition for the lifetime rules.
State ApplyTransition(const State& state, const Transition& t,
                      Arena* arena = nullptr);

/// Applies VF to fixpoint (the AVF optimization, Sec. 5.2): returns the
/// fully-fused state and counts the intermediate states in `steps`.
State AvfClosure(const State& state, const TransitionOptions& options,
                 size_t* steps, Arena* arena = nullptr);

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_TRANSITIONS_H_
