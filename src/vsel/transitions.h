// The four state transitions of Section 3.2:
//   SC — Selection Cut (Def. 3.3): replace a constant by a fresh head var,
//        compensating with a selection in the rewritings.
//   JC — Join Cut (Def. 3.4): break one join edge; the view either survives
//        with an explicit selection X = X', or splits into two views joined
//        back in the rewritings.
//   VB — View Break (Def. 3.2): split a view with >= 3 atoms into two
//        connected (possibly overlapping) sub-views, natural-joined back.
//   VF — View Fusion (Def. 3.5): fuse two views with isomorphic bodies into
//        one view whose head is the union of both heads.
#ifndef RDFVIEWS_VSEL_TRANSITIONS_H_
#define RDFVIEWS_VSEL_TRANSITIONS_H_

#include <optional>
#include <string>
#include <vector>

#include "vsel/options.h"
#include "vsel/state.h"
#include "vsel/state_graph.h"

namespace rdfviews::vsel {

class ViewInterner;

enum class TransitionKind : uint8_t { kVB = 0, kSC = 1, kJC = 2, kVF = 3 };

const char* TransitionName(TransitionKind kind);

/// A transition descriptor: cheap to enumerate, applied on demand.
struct Transition {
  TransitionKind kind = TransitionKind::kSC;
  uint32_t view_idx = 0;

  // SC: the selection edge being cut.
  cq::Occurrence sc_occurrence;

  // JC: the join edge; `jc_replace` is the occurrence that receives the
  // fresh variable (Def. 3.4 cuts ni.ci), `jc_other` the other endpoint.
  cq::Occurrence jc_replace;
  cq::Occurrence jc_other;

  // VB: bitmasks (over atom indices) of the two covering subsets.
  uint64_t vb_mask_a = 0;
  uint64_t vb_mask_b = 0;

  // VF: the second fused view.
  uint32_t view_idx2 = 0;

  std::string ToString() const;
};

/// Options controlling transition enumeration (VB cover generation).
struct TransitionOptions {
  int vb_overlap = 1;
  size_t vb_overlap_max_atoms = 14;
  /// Views larger than this get no view breaks at all (2^n enumeration).
  size_t vb_max_atoms = 16;
  /// Enumerate both orientations of each join edge (Def. 3.4 cuts ni.ai;
  /// cutting nj.aj is a distinct transition). The [21] competitor
  /// re-implementation uses a single orientation, as the relational
  /// original does.
  bool jc_both_orientations = true;
  /// When set, SC/JC enumeration fetches each view's selection/join edge
  /// lists from this interner's graph cache (keyed by the view's cost
  /// hash), so a distinct view's graph is built once per run instead of
  /// once per state holding it — as cost estimates already are. Null keeps
  /// the uncached per-state rebuild.
  ViewInterner* graph_cache = nullptr;

  static TransitionOptions FromHeuristics(const HeuristicOptions& h) {
    TransitionOptions t;
    t.vb_overlap = h.vb_overlap;
    t.vb_overlap_max_atoms = h.vb_overlap_max_atoms;
    return t;
  }
};

/// Enumerates all applicable transitions of `kind` on `state`.
std::vector<Transition> EnumerateTransitions(const State& state,
                                             TransitionKind kind,
                                             const TransitionOptions& options);

/// Applies a transition, producing the successor state. Fails only on
/// malformed descriptors.
State ApplyTransition(const State& state, const Transition& t);

/// Applies VF to fixpoint (the AVF optimization, Sec. 5.2): returns the
/// fully-fused state and counts the intermediate states in `steps`.
State AvfClosure(const State& state, const TransitionOptions& options,
                 size_t* steps);

}  // namespace rdfviews::vsel

#endif  // RDFVIEWS_VSEL_TRANSITIONS_H_
