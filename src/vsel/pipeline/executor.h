// Where a partition's search attempt physically runs.
//
// Pipeline stage 3 owns the *policy* around an attempt — budget slices,
// retry/backoff, the watchdog deadline, failure containment — and
// delegates the attempt itself to a PartitionExecutor. The default
// LocalExecutor runs the search on the calling thread (the pre-fleet
// behavior, bit for bit); the vseld fleet layer provides a FleetExecutor
// that ships the attempt to a remote worker process over the daemon
// protocol. Because the interface is per-*attempt*, everything stage 3
// already does for a failed local attempt — retry with backoff, re-queue
// under the remaining slice, abandon into a degraded merge — applies
// unchanged when the failure is a remote worker dying mid-partition.
#ifndef RDFVIEWS_VSEL_PIPELINE_EXECUTOR_H_
#define RDFVIEWS_VSEL_PIPELINE_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "vsel/cost_model.h"
#include "vsel/pipeline/pipeline.h"
#include "vsel/search.h"

namespace rdfviews::vsel::pipeline {

/// One partition's attempt-scoped work order.
struct PartitionWorkUnit {
  /// Index of the partition in the plan.
  size_t partition = 0;
  /// 1-based attempt number (stage 3's retry loop).
  size_t attempt = 1;
  /// The partition's canonical workload key (PartitionPlan::group_keys):
  /// the renaming-insensitive identity a shipped outcome is tagged with.
  std::string key;
  /// The partition's initial state. Owned by stage 3; valid for the
  /// duration of the call.
  const State* initial_state = nullptr;
  /// Member queries of the partition (the merge stage requires exactly one
  /// rewriting per member, which result validation checks against this).
  size_t group_size = 0;
};

/// Executes one search attempt for one partition. Implementations report
/// failures as a Status — stage 3 wraps every call in its exception ->
/// Status containment boundary, runs it under the watchdog's combined stop
/// token (via `limits.stop`), and owns all retry decisions.
class PartitionExecutor {
 public:
  virtual ~PartitionExecutor() = default;

  /// Runs the attempt under `limits` (the attempt's budget slice, with the
  /// combined user + watchdog stop token). `config` carries the effective
  /// strategy/heuristics; `cost_model` is the run's shared model (with the
  /// calibrated weights). An anytime truncation is a *success* (the search
  /// returns its best-so-far); only an attempt that produced no usable
  /// result returns non-OK.
  virtual Result<SearchResult> ExecuteAttempt(const PartitionWorkUnit& unit,
                                              const TuningConfig& config,
                                              const SearchLimits& limits,
                                              CostModel* cost_model) = 0;

  /// Short label for traces and health records.
  virtual const char* name() const = 0;
};

/// The in-process path: RunSearch on the calling thread. Stateless;
/// evaluates the search.partition.run fault site per attempt (so chaos
/// plans keep firing inside the containment boundary).
class LocalExecutor final : public PartitionExecutor {
 public:
  Result<SearchResult> ExecuteAttempt(const PartitionWorkUnit& unit,
                                      const TuningConfig& config,
                                      const SearchLimits& limits,
                                      CostModel* cost_model) override;
  const char* name() const override { return "local"; }
};

/// Validates and re-costs a partition outcome that crossed a process
/// boundary (a cache file, or a remote worker's result frame). The bytes
/// were structurally validated by the deserializer; this asserts the
/// *semantics*: the rewriting count matches the partition's member count,
/// and re-costing the best state through the live model reproduces the
/// persisted cost (registering every view in the run's interner along the
/// way). `require_completed` is the cache contract — only completed
/// searches are ever cached — while a remote attempt may legitimately
/// return a budget-truncated anytime best, so the fleet path passes false.
/// Returns true when the outcome is safe to splice into this run.
bool RehydratePartitionOutcome(PartitionSearchResult* outcome,
                               size_t group_size, const CostModel& model,
                               bool require_completed = true);

}  // namespace rdfviews::vsel::pipeline

#endif  // RDFVIEWS_VSEL_PIPELINE_EXECUTOR_H_
