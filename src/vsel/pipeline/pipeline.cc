// The assembled pipeline: ingest → partition → search → merge.
#include <utility>

#include "vsel/cost_model.h"
#include "vsel/pipeline/pipeline.h"

namespace rdfviews::vsel::pipeline {

Result<Recommendation> Run(const rdf::TripleStore* store,
                           const rdf::Dictionary* dict,
                           const rdf::Schema* schema,
                           const std::vector<cq::ConjunctiveQuery>& workload,
                           const SelectorOptions& options,
                           rdf::Statistics* external_stats) {
  Result<IngestResult> ingest =
      Ingest(store, dict, schema, workload, options, external_stats);
  if (!ingest.ok()) return ingest.status();

  PartitionPlan plan = PartitionWorkload(*ingest, options);

  CostModel cost_model(ingest->stats, options.weights);
  PipelineReport report;
  Result<std::vector<PartitionOutcome>> searches = SearchPartitions(
      *ingest, plan, &cost_model, options, /*preseeded=*/nullptr, &report);
  if (!searches.ok()) return searches.status();

  return MergePartitions(*ingest, plan, std::move(*searches), &cost_model,
                         options, &report);
}

}  // namespace rdfviews::vsel::pipeline
