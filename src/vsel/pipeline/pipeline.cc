// The assembled pipeline: ingest → partition → search → merge.
#include <memory>
#include <utility>

#include "common/telemetry/export.h"
#include "common/telemetry/trace.h"
#include "vsel/cost_model.h"
#include "vsel/pipeline/pipeline.h"

namespace rdfviews::vsel::pipeline {

Result<Recommendation> Run(const rdf::TripleStore* store,
                           const rdf::Dictionary* dict,
                           const rdf::Schema* schema,
                           const std::vector<cq::ConjunctiveQuery>& workload,
                           const SelectorOptions& options,
                           rdf::Statistics* external_stats) {
  RDFVIEWS_RETURN_IF_ERROR(options.Validate());
  // One tracer per run; armed through the thread-local context so every
  // stage, partition attempt, and cache/serialize operation below lands in
  // one tree rooted at pipeline.run.
  std::unique_ptr<telemetry::Tracer> tracer;
  std::unique_ptr<telemetry::ScopedTraceContext> scope;
  if (options.telemetry.trace) {
    tracer = std::make_unique<telemetry::Tracer>();
    scope = std::make_unique<telemetry::ScopedTraceContext>(
        telemetry::TraceContext{tracer.get(), 0});
  }

  auto run = [&]() -> Result<Recommendation> {
    telemetry::TraceSpan root("pipeline.run");
    root.Annotate("queries", static_cast<uint64_t>(workload.size()));

    Result<IngestResult> ingest = [&] {
      telemetry::TraceSpan span("pipeline.ingest");
      return Ingest(store, dict, schema, workload, options, external_stats);
    }();
    if (!ingest.ok()) return ingest.status();

    PartitionPlan plan = [&] {
      telemetry::TraceSpan span("pipeline.partition");
      return PartitionWorkload(*ingest, options);
    }();

    CostModel cost_model(ingest->stats, options.weights);
    PipelineReport report;
    Result<std::vector<PartitionOutcome>> searches =
        [&]() -> Result<std::vector<PartitionOutcome>> {
      telemetry::TraceSpan span("pipeline.search");
      span.Annotate("partitions", static_cast<uint64_t>(plan.groups.size()));
      return SearchPartitions(*ingest, plan, &cost_model, options,
                              /*preseeded=*/nullptr, &report);
    }();
    if (!searches.ok()) return searches.status();

    telemetry::TraceSpan merge_span("pipeline.merge");
    return MergePartitions(*ingest, plan, std::move(*searches), &cost_model,
                           options, &report);
  }();

  if (tracer != nullptr && run.ok()) {
    auto bundle = std::make_shared<telemetry::RunTelemetry>();
    bundle->spans = tracer->Spans();
    bundle->metrics = telemetry::MetricsRegistry::Default()->Snapshot();
    run->pipeline.telemetry = std::move(bundle);
  }
  return run;
}

}  // namespace rdfviews::vsel::pipeline
