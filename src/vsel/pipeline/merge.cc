// Pipeline stage 4: merging per-partition best states into one
// Recommendation.
//
// Each partition searched its own id universe (view ids and variables both
// start at 0 per initial state), so the merge re-bases: views get fresh
// sequential ids, variables get a per-partition offset, and every rewriting
// is rewritten through engine::Expr::Remap into the merged spaces before it
// is placed back at its workload position. Views that are identical up to
// variable renaming across partitions (equal canonical keys — possible only
// when the caller forced a plan, never under the sound commonality split)
// are materialized once: later partitions' scans are redirected to the
// first copy, which is positionally compatible because canonical keys cover
// the head order. With a single partition everything is shared, not copied
// — the monolithic path stays byte-identical to the pre-pipeline selector.
#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "reform/reformulate.h"
#include "vsel/pipeline/pipeline.h"

namespace rdfviews::vsel::pipeline {

namespace {

/// Merges the per-partition improvement traces into one workload-level
/// trace: at every partition improvement instant, the merged best is the
/// sum of each partition's best-so-far. `start_offsets[p]` translates
/// partition p's search-relative timestamps onto the shared wall-clock
/// axis: the cumulative predecessor time for back-to-back execution, 0 for
/// the concurrent pool. The pooled offsets are exact only while the pool
/// covers every partition; with fewer workers than partitions the later
/// partitions' true starts depend on the scheduling order, which the merge
/// stage can not reconstruct, so their events are placed at their
/// search-relative lower bounds.
std::vector<std::pair<double, double>> MergeTraces(
    const std::vector<PartitionOutcome>& results,
    const std::vector<double>& start_offsets) {
  struct Event {
    double t;
    size_t p;
    double cost;
  };
  std::vector<Event> events;
  std::vector<double> current(results.size());
  for (size_t p = 0; p < results.size(); ++p) {
    if (!results[p].ok()) continue;  // failed: no S0, no events
    current[p] = results[p].result.initial_cost;
    for (const auto& [t, cost] :
         results[p].result.search.stats.best_trace) {
      events.push_back(Event{start_offsets[p] + t, p, cost});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });
  std::vector<std::pair<double, double>> trace;
  trace.reserve(events.size());
  for (const Event& ev : events) {
    current[ev.p] = ev.cost;
    double total = 0;
    for (double c : current) total += c;
    trace.emplace_back(ev.t, total);
  }
  return trace;
}

/// Re-bases every surviving partition's best state into one merged state
/// (failed outcomes are skipped — their queries keep null rewritings).
/// Fills `rewritings_by_query` (indexed by workload position) and returns
/// the number of cross-partition duplicate views folded away.
size_t MergeStates(const PartitionPlan& plan,
                   const std::vector<PartitionOutcome>& results,
                   State* merged,
                   std::vector<engine::ExprPtr>* rewritings_by_query) {
  size_t folded = 0;
  uint32_t next_id = 0;
  cq::VarId var_base = 0;
  // Canonical key -> (owning partition, merged view id). Views identical up
  // to renaming within one partition are deliberately NOT folded: the
  // monolithic search keeps them too, and stage 4 must not out-optimize it.
  std::unordered_map<std::string, std::pair<size_t, uint32_t>> canon;
  for (size_t p = 0; p < results.size(); ++p) {
    if (!results[p].ok()) continue;
    const State& best = results[p].result.search.best;
    const cq::VarId var_offset = var_base;
    std::unordered_map<uint32_t, uint32_t> id_map;
    for (const View& v : best.views()) {
      auto it = canon.find(v.CanonicalKey());
      if (it != canon.end() && it->second.first != p) {
        id_map[v.id] = it->second.second;
        ++folded;
        continue;
      }
      View nv;
      nv.id = next_id++;
      nv.def = v.def;
      nv.def.OffsetVars(var_offset);
      nv.def.set_name(nv.Name());
      id_map[v.id] = nv.id;
      canon.try_emplace(v.CanonicalKey(), p, nv.id);
      merged->AddView(MakeView(std::move(nv)));
    }
    auto map_view = [&id_map](uint32_t id) {
      auto mi = id_map.find(id);
      RDFVIEWS_CHECK_MSG(mi != id_map.end(),
                         "rewriting scans unknown view v" << id);
      return mi->second;
    };
    auto map_var = [var_offset](cq::VarId v) { return v + var_offset; };
    const std::vector<size_t>& group = plan.groups[p];
    RDFVIEWS_CHECK(best.rewritings().size() == group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      (*rewritings_by_query)[group[i]] =
          engine::Expr::Remap(best.rewritings()[i], map_view, map_var);
    }
    var_base += best.next_var();
  }
  merged->set_next_view_id(next_id);
  merged->set_next_var(var_base);
  return folded;
}

}  // namespace

Result<Recommendation> MergePartitions(
    const IngestResult& ingest, const PartitionPlan& plan,
    std::vector<PartitionOutcome> results, CostModel* cost_model,
    const SelectorOptions& options, const PipelineReport* report) {
  RDFVIEWS_CHECK(plan.groups.size() == results.size() && !results.empty());

  size_t survivors = 0;
  for (const PartitionOutcome& o : results) {
    if (o.ok()) ++survivors;
  }
  if (survivors == 0) {
    // Nothing to recommend over: surface the first failure as the update's
    // error (this also keeps the monolithic single-partition path's
    // historical error behavior — e.g. a failing [21] competitor search).
    for (const PartitionOutcome& o : results) {
      if (!o.ok()) return o.error;
    }
  }

  Recommendation rec;
  rec.entailment = options.entailment;
  rec.materialization_store = ingest.materialization_store;
  if (report != nullptr) rec.pipeline = *report;
  rec.pipeline.num_partitions = plan.groups.size();
  rec.pipeline.partition_fallback_reason = plan.fallback_reason;
  const bool degraded = survivors < results.size();

  if (results.size() == 1) {
    // Monolithic fast path: the best state is the recommendation, ids and
    // rewritings untouched.
    rec.best_state = std::move(results[0].result.search.best);
    rec.stats = std::move(results[0].result.search.stats);
  } else {
    State merged;
    std::vector<engine::ExprPtr> rewritings(ingest.queries.size());
    rec.pipeline.merged_duplicate_views =
        MergeStates(plan, results, &merged, &rewritings);
    if (degraded) {
      // The merged state holds only the surviving rewritings, compacted in
      // ascending workload order: its StateCost is then exactly what a
      // from-scratch tune over the surviving sub-workload would report
      // (null slots would poison the REC sum). The workload-aligned
      // vector — nulls marking the failed partitions' queries — becomes
      // Recommendation::rewritings below.
      std::vector<engine::ExprPtr> compacted;
      compacted.reserve(ingest.queries.size());
      for (const engine::ExprPtr& e : rewritings) {
        if (e != nullptr) compacted.push_back(e);
      }
      merged.SetRewritings(std::move(compacted));
      rec.rewritings = std::move(rewritings);
    } else {
      merged.SetRewritings(std::move(rewritings));
    }

    // Did stage 3 run the partitions concurrently? (Mirrors its policy.)
    const bool fanned_out = options.partition.parallel_partitions &&
                            options.limits.num_threads > 1;
    SearchStats stats;
    std::vector<double> start_offsets(results.size(), 0.0);
    if (!fanned_out) {
      // Back-to-back execution: partition p starts when p-1 finishes.
      double cumulative = 0;
      for (size_t p = 0; p < results.size(); ++p) {
        start_offsets[p] = cumulative;
        if (results[p].ok()) {
          cumulative += results[p].result.search.stats.elapsed_sec;
        }
      }
    }
    stats.best_trace = MergeTraces(results, start_offsets);
    double elapsed_max = 0;
    double elapsed_sum = 0;
    bool completed = true;
    for (const PartitionOutcome& o : results) {
      if (!o.ok()) continue;
      const SearchStats& s = o.result.search.stats;
      stats.created += s.created;
      stats.duplicates += s.duplicates;
      stats.discarded += s.discarded;
      stats.explored += s.explored;
      stats.transitions_applied += s.transitions_applied;
      stats.initial_cost += s.initial_cost;
      stats.memory_exhausted = stats.memory_exhausted || s.memory_exhausted;
      stats.time_exhausted = stats.time_exhausted || s.time_exhausted;
      stats.cancelled = stats.cancelled || s.cancelled;
      completed = completed && s.completed;
      elapsed_max = std::max(elapsed_max, s.elapsed_sec);
      elapsed_sum += s.elapsed_sec;
    }
    // A degraded run never reports a completed (exhaustive) tune: some
    // sub-workload was not searched at all.
    stats.completed = completed && !degraded;
    // Wall-clock of stage 3: sum of the slices when the partitions ran
    // back to back; under the pool, the critical-path estimate for the
    // actual worker count (a pool smaller than the partition count runs
    // ~pool_size slices concurrently, not all of them).
    if (fanned_out) {
      const size_t pool_size =
          std::min(options.limits.num_threads, results.size());
      stats.elapsed_sec = std::max(
          elapsed_max, elapsed_sum / static_cast<double>(pool_size));
    } else {
      stats.elapsed_sec = elapsed_sum;
    }
    // Ground truth for the merged state (identical to the sum of partition
    // bests unless the fold removed duplicates): the shared cost model
    // re-sums the interned per-view / per-rewriting terms.
    stats.best_cost = cost_model->StateCost(merged);
    rec.best_state = std::move(merged);
    rec.stats = std::move(stats);
  }

  rec.cost_counters = cost_model->counters();
  rec.cost_cache_counters = cost_model->interner().counters();
  rec.distinct_views_interned = cost_model->interner().NumDistinctViews();

  // Final view definitions (post-reformulation happens here, Sec. 4.3).
  for (const View& v : rec.best_state.views()) {
    cq::UnionOfQueries def(v.Name());
    if (options.entailment == EntailmentMode::kPostReformulate) {
      reform::ReformulationResult r =
          reform::Reformulate(v.def, *ingest.schema);
      if (!r.complete) {
        return Status::ResourceExhausted(
            "post-reformulation of view " + v.Name() +
            " exceeded the query budget");
      }
      def = std::move(r.ucq);
    } else {
      def.Add(v.def);
    }
    rec.view_definitions.push_back(std::move(def));
    rec.view_columns.push_back(v.Columns());
    rec.view_ids.push_back(v.id);
  }
  if (rec.rewritings.empty()) {
    // Healthy runs: workload-aligned by construction. Degraded runs filled
    // rec.rewritings above (nulls marking the failed partitions' queries);
    // the best state keeps only the compacted surviving ones.
    const RewritingList rl = rec.best_state.rewritings();
    rec.rewritings.assign(rl.begin(), rl.end());
  }
  return rec;
}

}  // namespace rdfviews::vsel::pipeline
