// Pipeline stage 2: the query-commonality graph and its components.
//
// Two queries are connected iff they share a body constant. This is the
// exact interaction criterion of the transition system: VB/SC/JC act inside
// one view and never introduce a constant, so every view derivable from a
// query carries a subset of that query's constants; VF — the only
// cross-view transition — needs isomorphic bodies, and body isomorphisms
// fix constants pointwise, so views derived from constant-disjoint queries
// can only fuse once both are constant-free, which the armed stop_var
// condition discards. Whenever that argument does not hold (stop_var off,
// or a query whose minimized form has a constant-free connected component,
// which would also disarm stop_var for the monolithic search), the plan
// falls back to a single partition: correctness first, scale second.
//
// The per-query constants and the wildcard flag come from the ingest
// stage's single-minimization pass (IngestResult::minimized); so do the
// canonical per-query keys this stage concatenates into the per-group
// canonical workload keys that identify "the same sub-workload" across
// tuning-session updates. A hand-built IngestResult without the minimized
// vector (tests, external drivers) falls back to minimizing locally.
#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/disjoint_sets.h"
#include "vsel/pipeline/pipeline.h"

namespace rdfviews::vsel::pipeline {

namespace {

/// The ingest stage's minimized vector, or a locally computed equivalent
/// when the caller hand-built the IngestResult.
const std::vector<std::shared_ptr<const MinimizedQuery>>& MinimizedOf(
    const IngestResult& ingest, const SelectorOptions& options,
    std::vector<std::shared_ptr<const MinimizedQuery>>* local) {
  if (ingest.minimized.size() == ingest.queries.size()) {
    return ingest.minimized;
  }
  local->reserve(ingest.queries.size());
  const bool pre_reformulate =
      options.entailment == EntailmentMode::kPreReformulate &&
      ingest.reformulated.size() == ingest.queries.size();
  for (size_t i = 0; i < ingest.queries.size(); ++i) {
    local->push_back(std::make_shared<const MinimizedQuery>(MinimizeQuery(
        ingest.queries[i],
        pre_reformulate ? ingest.reformulated[i].get() : nullptr)));
  }
  return *local;
}

/// Packs `groups` (ordered by first query index) into at most `cap`
/// partitions: each group goes to the currently least-loaded partition
/// (query count, ties to the lowest index). Merging components is always
/// sound — a partition is searched monolithically.
std::vector<std::vector<size_t>> PackGroups(
    std::vector<std::vector<size_t>> groups, size_t cap) {
  if (cap == 0 || groups.size() <= cap) return groups;
  std::vector<std::vector<size_t>> packed(cap);
  for (std::vector<size_t>& g : groups) {
    size_t target = 0;
    for (size_t i = 1; i < packed.size(); ++i) {
      if (packed[i].size() < packed[target].size()) target = i;
    }
    packed[target].insert(packed[target].end(), g.begin(), g.end());
  }
  for (std::vector<size_t>& g : packed) std::sort(g.begin(), g.end());
  std::sort(packed.begin(), packed.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              return a.front() < b.front();
            });
  return packed;
}

/// Canonical workload key of one group: the member queries' canonical keys
/// in group (workload) order. Order-sensitive so that a cached partition
/// result's rewritings can be mapped back positionally.
std::string GroupKey(
    const std::vector<size_t>& group,
    const std::vector<std::shared_ptr<const MinimizedQuery>>& minimized) {
  std::string key;
  for (size_t qi : group) {
    key += minimized[qi]->canonical_key;
    key += '\n';
  }
  return key;
}

PartitionPlan SingleGroup(
    size_t n,
    const std::vector<std::shared_ptr<const MinimizedQuery>>& minimized,
    std::string reason) {
  PartitionPlan plan;
  plan.groups.emplace_back(n);
  std::iota(plan.groups.back().begin(), plan.groups.back().end(), 0);
  plan.group_keys.push_back(GroupKey(plan.groups.back(), minimized));
  plan.fallback_reason = std::move(reason);
  return plan;
}

}  // namespace

PartitionPlan PartitionWorkload(const IngestResult& ingest,
                                const SelectorOptions& options) {
  const size_t n = ingest.queries.size();
  std::vector<std::shared_ptr<const MinimizedQuery>> local;
  const std::vector<std::shared_ptr<const MinimizedQuery>>& minimized =
      MinimizedOf(ingest, options, &local);
  if (!options.partition.enabled) {
    return SingleGroup(n, minimized, "partitioning disabled");
  }
  if (n <= 1) return SingleGroup(n, minimized, "");
  switch (options.strategy) {
    case StrategyKind::kPruning21:
    case StrategyKind::kGreedy21:
    case StrategyKind::kHeuristic21:
      // The [21] re-implementations combine the per-query spaces with
      // global keep-K pruning; splitting changes which partials survive,
      // so they stay faithful to the paper and run monolithic.
      return SingleGroup(n, minimized,
                         "competitor strategies run monolithic");
    default:
      break;
  }
  if (!options.heuristics.stop_var) {
    return SingleGroup(n, minimized, "stop_var disabled");
  }

  for (size_t i = 0; i < n; ++i) {
    if (minimized[i]->has_constant_free_component) {
      return SingleGroup(
          n, minimized,
          "query " + ingest.queries[i].name() +
              " has a constant-free component (stop_var disarmed)");
    }
  }

  DisjointSets sets(n);
  std::unordered_map<rdf::TermId, size_t> first_owner;
  for (size_t i = 0; i < n; ++i) {
    for (rdf::TermId c : minimized[i]->constants) {
      auto [it, inserted] = first_owner.try_emplace(c, i);
      if (!inserted) sets.Union(i, it->second);
    }
  }

  PartitionPlan plan;
  std::unordered_map<size_t, size_t> root_to_group;
  for (size_t i = 0; i < n; ++i) {
    size_t root = sets.Find(i);
    auto [it, inserted] = root_to_group.try_emplace(root, plan.groups.size());
    if (inserted) plan.groups.emplace_back();
    plan.groups[it->second].push_back(i);
  }
  plan.groups = PackGroups(std::move(plan.groups),
                           options.partition.max_partitions);
  plan.group_keys.reserve(plan.groups.size());
  for (const std::vector<size_t>& group : plan.groups) {
    plan.group_keys.push_back(GroupKey(group, minimized));
  }
  return plan;
}

}  // namespace rdfviews::vsel::pipeline
