// Pipeline stage 2: the query-commonality graph and its components.
//
// Two queries are connected iff they share a body constant. This is the
// exact interaction criterion of the transition system: VB/SC/JC act inside
// one view and never introduce a constant, so every view derivable from a
// query carries a subset of that query's constants; VF — the only
// cross-view transition — needs isomorphic bodies, and body isomorphisms
// fix constants pointwise, so views derived from constant-disjoint queries
// can only fuse once both are constant-free, which the armed stop_var
// condition discards. Whenever that argument does not hold (stop_var off,
// or a query whose minimized form has a constant-free connected component,
// which would also disarm stop_var for the monolithic search), the plan
// falls back to a single partition: correctness first, scale second.
#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/disjoint_sets.h"
#include "cq/containment.h"
#include "vsel/pipeline/pipeline.h"

namespace rdfviews::vsel::pipeline {

namespace {

/// Collects the body constants of `q` into `constants` and reports whether
/// some connected component of the minimized query is constant-free (the
/// wildcard case that disarms stop_var and makes any split unsound). The
/// minimized components are exactly the views MakeInitialState installs.
bool CollectConstants(const cq::ConjunctiveQuery& q,
                      std::unordered_set<rdf::TermId>* constants) {
  bool wildcard = false;
  cq::ConjunctiveQuery minimized = cq::Minimize(q);
  for (const cq::ConjunctiveQuery& component :
       minimized.SplitIntoConnectedQueries()) {
    size_t in_component = 0;
    for (const cq::Atom& atom : component.atoms()) {
      for (const cq::Term* t : {&atom.s, &atom.p, &atom.o}) {
        if (t->is_const()) {
          constants->insert(t->constant());
          ++in_component;
        }
      }
    }
    if (in_component == 0) wildcard = true;
  }
  return wildcard;
}

/// Packs `groups` (ordered by first query index) into at most `cap`
/// partitions: each group goes to the currently least-loaded partition
/// (query count, ties to the lowest index). Merging components is always
/// sound — a partition is searched monolithically.
std::vector<std::vector<size_t>> PackGroups(
    std::vector<std::vector<size_t>> groups, size_t cap) {
  if (cap == 0 || groups.size() <= cap) return groups;
  std::vector<std::vector<size_t>> packed(cap);
  for (std::vector<size_t>& g : groups) {
    size_t target = 0;
    for (size_t i = 1; i < packed.size(); ++i) {
      if (packed[i].size() < packed[target].size()) target = i;
    }
    packed[target].insert(packed[target].end(), g.begin(), g.end());
  }
  for (std::vector<size_t>& g : packed) std::sort(g.begin(), g.end());
  std::sort(packed.begin(), packed.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              return a.front() < b.front();
            });
  return packed;
}

PartitionPlan SingleGroup(size_t n, std::string reason) {
  PartitionPlan plan;
  plan.groups.emplace_back(n);
  std::iota(plan.groups.back().begin(), plan.groups.back().end(), 0);
  plan.fallback_reason = std::move(reason);
  return plan;
}

}  // namespace

PartitionPlan PartitionWorkload(const IngestResult& ingest,
                                const SelectorOptions& options) {
  const size_t n = ingest.queries.size();
  if (!options.partition.enabled) {
    return SingleGroup(n, "partitioning disabled");
  }
  if (n <= 1) return SingleGroup(n, "");
  switch (options.strategy) {
    case StrategyKind::kPruning21:
    case StrategyKind::kGreedy21:
    case StrategyKind::kHeuristic21:
      // The [21] re-implementations combine the per-query spaces with
      // global keep-K pruning; splitting changes which partials survive,
      // so they stay faithful to the paper and run monolithic.
      return SingleGroup(n, "competitor strategies run monolithic");
    default:
      break;
  }
  if (!options.heuristics.stop_var) {
    return SingleGroup(n, "stop_var disabled");
  }

  // Per-query constant sets. For kPreReformulate the initial views come
  // from the reformulated disjuncts, so the commonality (and the wildcard
  // check) is computed over every disjunct.
  std::vector<std::unordered_set<rdf::TermId>> constants(n);
  for (size_t i = 0; i < n; ++i) {
    bool wildcard;
    if (options.entailment == EntailmentMode::kPreReformulate) {
      wildcard = false;
      for (const cq::ConjunctiveQuery& d :
           ingest.reformulated[i].disjuncts()) {
        wildcard = CollectConstants(d, &constants[i]) || wildcard;
      }
    } else {
      wildcard = CollectConstants(ingest.queries[i], &constants[i]);
    }
    if (wildcard) {
      return SingleGroup(
          n, "query " + ingest.queries[i].name() +
                 " has a constant-free component (stop_var disarmed)");
    }
  }

  DisjointSets sets(n);
  std::unordered_map<rdf::TermId, size_t> first_owner;
  for (size_t i = 0; i < n; ++i) {
    for (rdf::TermId c : constants[i]) {
      auto [it, inserted] = first_owner.try_emplace(c, i);
      if (!inserted) sets.Union(i, it->second);
    }
  }

  PartitionPlan plan;
  std::unordered_map<size_t, size_t> root_to_group;
  for (size_t i = 0; i < n; ++i) {
    size_t root = sets.Find(i);
    auto [it, inserted] = root_to_group.try_emplace(root, plan.groups.size());
    if (inserted) plan.groups.emplace_back();
    plan.groups[it->second].push_back(i);
  }
  plan.groups = PackGroups(std::move(plan.groups),
                           options.partition.max_partitions);
  return plan;
}

}  // namespace rdfviews::vsel::pipeline
