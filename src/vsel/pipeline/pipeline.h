// The staged recommendation pipeline: workload in, Recommendation out.
//
//   (1) ingest    — validate the workload, apply the EntailmentMode once
//                   (build statistics / the materialization store, and for
//                   kPreReformulate reformulate every query up front);
//   (2) partition — split the workload along the connected components of
//                   its commonality graph into independent sub-workloads
//                   (with a single-partition fallback whenever the split
//                   would not be provably exact — see PartitionWorkload);
//   (3) search    — run one Sec. 5 search per partition, serially or as
//                   tasks on a worker pool, under budgets apportioned by
//                   partition size (ApportionSearchLimits) and a shared
//                   cost model / statistics cache;
//   (4) merge     — re-base the per-partition best states into one state
//                   (fresh view-id / variable ranges, rewritings back in
//                   workload order, cross-partition duplicate views folded
//                   through their canonical keys) and assemble the final
//                   Recommendation (post-reformulation happens here).
//
// The monolithic ViewSelector::Recommend is a thin wrapper over this
// pipeline: with partitioning disabled (or a single commonality component)
// the plan has one group holding the whole workload, and stages 3 and 4
// reduce to exactly the pre-pipeline search-then-package path.
//
// Soundness of stage 2 (why per-partition search loses nothing): VB, SC and
// JC act on a single view, and no transition ever introduces a constant, so
// every view derivable from query q carries a subset of q's constants. VF —
// the only cross-view transition — requires isomorphic bodies, and a body
// isomorphism maps constants to themselves; two views derived from queries
// that share no constant can therefore only fuse if both are constant-free,
// and such states are exactly what the armed stop_var condition discards.
// Hence, when stop_var is armed for every partition (which the fallback
// guarantees), the reachable monolithic states are precisely the products
// of reachable per-partition states, the cost decomposes additively over
// views and rewritings, and the merged per-partition optima form a
// monolithic optimum.
#ifndef RDFVIEWS_VSEL_PIPELINE_PIPELINE_H_
#define RDFVIEWS_VSEL_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "cq/query.h"
#include "cq/ucq.h"
#include "rdf/schema.h"
#include "rdf/statistics.h"
#include "rdf/triple_store.h"
#include "vsel/selector.h"

namespace rdfviews::vsel::pipeline {

// ---- Stage 1: ingest / entailment ----------------------------------------

/// The normalized workload: everything later stages need, independent of
/// the entailment mode that produced it.
struct IngestResult {
  /// The validated workload, in input order.
  std::vector<cq::ConjunctiveQuery> queries;
  /// kPreReformulate only: one union of disjuncts per query (aligned with
  /// `queries`); empty otherwise.
  std::vector<cq::UnionOfQueries> reformulated;
  /// The statistics provider the cost model reads (owning; kept alive by
  /// the caller for the duration of the run). Null only when
  /// `external_stats` was supplied to Ingest.
  std::unique_ptr<rdf::Statistics> owned_stats;
  /// The provider to use (== owned_stats.get() or the external override).
  rdf::Statistics* stats = nullptr;
  /// The store the recommended views must be materialized over.
  std::shared_ptr<const rdf::TripleStore> materialization_store;
  /// The schema of the run (null for EntailmentMode::kNone); the merge
  /// stage reads it for kPostReformulate.
  const rdf::Schema* schema = nullptr;
};

/// Runs stage 1. `schema` may be null for EntailmentMode::kNone.
/// `external_stats` (optional) substitutes a caller-owned statistics
/// provider measuring `store` directly — benches use this to reuse warm
/// pattern-count caches across runs. It is only honored for the modes
/// whose counts come from the raw store (kNone, kPreReformulate);
/// kSaturate measures the saturated store and kPostReformulate needs the
/// reformulation-aware provider, so both ignore it.
Result<IngestResult> Ingest(const rdf::TripleStore* store,
                            const rdf::Dictionary* dict,
                            const rdf::Schema* schema,
                            const std::vector<cq::ConjunctiveQuery>& workload,
                            const SelectorOptions& options,
                            rdf::Statistics* external_stats = nullptr);

// ---- Stage 2: partition ----------------------------------------------------

/// The workload split: `groups[p]` holds the workload indices of partition
/// p, each group sorted ascending and the groups ordered by first query.
struct PartitionPlan {
  std::vector<std::vector<size_t>> groups;
  /// Why the plan is a single group despite partitioning being enabled;
  /// empty when the commonality graph was actually used.
  std::string fallback_reason;

  size_t num_partitions() const { return groups.size(); }
};

/// Runs stage 2: builds the query-commonality graph (queries connected iff
/// they share a constant — for kPreReformulate, a constant of any disjunct)
/// and returns its connected components as the partition plan. Falls back
/// to a single partition when the decomposition would not be provably exact
/// (see the header comment): partitioning disabled, stop_var off, or some
/// query with a constant-free connected component (which disarms stop_var).
PartitionPlan PartitionWorkload(const IngestResult& ingest,
                                const SelectorOptions& options);

// ---- Stage 3: search -------------------------------------------------------

/// Splits `total` across partitions proportionally to `weights` (query
/// counts), rounding up so that no partition receives a zero state or time
/// budget: max_states shares are ceiling-divided (the sum may exceed the
/// total by up to one state per partition), and every positive time budget
/// share is floored at a small positive minimum. Unlimited budgets (0)
/// stay unlimited. num_threads is copied through unchanged; the search
/// stage overrides it per its partition-vs-frontier parallelism policy.
std::vector<SearchLimits> ApportionSearchLimits(
    const SearchLimits& total, const std::vector<size_t>& weights);

/// One partition's search outcome.
struct PartitionSearchResult {
  SearchResult search;
  /// The initial cost of this partition's S0 (stats.initial_cost), kept for
  /// merged-trace reconstruction.
  double initial_cost = 0;
};

/// Runs stage 3: builds each partition's initial state, collects the
/// paper's workload statistics, calibrates cm once over the whole S0 (sum
/// of the per-partition breakdowns), then searches every partition under
/// its apportioned budget. With more than one partition and
/// limits.num_threads > 1 (and partition.parallel_partitions), partitions
/// run concurrently as thread-pool tasks, each search serial; a single
/// partition keeps num_threads for the parallel frontier engine.
Result<std::vector<PartitionSearchResult>> SearchPartitions(
    const IngestResult& ingest, const PartitionPlan& plan,
    CostModel* cost_model, const SelectorOptions& options);

// ---- Stage 4: merge --------------------------------------------------------

/// Runs stage 4: re-bases every partition's best state into disjoint
/// view-id / variable ranges, folds cross-partition duplicate views (equal
/// canonical keys) into one materialization, restores workload rewriting
/// order, and assembles the Recommendation — including the
/// kPostReformulate reformulation of the winning view definitions. With a
/// single partition the views and rewritings are shared, not copied.
Result<Recommendation> MergePartitions(
    const IngestResult& ingest, const PartitionPlan& plan,
    std::vector<PartitionSearchResult> results, CostModel* cost_model,
    const SelectorOptions& options);

// ---- The whole pipeline ----------------------------------------------------

/// Ingest → partition → search → merge. The implementation behind
/// ViewSelector::Recommend; benches call it directly to supply
/// `external_stats` (a pre-warmed cache, see Ingest).
Result<Recommendation> Run(const rdf::TripleStore* store,
                           const rdf::Dictionary* dict,
                           const rdf::Schema* schema,
                           const std::vector<cq::ConjunctiveQuery>& workload,
                           const SelectorOptions& options,
                           rdf::Statistics* external_stats = nullptr);

}  // namespace rdfviews::vsel::pipeline

#endif  // RDFVIEWS_VSEL_PIPELINE_PIPELINE_H_
