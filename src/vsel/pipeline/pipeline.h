// The staged recommendation pipeline: workload in, Recommendation out.
//
//   (1) ingest    — validate the workload, apply the EntailmentMode once
//                   (build statistics / the materialization store, and for
//                   kPreReformulate reformulate every query up front);
//   (2) partition — split the workload along the connected components of
//                   its commonality graph into independent sub-workloads
//                   (with a single-partition fallback whenever the split
//                   would not be provably exact — see PartitionWorkload);
//   (3) search    — run one Sec. 5 search per partition, serially or as
//                   tasks on a worker pool, under budgets apportioned by
//                   partition size (ApportionSearchLimits) and a shared
//                   cost model / statistics cache;
//   (4) merge     — re-base the per-partition best states into one state
//                   (fresh view-id / variable ranges, rewritings back in
//                   workload order, cross-partition duplicate views folded
//                   through their canonical keys) and assemble the final
//                   Recommendation (post-reformulation happens here).
//
// The monolithic ViewSelector::Recommend is a thin wrapper over this
// pipeline: with partitioning disabled (or a single commonality component)
// the plan has one group holding the whole workload, and stages 3 and 4
// reduce to exactly the pre-pipeline search-then-package path.
//
// Soundness of stage 2 (why per-partition search loses nothing): VB, SC and
// JC act on a single view, and no transition ever introduces a constant, so
// every view derivable from query q carries a subset of q's constants. VF —
// the only cross-view transition — requires isomorphic bodies, and a body
// isomorphism maps constants to themselves; two views derived from queries
// that share no constant can therefore only fuse if both are constant-free,
// and such states are exactly what the armed stop_var condition discards.
// Hence, when stop_var is armed for every partition (which the fallback
// guarantees), the reachable monolithic states are precisely the products
// of reachable per-partition states, the cost decomposes additively over
// views and rewritings, and the merged per-partition optima form a
// monolithic optimum.
#ifndef RDFVIEWS_VSEL_PIPELINE_PIPELINE_H_
#define RDFVIEWS_VSEL_PIPELINE_PIPELINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "cq/query.h"
#include "cq/ucq.h"
#include "rdf/schema.h"
#include "rdf/statistics.h"
#include "rdf/triple_store.h"
#include "vsel/selector.h"

namespace rdfviews::vsel::pipeline {

// ---- Stage 1: ingest / entailment ----------------------------------------

/// The per-query output of the single-minimization pass: everything stage 2
/// (commonality analysis) and stage 3 (initial-state construction) need, so
/// `cq::Minimize` — the expensive containment-based step — runs once per
/// distinct query per session instead of once per stage.
struct MinimizedQuery {
  /// cq::Minimize(raw), head preserved.
  cq::ConjunctiveQuery minimized;
  /// Renaming-insensitive key of the minimized query: canonical body+head
  /// structure plus the head order (canonical variable indices), so two
  /// queries share a key iff one is a variable renaming of the other with
  /// the same answer-column order. Concatenated per partition into the
  /// canonical workload keys the session's result cache is keyed by.
  std::string canonical_key;
  /// Sorted distinct body constants (over all disjuncts for
  /// kPreReformulate): the nodes this query contributes to the
  /// commonality graph.
  std::vector<rdf::TermId> constants;
  /// True when some connected component of the minimized query (or of a
  /// reformulated disjunct) carries no constant — the wildcard case that
  /// disarms stop_var and forces the single-partition fallback.
  bool has_constant_free_component = false;
  /// kPreReformulate only: the minimized disjuncts of the query's
  /// reformulation, in disjunct order.
  std::vector<cq::ConjunctiveQuery> minimized_disjuncts;
};

/// Caches a TuningSession carries across updates so only *new* work is
/// redone. The minimize/reformulate maps are keyed by an exact structural
/// key of the raw query (variable ids and all — a pure function of the
/// query object, no isomorphism test needed on lookup); the entailment
/// environment (statistics provider, materialization store) depends only on
/// the (store, schema, entailment mode) triple, which is fixed for the
/// session's lifetime. A null caches pointer gives the stateless one-shot
/// behavior.
struct SessionCaches {
  std::unordered_map<std::string, std::shared_ptr<const MinimizedQuery>>
      minimize;
  std::unordered_map<std::string, std::shared_ptr<const cq::UnionOfQueries>>
      reformulate;
  std::shared_ptr<rdf::Statistics> stats;
  std::shared_ptr<const rdf::TripleStore> materialization_store;
};

/// The normalized workload: everything later stages need, independent of
/// the entailment mode that produced it.
struct IngestResult {
  /// The validated workload, in input order.
  std::vector<cq::ConjunctiveQuery> queries;
  /// kPreReformulate only: one union of disjuncts per query (aligned with
  /// `queries`, shared with the SessionCaches entries — never deep-copied
  /// per update); empty otherwise.
  std::vector<std::shared_ptr<const cq::UnionOfQueries>> reformulated;
  /// The single-minimization cache, aligned with `queries`; see
  /// MinimizedQuery. Shared (not copied) with the SessionCaches entries,
  /// so a session update pays no per-query deep copies for cached
  /// queries. Later stages fall back to minimizing locally when a caller
  /// hand-builds an IngestResult without it.
  std::vector<std::shared_ptr<const MinimizedQuery>> minimized;
  /// The statistics provider the cost model reads (owning; kept alive by
  /// the caller for the duration of the run — shared with SessionCaches
  /// across a session's updates). Null only when `external_stats` was
  /// supplied to Ingest.
  std::shared_ptr<rdf::Statistics> owned_stats;
  /// The provider to use (== owned_stats.get() or the external override).
  rdf::Statistics* stats = nullptr;
  /// The store the recommended views must be materialized over.
  std::shared_ptr<const rdf::TripleStore> materialization_store;
  /// The schema of the run (null for EntailmentMode::kNone); the merge
  /// stage reads it for kPostReformulate.
  const rdf::Schema* schema = nullptr;
};

/// The exact structural key of a raw query used by SessionCaches lookups.
std::string ExactQueryKey(const cq::ConjunctiveQuery& q);

/// The single-minimization pass for one query (see MinimizedQuery).
/// `reformulated` is the query's reformulation under kPreReformulate, null
/// otherwise. Normally run — and cached — by Ingest; exposed for callers
/// that hand-build an IngestResult (stage 2 falls back to it).
MinimizedQuery MinimizeQuery(const cq::ConjunctiveQuery& raw,
                             const cq::UnionOfQueries* reformulated = nullptr);

/// Runs stage 1. `schema` may be null for EntailmentMode::kNone.
/// `external_stats` (optional) substitutes a caller-owned statistics
/// provider measuring `store` directly — benches use this to reuse warm
/// pattern-count caches across runs. It is only honored for the modes
/// whose counts come from the raw store (kNone, kPreReformulate);
/// kSaturate measures the saturated store and kPostReformulate needs the
/// reformulation-aware provider, so both ignore it. `caches` (optional) is
/// the session carryover: per-query minimization/reformulation results are
/// served from (and inserted into) it, and the entailment environment is
/// built once and reused across updates.
Result<IngestResult> Ingest(const rdf::TripleStore* store,
                            const rdf::Dictionary* dict,
                            const rdf::Schema* schema,
                            const std::vector<cq::ConjunctiveQuery>& workload,
                            const SelectorOptions& options,
                            rdf::Statistics* external_stats = nullptr,
                            SessionCaches* caches = nullptr);

// ---- Stage 2: partition ----------------------------------------------------

/// The workload split: `groups[p]` holds the workload indices of partition
/// p, each group sorted ascending and the groups ordered by first query.
struct PartitionPlan {
  std::vector<std::vector<size_t>> groups;
  /// Canonical workload key per group (aligned with `groups`): the
  /// concatenated renaming-insensitive keys of the member queries'
  /// minimized forms, in group order. A stable identity for "the same
  /// sub-workload" across session updates — the session's per-partition
  /// result cache is keyed by it.
  std::vector<std::string> group_keys;
  /// Why the plan is a single group despite partitioning being enabled;
  /// empty when the commonality graph was actually used.
  std::string fallback_reason;

  size_t num_partitions() const { return groups.size(); }
};

/// Runs stage 2: builds the query-commonality graph (queries connected iff
/// they share a constant — for kPreReformulate, a constant of any disjunct)
/// and returns its connected components as the partition plan. Falls back
/// to a single partition when the decomposition would not be provably exact
/// (see the header comment): partitioning disabled, stop_var off, or some
/// query with a constant-free connected component (which disarms stop_var).
PartitionPlan PartitionWorkload(const IngestResult& ingest,
                                const SelectorOptions& options);

// ---- Stage 3: search -------------------------------------------------------

/// Splits `total` across partitions proportionally to `weights` (query
/// counts), rounding up so that no partition receives a zero state or time
/// budget: max_states shares are ceiling-divided (the sum may exceed the
/// total by up to one state per partition), and every positive time budget
/// share is floored at a small positive minimum. Unlimited budgets (0)
/// stay unlimited. num_threads is copied through unchanged; the search
/// stage overrides it per its partition-vs-frontier parallelism policy.
std::vector<SearchLimits> ApportionSearchLimits(
    const SearchLimits& total, const std::vector<size_t>& weights);

/// One partition's search outcome.
struct PartitionSearchResult {
  SearchResult search;
  /// The initial cost of this partition's S0 (stats.initial_cost), kept for
  /// merged-trace reconstruction.
  double initial_cost = 0;
};

/// One partition's *contained* outcome: either a usable search result
/// (error.ok()) or the failure that exhausted the partition's retry budget,
/// with the health record either way. Stage 3 pre-fills every slot with a
/// real failure outcome ("never ran" — kInternal, attempts == 0) before
/// scheduling, so a pool task that dies before claiming its slot leaves an
/// honest record instead of a fabricated one.
struct PartitionOutcome {
  PartitionSearchResult result;
  Status error = Status::OK();
  PartitionHealth health;

  bool ok() const { return error.ok(); }
};

/// Thread-safe pool of unused time budget. Partitions whose search finishes
/// (space exhausted) before their apportioned slice expires Deposit the
/// unused seconds; partitions about to start Take the accumulated spare and
/// add it to their own slice, so no second of the global budget is left on
/// the table while some partition still has work. Deterministic under
/// sequential execution (the spare flows to the next partition in order);
/// under the concurrent pool the split depends on scheduling, which is fine
/// — time budgets are wall-clock-dependent anyway.
class TimeBudgetPool {
 public:
  /// Adds `sec` (clamped at 0) to the pool.
  void Deposit(double sec);
  /// Drains the pool, returning everything deposited since the last Take.
  double Take();
  /// Current balance (for tests / observability).
  double balance() const;

 private:
  mutable std::mutex mu_;
  double spare_sec_ = 0;
};

/// One pre-seeded (cache-served) partition outcome handed to the search
/// stage. `result == nullptr` means the partition is dirty and must be
/// searched. `rehydrated` marks outcomes that came from a persistent
/// backend (deserialized from bytes and re-validated by the session) rather
/// than from process memory; the search stage only reports the distinction
/// (PipelineReport::partitions_rehydrated) — both kinds are trusted equally
/// by the time they reach it.
struct PreseededOutcome {
  const PartitionSearchResult* result = nullptr;
  bool rehydrated = false;
};

/// Runs stage 3: builds each partition's initial state, collects the
/// paper's workload statistics, calibrates cm once over the whole S0 (sum
/// of the per-partition breakdowns), then searches every partition under
/// its apportioned budget, re-granting early finishers' unused time through
/// a TimeBudgetPool. With more than one partition and
/// limits.num_threads > 1 (and partition.parallel_partitions), partitions
/// run concurrently as thread-pool tasks, each search serial; a single
/// partition keeps num_threads for the parallel frontier engine.
///
/// `preseeded` (optional) is the session's incremental path: when
/// preseeded[p].result is non-null, partition p's cached outcome — from the
/// session's in-memory cache or rehydrated from a persistent backend — is
/// copied into the result instead of being searched; only the dirty
/// partitions run, under budgets apportioned over the dirty partitions
/// alone (and cm calibration, which must see every partition's S0, is the
/// caller's responsibility: sessions calibrate on their first update and
/// freeze). `report` (optional) receives the reused/rehydrated/searched
/// partition counts, the total re-granted seconds, and the failure
/// accounting (partitions_failed / partition_retries / partition_health).
///
/// Failure containment (options.robust): every partition search runs
/// behind an exception -> Status boundary under an optional hard watchdog
/// deadline, failed attempts are retried per the RetryPolicy, and a
/// partition that exhausts its budget comes back as a failed
/// PartitionOutcome — the call itself only errors when stage-wide setup
/// fails (e.g. an unbuildable workload), never because some partition
/// search died.
Result<std::vector<PartitionOutcome>> SearchPartitions(
    const IngestResult& ingest, const PartitionPlan& plan,
    CostModel* cost_model, const SelectorOptions& options,
    const std::vector<PreseededOutcome>* preseeded = nullptr,
    PipelineReport* report = nullptr);

// ---- Stage 4: merge --------------------------------------------------------

/// Runs stage 4: re-bases every partition's best state into disjoint
/// view-id / variable ranges, folds cross-partition duplicate views (equal
/// canonical keys) into one materialization, restores workload rewriting
/// order, and assembles the Recommendation — including the
/// kPostReformulate reformulation of the winning view definitions. With a
/// single partition the views and rewritings are shared, not copied.
/// `report` (optional) carries the search stage's observability counters
/// into Recommendation::pipeline; merge fills the merged-duplicate count.
/// The results vector may mix cached (session-reused) and freshly searched
/// partitions — the merge is agnostic, it only reads the best states.
///
/// Graceful degradation: failed outcomes (outcome.ok() == false) are merged
/// *around* — the Recommendation covers the surviving partitions, its
/// stats.completed is false, and the failed partitions' queries get null
/// rewritings (Recommendation::rewritings stays workload-aligned). The
/// merged cost equals a from-scratch tune over the surviving sub-workload
/// alone. Only when no partition survived does the call return the first
/// failure as its error.
Result<Recommendation> MergePartitions(
    const IngestResult& ingest, const PartitionPlan& plan,
    std::vector<PartitionOutcome> results, CostModel* cost_model,
    const SelectorOptions& options, const PipelineReport* report = nullptr);

// ---- The whole pipeline ----------------------------------------------------

/// Ingest → partition → search → merge. The implementation behind
/// ViewSelector::Recommend; benches call it directly to supply
/// `external_stats` (a pre-warmed cache, see Ingest).
Result<Recommendation> Run(const rdf::TripleStore* store,
                           const rdf::Dictionary* dict,
                           const rdf::Schema* schema,
                           const std::vector<cq::ConjunctiveQuery>& workload,
                           const SelectorOptions& options,
                           rdf::Statistics* external_stats = nullptr);

}  // namespace rdfviews::vsel::pipeline

#endif  // RDFVIEWS_VSEL_PIPELINE_PIPELINE_H_
