// Pipeline stage 3: budget apportioning and per-partition searches.
//
// Every partition searches its own initial state under a slice of the
// global budget proportional to its query count; slices round *up* (states)
// or are floored at a small positive minimum (time) so no partition is
// starved to zero. All partitions share one CostModel — the interner and
// the statistics cache are internally synchronized, so concurrent partition
// searches reuse each other's per-distinct-view estimates — and cm is
// calibrated once, over the sum of the per-partition S0 breakdowns, which
// equals the monolithic S0 breakdown because every cost component is a sum
// over views / rewritings.
#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "vsel/pipeline/pipeline.h"
#include "vsel/search.h"

namespace rdfviews::vsel::pipeline {

namespace {

/// Time slices below this are rounded up so every partition can at least
/// admit a handful of states before stop_time fires.
constexpr double kMinTimeBudgetSec = 1e-3;

/// Builds partition `group`'s initial state (the monolithic S0 restricted
/// to the group's queries, in workload order).
Result<State> MakePartitionInitialState(const IngestResult& ingest,
                                        const std::vector<size_t>& group,
                                        const SelectorOptions& options) {
  std::vector<cq::ConjunctiveQuery> queries;
  queries.reserve(group.size());
  for (size_t qi : group) queries.push_back(ingest.queries[qi]);
  if (options.entailment == EntailmentMode::kPreReformulate) {
    std::vector<cq::UnionOfQueries> reformulated;
    reformulated.reserve(group.size());
    for (size_t qi : group) reformulated.push_back(ingest.reformulated[qi]);
    return MakeReformulatedInitialState(queries, reformulated);
  }
  return MakeInitialState(queries);
}

/// The paper's statistics-gathering phase: count every initial-state view
/// atom and all its relaxations. Every view the search can create only
/// relaxes these atoms, so after this the pattern-count cache is warm for
/// the whole run (all partitions, all workers).
void CollectWorkloadStatistics(const std::vector<State>& initial_states,
                               const rdf::Statistics& stats) {
  for (const State& s0 : initial_states) {
    for (const View& v : s0.views()) {
      for (const cq::Atom& atom : v.def.atoms()) {
        stats.CollectWithRelaxations(atom.ToPattern());
      }
    }
  }
}

}  // namespace

std::vector<SearchLimits> ApportionSearchLimits(
    const SearchLimits& total, const std::vector<size_t>& weights) {
  size_t weight_sum = 0;
  for (size_t w : weights) weight_sum += w;
  RDFVIEWS_CHECK_MSG(weight_sum > 0, "apportioning needs positive weights");
  std::vector<SearchLimits> out;
  out.reserve(weights.size());
  for (size_t w : weights) {
    SearchLimits share = total;
    if (total.max_states > 0) {
      // Ceiling division: every partition may remember at least one state.
      // 128-bit intermediate so huge effectively-unlimited budgets times
      // large weights can not wrap into a starving share.
      share.max_states = static_cast<size_t>(
          (static_cast<unsigned __int128>(total.max_states) * w +
           weight_sum - 1) /
          weight_sum);
    }
    if (total.time_budget_sec > 0) {
      share.time_budget_sec =
          std::max(total.time_budget_sec * static_cast<double>(w) /
                       static_cast<double>(weight_sum),
                   kMinTimeBudgetSec);
    }
    out.push_back(share);
  }
  return out;
}

Result<std::vector<PartitionSearchResult>> SearchPartitions(
    const IngestResult& ingest, const PartitionPlan& plan,
    CostModel* cost_model, const SelectorOptions& options) {
  const size_t num_partitions = plan.groups.size();
  RDFVIEWS_CHECK(num_partitions > 0);

  // Initial states, in partition order.
  std::vector<State> initial_states;
  std::vector<size_t> weights;
  initial_states.reserve(num_partitions);
  weights.reserve(num_partitions);
  for (const std::vector<size_t>& group : plan.groups) {
    Result<State> s0 = MakePartitionInitialState(ingest, group, options);
    if (!s0.ok()) return s0.status();
    initial_states.push_back(std::move(*s0));
    weights.push_back(group.size());
  }
  CollectWorkloadStatistics(initial_states, *ingest.stats);

  // Calibrate cm once over the whole workload: the monolithic S0 breakdown
  // is the component-wise sum of the per-partition breakdowns.
  if (options.auto_calibrate_cm) {
    CostBreakdown s0_breakdown;
    for (const State& s0 : initial_states) {
      CostBreakdown b = cost_model->Breakdown(s0);
      s0_breakdown.vso += b.vso;
      s0_breakdown.rec += b.rec;
      s0_breakdown.vmc += b.vmc;
      s0_breakdown.total += b.total;
    }
    CostWeights w = cost_model->weights();
    w.cm = CostModel::CalibrateCm(s0_breakdown, w);
    cost_model->set_weights(w);
  }

  std::vector<SearchLimits> limits =
      ApportionSearchLimits(options.limits, weights);
  const bool fan_out = num_partitions > 1 &&
                       options.partition.parallel_partitions &&
                       options.limits.num_threads > 1;
  for (SearchLimits& l : limits) {
    // Partitions are the unit of parallelism when there are several; a
    // single partition keeps the parallel frontier engine instead.
    l.num_threads = fan_out ? 1 : options.limits.num_threads;
  }

  std::vector<Result<SearchResult>> searches(
      num_partitions, Status::Internal("partition search did not run"));
  auto run_one = [&](size_t p) {
    searches[p] = RunSearch(options.strategy, initial_states[p], *cost_model,
                            options.heuristics, limits[p]);
  };
  if (fan_out) {
    ThreadPool pool(std::min(options.limits.num_threads, num_partitions));
    for (size_t p = 0; p < num_partitions; ++p) {
      pool.Submit([&run_one, p] { run_one(p); });
    }
    pool.WaitIdle();
  } else {
    for (size_t p = 0; p < num_partitions; ++p) run_one(p);
  }

  std::vector<PartitionSearchResult> out;
  out.reserve(num_partitions);
  for (Result<SearchResult>& r : searches) {
    if (!r.ok()) return r.status();
    PartitionSearchResult pr;
    pr.initial_cost = r->stats.initial_cost;
    pr.search = std::move(*r);
    out.push_back(std::move(pr));
  }
  return out;
}

}  // namespace rdfviews::vsel::pipeline
