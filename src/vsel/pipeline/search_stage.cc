// Pipeline stage 3: budget apportioning and per-partition searches.
//
// Every partition searches its own initial state under a slice of the
// global budget proportional to its query count; slices round *up* (states)
// or are floored at a small positive minimum (time) so no partition is
// starved to zero, and partitions whose search exhausts its space before
// the slice expires return the unused seconds to a TimeBudgetPool that
// still-running partitions drain. All partitions share one CostModel — the
// interner and the statistics cache are internally synchronized, so
// concurrent partition searches reuse each other's per-distinct-view
// estimates — and cm is calibrated once, over the sum of the per-partition
// S0 breakdowns, which equals the monolithic S0 breakdown because every
// cost component is a sum over views / rewritings.
//
// Incremental (tuning-session) runs pass `preseeded`: partitions with a
// cached outcome are copied through without searching, budgets are
// apportioned over the dirty partitions only, and the reuse accounting
// lands in the PipelineReport. Initial states are built from the ingest
// stage's cached minimized components — no cq::Minimize here.
#include <algorithm>
#include <atomic>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "vsel/pipeline/pipeline.h"
#include "vsel/search.h"

namespace rdfviews::vsel::pipeline {

namespace {

/// Time slices below this are rounded up so every partition can at least
/// admit a handful of states before stop_time fires.
constexpr double kMinTimeBudgetSec = 1e-3;

/// Builds partition `group`'s initial state (the monolithic S0 restricted
/// to the group's queries, in workload order) from the ingest stage's
/// cached minimized forms. Mirrors stage 2's fallback: a hand-built
/// IngestResult without the minimized vector minimizes locally.
Result<State> MakePartitionInitialState(const IngestResult& ingest,
                                        const std::vector<size_t>& group,
                                        const SelectorOptions& options) {
  const bool have_minimized =
      ingest.minimized.size() == ingest.queries.size();
  const bool pre_reformulate =
      options.entailment == EntailmentMode::kPreReformulate;
  const bool have_reformulated =
      ingest.reformulated.size() == ingest.queries.size();
  auto minimized_of = [&](size_t qi) -> std::shared_ptr<const MinimizedQuery> {
    if (have_minimized) return ingest.minimized[qi];
    return std::make_shared<const MinimizedQuery>(MinimizeQuery(
        ingest.queries[qi],
        pre_reformulate && have_reformulated
            ? ingest.reformulated[qi].get()
            : nullptr));
  };
  if (pre_reformulate) {
    std::vector<cq::ConjunctiveQuery> queries;
    std::vector<std::vector<cq::ConjunctiveQuery>> disjuncts;
    queries.reserve(group.size());
    disjuncts.reserve(group.size());
    for (size_t qi : group) {
      queries.push_back(ingest.queries[qi]);
      disjuncts.push_back(minimized_of(qi)->minimized_disjuncts);
    }
    return MakeReformulatedInitialStateFromMinimized(queries, disjuncts);
  }
  std::vector<cq::ConjunctiveQuery> minimized;
  minimized.reserve(group.size());
  for (size_t qi : group) {
    minimized.push_back(minimized_of(qi)->minimized);
  }
  return MakeInitialStateFromMinimized(minimized);
}

/// The paper's statistics-gathering phase: count every initial-state view
/// atom and all its relaxations. Every view the search can create only
/// relaxes these atoms, so after this the pattern-count cache is warm for
/// the whole run (all partitions, all workers).
void CollectWorkloadStatistics(const std::vector<State>& initial_states,
                               const rdf::Statistics& stats) {
  for (const State& s0 : initial_states) {
    for (const View& v : s0.views()) {
      for (const cq::Atom& atom : v.def.atoms()) {
        stats.CollectWithRelaxations(atom.ToPattern());
      }
    }
  }
}

}  // namespace

void TimeBudgetPool::Deposit(double sec) {
  if (sec <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  spare_sec_ += sec;
}

double TimeBudgetPool::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(spare_sec_, 0.0);
}

double TimeBudgetPool::balance() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spare_sec_;
}

std::vector<SearchLimits> ApportionSearchLimits(
    const SearchLimits& total, const std::vector<size_t>& weights) {
  size_t weight_sum = 0;
  for (size_t w : weights) weight_sum += w;
  RDFVIEWS_CHECK_MSG(weight_sum > 0, "apportioning needs positive weights");
  std::vector<SearchLimits> out;
  out.reserve(weights.size());
  for (size_t w : weights) {
    SearchLimits share = total;
    if (total.max_states > 0) {
      // Ceiling division: every partition may remember at least one state.
      // 128-bit intermediate so huge effectively-unlimited budgets times
      // large weights can not wrap into a starving share.
      share.max_states = static_cast<size_t>(
          (static_cast<unsigned __int128>(total.max_states) * w +
           weight_sum - 1) /
          weight_sum);
    }
    if (total.time_budget_sec > 0) {
      share.time_budget_sec =
          std::max(total.time_budget_sec * static_cast<double>(w) /
                       static_cast<double>(weight_sum),
                   kMinTimeBudgetSec);
    }
    out.push_back(share);
  }
  return out;
}

Result<std::vector<PartitionSearchResult>> SearchPartitions(
    const IngestResult& ingest, const PartitionPlan& plan,
    CostModel* cost_model, const SelectorOptions& options,
    const std::vector<PreseededOutcome>* preseeded,
    PipelineReport* report) {
  const size_t num_partitions = plan.groups.size();
  RDFVIEWS_CHECK(num_partitions > 0);
  RDFVIEWS_CHECK(preseeded == nullptr ||
                 preseeded->size() == num_partitions);
  auto seeded = [&](size_t p) {
    return preseeded != nullptr && (*preseeded)[p].result != nullptr;
  };

  // Initial states of the partitions that will actually search, in
  // partition order (cached partitions need none — their outcome already
  // embodies it).
  std::vector<size_t> dirty;
  std::vector<State> initial_states(num_partitions);
  std::vector<size_t> weights;
  for (size_t p = 0; p < num_partitions; ++p) {
    if (seeded(p)) continue;
    Result<State> s0 =
        MakePartitionInitialState(ingest, plan.groups[p], options);
    if (!s0.ok()) return s0.status();
    initial_states[p] = std::move(*s0);
    dirty.push_back(p);
    weights.push_back(plan.groups[p].size());
  }
  if (report != nullptr) {
    report->partitions_searched = dirty.size();
    report->partitions_reused = num_partitions - dirty.size();
    report->partitions_rehydrated = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      if (seeded(p) && (*preseeded)[p].rehydrated) {
        ++report->partitions_rehydrated;
      }
    }
  }
  {
    std::vector<State> warm;
    warm.reserve(dirty.size());
    for (size_t p : dirty) warm.push_back(initial_states[p]);
    CollectWorkloadStatistics(warm, *ingest.stats);
  }

  // Calibrate cm once over the whole workload: the monolithic S0 breakdown
  // is the component-wise sum of the per-partition breakdowns. Sessions
  // calibrate on their first update (never preseeded) and freeze the
  // weights afterwards, so the cached best states stay cost-comparable.
  if (options.auto_calibrate_cm && dirty.size() == num_partitions) {
    CostBreakdown s0_breakdown;
    for (size_t p : dirty) {
      CostBreakdown b = cost_model->Breakdown(initial_states[p]);
      s0_breakdown.vso += b.vso;
      s0_breakdown.rec += b.rec;
      s0_breakdown.vmc += b.vmc;
      s0_breakdown.total += b.total;
    }
    CostWeights w = cost_model->weights();
    w.cm = CostModel::CalibrateCm(s0_breakdown, w);
    cost_model->set_weights(w);
  }

  std::vector<PartitionSearchResult> out(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    if (!seeded(p)) continue;
    out[p] = *(*preseeded)[p].result;  // cheap: views/rewritings shared COW
    if (options.limits.on_progress) {
      ProgressEvent ev;
      ev.kind = ProgressEvent::Kind::kPartitionDone;
      ev.best_cost = out[p].search.stats.best_cost;
      ev.partition = p;
      ev.partitions_total = num_partitions;
      options.limits.on_progress(ev);
    }
  }
  if (dirty.empty()) return out;

  std::vector<SearchLimits> limits =
      ApportionSearchLimits(options.limits, weights);
  const bool fan_out = dirty.size() > 1 &&
                       options.partition.parallel_partitions &&
                       options.limits.num_threads > 1;
  for (SearchLimits& l : limits) {
    // Partitions are the unit of parallelism when there are several; a
    // single partition keeps the parallel frontier engine instead.
    l.num_threads = fan_out ? 1 : options.limits.num_threads;
  }

  TimeBudgetPool spare;
  std::atomic<double> regranted{0};
  std::vector<Result<SearchResult>> searches(
      dirty.size(), Status::Internal("partition search did not run"));
  auto run_one = [&](size_t di) {
    const size_t p = dirty[di];
    SearchLimits l = limits[di];
    if (l.time_budget_sec > 0) {
      // Budget re-granting: adopt whatever early finishers returned.
      double bonus = spare.Take();
      if (bonus > 0) {
        l.time_budget_sec += bonus;
        double cur = regranted.load(std::memory_order_relaxed);
        while (!regranted.compare_exchange_weak(
            cur, cur + bonus, std::memory_order_relaxed)) {
        }
      }
    }
    searches[di] = RunSearch(options.strategy, initial_states[p],
                             *cost_model, options.heuristics, l);
    if (searches[di].ok() && l.time_budget_sec > 0 &&
        searches[di]->stats.completed) {
      // Space exhausted with time to spare: return the remainder.
      spare.Deposit(l.time_budget_sec - searches[di]->stats.elapsed_sec);
    }
    if (options.limits.on_progress) {
      ProgressEvent ev;
      ev.kind = ProgressEvent::Kind::kPartitionDone;
      if (searches[di].ok()) {
        ev.best_cost = searches[di]->stats.best_cost;
        ev.elapsed_sec = searches[di]->stats.elapsed_sec;
      }
      ev.partition = p;
      ev.partitions_total = num_partitions;
      options.limits.on_progress(ev);
    }
  };
  if (fan_out) {
    ThreadPool pool(std::min(options.limits.num_threads, dirty.size()));
    for (size_t di = 0; di < dirty.size(); ++di) {
      pool.Submit([&run_one, di] { run_one(di); });
    }
    pool.WaitIdle();
  } else {
    for (size_t di = 0; di < dirty.size(); ++di) run_one(di);
  }
  if (report != nullptr) {
    report->budget_regranted_sec = regranted.load(std::memory_order_relaxed);
  }

  for (size_t di = 0; di < dirty.size(); ++di) {
    Result<SearchResult>& r = searches[di];
    if (!r.ok()) return r.status();
    PartitionSearchResult pr;
    pr.initial_cost = r->stats.initial_cost;
    pr.search = std::move(*r);
    out[dirty[di]] = std::move(pr);
  }
  return out;
}

}  // namespace rdfviews::vsel::pipeline
