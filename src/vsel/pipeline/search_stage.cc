// Pipeline stage 3: budget apportioning and per-partition searches.
//
// Every partition searches its own initial state under a slice of the
// global budget proportional to its estimated enumeration cost (sum over
// its views of 2^atoms — see EnumerationCostWeight); slices round *up* (states)
// or are floored at a small positive minimum (time) so no partition is
// starved to zero, and partitions whose search exhausts its space before
// the slice expires return the unused seconds to a TimeBudgetPool that
// still-running partitions drain. All partitions share one CostModel — the
// interner and the statistics cache are internally synchronized, so
// concurrent partition searches reuse each other's per-distinct-view
// estimates — and cm is calibrated once, over the sum of the per-partition
// S0 breakdowns, which equals the monolithic S0 breakdown because every
// cost component is a sum over views / rewritings.
//
// Incremental (tuning-session) runs pass `preseeded`: partitions with a
// cached outcome are copied through without searching, budgets are
// apportioned over the dirty partitions only, and the reuse accounting
// lands in the PipelineReport. Initial states are built from the ingest
// stage's cached minimized components — no cq::Minimize here.
//
// Failure containment (options.robust): each partition's search attempt
// runs behind an exception -> Status boundary under an optional hard
// watchdog deadline (a per-attempt StopSource combined into the search's
// token, so even an injected hang is cut loose), failed attempts are
// retried with deterministic jittered backoff while the partition's time
// slice lasts, and an exhausted partition comes back as a failed
// PartitionOutcome for the merge stage to degrade around — never as a
// stage error, and never as an escaped exception.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <new>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "common/thread_pool.h"
#include "vsel/pipeline/executor.h"
#include "vsel/pipeline/pipeline.h"
#include "vsel/robust/retry.h"
#include "vsel/robust/watchdog.h"
#include "vsel/search.h"

namespace rdfviews::vsel::pipeline {

namespace {

/// Time slices below this are rounded up so every partition can at least
/// admit a handful of states before stop_time fires.
constexpr double kMinTimeBudgetSec = 1e-3;

/// Apportionment weight of a partition: the estimated enumeration cost of
/// its initial state, sum over views of 2^atoms (the VB stratum of a
/// k-atom view explores its view-break lattice, which grows with 2^k; the
/// other strata are polynomial and dominated by it). Query *count* — the
/// old weight — mis-sizes slices badly when partition query shapes differ:
/// one 6-atom query costs ~64x one 1-atom query, not 1x. The exponent is
/// clamped so a pathological view cannot overflow, and the weight floored
/// at 1 so every partition keeps a positive share.
size_t EnumerationCostWeight(const State& s0) {
  size_t w = 0;
  for (const View& v : s0.views()) {
    w += static_cast<size_t>(1) << std::min<size_t>(v.def.len(), 20);
  }
  return std::max<size_t>(w, 1);
}

/// Builds partition `group`'s initial state (the monolithic S0 restricted
/// to the group's queries, in workload order) from the ingest stage's
/// cached minimized forms. Mirrors stage 2's fallback: a hand-built
/// IngestResult without the minimized vector minimizes locally.
Result<State> MakePartitionInitialState(const IngestResult& ingest,
                                        const std::vector<size_t>& group,
                                        const SelectorOptions& options) {
  const bool have_minimized =
      ingest.minimized.size() == ingest.queries.size();
  const bool pre_reformulate =
      options.entailment == EntailmentMode::kPreReformulate;
  const bool have_reformulated =
      ingest.reformulated.size() == ingest.queries.size();
  auto minimized_of = [&](size_t qi) -> std::shared_ptr<const MinimizedQuery> {
    if (have_minimized) return ingest.minimized[qi];
    return std::make_shared<const MinimizedQuery>(MinimizeQuery(
        ingest.queries[qi],
        pre_reformulate && have_reformulated
            ? ingest.reformulated[qi].get()
            : nullptr));
  };
  if (pre_reformulate) {
    std::vector<cq::ConjunctiveQuery> queries;
    std::vector<std::vector<cq::ConjunctiveQuery>> disjuncts;
    queries.reserve(group.size());
    disjuncts.reserve(group.size());
    for (size_t qi : group) {
      queries.push_back(ingest.queries[qi]);
      disjuncts.push_back(minimized_of(qi)->minimized_disjuncts);
    }
    return MakeReformulatedInitialStateFromMinimized(queries, disjuncts);
  }
  std::vector<cq::ConjunctiveQuery> minimized;
  minimized.reserve(group.size());
  for (size_t qi : group) {
    minimized.push_back(minimized_of(qi)->minimized);
  }
  return MakeInitialStateFromMinimized(minimized);
}

/// The paper's statistics-gathering phase: count every initial-state view
/// atom and all its relaxations. Every view the search can create only
/// relaxes these atoms, so after this the pattern-count cache is warm for
/// the whole run (all partitions, all workers).
void CollectWorkloadStatistics(const std::vector<State>& initial_states,
                               const rdf::Statistics& stats) {
  for (const State& s0 : initial_states) {
    for (const View& v : s0.views()) {
      for (const cq::Atom& atom : v.def.atoms()) {
        stats.CollectWithRelaxations(atom.ToPattern());
      }
    }
  }
}

}  // namespace

void TimeBudgetPool::Deposit(double sec) {
  if (sec <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  spare_sec_ += sec;
}

double TimeBudgetPool::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(spare_sec_, 0.0);
}

double TimeBudgetPool::balance() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spare_sec_;
}

std::vector<SearchLimits> ApportionSearchLimits(
    const SearchLimits& total, const std::vector<size_t>& weights) {
  size_t weight_sum = 0;
  for (size_t w : weights) weight_sum += w;
  RDFVIEWS_CHECK_MSG(weight_sum > 0, "apportioning needs positive weights");
  std::vector<SearchLimits> out;
  out.reserve(weights.size());
  for (size_t w : weights) {
    SearchLimits share = total;
    if (total.max_states > 0) {
      // Ceiling division: every partition may remember at least one state.
      // 128-bit intermediate so huge effectively-unlimited budgets times
      // large weights can not wrap into a starving share.
      share.max_states = static_cast<size_t>(
          (static_cast<unsigned __int128>(total.max_states) * w +
           weight_sum - 1) /
          weight_sum);
    }
    if (total.time_budget_sec > 0) {
      share.time_budget_sec =
          std::max(total.time_budget_sec * static_cast<double>(w) /
                       static_cast<double>(weight_sum),
                   kMinTimeBudgetSec);
    }
    out.push_back(share);
  }
  return out;
}

Result<std::vector<PartitionOutcome>> SearchPartitions(
    const IngestResult& ingest, const PartitionPlan& plan,
    CostModel* cost_model, const SelectorOptions& options,
    const std::vector<PreseededOutcome>* preseeded,
    PipelineReport* report) {
  const size_t num_partitions = plan.groups.size();
  RDFVIEWS_CHECK(num_partitions > 0);
  RDFVIEWS_CHECK(preseeded == nullptr ||
                 preseeded->size() == num_partitions);
  auto seeded = [&](size_t p) {
    return preseeded != nullptr && (*preseeded)[p].result != nullptr;
  };

  // Every slot starts as an honest failure: "never ran". A pool task that
  // dies before claiming its slot (fault::kPoolTask) then leaves a real
  // outcome — attempts == 0, abandoned — not a fabricated one, and the
  // merge stage degrades around it like any other failed partition.
  std::vector<PartitionOutcome> out(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    out[p].error =
        Status::Internal("partition search never ran (task lost)");
    out[p].health.partition = p;
    out[p].health.queries = plan.groups[p].size();
    out[p].health.attempts = 0;
    out[p].health.last_code = StatusCode::kInternal;
    out[p].health.last_error = out[p].error.message();
    out[p].health.abandoned = true;
  }

  // Initial states of the partitions that will actually search, in
  // partition order (cached partitions need none — their outcome already
  // embodies it). A partition whose S0 can not be built is contained as a
  // failed outcome, not a stage error: its siblings still tune.
  std::vector<size_t> dirty;
  std::vector<State> initial_states(num_partitions);
  std::vector<size_t> weights;
  for (size_t p = 0; p < num_partitions; ++p) {
    if (seeded(p)) continue;
    Result<State> s0 =
        MakePartitionInitialState(ingest, plan.groups[p], options);
    if (!s0.ok()) {
      out[p].error = s0.status();
      out[p].health.attempts = 1;
      out[p].health.last_code = s0.status().code();
      out[p].health.last_error = s0.status().message();
      continue;
    }
    initial_states[p] = std::move(*s0);
    dirty.push_back(p);
    weights.push_back(EnumerationCostWeight(initial_states[p]));
  }
  if (report != nullptr) {
    report->partitions_searched = dirty.size();
    report->partitions_reused = num_partitions - dirty.size();
    report->partitions_rehydrated = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      if (seeded(p) && (*preseeded)[p].rehydrated) {
        ++report->partitions_rehydrated;
      }
    }
  }
  {
    std::vector<State> warm;
    warm.reserve(dirty.size());
    for (size_t p : dirty) warm.push_back(initial_states[p]);
    CollectWorkloadStatistics(warm, *ingest.stats);
  }

  // Calibrate cm once over the whole workload: the monolithic S0 breakdown
  // is the component-wise sum of the per-partition breakdowns. Sessions
  // calibrate on their first update (never preseeded) and freeze the
  // weights afterwards, so the cached best states stay cost-comparable.
  // A partition whose S0 failed to build is excluded (its breakdown does
  // not exist); its queries rejoin the calibration when a later update
  // retries it — which is why exactness-sensitive chaos tests pin the
  // weights (auto_calibrate_cm = false) instead.
  if (options.auto_calibrate_cm && dirty.size() == num_partitions) {
    CostBreakdown s0_breakdown;
    for (size_t p : dirty) {
      CostBreakdown b = cost_model->Breakdown(initial_states[p]);
      s0_breakdown.vso += b.vso;
      s0_breakdown.rec += b.rec;
      s0_breakdown.vmc += b.vmc;
      s0_breakdown.total += b.total;
    }
    CostWeights w = cost_model->weights();
    w.cm = CostModel::CalibrateCm(s0_breakdown, w);
    cost_model->set_weights(w);
  }

  auto emit = [&](ProgressEvent::Kind kind, size_t p, size_t attempt,
                  double best_cost, double elapsed) {
    if (!options.limits.on_progress) return;
    ProgressEvent ev;
    ev.kind = kind;
    ev.best_cost = best_cost;
    ev.elapsed_sec = elapsed;
    ev.partition = p;
    ev.partitions_total = num_partitions;
    ev.attempt = attempt;
    options.limits.on_progress(ev);
  };

  for (size_t p = 0; p < num_partitions; ++p) {
    if (!seeded(p)) continue;
    telemetry::TraceEvent(
        "partition.reused",
        {{"partition", std::to_string(p)},
         {"rehydrated", (*preseeded)[p].rehydrated ? "1" : "0"}});
    // Cheap: views/rewritings are shared COW pointers.
    out[p].result = *(*preseeded)[p].result;
    out[p].error = Status::OK();
    out[p].health = PartitionHealth{};
    out[p].health.partition = p;
    out[p].health.queries = plan.groups[p].size();
    emit(ProgressEvent::Kind::kPartitionDone, p, 0,
         out[p].result.search.stats.best_cost, 0);
  }
  if (dirty.empty()) return out;

  std::vector<SearchLimits> limits =
      ApportionSearchLimits(options.limits, weights);
  const bool fan_out = dirty.size() > 1 &&
                       options.partition.parallel_partitions &&
                       options.limits.num_threads > 1;
  for (SearchLimits& l : limits) {
    // Partitions are the unit of parallelism when there are several; a
    // single partition keeps the parallel frontier engine instead.
    l.num_threads = fan_out ? 1 : options.limits.num_threads;
  }

  const RetryPolicy& retry = options.robust.retry;
  const size_t max_attempts = std::max<size_t>(retry.max_attempts, 1);
  const double deadline_sec = options.robust.partition_deadline_sec;
  robust::Watchdog watchdog;

  // Where attempts physically run: the configured executor (the fleet
  // path) or the in-process default. All retry/backoff/watchdog policy
  // below is executor-agnostic — a remote worker dying mid-partition looks
  // exactly like a failed local attempt and is re-queued the same way.
  LocalExecutor local_executor;
  PartitionExecutor* executor = options.executor != nullptr
                                    ? options.executor.get()
                                    : static_cast<PartitionExecutor*>(
                                          &local_executor);

  TimeBudgetPool spare;
  std::atomic<double> regranted{0};
  // Captured on the submitting thread so pool tasks parent their spans
  // under the caller's pipeline.search span instead of losing the tree at
  // the thread boundary.
  const telemetry::TraceContext trace_ctx = telemetry::CurrentTraceContext();
  auto run_one = [&](size_t di) {
    const telemetry::ScopedTraceContext trace_scope(trace_ctx);
    const size_t p = dirty[di];
    PartitionOutcome& slot = out[p];
    telemetry::TraceSpan partition_span("partition.search");
    partition_span.Annotate("partition", static_cast<uint64_t>(p));
    partition_span.Annotate("queries",
                            static_cast<uint64_t>(plan.groups[p].size()));
    // The task claimed its slot: replace the "never ran" pre-fill with a
    // fresh health record this loop now owns.
    slot.health = PartitionHealth{};
    slot.health.partition = p;
    slot.health.queries = plan.groups[p].size();
    const auto partition_start = std::chrono::steady_clock::now();
    auto wall_spent = [&] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - partition_start)
          .count();
    };

    double slice = limits[di].time_budget_sec;  // 0 = unlimited
    if (slice > 0) {
      // Budget re-granting: adopt whatever early finishers returned.
      double bonus = spare.Take();
      if (bonus > 0) {
        slice += bonus;
        double cur = regranted.load(std::memory_order_relaxed);
        while (!regranted.compare_exchange_weak(
            cur, cur + bonus, std::memory_order_relaxed)) {
        }
      }
    }

    Status last = Status::Internal("partition search never ran");
    for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      // A user stop never skips the *first* attempt: a search started with
      // a stopped token returns its valid S0 best immediately (the anytime
      // contract) — it only suppresses retries.
      if (attempt > 1 && options.limits.stop.stop_requested()) break;
      const double remaining =
          slice > 0 ? slice - wall_spent() : 0;
      if (slice > 0 && attempt > 1 && remaining < kMinTimeBudgetSec) {
        break;  // slice exhausted; don't start an attempt that can't run
      }
      slot.health.attempts = attempt;

      telemetry::TraceSpan attempt_span("search.attempt");
      attempt_span.Annotate("attempt", static_cast<uint64_t>(attempt));
      const auto attempt_start = std::chrono::steady_clock::now();

      SearchLimits l = limits[di];
      l.time_budget_sec =
          slice > 0 ? std::max(remaining, kMinTimeBudgetSec) : 0;
      // Hard per-attempt deadline: the watchdog fires a StopSource combined
      // into the attempt's token, so the search — and any injected hang
      // under the containment boundary (ScopedHangToken) — observes the
      // stop exactly like a user cancellation.
      StopSource attempt_deadline;
      uint64_t ticket = 0;
      if (deadline_sec > 0) {
        l.stop = StopToken::Combine(options.limits.stop,
                                    attempt_deadline.token());
        ticket = watchdog.Arm(deadline_sec, attempt_deadline);
      }
      const fault::ScopedHangToken hang_guard(l.stop);

      Result<SearchResult> r =
          Status::Internal("partition search attempt did not run");
      try {
        PartitionWorkUnit unit;
        unit.partition = p;
        unit.attempt = attempt;
        // Tolerate hand-built plans without keys (key-less units are only
        // a problem for executors that ship them, which reject them).
        if (p < plan.group_keys.size()) unit.key = plan.group_keys[p];
        unit.initial_state = &initial_states[p];
        unit.group_size = plan.groups[p].size();
        r = executor->ExecuteAttempt(unit, options, l, cost_model);
      } catch (const std::bad_alloc&) {
        r = Status::ResourceExhausted("partition search ran out of memory");
      } catch (const std::exception& e) {
        r = Status::Internal(std::string("partition search threw: ") +
                             e.what());
      } catch (...) {
        r = Status::Internal("partition search threw a non-exception");
      }
      if (ticket != 0) watchdog.Disarm(ticket);

      const bool user_stopped = options.limits.stop.stop_requested();
      if (r.ok() && ticket != 0 && watchdog.Fired(ticket) &&
          r->stats.cancelled && !user_stopped) {
        // The watchdog cut a still-running attempt: a deadline overrun is
        // a failure (the hard deadline exists to bound wedged attempts),
        // unlike an ordinary in-budget truncation, which stays a valid
        // anytime result.
        r = Status::TimedOut("partition search overran its watchdog "
                             "deadline");
        telemetry::TraceEvent("watchdog.fire",
                              {{"partition", std::to_string(p)},
                               {"attempt", std::to_string(attempt)}});
      }

      // Close the attempt span here — outcome annotated, latency observed —
      // so a retry's backoff sleep is charged to the partition, not to the
      // attempt that already failed.
      {
        static telemetry::Histogram* const attempt_ns =
            telemetry::MetricsRegistry::Default()->GetHistogram(
                "vsel_partition_attempt_ns");
        attempt_ns->Observe(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - attempt_start)
                .count()));
      }
      attempt_span.Annotate(
          "outcome", r.ok() ? "ok"
                            : (r.status().code() == StatusCode::kTimedOut
                                   ? "timeout"
                                   : "error"));
      attempt_span.End();

      if (r.ok()) {
        if (slice > 0 && r->stats.completed) {
          // Space exhausted with time to spare: return the remainder.
          spare.Deposit(slice - wall_spent());
        }
        slot.result.initial_cost = r->stats.initial_cost;
        slot.result.search = std::move(*r);
        slot.error = Status::OK();
        slot.health.recovered = attempt > 1;
        slot.health.wall_spent_sec = wall_spent();
        // attempt 0 for a plain first-try success (the documented "outside
        // the retry machinery" value); the real number marks a recovery.
        emit(ProgressEvent::Kind::kPartitionDone, p, attempt > 1 ? attempt : 0,
             slot.result.search.stats.best_cost,
             slot.result.search.stats.elapsed_sec);
        return;
      }

      last = r.status();
      slot.health.last_code = last.code();
      slot.health.last_error = last.message();
      emit(ProgressEvent::Kind::kPartitionFailed, p, attempt, 0,
           wall_spent());
      if (attempt >= max_attempts || user_stopped) break;
      double backoff = robust::BackoffDelaySec(retry, p, attempt + 1);
      if (slice > 0) {
        const double left = slice - wall_spent();
        if (left < kMinTimeBudgetSec) break;  // no room for another try
        backoff = std::min(backoff, std::max(left - kMinTimeBudgetSec, 0.0));
      }
      {
        telemetry::TraceSpan backoff_span("retry.backoff");
        backoff_span.Annotate("partition", static_cast<uint64_t>(p));
        backoff_span.Annotate("next_attempt",
                              static_cast<uint64_t>(attempt + 1));
        robust::SleepWithStop(backoff, &options.limits.stop);
      }
      if (options.limits.stop.stop_requested()) break;
      emit(ProgressEvent::Kind::kPartitionRetry, p, attempt + 1, 0,
           wall_spent());
    }

    slot.error = last;
    slot.health.abandoned = true;
    slot.health.wall_spent_sec = wall_spent();
    emit(ProgressEvent::Kind::kPartitionAbandoned, p,
         std::max<size_t>(slot.health.attempts, 1), 0,
         slot.health.wall_spent_sec);
  };
  if (fan_out) {
    ThreadPool pool(std::min(options.limits.num_threads, dirty.size()));
    for (size_t di = 0; di < dirty.size(); ++di) {
      pool.Submit([&run_one, di] { run_one(di); });
    }
    pool.WaitIdle();
  } else {
    for (size_t di = 0; di < dirty.size(); ++di) run_one(di);
  }

  if (report != nullptr) {
    report->budget_regranted_sec = regranted.load(std::memory_order_relaxed);
    report->partitions_failed = 0;
    report->partition_retries = 0;
    report->partition_health.clear();
    for (const PartitionOutcome& o : out) {
      if (!o.ok()) ++report->partitions_failed;
      if (o.health.attempts > 1) {
        report->partition_retries += o.health.attempts - 1;
      }
      // Record every partition the retry machinery touched: failed at
      // least once (recovered or abandoned) or never ran at all.
      if (!o.ok() || o.health.recovered) {
        report->partition_health.push_back(o.health);
      }
    }
  }
  return out;
}

}  // namespace rdfviews::vsel::pipeline
