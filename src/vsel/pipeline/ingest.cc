// Pipeline stage 1: workload validation and entailment normalization.
//
// Everything the pre-pipeline ViewSelector::Recommend did before the search
// now happens here, exactly once per run: choosing the statistics provider
// and materialization store for the EntailmentMode, validating every query,
// and (for kPreReformulate) reformulating every workload query up front so
// the later stages see plain per-query disjunct unions.
//
// This is also the single-minimization pass: every query (and every
// reformulated disjunct) is minimized here, once, and the minimized
// connected-component structure rides along in IngestResult::minimized for
// stage 2 (commonality analysis) and stage 3 (initial-state construction).
// With a SessionCaches carryover, per-query results are keyed by the exact
// structural form of the raw query, so a session update re-minimizes (and
// re-reformulates) only the queries it has never seen.
#include <algorithm>
#include <memory>
#include <utility>

#include "cq/canonical.h"
#include "cq/containment.h"
#include "rdf/saturation.h"
#include "reform/reformulate.h"
#include "vsel/pipeline/pipeline.h"

namespace rdfviews::vsel::pipeline {

namespace {

/// Renaming-insensitive key of a minimized query: the canonical body+head
/// structure plus the head order as canonical variable indices. Two queries
/// share a key iff one is a bijective variable renaming of the other with
/// the same answer-column order — exactly the equivalence under which a
/// cached partition search result (whose rewritings fix column order) is
/// reusable.
std::string RenamingInsensitiveKey(const cq::ConjunctiveQuery& q) {
  cq::CanonicalForm form = cq::Canonicalize(q, /*include_head=*/true);
  std::string key = form.repr;
  key += "|h";
  for (const cq::Term& t : q.head()) {
    key += ':';
    auto it = form.var_map.find(t.var());
    // Head vars are body vars for valid workload queries; an unseen var
    // (malformed query) falls back to its raw id, which only ever makes
    // the key stricter.
    key += it != form.var_map.end() ? std::to_string(it->second)
                                    : "r" + std::to_string(t.var());
  }
  return key;
}

/// Collects the sorted distinct body constants of `q`'s minimized
/// components into `out->constants` and flags any constant-free component.
void ScanComponents(const cq::ConjunctiveQuery& minimized,
                    MinimizedQuery* out) {
  for (const cq::ConjunctiveQuery& component :
       minimized.SplitIntoConnectedQueries()) {
    size_t in_component = 0;
    for (const cq::Atom& atom : component.atoms()) {
      for (const cq::Term* t : {&atom.s, &atom.p, &atom.o}) {
        if (t->is_const()) {
          out->constants.push_back(t->constant());
          ++in_component;
        }
      }
    }
    if (in_component == 0) out->has_constant_free_component = true;
  }
}

}  // namespace

// The full single-minimization pass for one query. For kPreReformulate the
// initial views come from the reformulated disjuncts, so components,
// constants and the wildcard flag are computed over every minimized
// disjunct; the canonical key always describes the raw query (the schema
// is fixed per session, so it determines the disjuncts).
MinimizedQuery MinimizeQuery(const cq::ConjunctiveQuery& raw,
                             const cq::UnionOfQueries* reformulated) {
  MinimizedQuery out;
  out.minimized = cq::Minimize(raw);
  out.canonical_key = RenamingInsensitiveKey(out.minimized);
  if (reformulated != nullptr) {
    out.minimized_disjuncts.reserve(reformulated->disjuncts().size());
    for (const cq::ConjunctiveQuery& disjunct : reformulated->disjuncts()) {
      out.minimized_disjuncts.push_back(cq::Minimize(disjunct));
      ScanComponents(out.minimized_disjuncts.back(), &out);
    }
  } else {
    ScanComponents(out.minimized, &out);
  }
  std::sort(out.constants.begin(), out.constants.end());
  out.constants.erase(
      std::unique(out.constants.begin(), out.constants.end()),
      out.constants.end());
  return out;
}

std::string ExactQueryKey(const cq::ConjunctiveQuery& q) {
  std::string key;
  auto append_term = [&key](const cq::Term& t) {
    if (t.is_const()) {
      key += 'c';
      key += std::to_string(t.constant());
    } else {
      key += 'v';
      key += std::to_string(t.var());
    }
    key += ',';
  };
  for (const cq::Term& t : q.head()) append_term(t);
  key += ';';
  for (const cq::Atom& atom : q.atoms()) {
    append_term(atom.s);
    append_term(atom.p);
    append_term(atom.o);
    key += ';';
  }
  return key;
}

Result<IngestResult> Ingest(const rdf::TripleStore* store,
                            const rdf::Dictionary* dict,
                            const rdf::Schema* schema,
                            const std::vector<cq::ConjunctiveQuery>& workload,
                            const SelectorOptions& options,
                            rdf::Statistics* external_stats,
                            SessionCaches* caches) {
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  const bool needs_schema = options.entailment != EntailmentMode::kNone;
  if (needs_schema && (schema == nullptr || schema->empty())) {
    return Status::InvalidArgument(
        "entailment mode requires a non-empty RDF schema");
  }

  IngestResult out;
  out.queries = workload;
  out.schema = schema;
  out.materialization_store = std::shared_ptr<const rdf::TripleStore>(
      store, [](const auto*) {});

  // Entailment environment: reused verbatim from the session carryover
  // (store, schema and mode are fixed per session), built once otherwise.
  const bool env_cached = caches != nullptr && caches->stats != nullptr;
  if (env_cached) {
    out.owned_stats = caches->stats;
    out.materialization_store = caches->materialization_store;
    if (options.entailment == EntailmentMode::kSaturate ||
        options.entailment == EntailmentMode::kPostReformulate) {
      external_stats = nullptr;  // these modes never honor an override
    }
  } else {
    switch (options.entailment) {
      case EntailmentMode::kNone:
      case EntailmentMode::kPreReformulate:
        if (external_stats == nullptr) {
          out.owned_stats = std::make_shared<rdf::Statistics>(store);
        }
        break;
      case EntailmentMode::kSaturate: {
        // The saturated store backs both the statistics and the
        // materialization; the shared_ptr in the result keeps it alive.
        auto saturated = std::make_shared<rdf::TripleStore>(
            rdf::Saturate(*store, *schema, {}, dict));
        out.owned_stats = std::make_shared<rdf::Statistics>(saturated.get());
        out.materialization_store = saturated;
        external_stats = nullptr;  // must measure the saturated store
        break;
      }
      case EntailmentMode::kPostReformulate:
        // A generic warm cache would silently drop the implicit triples
        // from every count, so the reformulation-aware provider is always
        // built here (mirroring kSaturate's override of external_stats).
        out.owned_stats =
            std::make_shared<reform::ReformulatedStatistics>(store, schema);
        external_stats = nullptr;
        break;
    }
    if (caches != nullptr) {
      caches->stats = out.owned_stats;
      caches->materialization_store = out.materialization_store;
    }
  }
  out.stats =
      external_stats != nullptr ? external_stats : out.owned_stats.get();

  // Per-query pass: validate, (for kPreReformulate) reformulate, minimize —
  // each served from the session caches when the query was seen before.
  const bool pre_reformulate =
      options.entailment == EntailmentMode::kPreReformulate;
  if (pre_reformulate) out.reformulated.reserve(workload.size());
  out.minimized.reserve(workload.size());
  for (const cq::ConjunctiveQuery& q : workload) {
    RDFVIEWS_RETURN_IF_ERROR(ValidateWorkloadQuery(q));
    const std::string key =
        caches != nullptr ? ExactQueryKey(q) : std::string();
    const cq::UnionOfQueries* ucq = nullptr;
    if (pre_reformulate) {
      bool served = false;
      if (caches != nullptr) {
        auto it = caches->reformulate.find(key);
        if (it != caches->reformulate.end()) {
          out.reformulated.push_back(it->second);  // shared, not copied
          served = true;
        }
      }
      if (!served) {
        reform::ReformulationResult r = reform::Reformulate(q, *schema);
        if (!r.complete) {
          return Status::ResourceExhausted(
              "reformulation of " + q.name() + " exceeded the query budget");
        }
        auto shared = std::make_shared<const cq::UnionOfQueries>(
            std::move(r.ucq));
        if (caches != nullptr) caches->reformulate.emplace(key, shared);
        out.reformulated.push_back(std::move(shared));
      }
      ucq = out.reformulated.back().get();
    }
    if (caches != nullptr) {
      auto it = caches->minimize.find(key);
      if (it == caches->minimize.end()) {
        it = caches->minimize
                 .emplace(key, std::make_shared<const MinimizedQuery>(
                                   MinimizeQuery(q, ucq)))
                 .first;
      }
      out.minimized.push_back(it->second);  // shared, not copied
    } else {
      out.minimized.push_back(
          std::make_shared<const MinimizedQuery>(MinimizeQuery(q, ucq)));
    }
  }
  return out;
}

}  // namespace rdfviews::vsel::pipeline
