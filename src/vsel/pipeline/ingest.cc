// Pipeline stage 1: workload validation and entailment normalization.
//
// Everything the pre-pipeline ViewSelector::Recommend did before the search
// now happens here, exactly once per run: choosing the statistics provider
// and materialization store for the EntailmentMode, and (for
// kPreReformulate) reformulating every workload query up front so the later
// stages see plain per-query disjunct unions.
#include <memory>
#include <utility>

#include "rdf/saturation.h"
#include "reform/reformulate.h"
#include "vsel/pipeline/pipeline.h"

namespace rdfviews::vsel::pipeline {

Result<IngestResult> Ingest(const rdf::TripleStore* store,
                            const rdf::Dictionary* dict,
                            const rdf::Schema* schema,
                            const std::vector<cq::ConjunctiveQuery>& workload,
                            const SelectorOptions& options,
                            rdf::Statistics* external_stats) {
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  const bool needs_schema = options.entailment != EntailmentMode::kNone;
  if (needs_schema && (schema == nullptr || schema->empty())) {
    return Status::InvalidArgument(
        "entailment mode requires a non-empty RDF schema");
  }

  IngestResult out;
  out.queries = workload;
  out.schema = schema;
  out.materialization_store = std::shared_ptr<const rdf::TripleStore>(
      store, [](const auto*) {});

  switch (options.entailment) {
    case EntailmentMode::kNone:
      if (external_stats == nullptr) {
        out.owned_stats = std::make_unique<rdf::Statistics>(store);
      }
      break;
    case EntailmentMode::kPreReformulate: {
      if (external_stats == nullptr) {
        out.owned_stats = std::make_unique<rdf::Statistics>(store);
      }
      out.reformulated.reserve(workload.size());
      for (const cq::ConjunctiveQuery& q : workload) {
        reform::ReformulationResult r = reform::Reformulate(q, *schema);
        if (!r.complete) {
          return Status::ResourceExhausted(
              "reformulation of " + q.name() + " exceeded the query budget");
        }
        out.reformulated.push_back(std::move(r.ucq));
      }
      break;
    }
    case EntailmentMode::kSaturate: {
      // The saturated store backs both the statistics and the
      // materialization; the shared_ptr in the result keeps it alive.
      auto saturated = std::make_shared<rdf::TripleStore>(
          rdf::Saturate(*store, *schema, {}, dict));
      out.owned_stats = std::make_unique<rdf::Statistics>(saturated.get());
      out.materialization_store = saturated;
      external_stats = nullptr;  // must measure the saturated store
      break;
    }
    case EntailmentMode::kPostReformulate:
      // A generic warm cache would silently drop the implicit triples from
      // every count, so the reformulation-aware provider is always built
      // here (mirroring kSaturate's override of external_stats).
      out.owned_stats =
          std::make_unique<reform::ReformulatedStatistics>(store, schema);
      external_stats = nullptr;
      break;
  }
  out.stats =
      external_stats != nullptr ? external_stats : out.owned_stats.get();
  return out;
}

}  // namespace rdfviews::vsel::pipeline
