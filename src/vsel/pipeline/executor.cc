#include "vsel/pipeline/executor.h"

#include <cmath>

#include "common/fault.h"

namespace rdfviews::vsel::pipeline {

Result<SearchResult> LocalExecutor::ExecuteAttempt(
    const PartitionWorkUnit& unit, const TuningConfig& config,
    const SearchLimits& limits, CostModel* cost_model) {
  (void)unit;
  Status injected = fault::MaybeThrow(fault::sites::kPartitionSearch);
  if (!injected.ok()) return injected;
  return RunSearch(config.strategy, *unit.initial_state, *cost_model,
                   config.heuristics, limits);
}

bool RehydratePartitionOutcome(PartitionSearchResult* outcome,
                               size_t group_size, const CostModel& model,
                               bool require_completed) {
  // Only completed searches are ever cached; an in-flight flag combination
  // in a cache file means it was not written by us.
  if (require_completed && !outcome->search.stats.completed) return false;
  // The merge stage requires exactly one rewriting per member query.
  if (outcome->search.best.rewritings().size() != group_size) return false;
  const double persisted = outcome->search.stats.best_cost;
  const double live = model.StateCost(outcome->search.best);
  return std::abs(live - persisted) <= 1e-9 * (1.0 + std::abs(persisted));
}

}  // namespace rdfviews::vsel::pipeline
