// Conjunctive-query evaluation over the triple store.
//
// The evaluator runs index nested loops with (optionally) greedy
// most-selective-first atom ordering, binding variables left to right —
// the standard BGP evaluation strategy of native RDF engines.
#ifndef RDFVIEWS_ENGINE_EVALUATOR_H_
#define RDFVIEWS_ENGINE_EVALUATOR_H_

#include "cq/query.h"
#include "cq/ucq.h"
#include "engine/relation.h"
#include "rdf/triple_store.h"

namespace rdfviews::engine {

struct EvalOptions {
  /// Greedy ordering picks, at every step, the atom with the smallest
  /// matching count under the current bindings (RDF-3X-style); as-written
  /// ordering evaluates atoms in syntactic order (a pessimistic optimizer,
  /// used for the "plain triple table" baselines).
  enum class AtomOrder { kGreedy, kAsWritten };
  AtomOrder order = AtomOrder::kGreedy;
  /// Apply set semantics to the output.
  bool dedup = true;
};

/// Evaluates `q` over `store`. Output columns are the head terms in order;
/// constant head terms yield constant columns. Column names are the head
/// variable ids (constant positions get the name kAnyTerm-1 downward).
Relation EvaluateQuery(const cq::ConjunctiveQuery& q,
                       const rdf::TripleStore& store,
                       const EvalOptions& options = {});

/// Evaluates a union of queries; all disjuncts must share the head arity.
/// The result is de-duplicated (set semantics).
Relation EvaluateUnion(const cq::UnionOfQueries& ucq,
                       const rdf::TripleStore& store,
                       const EvalOptions& options = {});

/// Number of distinct answers of `q` on `store`.
uint64_t CountQueryAnswers(const cq::ConjunctiveQuery& q,
                           const rdf::TripleStore& store);

}  // namespace rdfviews::engine

#endif  // RDFVIEWS_ENGINE_EVALUATOR_H_
