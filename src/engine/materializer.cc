#include "engine/materializer.h"

#include "common/logging.h"

namespace rdfviews::engine {

Relation MaterializeView(const cq::ConjunctiveQuery& view,
                         const std::vector<cq::VarId>& columns,
                         const rdf::TripleStore& store,
                         const EvalOptions& options) {
  Relation rel = EvaluateQuery(view, store, options);
  RDFVIEWS_CHECK_MSG(rel.width() == columns.size(),
                     "view column count mismatch for " << view.name());
  rel.SetColumns(columns);
  return rel;
}

Relation MaterializeUnionView(const cq::UnionOfQueries& view,
                              const std::vector<cq::VarId>& columns,
                              const rdf::TripleStore& store,
                              const EvalOptions& options) {
  Relation rel = EvaluateUnion(view, store, options);
  RDFVIEWS_CHECK_MSG(rel.width() == columns.size(),
                     "union view column count mismatch for " << view.name());
  rel.SetColumns(columns);
  return rel;
}

}  // namespace rdfviews::engine
