// Materializes view definitions (CQs or UCQs) over the triple store.
#ifndef RDFVIEWS_ENGINE_MATERIALIZER_H_
#define RDFVIEWS_ENGINE_MATERIALIZER_H_

#include "cq/query.h"
#include "cq/ucq.h"
#include "engine/evaluator.h"
#include "engine/relation.h"

namespace rdfviews::engine {

/// Materializes a conjunctive view: evaluates its body and returns the
/// relation with the given column names (must match head arity).
Relation MaterializeView(const cq::ConjunctiveQuery& view,
                         const std::vector<cq::VarId>& columns,
                         const rdf::TripleStore& store,
                         const EvalOptions& options = {});

/// Materializes a union view (post-reformulation): the de-duplicated union
/// of its disjuncts' extents.
Relation MaterializeUnionView(const cq::UnionOfQueries& view,
                              const std::vector<cq::VarId>& columns,
                              const rdf::TripleStore& store,
                              const EvalOptions& options = {});

}  // namespace rdfviews::engine

#endif  // RDFVIEWS_ENGINE_MATERIALIZER_H_
