// Materialized relations: named columns of dictionary-encoded terms.
#ifndef RDFVIEWS_ENGINE_RELATION_H_
#define RDFVIEWS_ENGINE_RELATION_H_

#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "cq/term.h"
#include "rdf/term.h"

namespace rdfviews::engine {

/// A relation with columns named by query variable ids and rows of term
/// ids, stored row-major. Set semantics is enforced by DedupRows().
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<cq::VarId> columns)
      : columns_(std::move(columns)) {}

  const std::vector<cq::VarId>& columns() const { return columns_; }
  size_t width() const { return columns_.size(); }
  size_t NumRows() const {
    return columns_.empty() ? (data_.empty() ? 0 : 1)
                            : data_.size() / columns_.size();
  }

  /// Index of a column name, or -1.
  int ColumnIndex(cq::VarId v) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i] == v) return static_cast<int>(i);
    }
    return -1;
  }

  void AppendRow(std::span<const rdf::TermId> row) {
    RDFVIEWS_DCHECK(row.size() == width());
    data_.insert(data_.end(), row.begin(), row.end());
  }

  rdf::TermId At(size_t row, size_t col) const {
    return data_[row * width() + col];
  }

  std::span<const rdf::TermId> Row(size_t row) const {
    return std::span<const rdf::TermId>(data_.data() + row * width(),
                                        width());
  }

  void RenameColumn(size_t idx, cq::VarId name) { columns_[idx] = name; }
  void SetColumns(std::vector<cq::VarId> columns) {
    RDFVIEWS_CHECK(columns.size() == columns_.size() || data_.empty());
    columns_ = std::move(columns);
  }

  /// Removes duplicate rows (set semantics); row order is not preserved.
  void DedupRows();

  /// Sorts rows lexicographically; useful for order-insensitive comparison.
  void SortRows();

  /// True if both relations have the same width and the same set of rows
  /// (column names are ignored; comparison is positional).
  bool SameRowsAs(const Relation& other) const;

  size_t ByteSize() const { return data_.size() * sizeof(rdf::TermId); }

  std::string ToString() const;

 private:
  std::vector<cq::VarId> columns_;
  std::vector<rdf::TermId> data_;
};

}  // namespace rdfviews::engine

#endif  // RDFVIEWS_ENGINE_RELATION_H_
