#include "engine/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace rdfviews::engine {

namespace {

Relation ExecuteScan(const Expr& expr, const ViewResolver& views) {
  Relation rel = views(expr.view_id());
  RDFVIEWS_CHECK_MSG(rel.width() == expr.scan_columns().size(),
                     "scan width mismatch for view " << expr.view_id());
  rel.SetColumns(expr.scan_columns());
  return rel;
}

Relation ExecuteSelect(const Expr& expr, const ViewResolver& views) {
  Relation in = Execute(*expr.child(), views);
  Relation out(in.columns());
  // Pre-resolve column indexes.
  struct ResolvedCondition {
    int lhs;
    bool is_const;
    rdf::TermId value;
    int rhs;
  };
  std::vector<ResolvedCondition> conds;
  for (const Condition& c : expr.conditions()) {
    ResolvedCondition rc;
    rc.lhs = in.ColumnIndex(c.lhs);
    RDFVIEWS_CHECK_MSG(rc.lhs >= 0, "selection on missing column X" << c.lhs);
    rc.is_const = c.rhs_is_const;
    rc.value = c.const_rhs;
    rc.rhs = c.rhs_is_const ? -1 : in.ColumnIndex(c.var_rhs);
    if (!c.rhs_is_const) {
      RDFVIEWS_CHECK_MSG(rc.rhs >= 0,
                         "selection on missing column X" << c.var_rhs);
    }
    conds.push_back(rc);
  }
  for (size_t r = 0; r < in.NumRows(); ++r) {
    bool keep = true;
    for (const ResolvedCondition& c : conds) {
      rdf::TermId lhs = in.At(r, static_cast<size_t>(c.lhs));
      rdf::TermId rhs =
          c.is_const ? c.value : in.At(r, static_cast<size_t>(c.rhs));
      if (lhs != rhs) {
        keep = false;
        break;
      }
    }
    if (keep) out.AppendRow(in.Row(r));
  }
  return out;
}

Relation ExecuteProject(const Expr& expr, const ViewResolver& views) {
  Relation in = Execute(*expr.child(), views);
  Relation out(expr.project_columns());
  std::vector<int> idx;
  for (cq::VarId v : expr.project_columns()) {
    int i = in.ColumnIndex(v);
    RDFVIEWS_CHECK_MSG(i >= 0, "projection on missing column X" << v);
    idx.push_back(i);
  }
  std::vector<rdf::TermId> row(idx.size());
  for (size_t r = 0; r < in.NumRows(); ++r) {
    for (size_t c = 0; c < idx.size(); ++c) {
      row[c] = in.At(r, static_cast<size_t>(idx[c]));
    }
    out.AppendRow(row);
  }
  out.DedupRows();
  return out;
}

Relation ExecuteJoin(const Expr& expr, const ViewResolver& views) {
  Relation l = Execute(*expr.left(), views);
  Relation r = Execute(*expr.right(), views);

  // Join keys: natural (shared names) plus explicit pairs.
  std::vector<std::pair<int, int>> keys;
  for (size_t i = 0; i < l.columns().size(); ++i) {
    int j = r.ColumnIndex(l.columns()[i]);
    if (j >= 0) keys.emplace_back(static_cast<int>(i), j);
  }
  for (const auto& [lv, rv] : expr.join_pairs()) {
    int i = l.ColumnIndex(lv);
    int j = r.ColumnIndex(rv);
    RDFVIEWS_CHECK_MSG(i >= 0 && j >= 0, "join pair on missing columns");
    keys.emplace_back(i, j);
  }

  // Output schema: left columns then right columns that are not natural
  // duplicates of a left column.
  std::vector<cq::VarId> out_cols = l.columns();
  std::vector<int> right_keep;
  for (size_t j = 0; j < r.columns().size(); ++j) {
    if (l.ColumnIndex(r.columns()[j]) < 0) {
      right_keep.push_back(static_cast<int>(j));
      out_cols.push_back(r.columns()[j]);
    }
  }
  Relation out(out_cols);

  // Hash the right side on its key columns.
  std::unordered_map<std::vector<rdf::TermId>, std::vector<size_t>, VectorHash>
      hash;
  std::vector<rdf::TermId> key(keys.size());
  for (size_t rr = 0; rr < r.NumRows(); ++rr) {
    for (size_t k = 0; k < keys.size(); ++k) {
      key[k] = r.At(rr, static_cast<size_t>(keys[k].second));
    }
    hash[key].push_back(rr);
  }

  std::vector<rdf::TermId> row(out_cols.size());
  for (size_t lr = 0; lr < l.NumRows(); ++lr) {
    for (size_t k = 0; k < keys.size(); ++k) {
      key[k] = l.At(lr, static_cast<size_t>(keys[k].first));
    }
    auto it = hash.find(key);
    if (it == hash.end()) continue;
    for (size_t rr : it->second) {
      size_t c = 0;
      for (size_t i = 0; i < l.width(); ++i) row[c++] = l.At(lr, i);
      for (int j : right_keep) row[c++] = r.At(rr, static_cast<size_t>(j));
      out.AppendRow(row);
    }
  }
  return out;
}

Relation ExecuteRename(const Expr& expr, const ViewResolver& views) {
  Relation in = Execute(*expr.child(), views);
  std::vector<cq::VarId> cols = in.columns();
  for (cq::VarId& c : cols) {
    auto it = expr.rename_map().find(c);
    if (it != expr.rename_map().end()) c = it->second;
  }
  in.SetColumns(cols);
  return in;
}

Relation ExecuteUnion(const Expr& expr, const ViewResolver& views) {
  Relation out;
  bool first = true;
  for (const ExprPtr& c : expr.children()) {
    Relation part = Execute(*c, views);
    if (first) {
      out = std::move(part);
      first = false;
      continue;
    }
    RDFVIEWS_CHECK_MSG(part.width() == out.width(),
                       "union children with differing widths");
    for (size_t i = 0; i < part.NumRows(); ++i) out.AppendRow(part.Row(i));
  }
  out.DedupRows();
  return out;
}

Relation ExecuteArrange(const Expr& expr, const ViewResolver& views) {
  Relation in = Execute(*expr.child(), views);
  std::vector<cq::VarId> cols;
  std::vector<int> src(expr.arrange_spec().size(), -1);
  for (size_t i = 0; i < expr.arrange_spec().size(); ++i) {
    const ArrangeCol& a = expr.arrange_spec()[i];
    cols.push_back(a.output_name);
    if (!a.is_const) {
      src[i] = in.ColumnIndex(a.source);
      RDFVIEWS_CHECK_MSG(src[i] >= 0, "arrange on missing column X"
                                          << a.source);
    }
  }
  Relation out(cols);
  std::vector<rdf::TermId> row(cols.size());
  for (size_t r = 0; r < in.NumRows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      const ArrangeCol& a = expr.arrange_spec()[i];
      row[i] = a.is_const ? a.value : in.At(r, static_cast<size_t>(src[i]));
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace

Relation Execute(const Expr& expr, const ViewResolver& views) {
  switch (expr.kind()) {
    case Expr::Kind::kScan: return ExecuteScan(expr, views);
    case Expr::Kind::kSelect: return ExecuteSelect(expr, views);
    case Expr::Kind::kProject: return ExecuteProject(expr, views);
    case Expr::Kind::kJoin: return ExecuteJoin(expr, views);
    case Expr::Kind::kRename: return ExecuteRename(expr, views);
    case Expr::Kind::kUnion: return ExecuteUnion(expr, views);
    case Expr::Kind::kArrange: return ExecuteArrange(expr, views);
  }
  RDFVIEWS_CHECK_MSG(false, "unreachable");
  return Relation();
}

}  // namespace rdfviews::engine
