#include "engine/evaluator.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace rdfviews::engine {

namespace {

constexpr rdf::Column kColumns[3] = {rdf::Column::kS, rdf::Column::kP,
                                     rdf::Column::kO};

using Bindings = std::unordered_map<cq::VarId, rdf::TermId>;

rdf::Pattern BoundPattern(const cq::Atom& atom, const Bindings& bindings) {
  rdf::Pattern pat;
  rdf::TermId* fields[3] = {&pat.s, &pat.p, &pat.o};
  for (int i = 0; i < 3; ++i) {
    cq::Term t = atom.at(kColumns[i]);
    if (t.is_const()) {
      *fields[i] = t.constant();
    } else {
      auto it = bindings.find(t.var());
      if (it != bindings.end()) *fields[i] = it->second;
    }
  }
  return pat;
}

/// Extends bindings with the triple's values; false on mismatch (repeated
/// variables inside the atom).
bool BindTriple(const cq::Atom& atom, const rdf::Triple& triple,
                Bindings* bindings, std::vector<cq::VarId>* newly_bound) {
  rdf::TermId values[3] = {triple.s, triple.p, triple.o};
  for (int i = 0; i < 3; ++i) {
    cq::Term t = atom.at(kColumns[i]);
    if (t.is_const()) continue;
    auto [it, inserted] = bindings->emplace(t.var(), values[i]);
    if (inserted) {
      newly_bound->push_back(t.var());
    } else if (it->second != values[i]) {
      return false;
    }
  }
  return true;
}

struct Frame {
  const cq::ConjunctiveQuery* q;
  const rdf::TripleStore* store;
  const EvalOptions* options;
  Relation* out;
  Bindings bindings;
  std::vector<bool> done;

  void Emit() {
    std::vector<rdf::TermId> row;
    row.reserve(q->head().size());
    for (const cq::Term& t : q->head()) {
      if (t.is_const()) {
        row.push_back(t.constant());
      } else {
        auto it = bindings.find(t.var());
        RDFVIEWS_DCHECK(it != bindings.end());
        row.push_back(it->second);
      }
    }
    out->AppendRow(row);
  }

  void Recurse(size_t depth) {
    if (depth == q->atoms().size()) {
      Emit();
      return;
    }
    // Choose the next atom.
    size_t chosen = q->atoms().size();
    if (options->order == EvalOptions::AtomOrder::kAsWritten) {
      for (size_t i = 0; i < q->atoms().size(); ++i) {
        if (!done[i]) {
          chosen = i;
          break;
        }
      }
    } else {
      uint64_t best_count = 0;
      for (size_t i = 0; i < q->atoms().size(); ++i) {
        if (done[i]) continue;
        uint64_t count = store->Count(BoundPattern(q->atoms()[i], bindings));
        if (chosen == q->atoms().size() || count < best_count) {
          chosen = i;
          best_count = count;
        }
      }
    }
    RDFVIEWS_DCHECK(chosen < q->atoms().size());
    done[chosen] = true;
    const cq::Atom& atom = q->atoms()[chosen];
    store->Scan(BoundPattern(atom, bindings), [&](const rdf::Triple& t) {
      std::vector<cq::VarId> newly_bound;
      if (BindTriple(atom, t, &bindings, &newly_bound)) {
        Recurse(depth + 1);
      }
      for (cq::VarId v : newly_bound) bindings.erase(v);
      return true;
    });
    done[chosen] = false;
  }
};

std::vector<cq::VarId> HeadColumnNames(const cq::ConjunctiveQuery& q) {
  std::vector<cq::VarId> cols;
  cols.reserve(q.head().size());
  cq::VarId synthetic = rdf::kAnyTerm - 1;
  for (const cq::Term& t : q.head()) {
    cols.push_back(t.is_var() ? t.var() : synthetic--);
  }
  return cols;
}

}  // namespace

Relation EvaluateQuery(const cq::ConjunctiveQuery& q,
                       const rdf::TripleStore& store,
                       const EvalOptions& options) {
  Relation out(HeadColumnNames(q));
  Frame frame{&q, &store, &options, &out, {}, std::vector<bool>(q.len(), false)};
  frame.Recurse(0);
  if (options.dedup) out.DedupRows();
  return out;
}

Relation EvaluateUnion(const cq::UnionOfQueries& ucq,
                       const rdf::TripleStore& store,
                       const EvalOptions& options) {
  Relation out;
  bool first = true;
  for (const cq::ConjunctiveQuery& q : ucq.disjuncts()) {
    Relation part = EvaluateQuery(q, store, options);
    if (first) {
      out = std::move(part);
      first = false;
      continue;
    }
    RDFVIEWS_CHECK_MSG(part.width() == out.width(),
                       "UCQ disjuncts with differing arity");
    for (size_t i = 0; i < part.NumRows(); ++i) out.AppendRow(part.Row(i));
  }
  out.DedupRows();
  return out;
}

uint64_t CountQueryAnswers(const cq::ConjunctiveQuery& q,
                           const rdf::TripleStore& store) {
  return EvaluateQuery(q, store).NumRows();
}

}  // namespace rdfviews::engine
