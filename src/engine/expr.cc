#include "engine/expr.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace rdfviews::engine {

namespace {

uint64_t MaskOfChildren(const std::vector<ExprPtr>& children) {
  uint64_t mask = 0;
  for (const ExprPtr& c : children) mask |= c->scan_mask();
  return mask;
}

}  // namespace

ExprPtr Expr::Scan(uint32_t view_id, std::vector<cq::VarId> columns) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kScan));
  e->view_id_ = view_id;
  e->scan_mask_ = ScanMaskBit(view_id);
  e->columns_ = std::move(columns);
  return e;
}

ExprPtr Expr::Select(ExprPtr child, std::vector<Condition> conditions) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kSelect));
  e->scan_mask_ = child->scan_mask();
  e->children_.push_back(std::move(child));
  e->conditions_ = std::move(conditions);
  return e;
}

ExprPtr Expr::Project(ExprPtr child, std::vector<cq::VarId> columns) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kProject));
  e->scan_mask_ = child->scan_mask();
  e->children_.push_back(std::move(child));
  e->columns_ = std::move(columns);
  return e;
}

ExprPtr Expr::Join(ExprPtr left, ExprPtr right,
                   std::vector<std::pair<cq::VarId, cq::VarId>> pairs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kJoin));
  e->scan_mask_ = left->scan_mask() | right->scan_mask();
  e->children_.push_back(std::move(left));
  e->children_.push_back(std::move(right));
  e->join_pairs_ = std::move(pairs);
  return e;
}

ExprPtr Expr::Rename(ExprPtr child,
                     std::unordered_map<cq::VarId, cq::VarId> mapping) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kRename));
  e->scan_mask_ = child->scan_mask();
  e->children_.push_back(std::move(child));
  e->rename_ = std::move(mapping);
  return e;
}

ExprPtr Expr::Union(std::vector<ExprPtr> children) {
  RDFVIEWS_CHECK(!children.empty());
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kUnion));
  e->scan_mask_ = MaskOfChildren(children);
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Arrange(ExprPtr child, std::vector<ArrangeCol> spec) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kArrange));
  e->scan_mask_ = child->scan_mask();
  e->children_.push_back(std::move(child));
  e->arrange_ = std::move(spec);
  return e;
}

std::vector<cq::VarId> Expr::OutputColumns() const {
  switch (kind_) {
    case Kind::kScan:
    case Kind::kProject:
      return columns_;
    case Kind::kSelect:
      return child()->OutputColumns();
    case Kind::kRename: {
      std::vector<cq::VarId> cols = child()->OutputColumns();
      for (cq::VarId& c : cols) {
        auto it = rename_.find(c);
        if (it != rename_.end()) c = it->second;
      }
      return cols;
    }
    case Kind::kJoin: {
      std::vector<cq::VarId> cols = left()->OutputColumns();
      std::vector<cq::VarId> right_cols = right()->OutputColumns();
      for (cq::VarId c : right_cols) {
        if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
          cols.push_back(c);
        }
      }
      return cols;
    }
    case Kind::kUnion:
      return children_[0]->OutputColumns();
    case Kind::kArrange: {
      std::vector<cq::VarId> cols;
      cols.reserve(arrange_.size());
      for (const ArrangeCol& a : arrange_) cols.push_back(a.output_name);
      return cols;
    }
  }
  return {};
}

void Expr::ForEachScan(const std::function<void(const Expr&)>& fn) const {
  if (kind_ == Kind::kScan) {
    fn(*this);
    return;
  }
  for (const ExprPtr& c : children_) c->ForEachScan(fn);
}

ExprPtr Expr::ReplaceScans(
    const ExprPtr& root, uint32_t view_id,
    const std::function<ExprPtr(const Expr& scan)>& replacement) {
  // Bloom short-circuit: the subtree provably scans no such view.
  if ((root->scan_mask_ & ScanMaskBit(view_id)) == 0) return root;
  if (root->kind_ == Kind::kScan) {
    if (root->view_id_ == view_id) return replacement(*root);
    return root;
  }
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(root->children_.size());
  for (const ExprPtr& c : root->children_) {
    ExprPtr nc = ReplaceScans(c, view_id, replacement);
    changed = changed || nc != c;
    new_children.push_back(std::move(nc));
  }
  if (!changed) return root;
  auto e = std::shared_ptr<Expr>(new Expr(root->kind_));
  e->view_id_ = root->view_id_;
  e->scan_mask_ = MaskOfChildren(new_children);
  e->columns_ = root->columns_;
  e->children_ = std::move(new_children);
  e->conditions_ = root->conditions_;
  e->join_pairs_ = root->join_pairs_;
  e->rename_ = root->rename_;
  e->arrange_ = root->arrange_;
  return e;
}

ExprPtr Expr::Remap(const ExprPtr& root,
                    const std::function<uint32_t(uint32_t)>& view_id,
                    const std::function<cq::VarId(cq::VarId)>& var) {
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(root->children_.size());
  for (const ExprPtr& c : root->children_) {
    ExprPtr nc = Remap(c, view_id, var);
    changed = changed || nc != c;
    new_children.push_back(std::move(nc));
  }
  uint32_t new_view_id = root->view_id_;
  if (root->kind_ == Kind::kScan) {
    new_view_id = view_id(root->view_id_);
    changed = changed || new_view_id != root->view_id_;
  }
  std::vector<cq::VarId> new_columns = root->columns_;
  for (cq::VarId& c : new_columns) {
    cq::VarId mapped = var(c);
    changed = changed || mapped != c;
    c = mapped;
  }
  std::vector<Condition> new_conditions = root->conditions_;
  for (Condition& c : new_conditions) {
    cq::VarId lhs = var(c.lhs);
    changed = changed || lhs != c.lhs;
    c.lhs = lhs;
    if (!c.rhs_is_const) {
      cq::VarId rhs = var(c.var_rhs);
      changed = changed || rhs != c.var_rhs;
      c.var_rhs = rhs;
    }
  }
  std::vector<std::pair<cq::VarId, cq::VarId>> new_pairs = root->join_pairs_;
  for (auto& [a, b] : new_pairs) {
    cq::VarId ma = var(a);
    cq::VarId mb = var(b);
    changed = changed || ma != a || mb != b;
    a = ma;
    b = mb;
  }
  std::unordered_map<cq::VarId, cq::VarId> new_rename;
  for (const auto& [from, to] : root->rename_) {
    cq::VarId mf = var(from);
    cq::VarId mt = var(to);
    changed = changed || mf != from || mt != to;
    new_rename.emplace(mf, mt);
  }
  std::vector<ArrangeCol> new_arrange = root->arrange_;
  for (ArrangeCol& a : new_arrange) {
    cq::VarId out = var(a.output_name);
    changed = changed || out != a.output_name;
    a.output_name = out;
    if (!a.is_const) {
      cq::VarId src = var(a.source);
      changed = changed || src != a.source;
      a.source = src;
    }
  }
  if (!changed) return root;
  auto e = std::shared_ptr<Expr>(new Expr(root->kind_));
  e->view_id_ = new_view_id;
  e->scan_mask_ = root->kind_ == Kind::kScan ? ScanMaskBit(new_view_id)
                                             : MaskOfChildren(new_children);
  e->columns_ = std::move(new_columns);
  e->children_ = std::move(new_children);
  e->conditions_ = std::move(new_conditions);
  e->join_pairs_ = std::move(new_pairs);
  e->rename_ = std::move(new_rename);
  e->arrange_ = std::move(new_arrange);
  return e;
}

std::string Expr::ToString(const std::function<std::string(uint32_t)>& name,
                           const rdf::Dictionary* dict) const {
  auto var = [](cq::VarId v) { return "X" + std::to_string(v); };
  auto constant = [&](rdf::TermId c) {
    if (dict != nullptr && c < dict->size()) return dict->Lexical(c);
    return "#" + std::to_string(c);
  };
  std::ostringstream out;
  switch (kind_) {
    case Kind::kScan:
      out << (name ? name(view_id_) : "v" + std::to_string(view_id_));
      break;
    case Kind::kSelect: {
      out << "σ[";
      for (size_t i = 0; i < conditions_.size(); ++i) {
        if (i > 0) out << " ∧ ";
        const Condition& c = conditions_[i];
        out << var(c.lhs) << "=";
        if (c.rhs_is_const) {
          out << constant(c.const_rhs);
        } else {
          out << var(c.var_rhs);
        }
      }
      out << "](" << child()->ToString(name, dict) << ")";
      break;
    }
    case Kind::kProject: {
      out << "π[";
      for (size_t i = 0; i < columns_.size(); ++i) {
        if (i > 0) out << ",";
        out << var(columns_[i]);
      }
      out << "](" << child()->ToString(name, dict) << ")";
      break;
    }
    case Kind::kJoin: {
      out << "(" << left()->ToString(name, dict) << " ⋈";
      if (!join_pairs_.empty()) {
        out << "[";
        for (size_t i = 0; i < join_pairs_.size(); ++i) {
          if (i > 0) out << ",";
          out << var(join_pairs_[i].first) << "=" << var(join_pairs_[i].second);
        }
        out << "]";
      }
      out << " " << right()->ToString(name, dict) << ")";
      break;
    }
    case Kind::kRename: {
      // Sorted, not hash order: equal rename maps must render identically
      // (tests and serialization round-trips compare the rendering).
      std::vector<std::pair<cq::VarId, cq::VarId>> entries(rename_.begin(),
                                                           rename_.end());
      std::sort(entries.begin(), entries.end());
      out << "ρ[";
      bool first = true;
      for (const auto& [from, to] : entries) {
        if (!first) out << ",";
        first = false;
        out << var(from) << "→" << var(to);
      }
      out << "](" << child()->ToString(name, dict) << ")";
      break;
    }
    case Kind::kUnion: {
      out << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << " ∪ ";
        out << children_[i]->ToString(name, dict);
      }
      out << ")";
      break;
    }
    case Kind::kArrange: {
      out << "α[";
      for (size_t i = 0; i < arrange_.size(); ++i) {
        if (i > 0) out << ",";
        if (arrange_[i].is_const) {
          out << constant(arrange_[i].value);
        } else {
          out << var(arrange_[i].source);
        }
      }
      out << "](" << child()->ToString(name, dict) << ")";
      break;
    }
  }
  return out.str();
}

}  // namespace rdfviews::engine
