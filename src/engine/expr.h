// Relational-algebra expressions over view relations: the language of the
// paper's rewritings, e.g.
//   q1 = pi_head(v1)( sigma_{n1.o=starryNight}(v4) |><| v3 ).
//
// Column names are query variable ids (cq::VarId), so the natural joins
// produced by View Break join on shared variable *names*, exactly as in the
// paper's relational-algebra notation. Trees are immutable and shared.
#ifndef RDFVIEWS_ENGINE_EXPR_H_
#define RDFVIEWS_ENGINE_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cq/term.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfviews::engine {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An equality condition of a selection: column == constant (selection cut)
/// or column == column (un-split join cut).
struct Condition {
  cq::VarId lhs = 0;
  bool rhs_is_const = true;
  rdf::TermId const_rhs = 0;
  cq::VarId var_rhs = 0;

  static Condition Eq(cq::VarId lhs, rdf::TermId value) {
    return Condition{lhs, true, value, 0};
  }
  static Condition EqVar(cq::VarId lhs, cq::VarId rhs) {
    return Condition{lhs, false, 0, rhs};
  }
};

/// One output column of an Arrange node: a source column or a constant.
struct ArrangeCol {
  bool is_const = false;
  cq::VarId source = 0;     // when !is_const
  rdf::TermId value = 0;    // when is_const
  cq::VarId output_name = 0;
};

class Expr {
 public:
  enum class Kind {
    kScan,     // view scan; output columns = the view's column names
    kSelect,   // conditions over child
    kProject,  // ordered subset of child columns (+ set-semantics dedup)
    kJoin,     // natural join on shared names + explicit variable pairs
    kRename,   // renames child columns
    kUnion,    // positional union of children (set semantics)
    kArrange,  // reorders / extends child columns with constants
  };

  Kind kind() const { return kind_; }

  // ---- Constructors ----
  static ExprPtr Scan(uint32_t view_id, std::vector<cq::VarId> columns);
  static ExprPtr Select(ExprPtr child, std::vector<Condition> conditions);
  static ExprPtr Project(ExprPtr child, std::vector<cq::VarId> columns);
  static ExprPtr Join(ExprPtr left, ExprPtr right,
                      std::vector<std::pair<cq::VarId, cq::VarId>> pairs);
  static ExprPtr Rename(ExprPtr child,
                        std::unordered_map<cq::VarId, cq::VarId> mapping);
  static ExprPtr Union(std::vector<ExprPtr> children);
  static ExprPtr Arrange(ExprPtr child, std::vector<ArrangeCol> spec);

  // ---- Accessors (valid per kind) ----
  uint32_t view_id() const { return view_id_; }
  const std::vector<cq::VarId>& scan_columns() const { return columns_; }
  const ExprPtr& child() const { return children_[0]; }
  const ExprPtr& left() const { return children_[0]; }
  const ExprPtr& right() const { return children_[1]; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const std::vector<Condition>& conditions() const { return conditions_; }
  const std::vector<cq::VarId>& project_columns() const { return columns_; }
  const std::vector<std::pair<cq::VarId, cq::VarId>>& join_pairs() const {
    return join_pairs_;
  }
  const std::unordered_map<cq::VarId, cq::VarId>& rename_map() const {
    return rename_;
  }
  const std::vector<ArrangeCol>& arrange_spec() const { return arrange_; }

  /// Output column names, in order.
  std::vector<cq::VarId> OutputColumns() const;

  /// Calls `fn` on every Scan node in the tree.
  void ForEachScan(const std::function<void(const Expr&)>& fn) const;

  /// 64-bit Bloom filter over the view ids scanned anywhere in this tree
  /// (bit view_id % 64), maintained by every constructor. A clear bit
  /// proves the tree does not scan the view; a set bit is only a maybe.
  /// ReplaceScans uses it to skip whole subtrees without walking them.
  uint64_t scan_mask() const { return scan_mask_; }
  static uint64_t ScanMaskBit(uint32_t view_id) {
    return 1ull << (view_id & 63u);
  }

  /// Returns a copy of the tree where every Scan of `view_id` is replaced by
  /// `replacement(scan)`. Shared subtrees without matches are reused.
  static ExprPtr ReplaceScans(
      const ExprPtr& root, uint32_t view_id,
      const std::function<ExprPtr(const Expr& scan)>& replacement);

  /// Returns a copy of the tree with every view id mapped through `view_id`
  /// and every column name (scan/project columns, condition operands, join
  /// pairs, rename endpoints, arrange sources and outputs) mapped through
  /// `var`. The recommendation pipeline uses this to re-base per-partition
  /// rewritings into the merged state's id spaces. Identity maps return the
  /// shared input tree unchanged.
  static ExprPtr Remap(const ExprPtr& root,
                       const std::function<uint32_t(uint32_t)>& view_id,
                       const std::function<cq::VarId(cq::VarId)>& var);

  /// Pretty-prints the tree. `view_name` maps view ids to display names;
  /// `dict` renders constants.
  std::string ToString(
      const std::function<std::string(uint32_t)>& view_name = {},
      const rdf::Dictionary* dict = nullptr) const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  uint32_t view_id_ = 0;
  uint64_t scan_mask_ = 0;
  std::vector<cq::VarId> columns_;  // scan or project columns
  std::vector<ExprPtr> children_;
  std::vector<Condition> conditions_;
  std::vector<std::pair<cq::VarId, cq::VarId>> join_pairs_;
  std::unordered_map<cq::VarId, cq::VarId> rename_;
  std::vector<ArrangeCol> arrange_;
};

}  // namespace rdfviews::engine

#endif  // RDFVIEWS_ENGINE_EXPR_H_
