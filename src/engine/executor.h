// Executes rewriting expressions over materialized view relations.
#ifndef RDFVIEWS_ENGINE_EXECUTOR_H_
#define RDFVIEWS_ENGINE_EXECUTOR_H_

#include <functional>

#include "engine/expr.h"
#include "engine/relation.h"

namespace rdfviews::engine {

/// Resolves a view id to its materialized relation.
using ViewResolver = std::function<const Relation&(uint32_t view_id)>;

/// Evaluates the expression bottom-up: hash joins for kJoin, filters for
/// kSelect, set-semantics de-duplication at kProject / kUnion roots.
Relation Execute(const Expr& expr, const ViewResolver& views);

}  // namespace rdfviews::engine

#endif  // RDFVIEWS_ENGINE_EXECUTOR_H_
