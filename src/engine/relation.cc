#include "engine/relation.h"

#include <algorithm>
#include <sstream>

namespace rdfviews::engine {

namespace {

/// Sorts row indices lexicographically by row content.
std::vector<size_t> SortedRowIndices(const Relation& r) {
  std::vector<size_t> idx(r.NumRows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    auto ra = r.Row(a);
    auto rb = r.Row(b);
    return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(),
                                        rb.end());
  });
  return idx;
}

}  // namespace

void Relation::DedupRows() {
  if (width() == 0) {
    // 0-ary relation: at most one (empty) row; nothing to do.
    return;
  }
  SortRows();
  size_t n = NumRows();
  size_t w = width();
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && std::equal(data_.begin() + static_cast<long>(i * w),
                            data_.begin() + static_cast<long>((i + 1) * w),
                            data_.begin() + static_cast<long>((out - 1) * w))) {
      continue;
    }
    if (out != i) {
      std::copy(data_.begin() + static_cast<long>(i * w),
                data_.begin() + static_cast<long>((i + 1) * w),
                data_.begin() + static_cast<long>(out * w));
    }
    ++out;
  }
  data_.resize(out * w);
}

void Relation::SortRows() {
  if (width() == 0 || NumRows() <= 1) return;
  std::vector<size_t> idx = SortedRowIndices(*this);
  std::vector<rdf::TermId> sorted;
  sorted.reserve(data_.size());
  for (size_t i : idx) {
    auto row = Row(i);
    sorted.insert(sorted.end(), row.begin(), row.end());
  }
  data_ = std::move(sorted);
}

bool Relation::SameRowsAs(const Relation& other) const {
  if (width() != other.width()) return false;
  Relation a = *this;
  Relation b = other;
  a.DedupRows();
  b.DedupRows();
  if (a.NumRows() != b.NumRows()) return false;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    auto ra = a.Row(i);
    auto rb = b.Row(i);
    if (!std::equal(ra.begin(), ra.end(), rb.begin())) return false;
  }
  return true;
}

std::string Relation::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "X" << columns_[i];
  }
  out << "] " << NumRows() << " rows";
  return out.str();
}

}  // namespace rdfviews::engine
