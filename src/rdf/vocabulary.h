// Well-known RDF / RDFS vocabulary, pre-interned in every Dictionary.
#ifndef RDFVIEWS_RDF_VOCABULARY_H_
#define RDFVIEWS_RDF_VOCABULARY_H_

#include <string_view>

#include "rdf/term.h"

namespace rdfviews::rdf {

// Compact lexical forms used throughout the library. The N-Triples loader
// maps the full W3C URIs onto these.
inline constexpr std::string_view kRdfTypeName = "rdf:type";
inline constexpr std::string_view kRdfsSubClassOfName = "rdfs:subClassOf";
inline constexpr std::string_view kRdfsSubPropertyOfName =
    "rdfs:subPropertyOf";
inline constexpr std::string_view kRdfsDomainName = "rdfs:domain";
inline constexpr std::string_view kRdfsRangeName = "rdfs:range";
inline constexpr std::string_view kRdfsClassName = "rdfs:Class";
inline constexpr std::string_view kRdfPropertyName = "rdf:Property";
inline constexpr std::string_view kRdfsResourceName = "rdfs:Resource";

// Stable TermIds assigned by Dictionary's constructor, in this order.
inline constexpr TermId kRdfType = 0;
inline constexpr TermId kRdfsSubClassOf = 1;
inline constexpr TermId kRdfsSubPropertyOf = 2;
inline constexpr TermId kRdfsDomain = 3;
inline constexpr TermId kRdfsRange = 4;
inline constexpr TermId kRdfsClass = 5;
inline constexpr TermId kRdfProperty = 6;
inline constexpr TermId kRdfsResource = 7;
inline constexpr TermId kFirstUserTerm = 8;

/// Maps a full W3C URI to its compact form, or returns the input unchanged.
/// Recognizes the rdf: and rdfs: namespaces for the terms above.
std::string_view NormalizeWellKnownUri(std::string_view uri);

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_VOCABULARY_H_
