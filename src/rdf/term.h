// Dictionary-encoded RDF terms.
#ifndef RDFVIEWS_RDF_TERM_H_
#define RDFVIEWS_RDF_TERM_H_

#include <cstdint>

namespace rdfviews::rdf {

/// Dictionary-encoded identifier of an RDF term (URI, literal or blank node).
using TermId = uint32_t;

/// Wildcard / "no term" sentinel used in patterns.
inline constexpr TermId kAnyTerm = 0xFFFFFFFFu;

/// Lexical category of a term. Blank nodes act as existential constants:
/// unlike relational NULLs they join with each other (Sec. 2 of the paper).
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// Triple-table column, in subject/property/object order.
enum class Column : uint8_t { kS = 0, kP = 1, kO = 2 };

inline constexpr int kNumColumns = 3;

inline const char* ColumnName(Column c) {
  switch (c) {
    case Column::kS: return "s";
    case Column::kP: return "p";
    case Column::kO: return "o";
  }
  return "?";
}

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_TERM_H_
