// Workload-driven cardinality statistics (Section 3.3 of the paper).
//
// The paper counts, exactly, the triples matching each query atom and each
// relaxation of it obtained by dropping constants; 1-atom views with 1 or 2
// constants therefore have exact cardinalities. We additionally expose
// store-wide per-column distinct counts, min/max and average widths, which
// the cost model combines with the textbook uniformity/independence
// assumptions.
#ifndef RDFVIEWS_RDF_STATISTICS_H_
#define RDFVIEWS_RDF_STATISTICS_H_

#include <unordered_map>

#include "rdf/triple_store.h"

namespace rdfviews::rdf {

/// Base statistics provider, measuring the store it is given. Subclasses
/// may override CountPatternUncached to reflect implicit triples without
/// saturating the database (see reform::ReformulatedStatistics).
class Statistics {
 public:
  explicit Statistics(const TripleStore* store) : store_(store) {}
  virtual ~Statistics() = default;

  /// Exact count of triples matching the pattern, cached.
  uint64_t CountPattern(const Pattern& pattern) const;

  /// Total triples in the (virtual) measured database.
  virtual uint64_t TotalTriples() const { return store_->size(); }

  virtual uint64_t DistinctValues(Column col) const {
    return store_->column_stats(col).distinct;
  }

  double AvgWidth(Column col) const {
    return store_->column_stats(col).avg_width;
  }

  const TripleStore& store() const { return *store_; }

  /// Pre-populates the cache with the counts for `pattern` and all its
  /// relaxations (constants dropped in every combination), as the paper's
  /// statistics-gathering phase does for every workload atom.
  void CollectWithRelaxations(const Pattern& pattern) const;

  size_t cache_size() const { return cache_.size(); }

 protected:
  virtual uint64_t CountPatternUncached(const Pattern& pattern) const;

 private:
  const TripleStore* store_;
  mutable std::unordered_map<Pattern, uint64_t, PatternHash> cache_;
};

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_STATISTICS_H_
