// Workload-driven cardinality statistics (Section 3.3 of the paper).
//
// The paper counts, exactly, the triples matching each query atom and each
// relaxation of it obtained by dropping constants; 1-atom views with 1 or 2
// constants therefore have exact cardinalities. We additionally expose
// store-wide per-column distinct counts, min/max and average widths, which
// the cost model combines with the textbook uniformity/independence
// assumptions.
//
// Thread safety: CountPattern's lazy cache is guarded by a shared mutex, so
// one Statistics instance may serve any number of search workers. A count
// miss runs the (deterministic) uncached counter outside the lock; racing
// workers may both count the same pattern, but the first insert wins and
// every reader sees one consistent value. To avoid even that warm-up race,
// Precompute() fills the cache up front — every view the search can create
// only relaxes workload atoms (SC replaces constants by variables; VB/JC/VF
// reshuffle atoms), so precomputing the workload atoms' relaxations makes
// the cache effectively read-only for the whole run. Snapshot() captures
// the warm cache as a copyable value that Warm() replays into another
// instance over the same store, so repeated tuning runs skip the scans.
#ifndef RDFVIEWS_RDF_STATISTICS_H_
#define RDFVIEWS_RDF_STATISTICS_H_

#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace rdfviews::rdf {

/// A copyable capture of a warm pattern-count cache (see
/// Statistics::Snapshot). Counts are only meaningful for the store (and
/// entailment mode) they were measured on.
struct StatisticsSnapshot {
  std::unordered_map<Pattern, uint64_t, PatternHash> counts;

  size_t size() const { return counts.size(); }
};

/// Identity tag of a store for snapshot persistence: a hash of the triple
/// count and the per-column distinct / min / max / width statistics. Two
/// deterministically regenerated stores (same generator, same seed, same
/// dictionary interning order) produce the same tag; a drifted store is
/// rejected at load time rather than silently trusted.
uint64_t SnapshotStoreTag(const TripleStore& store);

/// Persists a snapshot to a small binary file (magic, version, store tag,
/// entry count, then (s, p, o, count) quadruples), so repeated tuning runs
/// and future distributed workers skip the warm-up scans entirely.
Status SaveSnapshot(const StatisticsSnapshot& snapshot,
                    const std::string& path, uint64_t store_tag);

/// Loads a snapshot written by SaveSnapshot. Fails with NotFound when the
/// file does not exist, ParseError on a malformed file, and
/// InvalidArgument when the stored tag does not match `store_tag`.
Result<StatisticsSnapshot> LoadSnapshot(const std::string& path,
                                        uint64_t store_tag);

/// Base statistics provider, measuring the store it is given. Subclasses
/// may override CountPatternUncached to reflect implicit triples without
/// saturating the database (see reform::ReformulatedStatistics).
class Statistics {
 public:
  explicit Statistics(const TripleStore* store) : store_(store) {}
  virtual ~Statistics() = default;

  /// Exact count of triples matching the pattern, cached. Thread-safe.
  uint64_t CountPattern(const Pattern& pattern) const;

  /// Total triples in the (virtual) measured database.
  virtual uint64_t TotalTriples() const { return store_->size(); }

  virtual uint64_t DistinctValues(Column col) const {
    return store_->column_stats(col).distinct;
  }

  virtual double AvgWidth(Column col) const {
    return store_->column_stats(col).avg_width;
  }

  const TripleStore& store() const { return *store_; }

  /// Pre-populates the cache with the counts for `pattern` and all its
  /// relaxations (constants dropped in every combination), as the paper's
  /// statistics-gathering phase does for every workload atom.
  void CollectWithRelaxations(const Pattern& pattern) const;

  /// Batch warm-up: CollectWithRelaxations for every pattern. After this,
  /// a search whose initial state's atoms are drawn from `patterns` never
  /// misses the cache, so parallel workers share warm counts instead of
  /// racing on the lazy fill.
  void Precompute(const std::vector<Pattern>& patterns) const;

  /// Captures the current cache contents as a copyable value.
  StatisticsSnapshot Snapshot() const;

  /// Replays a snapshot into this instance's cache (entries already present
  /// are kept). The snapshot must come from the same store and entailment
  /// mode; counts are trusted, not re-verified.
  void Warm(const StatisticsSnapshot& snapshot) const;

  size_t cache_size() const;

 protected:
  virtual uint64_t CountPatternUncached(const Pattern& pattern) const;

 private:
  const TripleStore* store_;
  mutable std::shared_mutex cache_mu_;
  mutable std::unordered_map<Pattern, uint64_t, PatternHash> cache_;
};

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_STATISTICS_H_
