#include "rdf/triple_store.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace rdfviews::rdf {

namespace {

struct PosLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};

struct OspLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

ColumnStats ComputeColumnStats(const std::vector<Triple>& triples, Column col,
                               const Dictionary* dict) {
  ColumnStats cs;
  if (triples.empty()) return cs;
  std::vector<TermId> values;
  values.reserve(triples.size());
  for (const Triple& t : triples) values.push_back(t.at(col));
  std::sort(values.begin(), values.end());
  cs.min = values.front();
  cs.max = values.back();
  uint64_t distinct = 0;
  size_t width_total = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0 || values[i] != values[i - 1]) ++distinct;
    if (dict != nullptr) width_total += dict->Lexical(values[i]).size();
  }
  cs.distinct = distinct;
  cs.avg_width = dict != nullptr
                     ? static_cast<double>(width_total) /
                           static_cast<double>(values.size())
                     : 8.0;
  return cs;
}

}  // namespace

void TripleStore::Build(const Dictionary* dict) {
  std::sort(spo_.begin(), spo_.end());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess());
  stats_[0] = ComputeColumnStats(spo_, Column::kS, dict);
  stats_[1] = ComputeColumnStats(spo_, Column::kP, dict);
  stats_[2] = ComputeColumnStats(spo_, Column::kO, dict);
  built_ = true;
}

std::span<const Triple> TripleStore::Range(const Pattern& q) const {
  RDFVIEWS_CHECK_MSG(built_, "TripleStore::Build() must be called first");
  const bool bs = q.s != kAnyTerm;
  const bool bp = q.p != kAnyTerm;
  const bool bo = q.o != kAnyTerm;

  auto make_span = [](auto first, auto last) {
    return std::span<const Triple>(&*first, static_cast<size_t>(last - first));
  };

  if (!bs && !bp && !bo) return std::span<const Triple>(spo_);

  if (bs && !bo) {
    // (s,?,?) and (s,p,?) and (s,p,o) via SPO.
    Triple lo{q.s, bp ? q.p : 0, bo ? q.o : 0};
    Triple hi{q.s, bp ? q.p : kAnyTerm, bo ? q.o : kAnyTerm};
    auto first = std::lower_bound(spo_.begin(), spo_.end(), lo);
    auto last = std::upper_bound(spo_.begin(), spo_.end(), hi);
    if (first == last) return {};
    return make_span(first, last);
  }
  if (bp && !bs) {
    // (?,p,?) and (?,p,o) via POS.
    Triple lo{0, q.p, bo ? q.o : 0};
    Triple hi{kAnyTerm, q.p, bo ? q.o : kAnyTerm};
    auto first = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess());
    auto last = std::upper_bound(pos_.begin(), pos_.end(), hi, PosLess());
    if (first == last) return {};
    return make_span(first, last);
  }
  if (bo) {
    // (?,?,o), (s,?,o) and (s,p,o) via OSP.
    Triple lo{bs ? q.s : 0, bp ? q.p : 0, q.o};
    Triple hi{bs ? q.s : kAnyTerm, bp ? q.p : kAnyTerm, q.o};
    auto first = std::lower_bound(osp_.begin(), osp_.end(), lo, OspLess());
    auto last = std::upper_bound(osp_.begin(), osp_.end(), hi, OspLess());
    if (first == last) return {};
    return make_span(first, last);
  }
  return std::span<const Triple>(spo_);
}

uint64_t TripleStore::Count(const Pattern& q) const {
  // Range() is exact for every mask except (s,?,o) handled via OSP where the
  // middle position bound makes the range exact as well; all masks are exact.
  std::span<const Triple> range = Range(q);
  const bool exact = [&] {
    const bool bs = q.s != kAnyTerm;
    const bool bp = q.p != kAnyTerm;
    const bool bo = q.o != kAnyTerm;
    // Ranges are computed on a prefix of the sort order; masks that bind a
    // non-prefix subset (e.g. (s,?,o) in SPO) were routed to an order where
    // they *are* a prefix, except the fully-bound case which is exact too.
    if (bs && bp && !bo) return true;   // SPO prefix (s,p)
    if (bs && !bp && !bo) return true;  // SPO prefix (s)
    if (!bs && bp) return true;         // POS prefix (p) or (p,o)
    if (bo && !bp) return true;         // OSP prefix (o) or (o,s)
    if (bs && bp && bo) return true;    // point lookup
    if (!bs && !bp && !bo) return true;
    return false;
  }();
  if (exact) return range.size();
  uint64_t n = 0;
  for (const Triple& t : range) {
    if (q.Matches(t)) ++n;
  }
  return n;
}

void TripleStore::Scan(const Pattern& q,
                       const std::function<bool(const Triple&)>& fn) const {
  std::span<const Triple> range = Range(q);
  for (const Triple& t : range) {
    if (!q.Matches(t)) continue;
    if (!fn(t)) return;
  }
}

bool TripleStore::Contains(const Triple& t) const {
  RDFVIEWS_CHECK(built_);
  return std::binary_search(spo_.begin(), spo_.end(), t);
}

TripleStore TripleStore::UnionWith(const std::vector<Triple>& extra,
                                   const Dictionary* dict) const {
  TripleStore out;
  for (const Triple& t : spo_) out.Add(t);
  for (const Triple& t : extra) out.Add(t);
  out.Build(dict);
  return out;
}

}  // namespace rdfviews::rdf
