#include "rdf/vocabulary.h"

#include <array>
#include <string_view>
#include <utility>

namespace rdfviews::rdf {

namespace {
constexpr std::string_view kRdfNs =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
constexpr std::string_view kRdfsNs = "http://www.w3.org/2000/01/rdf-schema#";

constexpr std::array<std::pair<std::string_view, std::string_view>, 8>
    kMappings = {{
        {"type", kRdfTypeName},
        {"Property", kRdfPropertyName},
        {"subClassOf", kRdfsSubClassOfName},
        {"subPropertyOf", kRdfsSubPropertyOfName},
        {"domain", kRdfsDomainName},
        {"range", kRdfsRangeName},
        {"Class", kRdfsClassName},
        {"Resource", kRdfsResourceName},
    }};
}  // namespace

std::string_view NormalizeWellKnownUri(std::string_view uri) {
  std::string_view local;
  if (uri.substr(0, kRdfNs.size()) == kRdfNs) {
    local = uri.substr(kRdfNs.size());
  } else if (uri.substr(0, kRdfsNs.size()) == kRdfsNs) {
    local = uri.substr(kRdfsNs.size());
  } else {
    return uri;
  }
  for (const auto& [name, compact] : kMappings) {
    if (local == name) return compact;
  }
  return uri;
}

}  // namespace rdfviews::rdf
