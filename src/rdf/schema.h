// RDF Schema model: the four semantic relationships of Table 1 of the paper
// (class inclusion, property inclusion, domain typing, range typing).
#ifndef RDFVIEWS_RDF_SCHEMA_H_
#define RDFVIEWS_RDF_SCHEMA_H_

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/triple_store.h"

namespace rdfviews::rdf {

/// Kind of an RDFS statement.
enum class SchemaStatementKind : uint8_t {
  kSubClassOf,
  kSubPropertyOf,
  kDomain,
  kRange,
};

/// One RDFS statement, e.g. (painting, rdfs:subClassOf, picture).
struct SchemaStatement {
  SchemaStatementKind kind;
  TermId subject;  // class or property
  TermId object;   // class or property

  friend auto operator<=>(const SchemaStatement&,
                          const SchemaStatement&) = default;
};

/// An RDF Schema: a set of statements plus derived lookup structures.
///
/// "Direct" accessors return the asserted statements only; the *Closure*
/// accessors return the transitively / inheritance-closed relationships used
/// by saturation. Reflexive pairs are never stored.
class Schema {
 public:
  Schema() = default;

  void AddSubClassOf(TermId sub, TermId super);
  void AddSubPropertyOf(TermId sub, TermId super);
  void AddDomain(TermId property, TermId clazz);
  void AddRange(TermId property, TermId clazz);

  /// Extracts the RDFS statements present in `store` (triples whose property
  /// is one of the four RDFS properties).
  static Schema FromTriples(const TripleStore& store);

  /// The schema statements as RDF triples.
  std::vector<Triple> ToTriples() const;

  const std::vector<SchemaStatement>& statements() const {
    return statements_;
  }
  size_t num_statements() const { return statements_.size(); }

  /// All classes mentioned in the schema, sorted (used by rule 5).
  const std::vector<TermId>& classes() const { return classes_; }
  /// All properties mentioned in the schema, sorted (used by rule 6).
  const std::vector<TermId>& properties() const { return properties_; }

  /// Direct (asserted) relationships.
  const std::vector<TermId>& DirectSubClasses(TermId c) const;
  const std::vector<TermId>& DirectSubProperties(TermId p) const;
  const std::vector<TermId>& DirectDomains(TermId p) const;
  const std::vector<TermId>& DirectRanges(TermId p) const;

  /// Strict transitive closures (do not include the argument itself).
  std::vector<TermId> SuperClassesOf(TermId c) const;
  std::vector<TermId> SubClassesOf(TermId c) const;
  std::vector<TermId> SuperPropertiesOf(TermId p) const;
  std::vector<TermId> SubPropertiesOf(TermId p) const;

  /// Inheritance-closed domain/range typing: every class c such that some
  /// super-property of p (or p itself) has a domain (range) class whose
  /// super-closure contains c.
  std::vector<TermId> DomainClosure(TermId p) const;
  std::vector<TermId> RangeClosure(TermId p) const;

  bool IsSubClassOf(TermId sub, TermId super) const;      // strict
  bool IsSubPropertyOf(TermId sub, TermId super) const;   // strict

  bool empty() const { return statements_.empty(); }

 private:
  using AdjacencyMap = std::unordered_map<TermId, std::vector<TermId>>;

  void AddStatement(SchemaStatementKind kind, TermId subject, TermId object);
  static std::vector<TermId> Reachable(const AdjacencyMap& edges, TermId from);
  static const std::vector<TermId>& Lookup(const AdjacencyMap& map, TermId k);
  void NoteClass(TermId c);
  void NoteProperty(TermId p);

  std::vector<SchemaStatement> statements_;
  std::set<SchemaStatement> statement_set_;  // de-duplication

  AdjacencyMap super_classes_;    // sub -> direct supers
  AdjacencyMap sub_classes_;      // super -> direct subs
  AdjacencyMap super_properties_;
  AdjacencyMap sub_properties_;
  AdjacencyMap domains_;          // property -> direct domain classes
  AdjacencyMap ranges_;           // property -> direct range classes

  std::vector<TermId> classes_;
  std::vector<TermId> properties_;
  std::unordered_set<TermId> class_set_;
  std::unordered_set<TermId> property_set_;
};

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_SCHEMA_H_
