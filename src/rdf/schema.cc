#include "rdf/schema.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "rdf/vocabulary.h"

namespace rdfviews::rdf {

namespace {
const std::vector<TermId> kEmpty;
}  // namespace

void Schema::AddStatement(SchemaStatementKind kind, TermId subject,
                          TermId object) {
  SchemaStatement st{kind, subject, object};
  if (!statement_set_.insert(st).second) return;
  statements_.push_back(st);
  switch (kind) {
    case SchemaStatementKind::kSubClassOf:
      super_classes_[subject].push_back(object);
      sub_classes_[object].push_back(subject);
      NoteClass(subject);
      NoteClass(object);
      break;
    case SchemaStatementKind::kSubPropertyOf:
      super_properties_[subject].push_back(object);
      sub_properties_[object].push_back(subject);
      NoteProperty(subject);
      NoteProperty(object);
      break;
    case SchemaStatementKind::kDomain:
      domains_[subject].push_back(object);
      NoteProperty(subject);
      NoteClass(object);
      break;
    case SchemaStatementKind::kRange:
      ranges_[subject].push_back(object);
      NoteProperty(subject);
      NoteClass(object);
      break;
  }
}

void Schema::AddSubClassOf(TermId sub, TermId super) {
  if (sub == super) return;
  AddStatement(SchemaStatementKind::kSubClassOf, sub, super);
}

void Schema::AddSubPropertyOf(TermId sub, TermId super) {
  if (sub == super) return;
  AddStatement(SchemaStatementKind::kSubPropertyOf, sub, super);
}

void Schema::AddDomain(TermId property, TermId clazz) {
  AddStatement(SchemaStatementKind::kDomain, property, clazz);
}

void Schema::AddRange(TermId property, TermId clazz) {
  AddStatement(SchemaStatementKind::kRange, property, clazz);
}

Schema Schema::FromTriples(const TripleStore& store) {
  Schema schema;
  store.Scan(Pattern{kAnyTerm, kRdfsSubClassOf, kAnyTerm},
             [&](const Triple& t) {
               schema.AddSubClassOf(t.s, t.o);
               return true;
             });
  store.Scan(Pattern{kAnyTerm, kRdfsSubPropertyOf, kAnyTerm},
             [&](const Triple& t) {
               schema.AddSubPropertyOf(t.s, t.o);
               return true;
             });
  store.Scan(Pattern{kAnyTerm, kRdfsDomain, kAnyTerm}, [&](const Triple& t) {
    schema.AddDomain(t.s, t.o);
    return true;
  });
  store.Scan(Pattern{kAnyTerm, kRdfsRange, kAnyTerm}, [&](const Triple& t) {
    schema.AddRange(t.s, t.o);
    return true;
  });
  return schema;
}

std::vector<Triple> Schema::ToTriples() const {
  std::vector<Triple> out;
  out.reserve(statements_.size());
  for (const SchemaStatement& st : statements_) {
    TermId p = kRdfsSubClassOf;
    switch (st.kind) {
      case SchemaStatementKind::kSubClassOf: p = kRdfsSubClassOf; break;
      case SchemaStatementKind::kSubPropertyOf: p = kRdfsSubPropertyOf; break;
      case SchemaStatementKind::kDomain: p = kRdfsDomain; break;
      case SchemaStatementKind::kRange: p = kRdfsRange; break;
    }
    out.push_back(Triple{st.subject, p, st.object});
  }
  return out;
}

void Schema::NoteClass(TermId c) {
  if (class_set_.insert(c).second) {
    classes_.push_back(c);
    std::sort(classes_.begin(), classes_.end());
  }
}

void Schema::NoteProperty(TermId p) {
  if (property_set_.insert(p).second) {
    properties_.push_back(p);
    std::sort(properties_.begin(), properties_.end());
  }
}

const std::vector<TermId>& Schema::Lookup(const AdjacencyMap& map, TermId k) {
  auto it = map.find(k);
  if (it == map.end()) return kEmpty;
  return it->second;
}

const std::vector<TermId>& Schema::DirectSubClasses(TermId c) const {
  return Lookup(sub_classes_, c);
}
const std::vector<TermId>& Schema::DirectSubProperties(TermId p) const {
  return Lookup(sub_properties_, p);
}
const std::vector<TermId>& Schema::DirectDomains(TermId p) const {
  return Lookup(domains_, p);
}
const std::vector<TermId>& Schema::DirectRanges(TermId p) const {
  return Lookup(ranges_, p);
}

std::vector<TermId> Schema::Reachable(const AdjacencyMap& edges, TermId from) {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  std::deque<TermId> frontier(Lookup(edges, from).begin(),
                              Lookup(edges, from).end());
  while (!frontier.empty()) {
    TermId cur = frontier.front();
    frontier.pop_front();
    if (!seen.insert(cur).second) continue;
    if (cur != from) out.push_back(cur);
    for (TermId next : Lookup(edges, cur)) {
      if (!seen.contains(next)) frontier.push_back(next);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TermId> Schema::SuperClassesOf(TermId c) const {
  return Reachable(super_classes_, c);
}
std::vector<TermId> Schema::SubClassesOf(TermId c) const {
  return Reachable(sub_classes_, c);
}
std::vector<TermId> Schema::SuperPropertiesOf(TermId p) const {
  return Reachable(super_properties_, p);
}
std::vector<TermId> Schema::SubPropertiesOf(TermId p) const {
  return Reachable(sub_properties_, p);
}

std::vector<TermId> Schema::DomainClosure(TermId p) const {
  std::unordered_set<TermId> acc;
  std::vector<TermId> props = SuperPropertiesOf(p);
  props.push_back(p);
  for (TermId prop : props) {
    for (TermId c : Lookup(domains_, prop)) {
      if (acc.insert(c).second) {
        for (TermId super : SuperClassesOf(c)) acc.insert(super);
      }
    }
  }
  std::vector<TermId> out(acc.begin(), acc.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TermId> Schema::RangeClosure(TermId p) const {
  std::unordered_set<TermId> acc;
  std::vector<TermId> props = SuperPropertiesOf(p);
  props.push_back(p);
  for (TermId prop : props) {
    for (TermId c : Lookup(ranges_, prop)) {
      if (acc.insert(c).second) {
        for (TermId super : SuperClassesOf(c)) acc.insert(super);
      }
    }
  }
  std::vector<TermId> out(acc.begin(), acc.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool Schema::IsSubClassOf(TermId sub, TermId super) const {
  std::vector<TermId> supers = SuperClassesOf(sub);
  return std::binary_search(supers.begin(), supers.end(), super);
}

bool Schema::IsSubPropertyOf(TermId sub, TermId super) const {
  std::vector<TermId> supers = SuperPropertiesOf(sub);
  return std::binary_search(supers.begin(), supers.end(), super);
}

}  // namespace rdfviews::rdf
