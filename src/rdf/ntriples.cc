#include "rdf/ntriples.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "rdf/vocabulary.h"

namespace rdfviews::rdf {

namespace {

struct ParsedTerm {
  std::string lexical;
  TermKind kind;
};

// Parses one term starting at s[pos]; advances pos past the term.
Status ParseTerm(std::string_view s, size_t* pos, ParsedTerm* out) {
  while (*pos < s.size() && std::isspace(static_cast<unsigned char>(s[*pos])))
    ++(*pos);
  if (*pos >= s.size()) return Status::ParseError("unexpected end of line");
  char c = s[*pos];
  if (c == '<') {
    size_t end = s.find('>', *pos + 1);
    if (end == std::string_view::npos)
      return Status::ParseError("unterminated URI");
    std::string_view uri = s.substr(*pos + 1, end - *pos - 1);
    out->lexical = std::string(NormalizeWellKnownUri(uri));
    out->kind = TermKind::kIri;
    *pos = end + 1;
    return Status::OK();
  }
  if (c == '"') {
    std::string value;
    size_t i = *pos + 1;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': value.push_back('\n'); break;
          case 't': value.push_back('\t'); break;
          default: value.push_back(s[i]);
        }
      } else {
        value.push_back(s[i]);
      }
      ++i;
    }
    if (i >= s.size()) return Status::ParseError("unterminated literal");
    out->lexical = std::move(value);
    out->kind = TermKind::kLiteral;
    *pos = i + 1;
    return Status::OK();
  }
  if (c == '_' && *pos + 1 < s.size() && s[*pos + 1] == ':') {
    size_t end = *pos;
    while (end < s.size() &&
           !std::isspace(static_cast<unsigned char>(s[end])) && s[end] != '.')
      ++end;
    out->lexical = std::string(s.substr(*pos, end - *pos));
    out->kind = TermKind::kBlank;
    *pos = end;
    return Status::OK();
  }
  // Compact URI or bare token up to whitespace.
  size_t end = *pos;
  while (end < s.size() && !std::isspace(static_cast<unsigned char>(s[end])))
    ++end;
  std::string_view token = s.substr(*pos, end - *pos);
  if (token.empty() || token == ".")
    return Status::ParseError("expected a term");
  out->lexical = std::string(token);
  out->kind = TermKind::kIri;
  *pos = end;
  return Status::OK();
}

std::string FormatTerm(const Dictionary& dict, TermId id) {
  const std::string& lex = dict.Lexical(id);
  switch (dict.Kind(id)) {
    case TermKind::kIri: {
      if (lex.find(':') != std::string::npos &&
          !StartsWith(lex, "http")) {
        return lex;  // compact URI
      }
      return "<" + lex + ">";
    }
    case TermKind::kLiteral: {
      std::string out = "\"";
      for (char c : lex) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (c == '\n') { out += "\\n"; continue; }
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
    case TermKind::kBlank:
      return lex;
  }
  return lex;
}

}  // namespace

Result<size_t> ParseNTriples(std::string_view text, Dictionary* dict,
                             TripleStore* store) {
  size_t count = 0;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    size_t pos = 0;
    ParsedTerm s, p, o;
    Status st = ParseTerm(line, &pos, &s);
    if (st.ok()) st = ParseTerm(line, &pos, &p);
    if (st.ok()) st = ParseTerm(line, &pos, &o);
    if (!st.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                st.message());
    }
    std::string_view rest = Trim(line.substr(pos));
    if (!rest.empty() && rest != ".") {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": trailing garbage '" + std::string(rest) +
                                "'");
    }
    store->Add(dict->Intern(s.lexical, s.kind), dict->Intern(p.lexical, p.kind),
               dict->Intern(o.lexical, o.kind));
    ++count;
  }
  return count;
}

Result<size_t> LoadNTriplesFile(const std::string& path, Dictionary* dict,
                                TripleStore* store) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseNTriples(buffer.str(), dict, store);
}

std::string WriteNTriples(const TripleStore& store, const Dictionary& dict) {
  std::ostringstream out;
  for (const Triple& t : store.triples()) {
    out << FormatTerm(dict, t.s) << " " << FormatTerm(dict, t.p) << " "
        << FormatTerm(dict, t.o) << " .\n";
  }
  return out.str();
}

}  // namespace rdfviews::rdf
