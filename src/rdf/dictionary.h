// Bidirectional string <-> TermId dictionary.
//
// Every RDF constant (URI, literal, blank node label) is interned once and
// referred to by a dense TermId afterwards, as in dictionary-encoded triple
// stores (RDF-3X, Hexastore, and the paper's PostgreSQL layout).
#ifndef RDFVIEWS_RDF_DICTIONARY_H_
#define RDFVIEWS_RDF_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace rdfviews::rdf {

/// Interns terms and serves both directions of the encoding. Not
/// thread-safe; build phases are single-threaded by design.
class Dictionary {
 public:
  /// Pre-interns the RDF/RDFS vocabulary at the ids fixed in vocabulary.h.
  Dictionary();

  /// Returns the id for `lexical`, interning it if new. The kind of an
  /// already-interned term is not changed.
  TermId Intern(std::string_view lexical, TermKind kind = TermKind::kIri);

  /// Returns the id for `lexical` or NotFound.
  Result<TermId> Find(std::string_view lexical) const;

  /// Lexical form of an id. Requires id < size().
  const std::string& Lexical(TermId id) const;

  TermKind Kind(TermId id) const;

  size_t size() const { return lexicals_.size(); }

  /// Average lexical width (bytes) over all interned terms of each kind;
  /// used by the cost model's space estimation.
  double AverageWidth() const;

 private:
  std::vector<std::string> lexicals_;
  std::vector<TermKind> kinds_;
  // Keys are owned copies: views into lexicals_ would dangle when the
  // vector reallocates (short strings live inside the string object).
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_DICTIONARY_H_
