// Database saturation with respect to the RDFS entailment rules of
// Section 4.1 / Table 1 of the paper.
#ifndef RDFVIEWS_RDF_SATURATION_H_
#define RDFVIEWS_RDF_SATURATION_H_

#include "rdf/schema.h"
#include "rdf/triple_store.h"

namespace rdfviews::rdf {

/// Options controlling saturation.
struct SaturationOptions {
  /// Also add the (transitively closed) schema statements themselves as
  /// triples to the saturated store. The view-selection pipeline works on
  /// instance triples, so this defaults to off.
  bool include_schema_triples = false;
};

/// Returns a new store containing `data` plus all implicit triples entailed
/// by `schema` under the RDFS rules:
///   (s, p, o), p ⊑p p'            ⊢ (s, p', o)
///   (s, p, o), p has domain c     ⊢ (s, rdf:type, c)
///   (s, p, o), p has range  c     ⊢ (o, rdf:type, c)
///   (s, rdf:type, c), c ⊑ c'      ⊢ (s, rdf:type, c')
/// using the inheritance-closed schema so a single derivation pass reaches
/// the fixpoint.
TripleStore Saturate(const TripleStore& data, const Schema& schema,
                     const SaturationOptions& options = {},
                     const Dictionary* dict = nullptr);

/// Number of implicit triples saturation would add (|saturate(D,S)| - |D|).
uint64_t CountImplicitTriples(const TripleStore& data, const Schema& schema);

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_SATURATION_H_
