#include "rdf/statistics.h"

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/fault.h"
#include "common/hash.h"

namespace rdfviews::rdf {

namespace {

constexpr uint32_t kSnapshotMagic = 0x52565353;  // "RVSS"
constexpr uint32_t kSnapshotVersion = 1;

}  // namespace

uint64_t SnapshotStoreTag(const TripleStore& store) {
  size_t seed = store.size();
  for (int c = 0; c < kNumColumns; ++c) {
    const ColumnStats& s = store.column_stats(static_cast<Column>(c));
    HashCombine(&seed, s.distinct);
    HashCombine(&seed, s.min);
    HashCombine(&seed, s.max);
    HashCombine(&seed, static_cast<uint64_t>(s.avg_width * 1024.0));
  }
  return static_cast<uint64_t>(seed);
}

Status SaveSnapshot(const StatisticsSnapshot& snapshot,
                    const std::string& path, uint64_t store_tag) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  auto write_u64 = [f](uint64_t v) {
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
  };
  bool ok = write_u64((static_cast<uint64_t>(kSnapshotVersion) << 32) |
                      kSnapshotMagic) &&
            write_u64(store_tag) && write_u64(snapshot.counts.size());
  for (const auto& [pattern, count] : snapshot.counts) {
    if (!ok) break;
    ok = write_u64(pattern.s) && write_u64(pattern.p) &&
         write_u64(pattern.o) && write_u64(count);
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(path.c_str());
    return Status::Internal("short write while saving snapshot to " + path);
  }
  return Status::OK();
}

Result<StatisticsSnapshot> LoadSnapshot(const std::string& path,
                                        uint64_t store_tag) {
  // Injectable I/O failure: an unreadable snapshot must surface as a
  // Status — callers fall back to re-measuring the store.
  RDFVIEWS_RETURN_IF_ERROR(fault::Maybe(fault::sites::kSnapshotLoad));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no statistics snapshot at " + path);
  }
  auto read_u64 = [f](uint64_t* v) {
    return std::fread(v, sizeof(*v), 1, f) == 1;
  };
  uint64_t header = 0;
  uint64_t tag = 0;
  uint64_t count = 0;
  if (!read_u64(&header) || !read_u64(&tag) || !read_u64(&count)) {
    std::fclose(f);
    return Status::ParseError("truncated snapshot header in " + path);
  }
  if ((header & 0xffffffffu) != kSnapshotMagic ||
      (header >> 32) != kSnapshotVersion) {
    std::fclose(f);
    return Status::ParseError("not a statistics snapshot: " + path);
  }
  if (tag != store_tag) {
    std::fclose(f);
    return Status::InvalidArgument(
        "snapshot " + path + " was measured on a different store");
  }
  // Validate the entry count against the actual file size before reserving:
  // a corrupted count must surface as ParseError, not as a bad_alloc.
  long body_start = std::ftell(f);
  if (body_start < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::ParseError("cannot measure snapshot " + path);
  }
  long file_size = std::ftell(f);
  // Divide rather than multiply so a hostile count can not overflow.
  if (file_size < body_start ||
      count > static_cast<uint64_t>(file_size - body_start) /
                  (4 * sizeof(uint64_t)) ||
      std::fseek(f, body_start, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::ParseError("truncated snapshot body in " + path);
  }
  StatisticsSnapshot snapshot;
  snapshot.counts.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t s;
    uint64_t p;
    uint64_t o;
    uint64_t c;
    if (!read_u64(&s) || !read_u64(&p) || !read_u64(&o) || !read_u64(&c)) {
      std::fclose(f);
      return Status::ParseError("truncated snapshot body in " + path);
    }
    Pattern pattern;
    pattern.s = static_cast<TermId>(s);
    pattern.p = static_cast<TermId>(p);
    pattern.o = static_cast<TermId>(o);
    snapshot.counts.emplace(pattern, c);
  }
  std::fclose(f);
  return snapshot;
}

uint64_t Statistics::CountPattern(const Pattern& pattern) const {
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = cache_.find(pattern);
    if (it != cache_.end()) return it->second;
  }
  // Counting runs unlocked: it can be expensive (index scans, and the
  // reformulated subclass recurses into whole atom reformulations), and it
  // is deterministic, so a racing duplicate count is wasted work, not an
  // inconsistency.
  uint64_t count = CountPatternUncached(pattern);
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  return cache_.try_emplace(pattern, count).first->second;
}

uint64_t Statistics::CountPatternUncached(const Pattern& pattern) const {
  return store_->Count(pattern);
}

void Statistics::CollectWithRelaxations(const Pattern& pattern) const {
  // Enumerate all subsets of the bound positions.
  TermId values[3] = {pattern.s, pattern.p, pattern.o};
  int bound[3];
  int num_bound = 0;
  for (int i = 0; i < 3; ++i) {
    if (values[i] != kAnyTerm) bound[num_bound++] = i;
  }
  for (int mask = 0; mask < (1 << num_bound); ++mask) {
    Pattern relaxed;
    TermId* fields[3] = {&relaxed.s, &relaxed.p, &relaxed.o};
    for (int j = 0; j < num_bound; ++j) {
      if (mask & (1 << j)) *fields[bound[j]] = values[bound[j]];
    }
    CountPattern(relaxed);
  }
}

void Statistics::Precompute(const std::vector<Pattern>& patterns) const {
  for (const Pattern& p : patterns) CollectWithRelaxations(p);
}

StatisticsSnapshot Statistics::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  return StatisticsSnapshot{cache_};
}

void Statistics::Warm(const StatisticsSnapshot& snapshot) const {
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  cache_.insert(snapshot.counts.begin(), snapshot.counts.end());
}

size_t Statistics::cache_size() const {
  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  return cache_.size();
}

}  // namespace rdfviews::rdf
