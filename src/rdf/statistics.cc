#include "rdf/statistics.h"

#include <mutex>

namespace rdfviews::rdf {

uint64_t Statistics::CountPattern(const Pattern& pattern) const {
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = cache_.find(pattern);
    if (it != cache_.end()) return it->second;
  }
  // Counting runs unlocked: it can be expensive (index scans, and the
  // reformulated subclass recurses into whole atom reformulations), and it
  // is deterministic, so a racing duplicate count is wasted work, not an
  // inconsistency.
  uint64_t count = CountPatternUncached(pattern);
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  return cache_.try_emplace(pattern, count).first->second;
}

uint64_t Statistics::CountPatternUncached(const Pattern& pattern) const {
  return store_->Count(pattern);
}

void Statistics::CollectWithRelaxations(const Pattern& pattern) const {
  // Enumerate all subsets of the bound positions.
  TermId values[3] = {pattern.s, pattern.p, pattern.o};
  int bound[3];
  int num_bound = 0;
  for (int i = 0; i < 3; ++i) {
    if (values[i] != kAnyTerm) bound[num_bound++] = i;
  }
  for (int mask = 0; mask < (1 << num_bound); ++mask) {
    Pattern relaxed;
    TermId* fields[3] = {&relaxed.s, &relaxed.p, &relaxed.o};
    for (int j = 0; j < num_bound; ++j) {
      if (mask & (1 << j)) *fields[bound[j]] = values[bound[j]];
    }
    CountPattern(relaxed);
  }
}

void Statistics::Precompute(const std::vector<Pattern>& patterns) const {
  for (const Pattern& p : patterns) CollectWithRelaxations(p);
}

StatisticsSnapshot Statistics::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  return StatisticsSnapshot{cache_};
}

void Statistics::Warm(const StatisticsSnapshot& snapshot) const {
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  cache_.insert(snapshot.counts.begin(), snapshot.counts.end());
}

size_t Statistics::cache_size() const {
  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  return cache_.size();
}

}  // namespace rdfviews::rdf
