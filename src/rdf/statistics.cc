#include "rdf/statistics.h"

namespace rdfviews::rdf {

uint64_t Statistics::CountPattern(const Pattern& pattern) const {
  auto it = cache_.find(pattern);
  if (it != cache_.end()) return it->second;
  uint64_t count = CountPatternUncached(pattern);
  cache_.emplace(pattern, count);
  return count;
}

uint64_t Statistics::CountPatternUncached(const Pattern& pattern) const {
  return store_->Count(pattern);
}

void Statistics::CollectWithRelaxations(const Pattern& pattern) const {
  // Enumerate all subsets of the bound positions.
  TermId values[3] = {pattern.s, pattern.p, pattern.o};
  int bound[3];
  int num_bound = 0;
  for (int i = 0; i < 3; ++i) {
    if (values[i] != kAnyTerm) bound[num_bound++] = i;
  }
  for (int mask = 0; mask < (1 << num_bound); ++mask) {
    Pattern relaxed;
    TermId* fields[3] = {&relaxed.s, &relaxed.p, &relaxed.o};
    for (int j = 0; j < num_bound; ++j) {
      if (mask & (1 << j)) *fields[bound[j]] = values[bound[j]];
    }
    CountPattern(relaxed);
  }
}

}  // namespace rdfviews::rdf
