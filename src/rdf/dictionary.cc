#include "rdf/dictionary.h"

#include "common/logging.h"
#include "rdf/vocabulary.h"

namespace rdfviews::rdf {

Dictionary::Dictionary() {
  // Order must match the constants in vocabulary.h.
  Intern(kRdfTypeName);
  Intern(kRdfsSubClassOfName);
  Intern(kRdfsSubPropertyOfName);
  Intern(kRdfsDomainName);
  Intern(kRdfsRangeName);
  Intern(kRdfsClassName);
  Intern(kRdfPropertyName);
  Intern(kRdfsResourceName);
  RDFVIEWS_CHECK(size() == kFirstUserTerm);
}

TermId Dictionary::Intern(std::string_view lexical, TermKind kind) {
  auto it = index_.find(std::string(lexical));
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(lexicals_.size());
  lexicals_.emplace_back(lexical);
  kinds_.push_back(kind);
  index_.emplace(lexicals_.back(), id);
  return id;
}

Result<TermId> Dictionary::Find(std::string_view lexical) const {
  auto it = index_.find(std::string(lexical));
  if (it == index_.end()) {
    return Status::NotFound("term not in dictionary: " + std::string(lexical));
  }
  return it->second;
}

const std::string& Dictionary::Lexical(TermId id) const {
  RDFVIEWS_CHECK_MSG(id < lexicals_.size(), "bad term id " << id);
  return lexicals_[id];
}

TermKind Dictionary::Kind(TermId id) const {
  RDFVIEWS_CHECK(id < kinds_.size());
  return kinds_[id];
}

double Dictionary::AverageWidth() const {
  if (lexicals_.empty()) return 8.0;
  size_t total = 0;
  for (const std::string& s : lexicals_) total += s.size();
  return static_cast<double>(total) / static_cast<double>(lexicals_.size());
}

}  // namespace rdfviews::rdf
