// The RDF triple and triple patterns over dictionary-encoded terms.
#ifndef RDFVIEWS_RDF_TRIPLE_H_
#define RDFVIEWS_RDF_TRIPLE_H_

#include <compare>
#include <cstddef>
#include <functional>

#include "common/hash.h"
#include "rdf/term.h"

namespace rdfviews::rdf {

/// A well-formed RDF triple (subject, property, object).
struct Triple {
  TermId s = 0;
  TermId p = 0;
  TermId o = 0;

  friend auto operator<=>(const Triple&, const Triple&) = default;

  TermId at(Column c) const {
    switch (c) {
      case Column::kS: return s;
      case Column::kP: return p;
      case Column::kO: return o;
    }
    return kAnyTerm;
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    size_t seed = 0;
    HashCombine(&seed, t.s);
    HashCombine(&seed, t.p);
    HashCombine(&seed, t.o);
    return seed;
  }
};

/// A constants-only access pattern; kAnyTerm marks a wildcard position.
struct Pattern {
  TermId s = kAnyTerm;
  TermId p = kAnyTerm;
  TermId o = kAnyTerm;

  friend auto operator<=>(const Pattern&, const Pattern&) = default;

  bool Matches(const Triple& t) const {
    return (s == kAnyTerm || s == t.s) && (p == kAnyTerm || p == t.p) &&
           (o == kAnyTerm || o == t.o);
  }

  int NumConstants() const {
    return (s != kAnyTerm) + (p != kAnyTerm) + (o != kAnyTerm);
  }
};

struct PatternHash {
  size_t operator()(const Pattern& p) const {
    size_t seed = 1;
    HashCombine(&seed, p.s);
    HashCombine(&seed, p.p);
    HashCombine(&seed, p.o);
    return seed;
  }
};

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_TRIPLE_H_
