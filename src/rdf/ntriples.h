// Line-oriented N-Triples-style reader and writer.
//
// Accepted term syntax per position:
//   <uri>         URI (well-known rdf:/rdfs: URIs are normalized)
//   prefix:name   compact URI, kept verbatim
//   _:label       blank node
//   "literal"     literal (no datatype/lang handling; escapes \" \\ \n \t)
// Each statement ends with '.', '#' starts a comment line.
#ifndef RDFVIEWS_RDF_NTRIPLES_H_
#define RDFVIEWS_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace rdfviews::rdf {

/// Parses N-Triples text into `store` (does not Build() it), interning terms
/// in `dict`. Returns the number of triples read.
Result<size_t> ParseNTriples(std::string_view text, Dictionary* dict,
                             TripleStore* store);

/// Loads an N-Triples file.
Result<size_t> LoadNTriplesFile(const std::string& path, Dictionary* dict,
                                TripleStore* store);

/// Serializes the store back to N-Triples-style text.
std::string WriteNTriples(const TripleStore& store, const Dictionary& dict);

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_NTRIPLES_H_
