// In-memory dictionary-encoded triple store with multi-order indexes.
//
// The store keeps the triple set sorted in the SPO, POS and OSP orders,
// which together answer every access pattern (any subset of {s,p,o} bound)
// with a binary-searched contiguous range — the same service the paper gets
// from PostgreSQL's column-combination indexes, and the basis of our
// RDF-3X / Hexastore simulator mode.
#ifndef RDFVIEWS_RDF_TRIPLE_STORE_H_
#define RDFVIEWS_RDF_TRIPLE_STORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace rdfviews::rdf {

/// Per-column statistics computed when the store is built.
struct ColumnStats {
  uint64_t distinct = 0;
  TermId min = 0;
  TermId max = 0;
  double avg_width = 8.0;  // average lexical width in bytes
};

class TripleStore {
 public:
  TripleStore() = default;

  /// Buffers a triple. Duplicates are eliminated by Build().
  void Add(const Triple& t) { spo_.push_back(t); built_ = false; }
  void Add(TermId s, TermId p, TermId o) { Add(Triple{s, p, o}); }

  /// Sorts, de-duplicates and builds the secondary orders and statistics.
  /// `dict` (optional) is used to compute average lexical widths.
  void Build(const Dictionary* dict = nullptr);

  bool built() const { return built_; }
  size_t size() const { return spo_.size(); }

  /// Exact number of triples matching the pattern. O(log n).
  uint64_t Count(const Pattern& pattern) const;

  /// Invokes `fn` for every triple matching the pattern, in index order.
  /// Iteration stops early if `fn` returns false.
  void Scan(const Pattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Matching triples as a contiguous span of the best-suited order.
  /// The span's triples are *stored* triples; for patterns with 1-2 bound
  /// positions the span is exactly the matching range.
  std::span<const Triple> Range(const Pattern& pattern) const;

  bool Contains(const Triple& t) const;

  const std::vector<Triple>& triples() const { return spo_; }

  const ColumnStats& column_stats(Column c) const {
    return stats_[static_cast<int>(c)];
  }

  /// Builds a new store containing this store's triples plus `extra`,
  /// de-duplicated.
  TripleStore UnionWith(const std::vector<Triple>& extra,
                        const Dictionary* dict = nullptr) const;

 private:
  std::vector<Triple> spo_;  // primary copy, sorted (s, p, o)
  std::vector<Triple> pos_;  // sorted (p, o, s)
  std::vector<Triple> osp_;  // sorted (o, s, p)
  std::array<ColumnStats, kNumColumns> stats_;
  bool built_ = false;
};

}  // namespace rdfviews::rdf

#endif  // RDFVIEWS_RDF_TRIPLE_STORE_H_
