#include "rdf/saturation.h"

#include <unordered_map>

#include "rdf/vocabulary.h"

namespace rdfviews::rdf {

namespace {

/// Memoized per-property derived facts: the super-properties, domain and
/// range closures, computed once per distinct property.
struct PropertyInfo {
  std::vector<TermId> supers;
  std::vector<TermId> domains;
  std::vector<TermId> ranges;
};

}  // namespace

TripleStore Saturate(const TripleStore& data, const Schema& schema,
                     const SaturationOptions& options,
                     const Dictionary* dict) {
  TripleStore out;
  std::unordered_map<TermId, PropertyInfo> prop_cache;
  std::unordered_map<TermId, std::vector<TermId>> class_cache;

  auto property_info = [&](TermId p) -> const PropertyInfo& {
    auto it = prop_cache.find(p);
    if (it != prop_cache.end()) return it->second;
    PropertyInfo info;
    info.supers = schema.SuperPropertiesOf(p);
    info.domains = schema.DomainClosure(p);
    info.ranges = schema.RangeClosure(p);
    return prop_cache.emplace(p, std::move(info)).first->second;
  };
  auto super_classes = [&](TermId c) -> const std::vector<TermId>& {
    auto it = class_cache.find(c);
    if (it != class_cache.end()) return it->second;
    return class_cache.emplace(c, schema.SuperClassesOf(c)).first->second;
  };

  for (const Triple& t : data.triples()) {
    out.Add(t);
    if (t.p == kRdfType) {
      for (TermId super : super_classes(t.o)) {
        out.Add(t.s, kRdfType, super);
      }
      continue;
    }
    // Skip schema-statement triples if any are stored among the data; their
    // semantics is handled through `schema`.
    if (t.p == kRdfsSubClassOf || t.p == kRdfsSubPropertyOf ||
        t.p == kRdfsDomain || t.p == kRdfsRange) {
      continue;
    }
    const PropertyInfo& info = property_info(t.p);
    for (TermId super : info.supers) out.Add(t.s, super, t.o);
    for (TermId c : info.domains) out.Add(t.s, kRdfType, c);
    for (TermId c : info.ranges) out.Add(t.o, kRdfType, c);
  }

  if (options.include_schema_triples) {
    for (const Triple& t : schema.ToTriples()) out.Add(t);
    // Transitive closure of the class / property hierarchies.
    for (TermId c : schema.classes()) {
      for (TermId super : schema.SuperClassesOf(c)) {
        out.Add(c, kRdfsSubClassOf, super);
      }
    }
    for (TermId p : schema.properties()) {
      for (TermId super : schema.SuperPropertiesOf(p)) {
        out.Add(p, kRdfsSubPropertyOf, super);
      }
      for (TermId c : schema.DomainClosure(p)) out.Add(p, kRdfsDomain, c);
      for (TermId c : schema.RangeClosure(p)) out.Add(p, kRdfsRange, c);
    }
  }

  out.Build(dict);
  return out;
}

uint64_t CountImplicitTriples(const TripleStore& data, const Schema& schema) {
  TripleStore saturated = Saturate(data, schema);
  return saturated.size() - data.size();
}

}  // namespace rdfviews::rdf
