// Umbrella header: the public API of the rdfviews library.
//
// The paper's pipeline, end to end:
//   1. Load / generate data  -> rdf::Dictionary + rdf::TripleStore
//   2. (optional) RDF Schema -> rdf::Schema, rdf::Saturate
//   3. Parse the workload    -> cq::ParseDatalog / cq::ParseSparql
//   4. Recommend views       -> vsel::ViewSelector::Recommend (one-shot)
//                               or vsel::TuningSession (evolving workloads:
//                               incremental Update, async + cancellation,
//                               persistent partition caches via
//                               vsel::serialize::DirCacheBackend)
//   5. Materialize & answer  -> vsel::Materialize, vsel::AnswerQuery
//      (or ship the recommendation itself:
//       vsel::serialize::SerializeRecommendation)
#ifndef RDFVIEWS_RDFVIEWS_H_
#define RDFVIEWS_RDFVIEWS_H_

#include "common/status.h"
#include "cq/canonical.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "cq/query.h"
#include "cq/ucq.h"
#include "engine/evaluator.h"
#include "engine/executor.h"
#include "engine/materializer.h"
#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/saturation.h"
#include "rdf/schema.h"
#include "rdf/statistics.h"
#include "rdf/triple_store.h"
#include "reform/reformulate.h"
#include "vsel/cost_model.h"
#include "vsel/search.h"
#include "vsel/selector.h"
#include "vsel/serialize/partition_cache.h"
#include "vsel/serialize/serialize.h"
#include "vsel/session/session.h"
#include "vsel/state.h"
#include "vsel/transitions.h"
#include "workload/barton.h"
#include "workload/generator.h"

#endif  // RDFVIEWS_RDFVIEWS_H_
