// Parsers for conjunctive queries: a datalog-style syntax and a minimal
// SPARQL basic-graph-pattern syntax.
//
// Datalog style (the paper's notation):
//   q1(X, Z) :- t(X, hasPainted, starryNight), t(X, isParentOf, Y),
//               t(Y, hasPainted, Z)
// Identifiers starting with an upper-case letter (or '?') are variables;
// everything else is a constant interned in the dictionary. Quoted strings
// are literals, <...> are URIs.
//
// SPARQL BGP style:
//   SELECT ?x ?z WHERE { ?x hasPainted starryNight . ?x isParentOf ?y .
//                        ?y hasPainted ?z }
// The keyword `a` abbreviates rdf:type.
#ifndef RDFVIEWS_CQ_PARSER_H_
#define RDFVIEWS_CQ_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "cq/query.h"
#include "rdf/dictionary.h"

namespace rdfviews::cq {

/// Parses one datalog-style query. New constants are interned in `dict`.
Result<ConjunctiveQuery> ParseDatalog(std::string_view text,
                                      rdf::Dictionary* dict);

/// Parses a program: one datalog query per (possibly wrapped) rule; rules
/// are separated by newlines terminating a complete rule. Lines starting
/// with '#' or '%' are comments.
Result<std::vector<ConjunctiveQuery>> ParseDatalogProgram(
    std::string_view text, rdf::Dictionary* dict);

/// Parses a SPARQL SELECT over a basic graph pattern.
Result<ConjunctiveQuery> ParseSparql(std::string_view text,
                                     rdf::Dictionary* dict);

}  // namespace rdfviews::cq

#endif  // RDFVIEWS_CQ_PARSER_H_
