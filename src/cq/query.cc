#include "cq/query.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/disjoint_sets.h"

namespace rdfviews::cq {

namespace {
constexpr rdf::Column kColumns[3] = {rdf::Column::kS, rdf::Column::kP,
                                     rdf::Column::kO};
}  // namespace

size_t ConjunctiveQuery::NumConstants() const {
  size_t n = 0;
  for (const Atom& a : atoms_) n += a.NumConstants();
  return n;
}

std::vector<VarId> ConjunctiveQuery::BodyVars() const {
  std::vector<VarId> out;
  std::unordered_set<VarId> seen;
  for (const Atom& a : atoms_) {
    for (rdf::Column c : kColumns) {
      Term t = a.at(c);
      if (t.is_var() && seen.insert(t.var()).second) out.push_back(t.var());
    }
  }
  return out;
}

std::vector<VarId> ConjunctiveQuery::HeadVars() const {
  std::vector<VarId> out;
  std::unordered_set<VarId> seen;
  for (const Term& t : head_) {
    if (t.is_var() && seen.insert(t.var()).second) out.push_back(t.var());
  }
  return out;
}

bool ConjunctiveQuery::IsHeadVar(VarId v) const {
  for (const Term& t : head_) {
    if (t.is_var() && t.var() == v) return true;
  }
  return false;
}

std::vector<VarId> ConjunctiveQuery::ExistentialVars() const {
  std::vector<VarId> out;
  for (VarId v : BodyVars()) {
    if (!IsHeadVar(v)) out.push_back(v);
  }
  return out;
}

std::unordered_map<VarId, std::vector<Occurrence>>
ConjunctiveQuery::VarOccurrences() const {
  std::unordered_map<VarId, std::vector<Occurrence>> out;
  for (uint32_t i = 0; i < atoms_.size(); ++i) {
    for (rdf::Column c : kColumns) {
      Term t = atoms_[i].at(c);
      if (t.is_var()) out[t.var()].push_back(Occurrence{i, c});
    }
  }
  return out;
}

VarId ConjunctiveQuery::MaxVarId() const {
  VarId max_id = 0;
  for (const Term& t : head_) {
    if (t.is_var()) max_id = std::max(max_id, t.var());
  }
  for (const Atom& a : atoms_) {
    for (rdf::Column c : kColumns) {
      Term t = a.at(c);
      if (t.is_var()) max_id = std::max(max_id, t.var());
    }
  }
  return max_id;
}

void ConjunctiveQuery::Substitute(VarId var, Term replacement) {
  for (Term& t : head_) {
    if (t.is_var() && t.var() == var) t = replacement;
  }
  for (Atom& a : atoms_) {
    for (rdf::Column c : kColumns) {
      Term t = a.at(c);
      if (t.is_var() && t.var() == var) a.set(c, replacement);
    }
  }
}

void ConjunctiveQuery::OffsetVars(VarId offset) {
  for (Term& t : head_) {
    if (t.is_var()) t = Term::Var(t.var() + offset);
  }
  for (Atom& a : atoms_) {
    for (rdf::Column c : kColumns) {
      Term t = a.at(c);
      if (t.is_var()) a.set(c, Term::Var(t.var() + offset));
    }
  }
  var_names_.clear();
}

void ConjunctiveQuery::RenameVars(
    const std::unordered_map<VarId, VarId>& mapping) {
  auto rename = [&](Term t) {
    if (!t.is_var()) return t;
    auto it = mapping.find(t.var());
    return it == mapping.end() ? t : Term::Var(it->second);
  };
  for (Term& t : head_) t = rename(t);
  for (Atom& a : atoms_) {
    for (rdf::Column c : kColumns) a.set(c, rename(a.at(c)));
  }
  var_names_.clear();
}

std::vector<std::vector<uint32_t>> ConjunctiveQuery::ConnectedComponents()
    const {
  const size_t n = atoms_.size();
  DisjointSets sets(n);
  std::unordered_map<VarId, size_t> first_atom_of_var;
  for (size_t i = 0; i < n; ++i) {
    for (rdf::Column c : kColumns) {
      Term t = atoms_[i].at(c);
      if (!t.is_var()) continue;
      auto [it, inserted] = first_atom_of_var.emplace(t.var(), i);
      if (!inserted) sets.Union(i, it->second);
    }
  }
  std::unordered_map<size_t, std::vector<uint32_t>> groups;
  for (uint32_t i = 0; i < n; ++i) groups[sets.Find(i)].push_back(i);
  std::vector<std::vector<uint32_t>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) out.push_back(std::move(members));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ConjunctiveQuery> ConjunctiveQuery::SplitIntoConnectedQueries()
    const {
  std::vector<std::vector<uint32_t>> components = ConnectedComponents();
  std::vector<ConjunctiveQuery> out;
  int index = 0;
  for (const std::vector<uint32_t>& component : components) {
    ConjunctiveQuery q;
    q.set_name(name_ + "_" + std::to_string(index++));
    std::unordered_set<VarId> vars;
    for (uint32_t i : component) {
      q.mutable_atoms()->push_back(atoms_[i]);
      for (rdf::Column c : kColumns) {
        Term t = atoms_[i].at(c);
        if (t.is_var()) vars.insert(t.var());
      }
    }
    for (const Term& t : head_) {
      if (t.is_var() && vars.contains(t.var())) {
        q.mutable_head()->push_back(t);
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

Status ConjunctiveQuery::Validate() const {
  if (atoms_.empty()) return Status::InvalidArgument("empty body");
  std::unordered_set<VarId> body_vars;
  for (VarId v : BodyVars()) body_vars.insert(v);
  for (const Term& t : head_) {
    if (t.is_var() && !body_vars.contains(t.var())) {
      return Status::InvalidArgument("head variable not in body");
    }
  }
  for (const Atom& a : atoms_) {
    if (a.NumConstants() == 3) {
      return Status::InvalidArgument(
          "atom with three constants is not allowed (Cartesian product)");
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::TermToString(const Term& t,
                                           const rdf::Dictionary* dict) const {
  if (t.is_var()) {
    auto it = var_names_.find(t.var());
    if (it != var_names_.end()) return it->second;
    return "X" + std::to_string(t.var());
  }
  if (dict != nullptr && t.constant() < dict->size()) {
    return dict->Lexical(t.constant());
  }
  return "#" + std::to_string(t.constant());
}

std::string ConjunctiveQuery::ToString(const rdf::Dictionary* dict) const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out << ", ";
    out << TermToString(head_[i], dict);
  }
  out << ") :- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "t(" << TermToString(atoms_[i].s, dict) << ", "
        << TermToString(atoms_[i].p, dict) << ", "
        << TermToString(atoms_[i].o, dict) << ")";
  }
  return out.str();
}

}  // namespace rdfviews::cq
