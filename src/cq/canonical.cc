#include "cq/canonical.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace rdfviews::cq {

namespace {

constexpr rdf::Column kColumns[3] = {rdf::Column::kS, rdf::Column::kP,
                                     rdf::Column::kO};
constexpr int kMaxBacktrackNodes = 200000;

/// Stable invariant of one atom, independent of variable identities:
/// constants are spelled out, variables are described by (head?, global
/// occurrence count, intra-atom repetition pattern).
std::string AtomInvariant(const ConjunctiveQuery& q, const Atom& atom,
                          const std::unordered_map<VarId, int>& var_degree,
                          const std::unordered_map<VarId, int>& var_color,
                          bool include_head) {
  std::ostringstream out;
  for (int i = 0; i < 3; ++i) {
    Term t = atom.at(kColumns[i]);
    if (i > 0) out << ",";
    if (t.is_const()) {
      out << "c" << t.constant();
      continue;
    }
    out << "v";
    if (include_head && q.IsHeadVar(t.var())) out << "h";
    out << "d" << var_degree.at(t.var());
    auto color = var_color.find(t.var());
    if (color != var_color.end()) out << "k" << color->second;
    // Intra-atom repetition: first earlier position holding the same var.
    for (int j = 0; j < i; ++j) {
      Term earlier = atom.at(kColumns[j]);
      if (earlier.is_var() && earlier.var() == t.var()) {
        out << "=" << j;
        break;
      }
    }
  }
  return out.str();
}

struct Searcher {
  const ConjunctiveQuery& q;
  bool include_head;
  std::vector<std::vector<uint32_t>> groups;  // tie groups of atom indices
  std::string best;
  bool have_best = false;
  int nodes = 0;
  bool exact = true;
  std::unordered_map<VarId, uint32_t> best_var_map;

  // Current assignment state during DFS.
  std::vector<uint32_t> order;  // atom visit order so far
  std::unordered_map<VarId, uint32_t> var_map;

  explicit Searcher(const ConjunctiveQuery& query, bool with_head)
      : q(query), include_head(with_head) {}

  std::string RenderAtom(const Atom& atom,
                         std::unordered_map<VarId, uint32_t>* vmap) const {
    std::ostringstream out;
    out << "t(";
    for (int i = 0; i < 3; ++i) {
      if (i > 0) out << ",";
      Term t = atom.at(kColumns[i]);
      if (t.is_const()) {
        out << "#" << t.constant();
      } else {
        auto [it, inserted] =
            vmap->emplace(t.var(), static_cast<uint32_t>(vmap->size()));
        out << (include_head && q.IsHeadVar(t.var()) ? "H" : "V")
            << it->second;
      }
    }
    out << ")";
    return out.str();
  }

  void Finish() {
    // Render the full string for the current atom order.
    std::unordered_map<VarId, uint32_t> vmap;
    std::string repr;
    for (uint32_t idx : order) {
      repr += RenderAtom(q.atoms()[idx], &vmap);
      repr += ";";
    }
    if (include_head) {
      // Head as a sorted set of canonical terms.
      std::set<std::string> head_terms;
      for (const Term& t : q.head()) {
        if (t.is_const()) {
          head_terms.insert("#" + std::to_string(t.constant()));
        } else {
          auto it = vmap.find(t.var());
          // Head variables not in the body cannot occur in valid queries.
          RDFVIEWS_DCHECK(it != vmap.end());
          head_terms.insert("H" + std::to_string(it->second));
        }
      }
      repr += "|head:";
      for (const std::string& h : head_terms) {
        repr += h;
        repr += ",";
      }
    }
    if (!have_best || repr < best) {
      best = std::move(repr);
      have_best = true;
      best_var_map = std::move(vmap);
    }
  }

  void Dfs(size_t group_idx, std::vector<bool>* used, size_t used_in_group) {
    if (++nodes > kMaxBacktrackNodes) {
      exact = false;
      return;
    }
    if (group_idx == groups.size()) {
      Finish();
      return;
    }
    const std::vector<uint32_t>& group = groups[group_idx];
    if (used_in_group == group.size()) {
      Dfs(group_idx + 1, used, 0);
      return;
    }
    for (size_t i = 0; i < group.size(); ++i) {
      uint32_t atom_idx = group[i];
      if ((*used)[atom_idx]) continue;
      (*used)[atom_idx] = true;
      order.push_back(atom_idx);
      Dfs(group_idx, used, used_in_group + 1);
      order.pop_back();
      (*used)[atom_idx] = false;
      if (!exact) return;
    }
  }
};

}  // namespace

CanonicalForm Canonicalize(const ConjunctiveQuery& q, bool include_head) {
  CanonicalForm result;
  if (q.atoms().empty()) {
    result.repr = include_head ? "|head:" : "";
    return result;
  }

  // Variable degrees (global occurrence counts).
  std::unordered_map<VarId, int> degree;
  for (const Atom& a : q.atoms()) {
    for (rdf::Column c : kColumns) {
      Term t = a.at(c);
      if (t.is_var()) ++degree[t.var()];
    }
  }

  // Iterative color refinement on variables: a variable's color is the
  // multiset of (atom invariant, position) over its occurrences. A few
  // rounds shrink tie groups dramatically for symmetric queries.
  std::unordered_map<VarId, int> color;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::string> invariants;
    invariants.reserve(q.atoms().size());
    for (const Atom& a : q.atoms()) {
      invariants.push_back(AtomInvariant(q, a, degree, color, include_head));
    }
    std::unordered_map<VarId, std::string> signature;
    for (uint32_t i = 0; i < q.atoms().size(); ++i) {
      for (int pos = 0; pos < 3; ++pos) {
        Term t = q.atoms()[i].at(kColumns[pos]);
        if (!t.is_var()) continue;
        signature[t.var()] +=
            invariants[i] + "@" + std::to_string(pos) + "&";
      }
    }
    // Sort each signature's occurrence fragments to make it order-free.
    std::map<std::string, int> ranks;
    for (auto& [v, sig] : signature) {
      std::vector<std::string> parts;
      std::string cur;
      for (char ch : sig) {
        if (ch == '&') {
          parts.push_back(cur);
          cur.clear();
        } else {
          cur.push_back(ch);
        }
      }
      std::sort(parts.begin(), parts.end());
      std::string sorted;
      for (const std::string& part : parts) sorted += part + "&";
      sig = sorted;
      ranks[sig] = 0;
    }
    int next_rank = 0;
    for (auto& [sig, rank] : ranks) rank = next_rank++;
    std::unordered_map<VarId, int> new_color;
    for (const auto& [v, sig] : signature) new_color[v] = ranks[sig];
    if (new_color == color) break;
    color = std::move(new_color);
  }

  // Group atoms by final invariant.
  std::vector<std::pair<std::string, uint32_t>> keyed;
  for (uint32_t i = 0; i < q.atoms().size(); ++i) {
    keyed.emplace_back(
        AtomInvariant(q, q.atoms()[i], degree, color, include_head), i);
  }
  std::sort(keyed.begin(), keyed.end());

  Searcher searcher(q, include_head);
  for (size_t i = 0; i < keyed.size();) {
    size_t j = i;
    std::vector<uint32_t> group;
    while (j < keyed.size() && keyed[j].first == keyed[i].first) {
      group.push_back(keyed[j].second);
      ++j;
    }
    searcher.groups.push_back(std::move(group));
    i = j;
  }

  // DFS over permutations within each tie group; `used` is indexed by atom.
  std::vector<bool> used(q.atoms().size(), false);
  searcher.Dfs(0, &used, 0);

  if (!searcher.have_best) {
    // Backtracking exploded before finishing a single full ordering; fall
    // back to the deterministic sorted order.
    std::unordered_map<VarId, uint32_t> vmap;
    std::string repr;
    for (const auto& [inv, idx] : keyed) {
      repr += searcher.RenderAtom(q.atoms()[idx], &vmap);
      repr += ";";
    }
    result.repr = repr;
    result.var_map = std::move(vmap);
    result.exact = false;
    return result;
  }

  result.repr = std::move(searcher.best);
  result.var_map = std::move(searcher.best_var_map);
  result.exact = searcher.exact;
  return result;
}

std::string CanonicalString(const ConjunctiveQuery& q, bool include_head) {
  return Canonicalize(q, include_head).repr;
}

}  // namespace rdfviews::cq
