// Query terms: variables or RDF constants.
#ifndef RDFVIEWS_CQ_TERM_H_
#define RDFVIEWS_CQ_TERM_H_

#include <compare>
#include <cstdint>
#include <functional>

#include "common/hash.h"
#include "common/logging.h"
#include "rdf/term.h"

namespace rdfviews::cq {

/// Identifier of a query variable. Within a view-selection state, variable
/// ids are globally unique across views so that rewritings can join on them
/// by name, exactly as the paper's natural joins do.
using VarId = uint32_t;

/// A term of a conjunctive query: either a variable or a constant.
class Term {
 public:
  Term() : is_var_(true), value_(0) {}

  static Term Var(VarId v) { return Term(true, v); }
  static Term Const(rdf::TermId c) { return Term(false, c); }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }

  VarId var() const {
    RDFVIEWS_DCHECK(is_var_);
    return value_;
  }
  rdf::TermId constant() const {
    RDFVIEWS_DCHECK(!is_var_);
    return value_;
  }

  friend auto operator<=>(const Term&, const Term&) = default;

 private:
  Term(bool is_var, uint32_t value) : is_var_(is_var), value_(value) {}

  bool is_var_;
  uint32_t value_;
};

struct TermHash {
  size_t operator()(const Term& t) const {
    size_t seed = t.is_var() ? 0x55aa : 0xaa55;
    HashCombine(&seed, t.is_var() ? t.var() : t.constant());
    return seed;
  }
};

}  // namespace rdfviews::cq

#endif  // RDFVIEWS_CQ_TERM_H_
