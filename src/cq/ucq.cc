#include "cq/ucq.h"

#include <sstream>

namespace rdfviews::cq {

bool UnionOfQueries::Add(ConjunctiveQuery q) {
  // Head order is significant for a UCQ (all disjuncts share the head
  // schema), but head terms are included in the canonical form as a set;
  // we append the ordered head explicitly to keep order-sensitivity.
  CanonicalForm form = Canonicalize(q, /*include_head=*/true);
  std::string key = form.repr + "|ordered:";
  for (const Term& t : q.head()) {
    if (t.is_const()) {
      key += "#" + std::to_string(t.constant()) + ",";
    } else {
      auto it = form.var_map.find(t.var());
      key += "V" + (it == form.var_map.end()
                        ? std::string("?")
                        : std::to_string(it->second)) +
             ",";
    }
  }
  if (!canonical_.insert(key).second) return false;
  disjuncts_.push_back(std::move(q));
  return true;
}

size_t UnionOfQueries::TotalAtoms() const {
  size_t n = 0;
  for (const ConjunctiveQuery& q : disjuncts_) n += q.len();
  return n;
}

size_t UnionOfQueries::TotalConstants() const {
  size_t n = 0;
  for (const ConjunctiveQuery& q : disjuncts_) {
    n += q.NumConstants();
    for (const Term& t : q.head()) {
      if (t.is_const()) ++n;
    }
  }
  return n;
}

std::string UnionOfQueries::ToString(const rdf::Dictionary* dict) const {
  std::ostringstream out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out << "\n  UNION ";
    out << disjuncts_[i].ToString(dict);
  }
  return out.str();
}

}  // namespace rdfviews::cq
