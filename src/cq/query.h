// Conjunctive queries (Definition 2.1 of the paper): conjunctions of triple
// atoms whose terms are head variables, existential variables, or constants.
#ifndef RDFVIEWS_CQ_QUERY_H_
#define RDFVIEWS_CQ_QUERY_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "cq/atom.h"
#include "rdf/dictionary.h"

namespace rdfviews::cq {

/// A conjunctive query (or view) over the triple table. The head is an
/// ordered tuple of terms; reformulation (rules 5/6) can bind head variables
/// to constants, so head terms are not restricted to variables.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::string name, std::vector<Term> head,
                   std::vector<Atom> atoms)
      : name_(std::move(name)),
        head_(std::move(head)),
        atoms_(std::move(atoms)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Term>& head() const { return head_; }
  std::vector<Term>* mutable_head() { return &head_; }

  const std::vector<Atom>& atoms() const { return atoms_; }
  std::vector<Atom>* mutable_atoms() { return &atoms_; }

  /// Number of atoms, len(q) in the paper.
  size_t len() const { return atoms_.size(); }

  /// Total number of constant occurrences in the body, #c in Table 3.
  size_t NumConstants() const;

  /// All distinct variables of the body, in first-occurrence order.
  std::vector<VarId> BodyVars() const;

  /// Head variables (constants in the head are skipped).
  std::vector<VarId> HeadVars() const;

  bool IsHeadVar(VarId v) const;

  /// Variables of the body that are not head variables.
  std::vector<VarId> ExistentialVars() const;

  /// Occurrences of each body variable.
  std::unordered_map<VarId, std::vector<Occurrence>> VarOccurrences() const;

  /// Largest variable id used (head or body); 0 if none.
  VarId MaxVarId() const;

  /// Applies the substitution var -> term to head and body.
  void Substitute(VarId var, Term replacement);

  /// Renames every variable v to v + offset.
  void OffsetVars(VarId offset);

  /// Renames variables according to `mapping`; unmapped vars are unchanged.
  void RenameVars(const std::unordered_map<VarId, VarId>& mapping);

  /// Connected components of the body under shared variables; each entry is
  /// a list of atom indices. A query "has a Cartesian product" iff there is
  /// more than one component.
  std::vector<std::vector<uint32_t>> ConnectedComponents() const;

  bool HasCartesianProduct() const { return ConnectedComponents().size() > 1; }

  /// Splits into one query per connected component; head variables are
  /// distributed to the component that contains them.
  std::vector<ConjunctiveQuery> SplitIntoConnectedQueries() const;

  /// Checks well-formedness: non-empty body, head variables appear in the
  /// body, no atom with three constants (they introduce Cartesian products,
  /// see Sec. 3.3).
  Status Validate() const;

  /// Human-readable rendering; constants are shown through `dict` when
  /// provided, otherwise as #id.
  std::string ToString(const rdf::Dictionary* dict = nullptr) const;
  std::string TermToString(const Term& t,
                           const rdf::Dictionary* dict = nullptr) const;

  /// Optional variable display names (parsers fill these in).
  const std::map<VarId, std::string>& var_names() const { return var_names_; }
  void SetVarName(VarId v, std::string name) {
    var_names_[v] = std::move(name);
  }

  friend bool operator==(const ConjunctiveQuery& a,
                         const ConjunctiveQuery& b) {
    return a.head_ == b.head_ && a.atoms_ == b.atoms_;
  }

 private:
  std::string name_ = "q";
  std::vector<Term> head_;
  std::vector<Atom> atoms_;
  std::map<VarId, std::string> var_names_;
};

}  // namespace rdfviews::cq

#endif  // RDFVIEWS_CQ_QUERY_H_
