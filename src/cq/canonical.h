// Canonical forms of conjunctive queries up to variable renaming.
//
// Two queries have the same canonical string iff they are identical up to a
// bijective renaming of variables (and reordering of atoms). This is the
// workhorse behind duplicate-state detection and View Fusion (Def. 3.5):
// matching body-only canonical strings *proves* the bodies isomorphic, and
// the accompanying variable mapping realizes the renaming <2->1>.
#ifndef RDFVIEWS_CQ_CANONICAL_H_
#define RDFVIEWS_CQ_CANONICAL_H_

#include <string>
#include <unordered_map>

#include "cq/query.h"

namespace rdfviews::cq {

struct CanonicalForm {
  /// Canonical rendering; equal strings <=> isomorphic queries.
  std::string repr;
  /// Maps each body variable to its canonical index.
  std::unordered_map<VarId, uint32_t> var_map;
  /// True if the bounded backtracking search completed; when false (huge
  /// symmetric queries), the string is a deterministic refinement-based
  /// approximation that may fail to equate some isomorphic pairs but never
  /// equates non-isomorphic ones.
  bool exact = true;
};

/// Computes the canonical form. With include_head = true the head (as a set
/// of terms, plus the head/existential split of body variables) is part of
/// the canonicalized structure; with false only the body shape matters.
CanonicalForm Canonicalize(const ConjunctiveQuery& q, bool include_head);

/// Shorthand for Canonicalize(q, include_head).repr.
std::string CanonicalString(const ConjunctiveQuery& q, bool include_head);

}  // namespace rdfviews::cq

#endif  // RDFVIEWS_CQ_CANONICAL_H_
