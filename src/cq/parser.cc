#include "cq/parser.h"

#include <cctype>
#include <map>

#include "common/string_util.h"
#include "rdf/vocabulary.h"

namespace rdfviews::cq {

namespace {

struct Tokenizer {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }

  char Peek() {
    SkipSpace();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (text.size() - pos < word.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text[pos + i])) !=
          std::tolower(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    size_t end = pos + word.size();
    if (end < text.size() &&
        (std::isalnum(static_cast<unsigned char>(text[end])) ||
         text[end] == '_')) {
      return false;
    }
    pos = end;
    return true;
  }

  // Reads an identifier-ish token: [A-Za-z0-9_:.?-]+ or "<...>" or quoted.
  Result<std::string> ReadToken() {
    SkipSpace();
    if (pos >= text.size()) return Status::ParseError("unexpected end");
    char c = text[pos];
    if (c == '<') {
      size_t end = text.find('>', pos + 1);
      if (end == std::string_view::npos)
        return Status::ParseError("unterminated <uri>");
      std::string uri(text.substr(pos + 1, end - pos - 1));
      pos = end + 1;
      return "<" + uri + ">";
    }
    if (c == '"') {
      size_t end = pos + 1;
      std::string value = "\"";
      while (end < text.size() && text[end] != '"') {
        if (text[end] == '\\' && end + 1 < text.size()) ++end;
        value.push_back(text[end]);
        ++end;
      }
      if (end >= text.size())
        return Status::ParseError("unterminated string literal");
      pos = end + 1;
      value.push_back('"');
      return value;
    }
    size_t end = pos;
    auto is_token_char = [](char ch) {
      return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
             ch == ':' || ch == '.' || ch == '-' || ch == '?';
    };
    // '.' is a statement separator in SPARQL; allow it inside tokens only
    // when followed by an alphanumeric (e.g. version-ish names).
    while (end < text.size() && is_token_char(text[end])) {
      if (text[end] == '.' &&
          (end + 1 >= text.size() ||
           !std::isalnum(static_cast<unsigned char>(text[end + 1])))) {
        break;
      }
      ++end;
    }
    if (end == pos) return Status::ParseError(
        std::string("unexpected character '") + c + "'");
    std::string token(text.substr(pos, end - pos));
    pos = end;
    return token;
  }
};

bool LooksLikeVariable(const std::string& token) {
  if (token.empty()) return false;
  if (token[0] == '?') return true;
  return std::isupper(static_cast<unsigned char>(token[0])) &&
         token.find(':') == std::string::npos;
}

/// Shared variable/constant resolution for both parsers.
class TermBuilder {
 public:
  TermBuilder(rdf::Dictionary* dict, ConjunctiveQuery* query)
      : dict_(dict), query_(query) {}

  Term Resolve(const std::string& token) {
    if (LooksLikeVariable(token)) {
      std::string key = token[0] == '?' ? token.substr(1) : token;
      auto it = vars_.find(key);
      if (it != vars_.end()) return Term::Var(it->second);
      VarId id = next_var_++;
      vars_.emplace(key, id);
      query_->SetVarName(id, key);
      return Term::Var(id);
    }
    if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
      return Term::Const(dict_->Intern(token.substr(1, token.size() - 2),
                                       rdf::TermKind::kLiteral));
    }
    if (token.size() >= 2 && token.front() == '<' && token.back() == '>') {
      std::string_view uri(token);
      uri = uri.substr(1, uri.size() - 2);
      return Term::Const(dict_->Intern(rdf::NormalizeWellKnownUri(uri)));
    }
    if (token == "a") return Term::Const(rdf::kRdfType);
    return Term::Const(dict_->Intern(token));
  }

  bool HasVar(const std::string& name) const {
    std::string key = !name.empty() && name[0] == '?' ? name.substr(1) : name;
    return vars_.contains(key);
  }

 private:
  rdf::Dictionary* dict_;
  ConjunctiveQuery* query_;
  std::map<std::string, VarId> vars_;
  VarId next_var_ = 0;
};

}  // namespace

Result<ConjunctiveQuery> ParseDatalog(std::string_view text,
                                      rdf::Dictionary* dict) {
  Tokenizer tok{text};
  ConjunctiveQuery query;
  TermBuilder terms(dict, &query);

  Result<std::string> name = tok.ReadToken();
  if (!name.ok()) return name.status();
  query.set_name(*name);

  if (!tok.Consume('(')) return Status::ParseError("expected '(' after name");
  std::vector<Term> head;
  if (!tok.Consume(')')) {
    while (true) {
      Result<std::string> t = tok.ReadToken();
      if (!t.ok()) return t.status();
      head.push_back(terms.Resolve(*t));
      if (tok.Consume(')')) break;
      if (!tok.Consume(',')) return Status::ParseError("expected ',' in head");
    }
  }
  *query.mutable_head() = std::move(head);

  if (!tok.Consume(':') || !tok.Consume('-')) {
    return Status::ParseError("expected ':-'");
  }

  while (true) {
    Result<std::string> t_name = tok.ReadToken();
    if (!t_name.ok()) return t_name.status();
    if (*t_name != "t") return Status::ParseError("expected atom 't(...)'");
    if (!tok.Consume('(')) return Status::ParseError("expected '('");
    Atom atom;
    for (int i = 0; i < 3; ++i) {
      Result<std::string> t = tok.ReadToken();
      if (!t.ok()) return t.status();
      atom.set(static_cast<rdf::Column>(i), terms.Resolve(*t));
      if (i < 2 && !tok.Consume(','))
        return Status::ParseError("expected ',' in atom");
    }
    if (!tok.Consume(')')) return Status::ParseError("expected ')'");
    query.mutable_atoms()->push_back(atom);
    if (!tok.Consume(',')) break;
  }
  tok.Consume('.');
  if (!tok.AtEnd()) return Status::ParseError("trailing input after query");

  RDFVIEWS_RETURN_IF_ERROR(query.Validate());
  return query;
}

Result<std::vector<ConjunctiveQuery>> ParseDatalogProgram(
    std::string_view text, rdf::Dictionary* dict) {
  std::vector<ConjunctiveQuery> out;
  std::string current;
  auto flush = [&]() -> Status {
    std::string_view body = Trim(current);
    if (body.empty()) return Status::OK();
    Result<ConjunctiveQuery> q = ParseDatalog(body, dict);
    if (!q.ok()) return q.status();
    out.push_back(std::move(*q));
    current.clear();
    return Status::OK();
  };
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    current += std::string(line) + " ";
    // A rule is complete when parentheses balance, it has ':-', and it does
    // not end in a continuation comma.
    int depth = 0;
    for (char c : current) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
    }
    std::string_view so_far = Trim(current);
    bool continues = !so_far.empty() && so_far.back() == ',';
    if (depth == 0 && !continues &&
        current.find(":-") != std::string::npos) {
      RDFVIEWS_RETURN_IF_ERROR(flush());
    }
  }
  RDFVIEWS_RETURN_IF_ERROR(flush());
  return out;
}

Result<ConjunctiveQuery> ParseSparql(std::string_view text,
                                     rdf::Dictionary* dict) {
  Tokenizer tok{text};
  ConjunctiveQuery query;
  query.set_name("q");
  TermBuilder terms(dict, &query);

  if (!tok.ConsumeWord("SELECT"))
    return Status::ParseError("expected SELECT");
  std::vector<std::string> head_names;
  while (tok.Peek() == '?') {
    Result<std::string> v = tok.ReadToken();
    if (!v.ok()) return v.status();
    head_names.push_back(*v);
  }
  if (head_names.empty())
    return Status::ParseError("SELECT needs at least one variable");
  if (!tok.ConsumeWord("WHERE")) return Status::ParseError("expected WHERE");
  if (!tok.Consume('{')) return Status::ParseError("expected '{'");

  while (true) {
    if (tok.Consume('}')) break;
    Atom atom;
    for (int i = 0; i < 3; ++i) {
      Result<std::string> t = tok.ReadToken();
      if (!t.ok()) return t.status();
      atom.set(static_cast<rdf::Column>(i), terms.Resolve(*t));
    }
    query.mutable_atoms()->push_back(atom);
    if (!tok.Consume('.')) {
      if (tok.Consume('}')) break;
      return Status::ParseError("expected '.' or '}' after triple pattern");
    }
  }
  if (!tok.AtEnd()) return Status::ParseError("trailing input after '}'");

  for (const std::string& name : head_names) {
    if (!terms.HasVar(name)) {
      return Status::ParseError("SELECT variable " + name +
                                " not used in pattern");
    }
    ConjunctiveQuery probe;
    query.mutable_head()->push_back(terms.Resolve(name));
    (void)probe;
  }
  RDFVIEWS_RETURN_IF_ERROR(query.Validate());
  return query;
}

}  // namespace rdfviews::cq
