// Containment mappings, equivalence and minimization of conjunctive queries
// (Chandra & Merlin [7] in the paper's reference list).
#ifndef RDFVIEWS_CQ_CONTAINMENT_H_
#define RDFVIEWS_CQ_CONTAINMENT_H_

#include <optional>
#include <unordered_map>

#include "cq/query.h"

namespace rdfviews::cq {

/// A containment mapping: variables of the source query to terms of the
/// target query.
using ContainmentMapping = std::unordered_map<VarId, Term>;

/// Searches for a containment mapping phi from `from` into `to`: every atom
/// of `from` maps to some atom of `to`, constants map to themselves, and
/// phi(head(from)[i]) == head(to)[i] position-wise. Its existence proves
/// to ⊑ from (every answer of `to` is an answer of `from`).
std::optional<ContainmentMapping> FindContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to);

/// True iff sub ⊑ sup (there is a containment mapping sup -> sub).
bool Contains(const ConjunctiveQuery& sup, const ConjunctiveQuery& sub);

/// True iff the two queries are equivalent (mutual containment).
bool AreEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

/// Returns the minimal (core) equivalent of `q`: no atom can be removed
/// while preserving equivalence. Definition 2.1 assumes all queries and
/// views are minimal.
ConjunctiveQuery Minimize(const ConjunctiveQuery& q);

/// True iff the only containment mapping from q to itself is the identity
/// on head variables and no atom is redundant.
bool IsMinimal(const ConjunctiveQuery& q);

}  // namespace rdfviews::cq

#endif  // RDFVIEWS_CQ_CONTAINMENT_H_
