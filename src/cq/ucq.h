// Unions of conjunctive queries: the output language of reformulation and
// the view language of post-reformulation materialization.
#ifndef RDFVIEWS_CQ_UCQ_H_
#define RDFVIEWS_CQ_UCQ_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "cq/canonical.h"
#include "cq/query.h"

namespace rdfviews::cq {

/// A union of conjunctive queries with identical head arity. Disjuncts are
/// de-duplicated up to variable renaming via canonical forms.
class UnionOfQueries {
 public:
  UnionOfQueries() = default;
  explicit UnionOfQueries(std::string name) : name_(std::move(name)) {}

  /// Adds a disjunct; returns true if it was new (up to renaming).
  bool Add(ConjunctiveQuery q);

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  size_t size() const { return disjuncts_.size(); }
  bool empty() const { return disjuncts_.empty(); }

  const std::string& name() const { return name_; }

  /// Total number of atoms across disjuncts, #a in Table 3.
  size_t TotalAtoms() const;
  /// Total number of constants across disjuncts, #c in Table 3.
  size_t TotalConstants() const;

  std::string ToString(const rdf::Dictionary* dict = nullptr) const;

 private:
  std::string name_ = "q";
  std::vector<ConjunctiveQuery> disjuncts_;
  std::unordered_set<std::string> canonical_;
};

}  // namespace rdfviews::cq

#endif  // RDFVIEWS_CQ_UCQ_H_
