// A triple atom t(s, p, o) over the single triple table.
#ifndef RDFVIEWS_CQ_ATOM_H_
#define RDFVIEWS_CQ_ATOM_H_

#include <compare>

#include "cq/term.h"
#include "rdf/triple.h"

namespace rdfviews::cq {

/// One atom of a conjunctive query over the triple table t(s, p, o).
struct Atom {
  Term s;
  Term p;
  Term o;

  friend auto operator<=>(const Atom&, const Atom&) = default;

  Term at(rdf::Column c) const {
    switch (c) {
      case rdf::Column::kS: return s;
      case rdf::Column::kP: return p;
      case rdf::Column::kO: return o;
    }
    return Term();
  }

  void set(rdf::Column c, Term t) {
    switch (c) {
      case rdf::Column::kS: s = t; break;
      case rdf::Column::kP: p = t; break;
      case rdf::Column::kO: o = t; break;
    }
  }

  int NumConstants() const {
    return s.is_const() + p.is_const() + o.is_const();
  }

  /// The constants-only access pattern of this atom (variables -> wildcard).
  rdf::Pattern ToPattern() const {
    rdf::Pattern pat;
    if (s.is_const()) pat.s = s.constant();
    if (p.is_const()) pat.p = p.constant();
    if (o.is_const()) pat.o = o.constant();
    return pat;
  }
};

/// A (atom index, column) occurrence of a term inside a query body.
struct Occurrence {
  uint32_t atom = 0;
  rdf::Column column = rdf::Column::kS;

  friend auto operator<=>(const Occurrence&, const Occurrence&) = default;
};

}  // namespace rdfviews::cq

#endif  // RDFVIEWS_CQ_ATOM_H_
