#include "cq/containment.h"

#include <algorithm>

#include "common/logging.h"

namespace rdfviews::cq {

namespace {

constexpr rdf::Column kColumns[3] = {rdf::Column::kS, rdf::Column::kP,
                                     rdf::Column::kO};

/// Tries to extend `phi` so that phi(from_term) == to_term.
bool Unify(Term from_term, Term to_term, ContainmentMapping* phi) {
  if (from_term.is_const()) {
    return to_term.is_const() && from_term.constant() == to_term.constant();
  }
  auto it = phi->find(from_term.var());
  if (it != phi->end()) return it->second == to_term;
  phi->emplace(from_term.var(), to_term);
  return true;
}

bool SearchMapping(const ConjunctiveQuery& from, const ConjunctiveQuery& to,
                   size_t atom_idx, ContainmentMapping* phi) {
  if (atom_idx == from.atoms().size()) return true;
  const Atom& a = from.atoms()[atom_idx];
  for (const Atom& b : to.atoms()) {
    ContainmentMapping saved = *phi;
    bool ok = true;
    for (rdf::Column c : kColumns) {
      if (!Unify(a.at(c), b.at(c), phi)) {
        ok = false;
        break;
      }
    }
    if (ok && SearchMapping(from, to, atom_idx + 1, phi)) return true;
    *phi = std::move(saved);
  }
  return false;
}

}  // namespace

std::optional<ContainmentMapping> FindContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  if (from.head().size() != to.head().size()) return std::nullopt;
  ContainmentMapping phi;
  // Pin head terms position-wise first.
  for (size_t i = 0; i < from.head().size(); ++i) {
    if (!Unify(from.head()[i], to.head()[i], &phi)) return std::nullopt;
  }
  if (!SearchMapping(from, to, 0, &phi)) return std::nullopt;
  return phi;
}

bool Contains(const ConjunctiveQuery& sup, const ConjunctiveQuery& sub) {
  return FindContainmentMapping(sup, sub).has_value();
}

bool AreEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return Contains(a, b) && Contains(b, a);
}

ConjunctiveQuery Minimize(const ConjunctiveQuery& q) {
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed && current.atoms().size() > 1) {
    changed = false;
    for (size_t i = 0; i < current.atoms().size(); ++i) {
      ConjunctiveQuery candidate = current;
      candidate.mutable_atoms()->erase(candidate.mutable_atoms()->begin() +
                                       static_cast<ptrdiff_t>(i));
      // Head variables must survive.
      bool head_ok = true;
      std::vector<VarId> body_vars = candidate.BodyVars();
      for (VarId v : candidate.HeadVars()) {
        if (std::find(body_vars.begin(), body_vars.end(), v) ==
            body_vars.end()) {
          head_ok = false;
          break;
        }
      }
      if (!head_ok) continue;
      // candidate ⊑ current holds trivially (atom subset); the reverse
      // containment makes them equivalent, so the atom is redundant.
      if (FindContainmentMapping(current, candidate).has_value()) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

bool IsMinimal(const ConjunctiveQuery& q) {
  return Minimize(q).atoms().size() == q.atoms().size();
}

}  // namespace rdfviews::cq
