#include "reform/reformulate.h"

#include <deque>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "rdf/vocabulary.h"

namespace rdfviews::reform {

namespace {

using cq::Atom;
using cq::ConjunctiveQuery;
using cq::Term;
using cq::VarId;

/// Applies one backward rule step: returns all queries derivable from `q`
/// by one rule application on one atom.
std::vector<ConjunctiveQuery> OneStep(const ConjunctiveQuery& q,
                                      const rdf::Schema& schema,
                                      size_t* rule_applications) {
  std::vector<ConjunctiveQuery> out;
  VarId fresh = q.MaxVarId() + 1;

  for (size_t gi = 0; gi < q.atoms().size(); ++gi) {
    const Atom& g = q.atoms()[gi];
    const bool p_is_type =
        g.p.is_const() && g.p.constant() == rdf::kRdfType;

    // Rule 1: g = t(s, rdf:type, c2), c1 subClassOf c2 in S.
    if (p_is_type && g.o.is_const()) {
      for (rdf::TermId c1 : schema.DirectSubClasses(g.o.constant())) {
        ConjunctiveQuery next = q;
        (*next.mutable_atoms())[gi].o = Term::Const(c1);
        out.push_back(std::move(next));
        ++*rule_applications;
      }
    }
    // Rule 2: g = t(s, p2, o), p1 subPropertyOf p2 in S.
    if (g.p.is_const() && !p_is_type) {
      for (rdf::TermId p1 : schema.DirectSubProperties(g.p.constant())) {
        ConjunctiveQuery next = q;
        (*next.mutable_atoms())[gi].p = Term::Const(p1);
        out.push_back(std::move(next));
        ++*rule_applications;
      }
    }
    // Rule 3: g = t(s, rdf:type, c), p domain c in S  =>  t(s, p, X).
    // Rule 4: g = t(o, rdf:type, c), p range  c in S  =>  t(X, p, o).
    if (p_is_type && g.o.is_const()) {
      rdf::TermId c = g.o.constant();
      for (rdf::TermId p : schema.properties()) {
        for (rdf::TermId dc : schema.DirectDomains(p)) {
          if (dc != c) continue;
          ConjunctiveQuery next = q;
          Atom& atom = (*next.mutable_atoms())[gi];
          atom.p = Term::Const(p);
          atom.o = Term::Var(fresh);
          out.push_back(std::move(next));
          ++*rule_applications;
        }
        for (rdf::TermId rc : schema.DirectRanges(p)) {
          if (rc != c) continue;
          ConjunctiveQuery next = q;
          Atom& atom = (*next.mutable_atoms())[gi];
          atom.o = atom.s;  // the typed term moves to the object position
          atom.s = Term::Var(fresh);
          atom.p = Term::Const(p);
          out.push_back(std::move(next));
          ++*rule_applications;
        }
      }
    }
    // Rule 5: g = t(s, rdf:type, X)  =>  t(s, rdf:type, ci) σ[X/ci].
    if (p_is_type && g.o.is_var()) {
      VarId x = g.o.var();
      for (rdf::TermId ci : schema.classes()) {
        ConjunctiveQuery next = q;
        next.Substitute(x, Term::Const(ci));
        out.push_back(std::move(next));
        ++*rule_applications;
      }
    }
    // Rule 6: g = t(s, X, o)  =>  t(s, pi, o) σ[X/pi]  and
    //                             t(s, rdf:type, o) σ[X/rdf:type].
    if (g.p.is_var()) {
      VarId x = g.p.var();
      for (rdf::TermId pi : schema.properties()) {
        ConjunctiveQuery next = q;
        next.Substitute(x, Term::Const(pi));
        out.push_back(std::move(next));
        ++*rule_applications;
      }
      ConjunctiveQuery next = q;
      next.Substitute(x, Term::Const(rdf::kRdfType));
      out.push_back(std::move(next));
      ++*rule_applications;
    }
  }
  return out;
}

/// Exact order-sensitive serialization of a query (head + body, raw term
/// ids). Two queries with equal keys are literally identical — a far
/// stronger condition than the canonical (renaming-insensitive) equality
/// UnionOfQueries::Add tests, but linear to compute instead of requiring a
/// backtracking canonicalization. Used as a cheap pre-filter: the BFS
/// re-derives the same literal query along many rule-application orders
/// (the exponential blowup of Tab. 3), and every re-derivation short of
/// the first can be dropped before it pays for canonicalization.
std::string LiteralKey(const ConjunctiveQuery& q) {
  std::string key;
  key.reserve(8 + q.atoms().size() * 16);
  auto append_term = [&key](const Term& t) {
    key.push_back(t.is_var() ? 'v' : 'c');
    uint64_t value = t.is_var() ? t.var() : t.constant();
    key.append(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  for (const Term& t : q.head()) append_term(t);
  key.push_back('|');
  for (const Atom& a : q.atoms()) {
    append_term(a.s);
    append_term(a.p);
    append_term(a.o);
  }
  return key;
}

}  // namespace

ReformulationResult Reformulate(const cq::ConjunctiveQuery& q,
                                const rdf::Schema& schema,
                                const ReformulationOptions& options) {
  ReformulationResult result;
  result.ucq = cq::UnionOfQueries(q.name());
  // Literal-form visited set: OneStep products that re-derive an
  // already-seen query (same rule applications in a different order) are
  // dropped here without being re-canonicalized or re-enqueued.
  std::unordered_set<std::string> visited;
  std::deque<size_t> worklist;  // indices into result.ucq.disjuncts()
  result.ucq.Add(q);
  visited.insert(LiteralKey(q));
  worklist.push_back(0);

  while (!worklist.empty()) {
    // Copy: OneStep products may grow the disjunct vector under us.
    ConjunctiveQuery cur = result.ucq.disjuncts()[worklist.front()];
    worklist.pop_front();
    for (ConjunctiveQuery& next :
         OneStep(cur, schema, &result.rule_applications)) {
      if (result.ucq.size() >= options.max_queries) {
        result.complete = false;
        return result;
      }
      if (!visited.insert(LiteralKey(next)).second) continue;
      next.set_name(q.name());
      if (result.ucq.Add(next)) {
        worklist.push_back(result.ucq.size() - 1);
      }
    }
  }
  return result;
}

ReformulationResult ReformulateAtom(const rdf::Pattern& pattern,
                                    const rdf::Schema& schema,
                                    const ReformulationOptions& options) {
  ConjunctiveQuery q;
  q.set_name("atom");
  Atom atom;
  std::vector<Term> head;
  VarId next_var = 0;
  auto make_term = [&](rdf::TermId value) {
    if (value != rdf::kAnyTerm) return Term::Const(value);
    Term t = Term::Var(next_var++);
    head.push_back(t);
    return t;
  };
  atom.s = make_term(pattern.s);
  atom.p = make_term(pattern.p);
  atom.o = make_term(pattern.o);
  q.mutable_atoms()->push_back(atom);
  *q.mutable_head() = head;
  return Reformulate(q, schema, options);
}

double TheoremBound(const rdf::Schema& schema, size_t num_atoms) {
  double s = static_cast<double>(schema.num_statements());
  double per_atom = 2.0 * s * s;
  double bound = 1.0;
  for (size_t i = 0; i < num_atoms; ++i) bound *= per_atom;
  return bound;
}

uint64_t ReformulatedStatistics::CountPatternUncached(
    const rdf::Pattern& pattern) const {
  ReformulationResult reform = ReformulateAtom(pattern, *schema_);
  RDFVIEWS_CHECK_MSG(reform.complete,
                     "atom reformulation exceeded the query budget");
  // Count distinct projections of the union's matches. Every disjunct is a
  // single atom, so its matches are direct index scans.
  std::unordered_set<std::vector<rdf::TermId>, VectorHash> distinct;
  for (const cq::ConjunctiveQuery& disjunct : reform.ucq.disjuncts()) {
    RDFVIEWS_DCHECK(disjunct.atoms().size() == 1);
    const Atom& atom = disjunct.atoms()[0];
    rdf::Pattern scan = atom.ToPattern();
    // Repeated variables inside the atom require a post-filter.
    const bool s_o_equal = atom.s.is_var() && atom.o.is_var() &&
                           atom.s.var() == atom.o.var();
    store().Scan(scan, [&](const rdf::Triple& t) {
      if (s_o_equal && t.s != t.o) return true;
      std::vector<rdf::TermId> row;
      row.reserve(disjunct.head().size());
      for (const Term& h : disjunct.head()) {
        if (h.is_const()) {
          row.push_back(h.constant());
          continue;
        }
        // Locate the variable inside the atom (first occurrence).
        if (atom.s.is_var() && atom.s.var() == h.var()) {
          row.push_back(t.s);
        } else if (atom.p.is_var() && atom.p.var() == h.var()) {
          row.push_back(t.p);
        } else {
          RDFVIEWS_DCHECK(atom.o.is_var() && atom.o.var() == h.var());
          row.push_back(t.o);
        }
      }
      distinct.insert(std::move(row));
      return true;
    });
  }
  return distinct.size();
}

}  // namespace rdfviews::reform
