// Algorithm 1 of the paper: Reformulate(q, S).
//
// Given a conjunctive query q and an RDF Schema S, produces a union of
// conjunctive queries ucq such that for any database D:
//   evaluate(q, saturate(D, S)) = evaluate(ucq, D)          (Theorem 4.2)
// The rules (Figure 2), applied backward on query atoms:
//   (1) t(s, rdf:type, c2) <= t(s, rdf:type, c1)   if c1 subClassOf c2
//   (2) t(s, p2, o)        <= t(s, p1, o)          if p1 subPropertyOf p2
//   (3) t(s, rdf:type, c)  <= ∃X t(s, p, X)        if p domain c
//   (4) t(o, rdf:type, c)  <= ∃X t(X, p, o)        if p range c
//   (5) t(s, rdf:type, X)  <= t(s, rdf:type, ci)σ[X/ci]  for every class ci
//   (6) t(s, X, o)         <= t(s, pi, o)σ[X/pi]   for every property pi,
//                             and t(s, rdf:type, o)σ[X/rdf:type]
// Unlike the DL-fragment algorithms in the literature, rules 5 and 6 handle
// atoms with *variables* in class/property position (Sec. 7).
#ifndef RDFVIEWS_REFORM_REFORMULATE_H_
#define RDFVIEWS_REFORM_REFORMULATE_H_

#include "cq/query.h"
#include "cq/ucq.h"
#include "rdf/schema.h"
#include "rdf/statistics.h"

namespace rdfviews::reform {

struct ReformulationOptions {
  /// Safety valve on the number of generated (distinct) queries; Theorem 4.1
  /// bounds the output by (2|S|^2)^m, which can explode for large m.
  size_t max_queries = 1000000;
};

struct ReformulationResult {
  cq::UnionOfQueries ucq;
  /// False if max_queries stopped the fixpoint early.
  bool complete = true;
  /// Number of rule applications performed.
  size_t rule_applications = 0;
};

/// Runs Algorithm 1. The returned union always contains q itself.
ReformulationResult Reformulate(const cq::ConjunctiveQuery& q,
                                const rdf::Schema& schema,
                                const ReformulationOptions& options = {});

/// Reformulates a single triple pattern (a 1-atom query whose head projects
/// the pattern's variable positions), as the paper's post-reformulation does
/// for every statistics atom. All disjuncts are 1-atom queries.
ReformulationResult ReformulateAtom(const rdf::Pattern& pattern,
                                    const rdf::Schema& schema,
                                    const ReformulationOptions& options = {});

/// Theorem 4.1 upper bound on |Reformulate(q, S)|: (2|S|^2)^m.
double TheoremBound(const rdf::Schema& schema, size_t num_atoms);

/// Statistics provider for the paper's post-reformulation: the cardinality
/// of every pattern is computed as |Reformulate(pattern, S)| evaluated on
/// the *original* store with set semantics — identical, by Theorem 4.2, to
/// the count on the saturated store, without saturating anything.
class ReformulatedStatistics : public rdf::Statistics {
 public:
  ReformulatedStatistics(const rdf::TripleStore* store,
                         const rdf::Schema* schema)
      : rdf::Statistics(store), schema_(schema) {}

  /// Total "virtual" triples (the saturated size), i.e. the count of the
  /// all-wildcard pattern.
  uint64_t TotalTriples() const override {
    return CountPattern(rdf::Pattern{});
  }

 protected:
  uint64_t CountPatternUncached(const rdf::Pattern& pattern) const override;

 private:
  const rdf::Schema* schema_;
};

}  // namespace rdfviews::reform

#endif  // RDFVIEWS_REFORM_REFORMULATE_H_
