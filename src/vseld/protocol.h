// vseld wire protocol: length-prefixed, versioned, checksummed frames over
// a stream socket, encoded with the persistence layer's ByteWriter /
// ByteReader (vsel/serialize/binary_io.h) so the daemon speaks the same
// hardened dialect as the cache files.
//
// Framing. Every message on the wire is
//
//     [u32 magic "VSLD"] [u32 payload_length] [payload bytes]
//
// and the payload itself is
//
//     [u32 protocol version] [u8 frame kind] [kind-specific fields]
//     [u128 checksum of everything before it]
//
// The reader side is hostile-input hardened end to end: the length header
// is validated against kMaxFramePayload *before* any allocation (a
// corrupted or malicious length cannot drive a huge reserve), every field
// read is bounds-checked by ByteReader's latched-failure semantics,
// unknown versions / kinds / verbs and checksum mismatches are rejected
// with ParseError, and trailing bytes after a well-formed payload are
// rejected too (AtEnd). FrameTransport mirrors the same latched-failure
// contract at the socket level: a peer dropping mid-frame latches the
// transport — the current read fails cleanly and every later operation
// fails fast, so a torn connection is a counted error, never a wedged
// worker.
//
// Queries travel as datalog text (cq::ParseDatalog syntax), parsed by the
// daemon against the addressed store's dictionary: term ids are
// store-local, so shipping them would bind the client to the server's
// interning order. Options travel through serialize::SerializeOptions (the
// deterministic scalar subset; stop tokens, callbacks and storage paths
// never cross the wire). Recommendations travel as the serialize.h blob,
// with the producing CacheIdentity alongside so the client can decode it.
#ifndef RDFVIEWS_VSELD_PROTOCOL_H_
#define RDFVIEWS_VSELD_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "vsel/options.h"
#include "vsel/selector.h"
#include "vsel/session/session.h"  // TuningProgress

namespace rdfviews::vseld {

inline constexpr uint32_t kFrameMagic = 0x444C5356;  // "VSLD"
/// Version 2 added the fleet verbs (register-worker, dispatch-partition,
/// partition-result, worker-heartbeat), the remote cache verbs, and the
/// ping response's protocol_version echo. Both sides reject other
/// versions, and `ping` negotiates explicitly: the server answers with its
/// version and Client::Ping fails fast on a mismatch instead of letting a
/// later verb die with a confusing ParseError.
inline constexpr uint32_t kProtocolVersion = 2;
/// Hard cap on one frame's payload; a length header beyond it is rejected
/// before any allocation.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Client-to-server request verbs, and the two server-to-client frame
/// kinds (a response to a request, or a pushed progress event inside a
/// subscribe stream).
enum class Verb : uint8_t {
  kPing = 1,
  kOpenSession = 2,
  kUpdate = 3,
  kPoll = 4,
  kFetchRecommendation = 5,
  kCancel = 6,
  kSubscribeProgress = 7,
  kTelemetrySnapshot = 8,
  kCloseSession = 9,
  kShutdown = 10,
  // Fleet verbs. A worker registers with kRegisterWorker; after the ack
  // the same connection inverts into a dispatch stream: the daemon writes
  // kDispatchPartition frames (encoded as Requests) and the worker answers
  // with kPartitionResult / kWorkerHeartbeat frames.
  kRegisterWorker = 11,
  kDispatchPartition = 12,
  kPartitionResult = 13,
  kWorkerHeartbeat = 14,
  // Remote partition cache: a worker reads/writes the daemon's shared
  // per-identity cache through these instead of a local directory.
  kCacheGet = 15,
  kCachePut = 16,
  // Server → client:
  kResponse = 32,
  kProgressEvent = 33,
};

const char* VerbName(Verb verb);

/// Telemetry snapshot rendering requested by kTelemetrySnapshot.
enum class TelemetryFormat : uint8_t { kJson = 0, kPrometheus = 1 };

/// One decoded client request. Fields beyond (verb, request_id, client_id)
/// are verb-specific; unused ones stay at their defaults on the wire.
struct Request {
  Verb verb = Verb::kPing;
  /// Client-chosen correlation id, echoed in the response.
  uint64_t request_id = 0;
  /// The tenant identity quotas are enforced per. Free-form, non-empty for
  /// session verbs.
  std::string client_id;
  /// Session verbs: the target session.
  uint64_t session_id = 0;

  // kOpenSession:
  std::string store_tag;
  vsel::SelectorOptions options;  // wire subset; see serialize::SerializeOptions

  // kUpdate:
  std::vector<std::string> add_queries;  // datalog texts
  std::vector<std::string> remove_queries;
  /// kUpdate: block until the update finishes (the response then carries
  /// the final progress). kFetchRecommendation: wait for any in-flight
  /// update to finish before serializing.
  bool wait = false;

  // kFetchRecommendation:
  /// Normalize wall-clock-dependent stats fields so two equivalent runs
  /// yield byte-identical blobs (the parity gate's form).
  bool canonical = false;

  // kTelemetrySnapshot:
  TelemetryFormat telemetry_format = TelemetryFormat::kJson;

  // Fleet verbs. kDispatchPartition: `unit_id` names the work unit and
  // `blob` carries the fleet work-unit encoding (canonical key, wire
  // TuningConfig, start state, statistics snapshot, identity).
  // kPartitionResult: the unit echoed back with either a serialized
  // partition outcome in `blob` (result_code == kOk) or the worker-side
  // failure in (result_code, result_message). kWorkerHeartbeat: liveness
  // for the in-flight `unit_id`.
  uint64_t unit_id = 0;
  StatusCode result_code = StatusCode::kOk;
  std::string result_message;

  // kCacheGet / kCachePut: the salted cache key, the sealed entry bytes
  // (put), and the identity the entry must decode under.
  std::string cache_key;
  std::string blob;
  uint64_t identity_store_tag = 0;
  uint64_t identity_config_tag = 0;
};

/// One decoded server frame: either the response to a request (kind
/// kResponse) or a pushed progress event (kind kProgressEvent, only inside
/// a kSubscribeProgress stream, terminated by the stream's kResponse).
struct Response {
  /// Echo of the request's correlation id.
  uint64_t request_id = 0;
  /// kOk or the failure; `message` explains non-OK codes.
  StatusCode code = StatusCode::kOk;
  std::string message;

  /// kOpenSession: the new session id. Session verbs: echo.
  uint64_t session_id = 0;
  /// kUpdate (wait) / kPoll: the update's progress snapshot.
  vsel::TuningProgress progress;
  /// kFetchRecommendation: the serialized Recommendation blob.
  /// kTelemetrySnapshot: the rendered text.
  std::string blob;
  /// kFetchRecommendation: the identity the blob was sealed under (what
  /// DeserializeRecommendation must be handed).
  uint64_t store_tag = 0;
  uint64_t config_tag = 0;

  /// kProgressEvent frames only.
  bool is_progress_event = false;
  vsel::ProgressEvent event;
  /// Events the session's bounded queue dropped before this one.
  uint64_t events_dropped = 0;

  /// kPing: the server's kProtocolVersion, echoed so the client can reject
  /// a mismatched daemon with a clear Status up front.
  uint32_t protocol_version = 0;

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const;
};

/// Encodes one request / response into payload bytes (version + kind +
/// fields + checksum — everything between the length header and the next
/// frame).
std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

/// Decodes a payload. Rejects wrong versions, unknown kinds/verbs,
/// truncations, checksum mismatches and trailing bytes with ParseError.
Result<Request> DecodeRequest(std::string_view payload);
Result<Response> DecodeResponse(std::string_view payload);

/// Blocking framed transport over a connected stream socket. Takes
/// ownership of the fd. Thread-compatible: one reader and one writer at a
/// time (vseld's connection handlers are single-threaded per connection).
///
/// Latched-failure contract (the protocol-level mirror of ByteReader):
/// the first failed operation — EOF or a short read mid-frame, a write
/// error, an oversized or malformed length header, an injected
/// vseld.frame.* fault — latches the transport; the operation returns a
/// non-OK Status and every subsequent call fails immediately without
/// touching the socket. Callers therefore observe a torn peer exactly
/// once, as a clean Status, and can never spin or hang on a dead fd.
class FrameTransport {
 public:
  explicit FrameTransport(int fd) : fd_(fd) {}
  ~FrameTransport();
  FrameTransport(const FrameTransport&) = delete;
  FrameTransport& operator=(const FrameTransport&) = delete;

  /// Writes one frame (header + payload). Evaluates fault site
  /// vseld.frame.write.
  Status WriteFrame(std::string_view payload);

  /// Reads one frame's payload. Evaluates fault site vseld.frame.read.
  /// A clean EOF *between* frames returns NotFound("connection closed");
  /// EOF mid-frame is the torn-peer case and returns Internal.
  Result<std::string> ReadFrame();

  /// Half-closes both directions, unblocking any blocked read/write on
  /// another thread (the drain path). Idempotent; does not close the fd.
  void ShutdownBoth();

  bool failed() const { return failed_.load(std::memory_order_relaxed); }
  int fd() const { return fd_; }

 private:
  Status Latch(Status why);
  Status ReadExact(char* buf, size_t n, bool* clean_eof_at_start);
  Status WriteAll(const char* buf, size_t n);

  int fd_;
  std::atomic<bool> failed_{false};
};

/// AF_UNIX helpers. ListenUnix unlinks a stale socket file first;
/// ConnectUnix returns the connected fd.
Result<int> ListenUnix(const std::string& path, int backlog);
Result<int> ConnectUnix(const std::string& path);

}  // namespace rdfviews::vseld

#endif  // RDFVIEWS_VSELD_PROTOCOL_H_
