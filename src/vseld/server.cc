#include "vseld/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/fault.h"
#include "common/telemetry/export.h"
#include "cq/parser.h"
#include "vsel/serialize/serialize.h"
#include "vsel/serialize/tiered_cache.h"
#include "vsel/session/session.h"

namespace rdfviews::vseld {

namespace serialize = vsel::serialize;

namespace {

/// The fixed rejection-reason label set (pre-registered so the hot path
/// never takes the registry mutex).
constexpr const char* kRejectReasons[] = {
    "draining",      "bad_request", "unknown_store", "max_sessions",
    "client_quota",  "update_size", "unknown_session", "parse",
    "busy",          "subscriber",  "fault",         "no_recommendation",
};

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      admission_(options_.quota),
      fleet_pool_(WorkerPool::Options{
          .liveness_timeout_sec = options_.fleet_liveness_timeout_sec}) {
  auto* reg = telemetry::MetricsRegistry::Default();
  accepts_total_ = reg->GetCounter("vseld_accepts_total");
  accept_failures_total_ = reg->GetCounter("vseld_accept_failures_total");
  torn_reads_total_ = reg->GetCounter("vseld_torn_reads_total");
  first_byte_ns_ = reg->GetHistogram("vseld_accept_to_first_byte_ns");
  for (uint8_t v = static_cast<uint8_t>(Verb::kPing);
       v <= static_cast<uint8_t>(Verb::kCachePut); ++v) {
    frames_by_verb_[v] = reg->GetCounter(
        "vseld_frames_total",
        std::string("verb=\"") + VerbName(static_cast<Verb>(v)) + "\"");
  }
  for (const char* reason : kRejectReasons) {
    // Touch each series so rejected_total{reason} exists from the start.
    reg->GetCounter("vseld_rejected_total",
                    std::string("reason=\"") + reason + "\"");
  }
  metrics_ = reg->RegisterCollector(
      [this](std::vector<telemetry::MetricSample>* out) {
        telemetry::MetricSample active;
        active.name = "vseld_sessions_active";
        active.kind = telemetry::MetricKind::kGauge;
        active.gauge_value = static_cast<int64_t>(registry_.live());
        out->push_back(std::move(active));
        telemetry::MetricSample opened;
        opened.name = "vseld_sessions_opened_total";
        opened.value = registry_.opened();
        out->push_back(std::move(opened));
        telemetry::MetricSample closed;
        closed.name = "vseld_sessions_closed_total";
        closed.value = registry_.closed();
        out->push_back(std::move(closed));
        telemetry::MetricSample reaped;
        reaped.name = "vseld_sessions_reaped_total";
        reaped.value = registry_.reaped();
        out->push_back(std::move(reaped));
      });
}

Daemon::~Daemon() { Stop(); }

void Daemon::RegisterStore(const std::string& tag,
                           const rdf::TripleStore* store,
                           rdf::Dictionary* dict, const rdf::Schema* schema) {
  auto entry = std::make_unique<StoreEntry>();
  entry->store = store;
  entry->dict = dict;
  entry->schema = schema;
  stores_[tag] = std::move(entry);
}

Status Daemon::Start() {
  if (running_.load()) return Status::InvalidArgument("daemon already running");
  if (stores_.empty()) {
    return Status::InvalidArgument("no stores registered");
  }
  Result<int> fd = ListenUnix(options_.socket_path, options_.listen_backlog);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  stopping_.store(false);
  running_.store(true);
  pool_ = std::make_unique<ThreadPool>(options_.max_connections);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Daemon::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_relaxed)) break;
      // Transient failure (EMFILE, ECONNABORTED, ...): the accept loop
      // must survive it. The short sleep keeps a persistent error from
      // busy-spinning the thread.
      accept_failures_total_->Add();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    accepts_total_->Add();
    Status injected = fault::Maybe(fault::sites::kDaemonAccept);
    if (!injected.ok()) {
      // Behave exactly as if the post-accept setup failed: drop this
      // connection, keep accepting.
      accept_failures_total_->Add();
      ::close(fd);
      continue;
    }
    auto accepted_at = std::chrono::steady_clock::now();
    pool_->Submit(
        [this, fd, accepted_at] { HandleConnection(fd, accepted_at); });
  }
}

void Daemon::HandleConnection(
    int fd, std::chrono::steady_clock::time_point accepted_at) {
  // Heap-allocated so a kRegisterWorker connection can be handed off to
  // the fleet pool, outliving this handler.
  auto transport = std::make_unique<FrameTransport>(fd);
  {
    std::lock_guard<std::mutex> lock(transports_mu_);
    transports_[fd] = transport.get();
  }
  bool first = true;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<std::string> payload = transport->ReadFrame();
    if (!payload.ok()) {
      // NotFound = clean close between frames; anything else is the torn
      // mid-frame / injected-fault case — counted, contained, done.
      if (payload.status().code() != StatusCode::kNotFound) {
        torn_reads_total_->Add();
      }
      break;
    }
    if (first) {
      first = false;
      first_byte_ns_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - accepted_at)
              .count()));
    }
    Result<Request> req = DecodeRequest(*payload);
    if (!req.ok()) {
      // A frame that transported intact but does not decode means the
      // peer speaks something else: answer once, then drop the
      // connection (the stream offers no way to resynchronize).
      CountRejected("parse");
      Response resp = ErrorResponse(req.status(), nullptr);
      (void)transport->WriteFrame(EncodeResponse(resp));
      break;
    }
    auto verb_counter = frames_by_verb_.find(static_cast<uint8_t>(req->verb));
    if (verb_counter != frames_by_verb_.end()) verb_counter->second->Add();
    if (req->verb == Verb::kSubscribeProgress) {
      HandleSubscribe(*req, transport.get());
      if (transport->failed()) break;
      continue;
    }
    if (req->verb == Verb::kRegisterWorker) {
      Response resp;
      resp.request_id = req->request_id;
      if (!options_.enable_fleet) {
        resp = ErrorResponse(Status::Unsupported("fleet mode disabled"),
                             "bad_request");
        resp.request_id = req->request_id;
        (void)transport->WriteFrame(EncodeResponse(resp));
        break;
      }
      if (!transport->WriteFrame(EncodeResponse(resp)).ok()) break;
      // Acked: the connection inverts into a dispatch stream owned by the
      // pool (its reader thread takes over; this handler is done). The
      // pool's shutdown path owns unblocking it from now on.
      {
        std::lock_guard<std::mutex> lock(transports_mu_);
        transports_.erase(fd);
      }
      fleet_pool_.AddWorker(std::move(transport),
                            req->client_id.empty() ? "worker"
                                                   : req->client_id);
      return;
    }
    bool close_connection = false;
    Response resp = Dispatch(*req, &close_connection);
    resp.request_id = req->request_id;
    if (resp.session_id == 0) resp.session_id = req->session_id;
    if (!transport->WriteFrame(EncodeResponse(resp)).ok()) break;
    if (close_connection) break;
  }
  {
    std::lock_guard<std::mutex> lock(transports_mu_);
    transports_.erase(fd);
  }
}

Response Daemon::Dispatch(const Request& req, bool* close_connection) {
  *close_connection = false;
  switch (req.verb) {
    case Verb::kPing: {
      // Protocol negotiation: echo our version so a mismatched client
      // fails fast with a clear Status instead of a later ParseError.
      Response resp;
      resp.protocol_version = kProtocolVersion;
      return resp;
    }
    case Verb::kOpenSession:
      return HandleOpenSession(req);
    case Verb::kCacheGet:
      return HandleCacheGet(req);
    case Verb::kCachePut:
      return HandleCachePut(req);
    case Verb::kUpdate:
      return HandleUpdate(req);
    case Verb::kPoll:
      return HandlePoll(req);
    case Verb::kFetchRecommendation:
      return HandleFetch(req);
    case Verb::kCancel:
      return HandleCancel(req);
    case Verb::kTelemetrySnapshot:
      return HandleTelemetry(req);
    case Verb::kCloseSession:
      return HandleCloseSession(req);
    case Verb::kShutdown: {
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      Response resp;
      resp.message = "drain requested";
      return resp;
    }
    default:
      return ErrorResponse(Status::InvalidArgument("bad verb"), "bad_request");
  }
}

Response Daemon::HandleOpenSession(const Request& req) {
  if (stopping_.load(std::memory_order_relaxed)) {
    return ErrorResponse(Status::ResourceExhausted("daemon draining"),
                         "draining");
  }
  if (req.client_id.empty()) {
    return ErrorResponse(Status::InvalidArgument("client_id required"),
                         "bad_request");
  }
  auto store_it = stores_.find(req.store_tag);
  if (store_it == stores_.end()) {
    return ErrorResponse(
        Status::NotFound("unknown store tag: " + req.store_tag),
        "unknown_store");
  }
  StoreEntry* store = store_it->second.get();

  Status admitted = admission_.Admit(req.client_id);
  if (!admitted.ok()) {
    const char* reason =
        admitted.message().find("client session quota") != std::string::npos
            ? "client_quota"
            : "max_sessions";
    return ErrorResponse(std::move(admitted), reason);
  }

  vsel::SelectorOptions opts = req.options;
  opts.limits = admission_.ClampLimits(opts.limits);
  auto events = std::make_shared<EventQueue>();
  // The fan-out installed at construction: TuningSession chains it with
  // each update's async progress tracker, so every update of this session
  // streams through the one queue.
  opts.limits.on_progress = [events](const vsel::ProgressEvent& event) {
    events->Push(event);
  };
  serialize::CacheIdentity identity =
      serialize::ComputeCacheIdentity(*store->store, opts);
  if (options_.enable_fleet) {
    // Dirty-partition search attempts go to registered workers; while none
    // are registered the executor transparently runs them in-process.
    opts.executor = std::make_shared<FleetExecutor>(&fleet_pool_, identity);
  }
  auto session = std::make_unique<vsel::TuningSession>(
      store->store, store->dict, opts, store->schema, BackendFor(identity));
  std::shared_ptr<DaemonSession> entry =
      registry_.Register(req.client_id, req.store_tag, identity,
                         std::move(session), std::move(events));
  Response resp;
  resp.session_id = entry->id;
  return resp;
}

Response Daemon::HandleCacheGet(const Request& req) {
  serialize::CacheIdentity identity{req.identity_store_tag,
                                    req.identity_config_tag};
  auto backend = BackendFor(identity);
  if (backend == nullptr) {
    return ErrorResponse(
        Status::Unsupported("daemon has no shared cache (cache_dir unset)"),
        "bad_request");
  }
  serialize::PartitionCacheBackend::Fetched fetched;
  Status st = backend->Get(req.cache_key, &fetched);
  if (!st.ok()) return ErrorResponse(std::move(st), nullptr);
  Response resp;
  // Re-seal the decoded outcome: the client gets exactly the validated,
  // identity-tagged form it would read from a shared directory.
  resp.blob = serialize::SerializePartitionOutcome(req.cache_key,
                                                   fetched.result, identity);
  resp.store_tag = identity.store_tag;
  resp.config_tag = identity.config_tag;
  return resp;
}

Response Daemon::HandleCachePut(const Request& req) {
  serialize::CacheIdentity identity{req.identity_store_tag,
                                    req.identity_config_tag};
  auto backend = BackendFor(identity);
  if (backend == nullptr) {
    return ErrorResponse(
        Status::Unsupported("daemon has no shared cache (cache_dir unset)"),
        "bad_request");
  }
  // Hostile-input hardening: never store bytes we did not validate. The
  // blob must decode under the claimed identity with the claimed key
  // embedded, or the put is rejected.
  auto outcome = serialize::DeserializePartitionOutcome(req.blob,
                                                        req.cache_key,
                                                        identity);
  if (!outcome.ok()) return ErrorResponse(outcome.status(), "bad_request");
  Status st = backend->Put(req.cache_key, *outcome);
  if (!st.ok()) return ErrorResponse(std::move(st), nullptr);
  return Response{};
}

Result<std::shared_ptr<DaemonSession>> Daemon::FindSession(
    const Request& req) {
  std::shared_ptr<DaemonSession> entry = registry_.Find(req.session_id);
  if (entry == nullptr) {
    CountRejected("unknown_session");
    return Status::NotFound("unknown session " +
                            std::to_string(req.session_id));
  }
  return entry;
}

void Daemon::HarvestLocked(DaemonSession* entry) {
  if (entry->inflight == nullptr || !entry->inflight->Poll()) return;
  Result<vsel::Recommendation> result = entry->inflight->Wait();
  if (result.ok()) entry->last_recommendation = std::move(*result);
  entry->inflight = nullptr;
}

Response Daemon::HandleUpdate(const Request& req) {
  Result<std::shared_ptr<DaemonSession>> found = FindSession(req);
  if (!found.ok()) return ErrorResponse(found.status(), nullptr);
  std::shared_ptr<DaemonSession> entry = *found;

  Status sized = admission_.CheckUpdateSize(req.add_queries.size(),
                                            req.remove_queries.size());
  if (!sized.ok()) return ErrorResponse(std::move(sized), "update_size");

  // Parse the delta against the session's store dictionary. Interning
  // mutates the dictionary, which is not thread-safe — the per-store
  // parse mutex serializes every handler targeting the same store.
  auto store_it = stores_.find(entry->store_tag);
  if (store_it == stores_.end()) {
    return ErrorResponse(Status::Internal("store vanished"), nullptr);
  }
  std::vector<cq::ConjunctiveQuery> adds;
  adds.reserve(req.add_queries.size());
  {
    std::lock_guard<std::mutex> parse_lock(store_it->second->parse_mu);
    for (const std::string& text : req.add_queries) {
      Result<cq::ConjunctiveQuery> parsed =
          cq::ParseDatalog(text, store_it->second->dict);
      if (!parsed.ok()) return ErrorResponse(parsed.status(), "parse");
      adds.push_back(std::move(*parsed));
    }
  }

  // The head-of-update fault site: a failure here must come back as a
  // Status response with the session untouched and still usable.
  Status injected = fault::Maybe(fault::sites::kDaemonSessionRun);
  if (!injected.ok()) return ErrorResponse(std::move(injected), "fault");

  std::shared_ptr<vsel::TuningHandle> handle;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->closing || entry->session == nullptr) {
      return ErrorResponse(Status::NotFound("session closing"),
                           "unknown_session");
    }
    HarvestLocked(entry.get());
    if (entry->inflight != nullptr) {
      return ErrorResponse(
          Status::InvalidArgument("an update is already in flight"), "busy");
    }
    handle = entry->session->UpdateAsync(std::move(adds), req.remove_queries);
    entry->inflight = handle;
  }

  Response resp;
  resp.session_id = entry->id;
  if (req.wait) {
    Result<vsel::Recommendation> result = handle->Wait();  // no lock held
    resp.progress = handle->Current();
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      HarvestLocked(entry.get());
    }
    if (!result.ok()) {
      resp.code = result.status().code();
      resp.message = result.status().message();
    }
  } else {
    resp.progress = handle->Current();
  }
  return resp;
}

Response Daemon::HandlePoll(const Request& req) {
  Result<std::shared_ptr<DaemonSession>> found = FindSession(req);
  if (!found.ok()) return ErrorResponse(found.status(), nullptr);
  std::shared_ptr<DaemonSession> entry = *found;
  Response resp;
  resp.session_id = entry->id;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->inflight != nullptr) {
    resp.progress = entry->inflight->Current();
    HarvestLocked(entry.get());
  } else {
    resp.progress.done = true;
  }
  return resp;
}

Response Daemon::HandleFetch(const Request& req) {
  Result<std::shared_ptr<DaemonSession>> found = FindSession(req);
  if (!found.ok()) return ErrorResponse(found.status(), nullptr);
  std::shared_ptr<DaemonSession> entry = *found;

  if (req.wait) {
    std::shared_ptr<vsel::TuningHandle> handle;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      handle = entry->inflight;
    }
    if (handle != nullptr) (void)handle->Wait();  // no lock held
  }
  Response resp;
  resp.session_id = entry->id;
  std::lock_guard<std::mutex> lock(entry->mu);
  HarvestLocked(entry.get());
  if (!entry->last_recommendation.has_value()) {
    return ErrorResponse(Status::NotFound("no completed update to serve"),
                         "no_recommendation");
  }
  resp.blob = req.canonical
                  ? serialize::SerializeRecommendationCanonical(
                        *entry->last_recommendation, entry->identity)
                  : serialize::SerializeRecommendation(
                        *entry->last_recommendation, entry->identity);
  resp.store_tag = entry->identity.store_tag;
  resp.config_tag = entry->identity.config_tag;
  return resp;
}

Response Daemon::HandleCancel(const Request& req) {
  Result<std::shared_ptr<DaemonSession>> found = FindSession(req);
  if (!found.ok()) return ErrorResponse(found.status(), nullptr);
  std::shared_ptr<DaemonSession> entry = *found;
  Response resp;
  resp.session_id = entry->id;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->inflight != nullptr) {
    entry->inflight->Cancel();
    resp.progress = entry->inflight->Current();
  } else {
    resp.progress.done = true;
  }
  return resp;
}

Response Daemon::HandleTelemetry(const Request& req) {
  telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Default()->Snapshot();
  Response resp;
  resp.blob = req.telemetry_format == TelemetryFormat::kPrometheus
                  ? telemetry::PrometheusText(snapshot)
                  : telemetry::MetricsJson(snapshot);
  return resp;
}

Response Daemon::HandleCloseSession(const Request& req) {
  Result<std::shared_ptr<DaemonSession>> found = FindSession(req);
  if (!found.ok()) return ErrorResponse(found.status(), nullptr);
  CloseSessionInternal(req.session_id, /*reaped=*/false);
  Response resp;
  resp.session_id = req.session_id;
  return resp;
}

void Daemon::HandleSubscribe(const Request& req, FrameTransport* transport) {
  Result<std::shared_ptr<DaemonSession>> found = FindSession(req);
  if (!found.ok()) {
    Response resp = ErrorResponse(found.status(), nullptr);
    resp.request_id = req.request_id;
    (void)transport->WriteFrame(EncodeResponse(resp));
    return;
  }
  std::shared_ptr<DaemonSession> entry = *found;
  if (entry->subscriber_active.exchange(true)) {
    Response resp = ErrorResponse(
        Status::InvalidArgument("a subscriber is already attached"),
        "subscriber");
    resp.request_id = req.request_id;
    (void)transport->WriteFrame(EncodeResponse(resp));
    return;
  }

  auto write_event = [&](const vsel::ProgressEvent& event,
                         uint64_t dropped) {
    Response push;
    push.is_progress_event = true;
    push.request_id = req.request_id;
    push.session_id = entry->id;
    push.event = event;
    push.events_dropped = dropped;
    return transport->WriteFrame(EncodeResponse(push)).ok();
  };

  // Stream until the in-flight update (if any) finishes AND the queue is
  // drained; re-check liveness every tick so a drain or a torn client
  // never wedges the handler.
  for (;;) {
    uint64_t dropped = 0;
    std::optional<vsel::ProgressEvent> event =
        entry->events->Pop(options_.subscribe_tick_sec, &dropped);
    if (event.has_value()) {
      if (!write_event(*event, dropped)) break;
      continue;
    }
    bool update_running;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      update_running =
          entry->inflight != nullptr && !entry->inflight->Poll();
    }
    if (!update_running || stopping_.load(std::memory_order_relaxed) ||
        transport->failed()) {
      break;
    }
  }
  // The update finished between our last Pop and the done check: drain
  // the tail without blocking, then send the terminal response.
  for (;;) {
    uint64_t dropped = 0;
    std::optional<vsel::ProgressEvent> event = entry->events->Pop(0, &dropped);
    if (!event.has_value()) break;
    if (!write_event(*event, dropped)) break;
  }
  Response done;
  done.request_id = req.request_id;
  done.session_id = entry->id;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->inflight != nullptr) {
      done.progress = entry->inflight->Current();
      HarvestLocked(entry.get());
    } else {
      done.progress.done = true;
    }
  }
  (void)transport->WriteFrame(EncodeResponse(done));
  entry->subscriber_active.store(false);
}

std::shared_ptr<serialize::PartitionCacheBackend> Daemon::BackendFor(
    const serialize::CacheIdentity& identity) {
  if (options_.cache_dir.empty()) return nullptr;
  std::string key = serialize::IdentityKeyBytes(identity);
  std::lock_guard<std::mutex> lock(backends_mu_);
  auto it = backends_.find(key);
  if (it != backends_.end()) return it->second;
  auto dir = std::make_shared<serialize::DirCacheBackend>(options_.cache_dir,
                                                          identity);
  auto tiered = std::make_shared<serialize::TieredCacheBackend>(
      std::move(dir), options_.tiered_front_capacity);
  backends_.emplace(std::move(key), tiered);
  return tiered;
}

bool Daemon::CloseSessionInternal(uint64_t id, bool reaped) {
  std::shared_ptr<DaemonSession> entry = registry_.Find(id);
  if (entry == nullptr) return false;
  if (!registry_.Close(id, reaped)) return false;
  admission_.Release(entry->client_id);
  return true;
}

Response Daemon::ErrorResponse(Status status, const char* reject_reason) {
  if (reject_reason != nullptr) CountRejected(reject_reason);
  Response resp;
  resp.code = status.code();
  resp.message = status.message();
  return resp;
}

void Daemon::CountRejected(const char* reason) {
  telemetry::MetricsRegistry::Default()
      ->GetCounter("vseld_rejected_total",
                   std::string("reason=\"") + reason + "\"")
      ->Add();
}

bool Daemon::WaitShutdownRequested(double timeout_sec) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  if (timeout_sec < 0) {
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
    return true;
  }
  return shutdown_cv_.wait_for(lock,
                               std::chrono::duration<double>(timeout_sec),
                               [this] { return shutdown_requested_; });
}

void Daemon::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  // 1. Stop accepting: shutdown() wakes a blocked accept(2); join, close.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Cancel every in-flight update: the anytime contract terminates the
  // searches within a bounded number of expansions, so handlers blocked
  // in wait=true verbs return promptly with the valid current best.
  for (uint64_t id : registry_.LiveIds()) {
    std::shared_ptr<DaemonSession> entry = registry_.Find(id);
    if (entry == nullptr) continue;
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->inflight != nullptr) entry->inflight->Cancel();
  }

  // 3. Unblock handlers parked in ReadFrame / WriteFrame.
  {
    std::lock_guard<std::mutex> lock(transports_mu_);
    for (auto& [fd, transport] : transports_) transport->ShutdownBoth();
  }

  // 3b. Sever the fleet's worker connections and join their readers (any
  // dispatch still in flight fails over to the cancelled-update path).
  fleet_pool_.Shutdown();

  // 4. Join the handler pool (destructor drains the queue and joins).
  pool_.reset();

  // 5. Reap every session a client left behind.
  for (uint64_t id : registry_.LiveIds()) {
    if (CloseSessionInternal(id, /*reaped=*/true)) ++drained_sessions_;
  }
}

}  // namespace rdfviews::vseld
