#include "vseld/fleet.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <utility>

#include "common/fault.h"
#include "vsel/search.h"
#include "vsel/serialize/binary_io.h"

namespace rdfviews::vseld {

namespace {

using vsel::serialize::ByteReader;
using vsel::serialize::ByteWriter;

constexpr uint32_t kFleetUnitVersion = 1;

/// Rebuilds a Status from its wire (code, message) pair — the inverse of
/// what kPartitionResult frames carry.
Status MakeStatus(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound: return Status::NotFound(std::move(message));
    case StatusCode::kParseError: return Status::ParseError(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kTimedOut: return Status::TimedOut(std::move(message));
    case StatusCode::kInternal: return Status::Internal(std::move(message));
    case StatusCode::kUnsupported:
      return Status::Unsupported(std::move(message));
  }
  return Status::Internal(std::move(message));
}

/// Store-free statistics provider fed from a FleetWorkUnit: the scalars
/// come from the shipped measurements and every pattern count from the
/// warmed snapshot. The snapshot is complete for the partition's search
/// space (the coordinator precomputed every workload atom's relaxations,
/// and search transitions only relax atoms), so the uncached fallback —
/// reachable only if that invariant drifts — returns 0 and the
/// coordinator's rehydration re-cost rejects the outcome rather than
/// trusting it.
class SnapshotStatistics final : public rdf::Statistics {
 public:
  SnapshotStatistics(uint64_t total_triples,
                     const std::array<uint64_t, 3>& distinct,
                     const std::array<double, 3>& avg_width)
      : rdf::Statistics(nullptr),
        total_triples_(total_triples),
        distinct_(distinct),
        avg_width_(avg_width) {}

  uint64_t TotalTriples() const override { return total_triples_; }
  uint64_t DistinctValues(rdf::Column col) const override {
    return distinct_[static_cast<size_t>(col)];
  }
  double AvgWidth(rdf::Column col) const override {
    return avg_width_[static_cast<size_t>(col)];
  }

  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 protected:
  uint64_t CountPatternUncached(const rdf::Pattern&) const override {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }

 private:
  uint64_t total_triples_;
  std::array<uint64_t, 3> distinct_;
  std::array<double, 3> avg_width_;
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace

// ---- Work-unit codec -------------------------------------------------------

std::string EncodeFleetWorkUnit(const FleetWorkUnit& unit) {
  ByteWriter w;
  w.U32(kFleetUnitVersion);
  w.Str(unit.key);
  w.U64(unit.identity.store_tag);
  w.U64(unit.identity.config_tag);
  vsel::serialize::SerializeTuningConfig(unit.config, &w);
  vsel::serialize::SerializeState(unit.initial_state, &w);
  w.U64(unit.group_size);
  w.U64(unit.total_triples);
  for (int c = 0; c < 3; ++c) {
    w.U64(unit.distinct[c]);
    w.F64(unit.avg_width[c]);
  }
  w.U64(unit.snapshot.counts.size());
  for (const auto& [pattern, count] : unit.snapshot.counts) {
    w.U64(pattern.s);
    w.U64(pattern.p);
    w.U64(pattern.o);
    w.U64(count);
  }
  return w.TakeBytes();
}

Result<FleetWorkUnit> DecodeFleetWorkUnit(std::string_view bytes) {
  ByteReader r(bytes);
  if (r.U32() != kFleetUnitVersion) {
    return Status::ParseError("fleet work unit: unknown version");
  }
  FleetWorkUnit unit;
  unit.key = r.Str();
  unit.identity.store_tag = r.U64();
  unit.identity.config_tag = r.U64();
  auto config = vsel::serialize::DeserializeTuningConfig(&r);
  if (!config.ok()) return config.status();
  unit.config = std::move(*config);
  auto state = vsel::serialize::DeserializeState(&r);
  if (!state.ok()) return state.status();
  unit.initial_state = std::move(*state);
  unit.group_size = r.U64();
  unit.total_triples = r.U64();
  for (int c = 0; c < 3; ++c) {
    unit.distinct[c] = r.U64();
    unit.avg_width[c] = r.F64();
  }
  uint64_t entries = r.Count(/*min_element_bytes=*/32);
  unit.snapshot.counts.reserve(entries);
  for (uint64_t i = 0; i < entries; ++i) {
    rdf::Pattern pattern;
    pattern.s = static_cast<rdf::TermId>(r.U64());
    pattern.p = static_cast<rdf::TermId>(r.U64());
    pattern.o = static_cast<rdf::TermId>(r.U64());
    unit.snapshot.counts[pattern] = r.U64();
  }
  if (!r.AtEnd()) {
    return Status::ParseError("fleet work unit: truncated or trailing bytes");
  }
  return unit;
}

// ---- WorkerPool ------------------------------------------------------------

WorkerPool::WorkerPool() : WorkerPool(Options{}) {}

WorkerPool::WorkerPool(Options options) : options_(options) {
  metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
      [this](std::vector<telemetry::MetricSample>* out) {
        Counters c = counters();
        int64_t live = static_cast<int64_t>(live_workers());
        auto counter = [&](const char* name, uint64_t value) {
          telemetry::MetricSample s;
          s.name = name;
          s.kind = telemetry::MetricKind::kCounter;
          s.value = value;
          out->push_back(std::move(s));
        };
        counter("vseld_fleet_workers_registered_total", c.registered);
        counter("vseld_fleet_dispatches_total", c.dispatches);
        counter("vseld_fleet_results_total", c.results);
        counter("vseld_fleet_requeues_total", c.requeues);
        counter("vseld_fleet_worker_deaths_total", c.worker_deaths);
        counter("vseld_fleet_duplicate_results_total", c.duplicate_results);
        counter("vseld_fleet_heartbeats_total", c.heartbeats);
        telemetry::MetricSample g;
        g.name = "vseld_fleet_workers_live";
        g.kind = telemetry::MetricKind::kGauge;
        g.gauge_value = live;
        out->push_back(std::move(g));
      });
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::AddWorker(std::unique_ptr<FrameTransport> transport,
                           std::string name) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    // Racing a drain: refuse politely by severing the connection.
    transport->ShutdownBoth();
    return;
  }
  auto worker = std::make_unique<Worker>();
  worker->name = std::move(name);
  worker->transport = std::move(transport);
  worker->last_activity = std::chrono::steady_clock::now();
  Worker* raw = worker.get();
  workers_.push_back(std::move(worker));
  ++counters_.registered;
  raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
  cv_.notify_all();
}

WorkerPool::Worker* WorkerPool::PickLiveWorkerLocked() {
  Worker* best = nullptr;
  for (const auto& w : workers_) {
    if (w->dead) continue;
    if (best == nullptr || w->inflight < best->inflight) best = w.get();
  }
  return best;
}

void WorkerPool::MarkDeadLocked(Worker* worker) {
  if (worker->dead) return;
  worker->dead = true;
  ++counters_.worker_deaths;
  worker->transport->ShutdownBoth();
  cv_.notify_all();
}

void WorkerPool::ReaderLoop(Worker* worker) {
  for (;;) {
    auto frame = worker->transport->ReadFrame();
    if (!frame.ok()) break;
    auto request = DecodeRequest(*frame);
    // A garbled or out-of-protocol frame from a worker is indistinguishable
    // from a compromised peer: sever, let its units re-queue.
    if (!request.ok()) break;
    std::unique_lock<std::mutex> lock(mu_);
    worker->last_activity = std::chrono::steady_clock::now();
    if (request->verb == Verb::kWorkerHeartbeat) {
      ++counters_.heartbeats;
      cv_.notify_all();
      continue;
    }
    if (request->verb != Verb::kPartitionResult) break;
    auto it = pending_.find(request->unit_id);
    if (it == pending_.end() || it->second->worker != worker) {
      // Duplicate result, or a late result for a unit already re-queued
      // elsewhere: idempotently dropped.
      ++counters_.duplicate_results;
      continue;
    }
    PendingUnit* unit = it->second;
    unit->code = request->result_code;
    unit->message = std::move(request->result_message);
    unit->blob = std::move(request->blob);
    unit->done = true;
    pending_.erase(it);
    ++counters_.results;
    cv_.notify_all();
  }
  std::unique_lock<std::mutex> lock(mu_);
  MarkDeadLocked(worker);
}

Result<std::string> WorkerPool::Execute(const std::string& payload,
                                        const StopToken& stop) {
  const auto poll = std::chrono::duration<double>(options_.dispatch_poll_sec);
  const auto liveness =
      std::chrono::duration<double>(options_.liveness_timeout_sec);
  for (;;) {
    Worker* worker = nullptr;
    uint64_t unit_id = 0;
    PendingUnit pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (shutdown_) return Status::Internal("worker pool shut down");
      worker = PickLiveWorkerLocked();
      if (worker == nullptr) {
        return Status::Internal("no live fleet workers");
      }
      unit_id = next_unit_id_++;
      pending.worker = worker;
      pending_[unit_id] = &pending;
      ++worker->inflight;
      ++counters_.dispatches;
      // Fresh deadline for the new dispatch: liveness measures *this*
      // unit's silence, not how long the worker has been idle.
      worker->last_activity = std::chrono::steady_clock::now();
    }

    Request dispatch;
    dispatch.verb = Verb::kDispatchPartition;
    dispatch.request_id = unit_id;
    dispatch.client_id = "fleet";
    dispatch.unit_id = unit_id;
    dispatch.blob = payload;
    Status write_status;
    {
      std::unique_lock<std::mutex> write_lock(worker->write_mu);
      write_status = worker->transport->WriteFrame(EncodeRequest(dispatch));
    }

    std::unique_lock<std::mutex> lock(mu_);
    if (!write_status.ok()) {
      MarkDeadLocked(worker);
      pending_.erase(unit_id);
      --worker->inflight;
      ++counters_.requeues;
      continue;  // re-queue on another worker
    }
    while (!pending.done) {
      if (shutdown_) {
        pending_.erase(unit_id);
        --worker->inflight;
        return Status::Internal("worker pool shut down");
      }
      if (stop.stop_requested()) {
        pending_.erase(unit_id);
        --worker->inflight;
        return Status::TimedOut("fleet dispatch cancelled by stop token");
      }
      if (worker->dead) break;
      if (std::chrono::steady_clock::now() - worker->last_activity >
          liveness) {
        // Silent worker: no heartbeat, no result. Declare it dead; its
        // reader thread unblocks via the transport shutdown.
        MarkDeadLocked(worker);
        break;
      }
      cv_.wait_for(lock, poll);
    }
    if (pending.done) {
      --worker->inflight;
      if (pending.code != StatusCode::kOk) {
        return MakeStatus(pending.code, std::move(pending.message));
      }
      return std::move(pending.blob);
    }
    // Worker died mid-unit: re-queue on a surviving worker.
    pending_.erase(unit_id);
    --worker->inflight;
    ++counters_.requeues;
  }
}

size_t WorkerPool::registered_total() const {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<size_t>(counters_.registered);
}

size_t WorkerPool::live_workers() const {
  std::unique_lock<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& w : workers_) {
    if (!w->dead) ++live;
  }
  return live;
}

WorkerPool::Counters WorkerPool::counters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return counters_;
}

void WorkerPool::Shutdown() {
  std::vector<std::unique_ptr<Worker>> workers;
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    for (const auto& w : workers_) MarkDeadLocked(w.get());
    workers.swap(workers_);
    cv_.notify_all();
  }
  for (auto& w : workers) {
    if (w->reader.joinable()) w->reader.join();
  }
}

// ---- FleetExecutor ---------------------------------------------------------

FleetExecutor::FleetExecutor(WorkerPool* pool,
                             vsel::serialize::CacheIdentity identity)
    : pool_(pool), identity_(identity) {
  auto* registry = telemetry::MetricsRegistry::Default();
  local_fallbacks_ =
      registry->GetCounter("vseld_fleet_local_fallbacks_total");
  rehydration_rejected_ =
      registry->GetCounter("vseld_fleet_rehydration_rejected_total");
}

Result<vsel::SearchResult> FleetExecutor::ExecuteAttempt(
    const vsel::pipeline::PartitionWorkUnit& unit,
    const vsel::TuningConfig& config, const vsel::SearchLimits& limits,
    vsel::CostModel* cost_model) {
  if (pool_->registered_total() == 0) {
    // Fleet mode with no fleet yet: behave exactly like a local daemon.
    local_fallbacks_->Add();
    return local_.ExecuteAttempt(unit, config, limits, cost_model);
  }

  FleetWorkUnit work;
  work.key = unit.key;
  work.identity = identity_;
  work.config = config;
  // The attempt's budget slice (stage 3's apportionment / spare-budget
  // decisions) replaces the run-level limits; the stop token and progress
  // callback never travel. Workers always get the *calibrated* weights —
  // calibration ran on the coordinator before any attempt — with
  // auto-calibration off so they cannot re-derive different ones.
  work.config.limits = limits;
  work.config.limits.stop = StopToken();
  work.config.limits.on_progress = nullptr;
  work.config.weights = cost_model->weights();
  work.config.auto_calibrate_cm = false;
  work.config.executor = nullptr;
  work.initial_state = *unit.initial_state;
  work.group_size = unit.group_size;
  const rdf::Statistics& stats = cost_model->stats();
  work.total_triples = stats.TotalTriples();
  for (int c = 0; c < 3; ++c) {
    auto col = static_cast<rdf::Column>(c);
    work.distinct[c] = stats.DistinctValues(col);
    work.avg_width[c] = stats.AvgWidth(col);
  }
  // The shipped snapshot must cover every pattern the remote search can
  // cost: the cache fills lazily here, so at dispatch time it only holds
  // whatever earlier partitions happened to count. Search transitions only
  // *relax* workload atoms (SC drops constants; VB/VF/JC reshuffle whole
  // atoms), so the closure is each initial atom with every subset of its
  // constants wildcarded — at most 8 patterns per atom, counted once on
  // the coordinator's real store. Without this the worker's zero-fallback
  // would skew costs and break recommendation parity.
  std::vector<rdf::Pattern> closure;
  for (const vsel::View& view : unit.initial_state->views()) {
    for (const cq::Atom& atom : view.def.atoms()) {
      const rdf::Pattern base = atom.ToPattern();
      const rdf::TermId terms[3] = {base.s, base.p, base.o};
      int bound[3], nbound = 0;
      for (int c = 0; c < 3; ++c) {
        if (terms[c] != rdf::kAnyTerm) bound[nbound++] = c;
      }
      for (int mask = 0; mask < (1 << nbound); ++mask) {
        rdf::TermId relaxed[3] = {terms[0], terms[1], terms[2]};
        for (int b = 0; b < nbound; ++b) {
          if (mask & (1 << b)) relaxed[bound[b]] = rdf::kAnyTerm;
        }
        closure.push_back(rdf::Pattern{relaxed[0], relaxed[1], relaxed[2]});
      }
    }
  }
  stats.Precompute(closure);
  work.snapshot = stats.Snapshot();

  auto blob = pool_->Execute(EncodeFleetWorkUnit(work), limits.stop);
  if (!blob.ok()) return blob.status();

  auto outcome = vsel::serialize::DeserializePartitionOutcome(
      *blob, unit.key, identity_);
  if (!outcome.ok()) return outcome.status();
  // Same semantic gate a cache entry passes, minus the completed
  // requirement: a budget-truncated remote attempt legitimately returns
  // its anytime best. The re-cost both validates the outcome against the
  // coordinator's live statistics and registers the views in the run's
  // interner.
  if (!vsel::pipeline::RehydratePartitionOutcome(
          &*outcome, unit.group_size, *cost_model,
          /*require_completed=*/false)) {
    rehydration_rejected_->Add();
    return Status::Internal(
        "fleet result failed rehydration (cost or structure drift)");
  }
  return std::move(outcome->search);
}

// ---- Worker side -----------------------------------------------------------

namespace {

/// Periodic kWorkerHeartbeat writer for one in-flight unit. Shares the
/// worker's write mutex with the result write, so frames never interleave.
class HeartbeatThread {
 public:
  HeartbeatThread(FrameTransport* transport, std::mutex* write_mu,
                  uint64_t unit_id, const std::string& client_id,
                  double interval_sec)
      : stop_(false) {
    thread_ = std::thread([=, this] {
      Request beat;
      beat.verb = Verb::kWorkerHeartbeat;
      beat.client_id = client_id;
      beat.unit_id = unit_id;
      std::string payload = EncodeRequest(beat);
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_) {
        cv_.wait_for(lock, std::chrono::duration<double>(interval_sec));
        if (stop_) break;
        std::unique_lock<std::mutex> write_lock(*write_mu);
        if (!transport->WriteFrame(payload).ok()) break;
      }
    });
  }

  ~HeartbeatThread() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
      cv_.notify_all();
    }
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_;
  std::thread thread_;
};

/// Runs one decoded work unit and returns the kPartitionResult fields.
void RunUnit(const FleetWorkUnit& work, Request* result) {
  SnapshotStatistics stats(
      work.total_triples,
      {work.distinct[0], work.distinct[1], work.distinct[2]},
      {work.avg_width[0], work.avg_width[1], work.avg_width[2]});
  stats.Warm(work.snapshot);
  vsel::CostModel model(&stats, work.config.weights);
  Status search_status = Status::OK();
  try {
    Status injected = fault::MaybeThrow(fault::sites::kWorkerSearch);
    if (!injected.ok()) {
      search_status = injected;
    } else {
      auto search = vsel::RunSearch(work.config.strategy, work.initial_state,
                                    model, work.config.heuristics,
                                    work.config.limits);
      if (!search.ok()) {
        search_status = search.status();
      } else {
        vsel::pipeline::PartitionSearchResult outcome;
        outcome.search = std::move(*search);
        outcome.initial_cost = model.StateCost(work.initial_state);
        result->blob = vsel::serialize::SerializePartitionOutcome(
            work.key, outcome, work.identity);
      }
    }
  } catch (const std::bad_alloc&) {
    search_status = Status::ResourceExhausted("worker: out of memory");
  } catch (const std::exception& e) {
    search_status =
        Status::Internal(std::string("worker search threw: ") + e.what());
  } catch (...) {
    search_status = Status::Internal("worker search threw a non-exception");
  }
  result->result_code = search_status.code();
  result->result_message = search_status.message();
  if (stats.misses() > 0) {
    std::fprintf(stderr,
                 "[worker] WARNING: %llu snapshot misses in unit (counts "
                 "defaulted to 0 — closure invariant drifted)\n",
                 static_cast<unsigned long long>(stats.misses()));
  }
}

}  // namespace

Status RunWorker(const WorkerOptions& options) {
  auto fd = ConnectUnix(options.socket_path);
  if (!fd.ok()) return fd.status();
  FrameTransport transport(*fd);
  std::mutex write_mu;
  uint64_t next_request_id = 1;

  auto round_trip = [&](const Request& request) -> Result<Response> {
    {
      std::unique_lock<std::mutex> lock(write_mu);
      Status st = transport.WriteFrame(EncodeRequest(request));
      if (!st.ok()) return st;
    }
    auto frame = transport.ReadFrame();
    if (!frame.ok()) return frame.status();
    auto response = DecodeResponse(*frame);
    if (!response.ok()) return response.status();
    Status st = response->ToStatus();
    if (!st.ok()) return st;
    return std::move(*response);
  };

  // Ping first: a version-mismatched daemon is rejected with a clear
  // Status before the register verb can die with a ParseError.
  Request ping;
  ping.verb = Verb::kPing;
  ping.request_id = next_request_id++;
  ping.client_id = options.name;
  auto pong = round_trip(ping);
  if (!pong.ok()) return pong.status();
  if (pong->protocol_version != kProtocolVersion) {
    return Status::Unsupported(
        "vseld protocol version mismatch: daemon speaks v" +
        std::to_string(pong->protocol_version) + ", this worker speaks v" +
        std::to_string(kProtocolVersion));
  }

  Request reg;
  reg.verb = Verb::kRegisterWorker;
  reg.request_id = next_request_id++;
  reg.client_id = options.name;
  auto ack = round_trip(reg);
  if (!ack.ok()) return ack.status();

  // Registered: the connection is now a dispatch stream — the daemon
  // writes kDispatchPartition Requests, we answer with kPartitionResult /
  // kWorkerHeartbeat Requests.
  size_t units_started = 0;
  for (;;) {
    auto frame = transport.ReadFrame();
    if (!frame.ok()) {
      // A clean close between units is the daemon draining: normal exit.
      if (frame.status().code() == StatusCode::kNotFound) return Status::OK();
      return frame.status();
    }
    auto request = DecodeRequest(*frame);
    if (!request.ok()) return request.status();
    if (request->verb != Verb::kDispatchPartition) {
      return Status::ParseError("worker: unexpected verb " +
                                std::string(VerbName(request->verb)));
    }
    ++units_started;

    Request result;
    result.verb = Verb::kPartitionResult;
    result.client_id = options.name;
    result.unit_id = request->unit_id;
    result.request_id = next_request_id++;

    auto work = DecodeFleetWorkUnit(request->blob);
    if (!work.ok()) {
      result.result_code = work.status().code();
      result.result_message = work.status().message();
    } else {
      if (options.die_in_unit != 0 && units_started == options.die_in_unit) {
        // Chaos hook: die mid-partition, after accepting the unit but
        // before any result or further heartbeat reaches the daemon.
        transport.ShutdownBoth();
        return Status::Internal("worker: chaos death in unit " +
                                std::to_string(units_started));
      }
      HeartbeatThread heartbeat(&transport, &write_mu, request->unit_id,
                                options.name,
                                options.heartbeat_interval_sec);
      RunUnit(*work, &result);
    }

    std::unique_lock<std::mutex> lock(write_mu);
    Status st = transport.WriteFrame(EncodeRequest(result));
    if (!st.ok()) return st;
  }
}

}  // namespace rdfviews::vseld
