#include "vseld/protocol.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "common/hash.h"
#include "vsel/serialize/binary_io.h"
#include "vsel/serialize/serialize.h"

namespace rdfviews::vseld {

namespace serialize = vsel::serialize;
using serialize::ByteReader;
using serialize::ByteWriter;

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kPing: return "ping";
    case Verb::kOpenSession: return "open_session";
    case Verb::kUpdate: return "update";
    case Verb::kPoll: return "poll";
    case Verb::kFetchRecommendation: return "fetch_recommendation";
    case Verb::kCancel: return "cancel";
    case Verb::kSubscribeProgress: return "subscribe_progress";
    case Verb::kTelemetrySnapshot: return "telemetry_snapshot";
    case Verb::kCloseSession: return "close_session";
    case Verb::kShutdown: return "shutdown";
    case Verb::kRegisterWorker: return "register_worker";
    case Verb::kDispatchPartition: return "dispatch_partition";
    case Verb::kPartitionResult: return "partition_result";
    case Verb::kWorkerHeartbeat: return "worker_heartbeat";
    case Verb::kCacheGet: return "cache_get";
    case Verb::kCachePut: return "cache_put";
    case Verb::kResponse: return "response";
    case Verb::kProgressEvent: return "progress_event";
  }
  return "unknown";
}

Status Response::ToStatus() const {
  switch (code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument: return Status::InvalidArgument(message);
    case StatusCode::kNotFound: return Status::NotFound(message);
    case StatusCode::kParseError: return Status::ParseError(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kTimedOut: return Status::TimedOut(message);
    case StatusCode::kInternal: return Status::Internal(message);
    case StatusCode::kUnsupported: return Status::Unsupported(message);
  }
  return Status::Internal(message);
}

namespace {

/// Appends the checksum of everything written so far and returns the
/// payload (the envelope SealBlob applies to files, inlined here because a
/// payload is not a magic-led blob — the magic lives in the frame header).
std::string SealPayload(ByteWriter w) {
  std::string body = w.TakeBytes();
  Hash128 sum = HashBytes128(body.data(), body.size());
  ByteWriter tail;
  tail.U64(sum.lo);
  tail.U64(sum.hi);
  body += tail.TakeBytes();
  return body;
}

/// Validates version + checksum and returns a reader positioned after the
/// version field, scoped to exclude the checksum tail.
Result<ByteReader> OpenPayload(std::string_view payload) {
  constexpr size_t kTail = 16;  // Hash128
  if (payload.size() < 4 + kTail) {
    return Status::ParseError("vseld frame payload truncated");
  }
  std::string_view body = payload.substr(0, payload.size() - kTail);
  Hash128 sum = HashBytes128(body.data(), body.size());
  ByteReader tail(payload.substr(payload.size() - kTail));
  Hash128 stored{tail.U64(), tail.U64()};
  if (stored != sum) {
    return Status::ParseError("vseld frame payload checksum mismatch");
  }
  ByteReader r(body);
  uint32_t version = r.U32();
  if (r.failed() || version != kProtocolVersion) {
    return Status::ParseError("unsupported vseld protocol version " +
                              std::to_string(version));
  }
  return r;
}

bool ValidVerb(uint8_t raw) {
  return (raw >= static_cast<uint8_t>(Verb::kPing) &&
          raw <= static_cast<uint8_t>(Verb::kCachePut)) ||
         raw == static_cast<uint8_t>(Verb::kResponse) ||
         raw == static_cast<uint8_t>(Verb::kProgressEvent);
}

void WriteProgress(const vsel::TuningProgress& p, ByteWriter* w) {
  w->F64(p.best_cost);
  w->U64(p.improvements);
  w->U64(p.partitions_done);
  w->U64(p.partitions_total);
  w->U64(p.partitions_failed);
  w->U64(p.partition_retries);
  w->U8(p.cancel_requested ? 1 : 0);
  w->U8(p.done ? 1 : 0);
}

vsel::TuningProgress ReadProgress(ByteReader* r) {
  vsel::TuningProgress p;
  p.best_cost = r->F64();
  p.improvements = r->U64();
  p.partitions_done = static_cast<size_t>(r->U64());
  p.partitions_total = static_cast<size_t>(r->U64());
  p.partitions_failed = static_cast<size_t>(r->U64());
  p.partition_retries = static_cast<size_t>(r->U64());
  p.cancel_requested = r->U8() != 0;
  p.done = r->U8() != 0;
  return p;
}

void WriteEvent(const vsel::ProgressEvent& e, ByteWriter* w) {
  w->U8(static_cast<uint8_t>(e.kind));
  w->F64(e.best_cost);
  w->F64(e.elapsed_sec);
  w->U64(e.partition);
  w->U64(e.partitions_total);
  w->U64(e.attempt);
}

Result<vsel::ProgressEvent> ReadEvent(ByteReader* r) {
  vsel::ProgressEvent e;
  uint8_t kind = r->U8();
  if (kind > static_cast<uint8_t>(
                 vsel::ProgressEvent::Kind::kPartitionAbandoned)) {
    return Status::ParseError("bad progress event kind");
  }
  e.kind = static_cast<vsel::ProgressEvent::Kind>(kind);
  e.best_cost = r->F64();
  e.elapsed_sec = r->F64();
  e.partition = static_cast<size_t>(r->U64());
  e.partitions_total = static_cast<size_t>(r->U64());
  e.attempt = static_cast<size_t>(r->U64());
  return e;
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  ByteWriter w;
  w.U32(kProtocolVersion);
  w.U8(static_cast<uint8_t>(request.verb));
  w.U64(request.request_id);
  w.Str(request.client_id);
  w.U64(request.session_id);
  w.Str(request.store_tag);
  serialize::SerializeOptions(request.options, &w);
  w.U64(request.add_queries.size());
  for (const std::string& q : request.add_queries) w.Str(q);
  w.U64(request.remove_queries.size());
  for (const std::string& q : request.remove_queries) w.Str(q);
  w.U8(request.wait ? 1 : 0);
  w.U8(request.canonical ? 1 : 0);
  w.U8(static_cast<uint8_t>(request.telemetry_format));
  w.U64(request.unit_id);
  w.U8(static_cast<uint8_t>(request.result_code));
  w.Str(request.result_message);
  w.Str(request.cache_key);
  w.Str(request.blob);
  w.U64(request.identity_store_tag);
  w.U64(request.identity_config_tag);
  return SealPayload(std::move(w));
}

Result<Request> DecodeRequest(std::string_view payload) {
  Result<ByteReader> opened = OpenPayload(payload);
  if (!opened.ok()) return opened.status();
  ByteReader& r = *opened;
  Request req;
  uint8_t raw_verb = r.U8();
  if (r.failed() || !ValidVerb(raw_verb) ||
      raw_verb >= static_cast<uint8_t>(Verb::kResponse)) {
    return Status::ParseError("bad request verb");
  }
  req.verb = static_cast<Verb>(raw_verb);
  req.request_id = r.U64();
  req.client_id = r.Str();
  req.session_id = r.U64();
  req.store_tag = r.Str();
  Result<vsel::SelectorOptions> options = serialize::DeserializeOptions(&r);
  if (!options.ok()) return options.status();
  req.options = std::move(*options);
  uint64_t n_add = r.Count(8);
  for (uint64_t i = 0; i < n_add && !r.failed(); ++i) {
    req.add_queries.push_back(r.Str());
  }
  uint64_t n_remove = r.Count(8);
  for (uint64_t i = 0; i < n_remove && !r.failed(); ++i) {
    req.remove_queries.push_back(r.Str());
  }
  req.wait = r.U8() != 0;
  req.canonical = r.U8() != 0;
  uint8_t fmt = r.U8();
  if (fmt > static_cast<uint8_t>(TelemetryFormat::kPrometheus)) {
    return Status::ParseError("bad telemetry format");
  }
  req.telemetry_format = static_cast<TelemetryFormat>(fmt);
  req.unit_id = r.U64();
  uint8_t result_code = r.U8();
  if (result_code > static_cast<uint8_t>(StatusCode::kUnsupported)) {
    return Status::ParseError("bad partition-result status code");
  }
  req.result_code = static_cast<StatusCode>(result_code);
  req.result_message = r.Str();
  req.cache_key = r.Str();
  req.blob = r.Str();
  req.identity_store_tag = r.U64();
  req.identity_config_tag = r.U64();
  if (!r.AtEnd()) return Status::ParseError("malformed vseld request");
  return req;
}

std::string EncodeResponse(const Response& response) {
  ByteWriter w;
  w.U32(kProtocolVersion);
  w.U8(static_cast<uint8_t>(response.is_progress_event ? Verb::kProgressEvent
                                                       : Verb::kResponse));
  w.U64(response.request_id);
  w.U8(static_cast<uint8_t>(response.code));
  w.Str(response.message);
  w.U64(response.session_id);
  WriteProgress(response.progress, &w);
  w.Str(response.blob);
  w.U64(response.store_tag);
  w.U64(response.config_tag);
  WriteEvent(response.event, &w);
  w.U64(response.events_dropped);
  w.U32(response.protocol_version);
  return SealPayload(std::move(w));
}

Result<Response> DecodeResponse(std::string_view payload) {
  Result<ByteReader> opened = OpenPayload(payload);
  if (!opened.ok()) return opened.status();
  ByteReader& r = *opened;
  Response resp;
  uint8_t raw_kind = r.U8();
  if (r.failed() || (raw_kind != static_cast<uint8_t>(Verb::kResponse) &&
                     raw_kind != static_cast<uint8_t>(Verb::kProgressEvent))) {
    return Status::ParseError("bad response kind");
  }
  resp.is_progress_event =
      raw_kind == static_cast<uint8_t>(Verb::kProgressEvent);
  resp.request_id = r.U64();
  uint8_t code = r.U8();
  if (code > static_cast<uint8_t>(StatusCode::kUnsupported)) {
    return Status::ParseError("bad status code");
  }
  resp.code = static_cast<StatusCode>(code);
  resp.message = r.Str();
  resp.session_id = r.U64();
  resp.progress = ReadProgress(&r);
  resp.blob = r.Str();
  resp.store_tag = r.U64();
  resp.config_tag = r.U64();
  Result<vsel::ProgressEvent> event = ReadEvent(&r);
  if (!event.ok()) return event.status();
  resp.event = *event;
  resp.events_dropped = r.U64();
  resp.protocol_version = r.U32();
  if (!r.AtEnd()) return Status::ParseError("malformed vseld response");
  return resp;
}

// ---- FrameTransport --------------------------------------------------------

FrameTransport::~FrameTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Status FrameTransport::Latch(Status why) {
  failed_.store(true, std::memory_order_relaxed);
  return why;
}

Status FrameTransport::ReadExact(char* buf, size_t n,
                                 bool* clean_eof_at_start) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0 && got == 0 && clean_eof_at_start != nullptr) {
      *clean_eof_at_start = true;
      return Latch(Status::NotFound("connection closed"));
    }
    // EOF mid-frame or a socket error: the torn-peer case.
    return Latch(Status::Internal(
        r == 0 ? "peer closed connection mid-frame"
               : "socket read failed: " + std::string(std::strerror(errno))));
  }
  return Status::OK();
}

Status FrameTransport::WriteAll(const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a torn peer must produce EPIPE, not kill the daemon.
    ssize_t w = ::send(fd_, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Latch(Status::Internal("socket write failed: " +
                                  std::string(std::strerror(errno))));
  }
  return Status::OK();
}

Status FrameTransport::WriteFrame(std::string_view payload) {
  if (failed()) return Status::Internal("transport already failed");
  if (payload.size() > kMaxFramePayload) {
    return Latch(Status::InvalidArgument("frame payload too large"));
  }
  Status injected = fault::Maybe(fault::sites::kDaemonFrameWrite);
  if (!injected.ok()) return Latch(std::move(injected));
  ByteWriter header;
  header.U32(kFrameMagic);
  header.U32(static_cast<uint32_t>(payload.size()));
  // One send for the common small frame keeps a concurrent reader from
  // seeing a header/payload gap; correctness only needs ordering, which
  // two sends also give, but the copy is cheap relative to a syscall.
  std::string wire = header.TakeBytes();
  wire.append(payload.data(), payload.size());
  return WriteAll(wire.data(), wire.size());
}

Result<std::string> FrameTransport::ReadFrame() {
  if (failed()) return Status::Internal("transport already failed");
  Status injected = fault::Maybe(fault::sites::kDaemonFrameRead);
  if (!injected.ok()) return Latch(std::move(injected));
  char header[8];
  bool clean_eof = false;
  Status st = ReadExact(header, sizeof(header), &clean_eof);
  if (!st.ok()) return st;
  ByteReader r(std::string_view(header, sizeof(header)));
  uint32_t magic = r.U32();
  uint32_t len = r.U32();
  if (magic != kFrameMagic) {
    return Latch(Status::ParseError("bad frame magic"));
  }
  // Validate before allocating: a corrupted length header must fail the
  // connection, not drive a multi-gigabyte resize.
  if (len > kMaxFramePayload) {
    return Latch(Status::ParseError("frame length exceeds limit"));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    st = ReadExact(payload.data(), len, nullptr);
    if (!st.ok()) return st;
  }
  return payload;
}

void FrameTransport::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// ---- AF_UNIX helpers -------------------------------------------------------

namespace {

Status FillAddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

}  // namespace

Result<int> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr;
  RDFVIEWS_RETURN_IF_ERROR(FillAddr(path, &addr));
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal("bind(" + path + ") failed: " +
                                 std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    Status st = Status::Internal("listen(" + path + ") failed: " +
                                 std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr;
  RDFVIEWS_RETURN_IF_ERROR(FillAddr(path, &addr));
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal("connect(" + path + ") failed: " +
                                 std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  return fd;
}

}  // namespace rdfviews::vseld
