#include "vseld/quota.h"

#include <algorithm>
#include <vector>

#include "vsel/pipeline/pipeline.h"

namespace rdfviews::vseld {

Status AdmissionController::Admit(const std::string& client_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_sessions > 0 && live_ >= options_.max_sessions) {
    return Status::ResourceExhausted(
        "max sessions (" + std::to_string(options_.max_sessions) +
        ") reached");
  }
  size_t& client_live = per_client_[client_id];
  if (options_.max_sessions_per_client > 0 &&
      client_live >= options_.max_sessions_per_client) {
    return Status::ResourceExhausted(
        "client session quota (" +
        std::to_string(options_.max_sessions_per_client) + ") reached for " +
        client_id);
  }
  ++live_;
  ++client_live;
  return Status::OK();
}

void AdmissionController::Release(const std::string& client_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_ > 0) --live_;
  auto it = per_client_.find(client_id);
  if (it != per_client_.end()) {
    if (it->second > 0) --it->second;
    if (it->second == 0) per_client_.erase(it);
  }
}

vsel::SearchLimits AdmissionController::ClampLimits(
    const vsel::SearchLimits& requested) const {
  size_t population;
  {
    std::lock_guard<std::mutex> lock(mu_);
    population = std::max<size_t>(1, live_);
  }
  if (options_.aggregate_max_states == 0 &&
      options_.aggregate_time_budget_sec <= 0) {
    return requested;
  }
  // Reuse the pipeline's proportional apportioner with equal weights: the
  // per-session slice then obeys the same rounding and positive-floor
  // rules as per-partition budgets inside a session, so the daemon's
  // budget arithmetic never undercuts what the search stage would grant.
  vsel::SearchLimits aggregate;
  aggregate.max_states = options_.aggregate_max_states;
  aggregate.time_budget_sec = options_.aggregate_time_budget_sec;
  std::vector<vsel::SearchLimits> slices = vsel::pipeline::
      ApportionSearchLimits(aggregate, std::vector<size_t>(population, 1));
  const vsel::SearchLimits& slice = slices.front();

  vsel::SearchLimits clamped = requested;
  if (options_.aggregate_max_states > 0) {
    clamped.max_states = requested.max_states == 0
                             ? slice.max_states
                             : std::min(requested.max_states,
                                        slice.max_states);
  }
  if (options_.aggregate_time_budget_sec > 0) {
    clamped.time_budget_sec =
        requested.time_budget_sec <= 0
            ? slice.time_budget_sec
            : std::min(requested.time_budget_sec, slice.time_budget_sec);
  }
  return clamped;
}

Status AdmissionController::CheckUpdateSize(size_t add_count,
                                            size_t remove_count) const {
  if (options_.max_queries_per_update > 0 &&
      add_count + remove_count > options_.max_queries_per_update) {
    return Status::ResourceExhausted(
        "update touches " + std::to_string(add_count + remove_count) +
        " queries, quota is " +
        std::to_string(options_.max_queries_per_update));
  }
  return Status::OK();
}

size_t AdmissionController::live_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

}  // namespace rdfviews::vseld
