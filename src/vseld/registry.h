// The daemon's session table: every live TuningSession, addressable by id,
// with the per-session machinery the connection handlers need — the
// in-flight async update handle, a bounded progress-event queue feeding
// kSubscribeProgress streams, and the bookkeeping that proves no session
// leaks (opened == closed + reaped when the daemon drains).
//
// Concurrency model. The registry map has its own mutex (held only for
// lookups and insert/erase). Each entry then carries its *own* mutex
// guarding the session pointer and in-flight handle; handlers lock one
// entry, never the map, around session work — and never hold the entry
// lock across a blocking Wait() (they take a shared_ptr to the handle out
// under the lock and wait on it outside, which TuningHandle supports).
// Sessions deliberately outlive connections: a client that drops mid-update
// reconnects and re-addresses its session by id; abandoned sessions are
// reaped by the daemon's drain.
#ifndef RDFVIEWS_VSELD_REGISTRY_H_
#define RDFVIEWS_VSELD_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vsel/serialize/serialize.h"
#include "vsel/session/session.h"

namespace rdfviews::vseld {

/// Bounded MPSC progress-event queue between a session's on_progress
/// callback (invoked concurrently from search worker threads — must never
/// block) and at most one kSubscribeProgress streamer. Push is
/// non-blocking: at capacity the oldest event is dropped and counted, so a
/// slow or absent subscriber costs memory-bounded history, never
/// backpressure into the search.
class EventQueue {
 public:
  explicit EventQueue(size_t capacity = 256) : capacity_(capacity) {}

  void Push(const vsel::ProgressEvent& event);

  /// Blocks up to `timeout_sec` for an event. Returns nullopt on timeout
  /// or close. `dropped_before` receives the number of events dropped
  /// before the returned one (and is reset).
  std::optional<vsel::ProgressEvent> Pop(double timeout_sec,
                                         uint64_t* dropped_before);

  /// Wakes every blocked Pop permanently (drain path).
  void Close();

  uint64_t total_dropped() const {
    return total_dropped_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<vsel::ProgressEvent> events_;
  uint64_t undelivered_drops_ = 0;
  std::atomic<uint64_t> total_dropped_{0};
  bool closed_ = false;
};

/// One live daemon-side session.
struct DaemonSession {
  uint64_t id = 0;
  std::string client_id;
  /// Which registered store the session tunes (handlers re-resolve it to
  /// parse update queries against the right dictionary).
  std::string store_tag;
  vsel::serialize::CacheIdentity identity;

  /// Guards `session`, `inflight` and `closing`. Never held across
  /// TuningHandle::Wait.
  std::mutex mu;
  std::unique_ptr<vsel::TuningSession> session;
  /// The at-most-one in-flight async update (TuningSession's own
  /// contract); a finished handle stays here until the next update or a
  /// poll observes it.
  std::shared_ptr<vsel::TuningHandle> inflight;
  /// Last completed update's recommendation (what kFetchRecommendation
  /// serializes), refreshed whenever a handler harvests a finished handle.
  std::optional<vsel::Recommendation> last_recommendation;
  /// Set once by Close/Drain; later verbs addressing the session fail.
  bool closing = false;

  /// Progress events from every update of this session. A shared_ptr
  /// because the fan-out callback capturing it is installed at
  /// TuningSession construction, before this entry exists — and search
  /// worker threads may still hold the callback while the entry dies.
  std::shared_ptr<EventQueue> events;
  /// One subscriber at a time (second kSubscribeProgress is rejected).
  std::atomic<bool> subscriber_active{false};
};

/// The id -> session table plus leak-proof accounting.
class SessionRegistry {
 public:
  /// Registers a constructed session; returns its entry (already visible
  /// to other handlers). `events` is the queue the session's on_progress
  /// callback already feeds.
  std::shared_ptr<DaemonSession> Register(
      std::string client_id, std::string store_tag,
      vsel::serialize::CacheIdentity identity,
      std::unique_ptr<vsel::TuningSession> session,
      std::shared_ptr<EventQueue> events);

  std::shared_ptr<DaemonSession> Find(uint64_t id) const;

  /// Removes the entry and tears the session down: cancels + waits any
  /// in-flight update, closes the event queue, destroys the TuningSession.
  /// `reaped` distinguishes daemon-drain teardown from client-requested
  /// close in the counters. Returns false when `id` is unknown.
  bool Close(uint64_t id, bool reaped);

  /// Drains every remaining session (cancel in-flight, wait, destroy).
  /// Returns how many were reaped.
  size_t DrainAll();

  std::vector<uint64_t> LiveIds() const;
  size_t live() const;
  uint64_t opened() const { return opened_.load(std::memory_order_relaxed); }
  uint64_t closed() const { return closed_.load(std::memory_order_relaxed); }
  uint64_t reaped() const { return reaped_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<DaemonSession>> sessions_;
  uint64_t next_id_ = 1;
  std::atomic<uint64_t> opened_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> reaped_{0};
};

}  // namespace rdfviews::vseld

#endif  // RDFVIEWS_VSELD_REGISTRY_H_
