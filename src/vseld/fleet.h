// Distributed tuning fleet: remote partition workers behind vseld.
//
// Coordinator side. A vsel_worker process connects to the daemon's socket,
// pings (protocol negotiation), and registers with kRegisterWorker; the
// daemon acks and hands the connection — now inverted into a dispatch
// stream — to the WorkerPool. Stage 3 of the pipeline, configured with a
// FleetExecutor (TuningConfig::executor), then ships each dirty
// partition's search attempt to a registered worker as an encoded
// FleetWorkUnit and splices the returned outcome back through the same
// rehydration checks a cache entry passes.
//
// Failure model. The pool leans on the pieces the daemon already has: the
// transport's latched-failure contract (a torn worker connection fails
// exactly once, cleanly), the vseld.frame.* / vseld.worker.search fault
// sites, and stage 3's retry/backoff/watchdog policy. A worker that dies
// or goes silent mid-partition is declared dead and its in-flight unit is
// re-queued to another live worker; only when *no* live worker remains
// does the attempt fail — at which point stage 3 retries and, at
// exhaustion, the merge degrades to the surviving partitions exactly as
// for a local failure (PR 6 contract). With zero workers *registered* the
// FleetExecutor falls back to the in-process LocalExecutor, so a daemon
// with fleet mode on but no fleet yet behaves exactly like one without.
//
// Determinism. The parity gate (bench/fleet_stress) requires a fleet
// recommendation byte-identical to an in-process one. That holds because
// the work unit ships everything a worker's search reads: the calibrated
// cost weights (auto-calibration happens on the coordinator *before* any
// attempt), the statistics scalars, and the coordinator's warm
// pattern-count snapshot — complete for every view the search can create,
// since views only relax workload atoms and the coordinator precomputed
// exactly those relaxations. The coordinator-side re-cost on rehydration
// backstops any drift.
#ifndef RDFVIEWS_VSELD_FLEET_H_
#define RDFVIEWS_VSELD_FLEET_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/stop_token.h"
#include "common/telemetry/metrics.h"
#include "rdf/statistics.h"
#include "vsel/cost_model.h"
#include "vsel/options.h"
#include "vsel/pipeline/executor.h"
#include "vsel/serialize/serialize.h"
#include "vsel/state.h"
#include "vseld/protocol.h"

namespace rdfviews::vseld {

// ---- Work-unit codec -------------------------------------------------------

/// Everything a worker needs to run one partition search attempt with no
/// store of its own: the canonical key the outcome will be sealed under,
/// the wire TuningConfig (attempt limits substituted in, calibrated
/// weights, calibration off), the partition's start state, the statistics
/// scalars and warm pattern-count snapshot, and the cache identity.
struct FleetWorkUnit {
  std::string key;
  vsel::serialize::CacheIdentity identity;
  vsel::TuningConfig config;  // wire subset; limits are the attempt's slice
  vsel::State initial_state;
  uint64_t group_size = 0;
  /// Statistics scalars of the coordinator's measured store.
  uint64_t total_triples = 0;
  uint64_t distinct[3] = {0, 0, 0};
  double avg_width[3] = {0, 0, 0};
  /// Warm pattern-count cache (complete for the partition's search space).
  rdf::StatisticsSnapshot snapshot;
};

/// Encodes / decodes the kDispatchPartition blob. The frame layer already
/// checksums the bytes; the codec adds a version header and relies on
/// ByteReader's hardened bounds/count checks, so a hostile blob decode-fails
/// instead of over-allocating.
std::string EncodeFleetWorkUnit(const FleetWorkUnit& unit);
Result<FleetWorkUnit> DecodeFleetWorkUnit(std::string_view bytes);

// ---- Coordinator side ------------------------------------------------------

/// Registered-worker pool: owns the inverted worker connections, dispatches
/// encoded work units, and implements liveness (heartbeat deadlines),
/// death detection, and re-queueing. Thread-safe; any number of partition
/// searches may Execute concurrently.
class WorkerPool {
 public:
  struct Options {
    /// A worker whose in-flight unit produced no frame (result *or*
    /// heartbeat) for this long is declared dead and its unit re-queued.
    /// Workers heartbeat a few times per second while searching, so this
    /// bounds how long a silently-killed worker can stall a partition.
    double liveness_timeout_sec = 5.0;
    /// Granularity of Execute's wait loop (stop-token and deadline polls).
    double dispatch_poll_sec = 0.02;
  };

  /// Monotone traffic counters (also exported to the metrics registry as
  /// vseld_fleet_*).
  struct Counters {
    uint64_t registered = 0;
    uint64_t dispatches = 0;
    uint64_t results = 0;
    uint64_t requeues = 0;
    uint64_t worker_deaths = 0;
    /// kPartitionResult frames for units no longer pending — duplicates and
    /// late results from workers already declared dead. Dropped, counted.
    uint64_t duplicate_results = 0;
    uint64_t heartbeats = 0;
  };

  WorkerPool();
  explicit WorkerPool(Options options);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Adopts a registered worker's connection (the daemon calls this right
  /// after acking kRegisterWorker) and starts its reader thread.
  void AddWorker(std::unique_ptr<FrameTransport> transport, std::string name);

  /// Dispatches one encoded work unit to a live worker and blocks until
  /// its result frame arrives, the stop token fires (Cancelled), or every
  /// live worker died with the unit in flight (Unavailable). A worker
  /// dying mid-unit re-queues the unit to another live worker
  /// transparently. Returns the worker's serialized partition outcome, or
  /// the worker-side failure Status verbatim.
  Result<std::string> Execute(const std::string& payload,
                              const StopToken& stop);

  /// Workers ever registered / currently alive.
  size_t registered_total() const;
  size_t live_workers() const;

  Counters counters() const;

  /// Severs every worker connection and joins the reader threads. Called
  /// by the daemon's Stop(); idempotent.
  void Shutdown();

 private:
  struct Worker {
    std::string name;
    std::unique_ptr<FrameTransport> transport;
    std::thread reader;
    std::mutex write_mu;  // dispatch frames; readers never write
    bool dead = false;            // guarded by pool mu_
    size_t inflight = 0;          // guarded by pool mu_
    std::chrono::steady_clock::time_point last_activity;  // guarded by mu_
  };

  struct PendingUnit {
    Worker* worker = nullptr;
    bool done = false;
    StatusCode code = StatusCode::kOk;
    std::string message;
    std::string blob;
  };

  void ReaderLoop(Worker* worker);
  Worker* PickLiveWorkerLocked();
  void MarkDeadLocked(Worker* worker);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unordered_map<uint64_t, PendingUnit*> pending_;
  uint64_t next_unit_id_ = 1;
  bool shutdown_ = false;
  Counters counters_;
  // Last member: unregisters before counters_/mu_ die.
  telemetry::CollectorHandle metrics_;
};

/// The fleet's PartitionExecutor: encodes each attempt as a FleetWorkUnit,
/// dispatches it through the pool, and validates the returned outcome with
/// the same rehydration checks a cache entry passes (require_completed
/// relaxed — a remote attempt may return a budget-truncated anytime best).
/// With zero workers registered every attempt transparently runs through
/// the in-process LocalExecutor (counted as a local fallback).
class FleetExecutor final : public vsel::pipeline::PartitionExecutor {
 public:
  FleetExecutor(WorkerPool* pool, vsel::serialize::CacheIdentity identity);

  Result<vsel::SearchResult> ExecuteAttempt(
      const vsel::pipeline::PartitionWorkUnit& unit,
      const vsel::TuningConfig& config, const vsel::SearchLimits& limits,
      vsel::CostModel* cost_model) override;
  const char* name() const override { return "fleet"; }

 private:
  WorkerPool* pool_;
  vsel::serialize::CacheIdentity identity_;
  vsel::pipeline::LocalExecutor local_;
  telemetry::Counter* local_fallbacks_;
  telemetry::Counter* rehydration_rejected_;
};

// ---- Worker side -----------------------------------------------------------

struct WorkerOptions {
  /// The daemon's AF_UNIX socket.
  std::string socket_path;
  /// Label in daemon logs / metrics; also the protocol client_id.
  std::string name = "worker";
  /// Heartbeat period while a unit is in flight. Must be well under the
  /// pool's liveness_timeout_sec.
  double heartbeat_interval_sec = 0.2;
  /// Chaos hook for the stress harness: when nonzero, the worker severs
  /// its connection abruptly *in the middle of* the Nth dispatched unit
  /// (1-based) — after decoding, before any result frame — simulating a
  /// worker killed mid-partition. RunWorker then returns Aborted.
  size_t die_in_unit = 0;
};

/// Runs one worker: connect, ping (rejecting a protocol-version mismatch),
/// register, then serve dispatched partitions until the daemon closes the
/// connection (returns OK) or the transport fails (returns the error).
/// Blocking; run it on a dedicated thread for in-process workers.
Status RunWorker(const WorkerOptions& options);

}  // namespace rdfviews::vseld

#endif  // RDFVIEWS_VSELD_FLEET_H_
