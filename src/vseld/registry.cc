#include "vseld/registry.h"

#include <chrono>
#include <utility>

namespace rdfviews::vseld {

void EventQueue::Push(const vsel::ProgressEvent& event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    if (capacity_ > 0 && events_.size() >= capacity_) {
      events_.pop_front();
      ++undelivered_drops_;
      total_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    events_.push_back(event);
  }
  cv_.notify_one();
}

std::optional<vsel::ProgressEvent> EventQueue::Pop(double timeout_sec,
                                                   uint64_t* dropped_before) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock,
               std::chrono::duration<double>(timeout_sec < 0 ? 0 : timeout_sec),
               [this] { return closed_ || !events_.empty(); });
  if (events_.empty()) return std::nullopt;  // timeout or closed-and-empty
  if (dropped_before != nullptr) {
    *dropped_before = undelivered_drops_;
    undelivered_drops_ = 0;
  }
  vsel::ProgressEvent event = events_.front();
  events_.pop_front();
  return event;
}

void EventQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::shared_ptr<DaemonSession> SessionRegistry::Register(
    std::string client_id, std::string store_tag,
    vsel::serialize::CacheIdentity identity,
    std::unique_ptr<vsel::TuningSession> session,
    std::shared_ptr<EventQueue> events) {
  auto entry = std::make_shared<DaemonSession>();
  entry->client_id = std::move(client_id);
  entry->store_tag = std::move(store_tag);
  entry->identity = identity;
  entry->session = std::move(session);
  entry->events = std::move(events);
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry->id = next_id_++;
    sessions_.emplace(entry->id, entry);
  }
  opened_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

std::shared_ptr<DaemonSession> SessionRegistry::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionRegistry::Close(uint64_t id, bool reaped) {
  std::shared_ptr<DaemonSession> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // Teardown outside the map lock: Wait() joins the update worker. The
  // entry lock marks the session closing (so a concurrent handler that
  // still holds the shared_ptr fails its next verb instead of racing the
  // destruction), then is *released* before the blocking wait.
  std::shared_ptr<vsel::TuningHandle> inflight;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->closing = true;
    inflight = std::move(entry->inflight);
  }
  if (inflight != nullptr) {
    inflight->Cancel();
    (void)inflight->Wait();  // anytime contract: returns promptly post-cancel
  }
  if (entry->events != nullptr) entry->events->Close();
  {
    // The session dies under the entry lock; closing=true guarantees no
    // handler will take a new reference to it.
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->session.reset();
  }
  (reaped ? reaped_ : closed_).fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t SessionRegistry::DrainAll() {
  size_t n = 0;
  for (uint64_t id : LiveIds()) {
    if (Close(id, /*reaped=*/true)) ++n;
  }
  return n;
}

std::vector<uint64_t> SessionRegistry::LiveIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, entry] : sessions_) ids.push_back(id);
  return ids;
}

size_t SessionRegistry::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace rdfviews::vseld
