#include "vseld/remote_cache.h"

#include <utility>

namespace rdfviews::vseld {

Result<std::unique_ptr<RemoteCacheBackend>> RemoteCacheBackend::Connect(
    const std::string& socket_path, std::string client_id,
    const vsel::serialize::CacheIdentity& identity) {
  auto client = Client::Connect(socket_path, std::move(client_id));
  if (!client.ok()) return client.status();
  Status ping = client->Ping();
  if (!ping.ok()) return ping;
  return std::unique_ptr<RemoteCacheBackend>(
      new RemoteCacheBackend(std::move(*client), identity));
}

RemoteCacheBackend::RemoteCacheBackend(Client client,
                                       vsel::serialize::CacheIdentity identity)
    : client_(std::move(client)), identity_(identity) {
  metrics_ = telemetry::MetricsRegistry::Default()->RegisterCollector(
      [this](std::vector<telemetry::MetricSample>* out) {
        vsel::serialize::AppendCacheCounterSamples(counters(), "remote", out);
      });
}

Status RemoteCacheBackend::Get(const std::string& key, Fetched* out) {
  std::unique_lock<std::mutex> lock(mu_);
  auto blob = client_.CacheGet(key, identity_);
  if (!blob.ok()) {
    if (blob.status().code() == StatusCode::kNotFound) {
      ++counters_.misses;
      return blob.status();
    }
    // Transport or daemon-side storage failure: the retryable kind.
    ++counters_.misses;
    ++counters_.io_failures;
    return blob.status();
  }
  auto outcome =
      vsel::serialize::DeserializePartitionOutcome(*blob, key, identity_);
  if (!outcome.ok()) {
    // The daemon served bytes this identity cannot decode: unusable entry,
    // by contract a counted miss, never an error.
    ++counters_.misses;
    ++counters_.rejected;
    return Status::NotFound("remote cache entry unusable: " +
                            outcome.status().message());
  }
  out->result = std::move(*outcome);
  out->needs_rehydration = true;
  ++counters_.hits;
  return Status::OK();
}

Status RemoteCacheBackend::Put(
    const std::string& key,
    const vsel::pipeline::PartitionSearchResult& result) {
  std::string blob =
      vsel::serialize::SerializePartitionOutcome(key, result, identity_);
  std::unique_lock<std::mutex> lock(mu_);
  Status st = client_.CachePut(key, std::move(blob), identity_);
  if (!st.ok()) {
    ++counters_.store_failures;
    return st;
  }
  ++counters_.stored;
  return Status::OK();
}

Status RemoteCacheBackend::Invalidate(const std::string& key) {
  (void)key;
  return Status::Unsupported("remote cache has no invalidate verb");
}

void RemoteCacheBackend::NoteRehydrationRejected() {
  std::unique_lock<std::mutex> lock(mu_);
  ++counters_.rehydration_rejected;
}

RemoteCacheBackend::Counters RemoteCacheBackend::counters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace rdfviews::vseld
