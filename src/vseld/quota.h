// Admission control for the vseld daemon: per-client and aggregate quotas
// deciding whether a new session gets in, and how large a slice of the
// daemon's global search budget an admitted session's limits are clamped
// to.
//
// The model: the operator configures an *aggregate* budget (total
// max_states across all live sessions, total time budget per update) and
// per-client concurrency caps. Admission splits the aggregate budget over
// the hypothetical post-admission session population with the same
// proportional apportioner the pipeline uses across partitions
// (pipeline::ApportionSearchLimits, equal weights) — so the daemon's
// budget arithmetic matches the search stage's own, floors included. A
// session's requested limits are then clamped to its slice: a tenant may
// ask for less than its share, never more.
//
// Rejections are Status values the server maps onto a response frame
// (ResourceExhausted) and a per-reason counter
// (vseld_rejected_total{reason}); admission never blocks.
#ifndef RDFVIEWS_VSELD_QUOTA_H_
#define RDFVIEWS_VSELD_QUOTA_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "vsel/options.h"

namespace rdfviews::vseld {

struct QuotaOptions {
  /// Live sessions across all clients. 0 = unlimited.
  size_t max_sessions = 64;
  /// Live sessions per client_id. 0 = unlimited.
  size_t max_sessions_per_client = 8;
  /// Queries per single update request (add + remove). 0 = unlimited.
  size_t max_queries_per_update = 256;
  /// Aggregate max_states budget split equally across live sessions;
  /// 0 = unlimited (sessions keep their requested max_states).
  size_t aggregate_max_states = 0;
  /// Aggregate per-update time budget split the same way; 0 = unlimited.
  double aggregate_time_budget_sec = 0;
};

/// Tracks the live session population and applies QuotaOptions.
/// Thread-safe; every mutation is a short critical section.
class AdmissionController {
 public:
  explicit AdmissionController(QuotaOptions options)
      : options_(options) {}

  /// Decides admission for one new session of `client_id`. On success the
  /// session is counted immediately (call Release exactly once when it
  /// closes). Failures name the quota hit:
  ///   ResourceExhausted("max sessions")        — aggregate cap
  ///   ResourceExhausted("client session quota") — per-client cap
  Status Admit(const std::string& client_id);

  /// Releases one admitted session of `client_id`.
  void Release(const std::string& client_id);

  /// Clamps `limits` to the per-session slice of the aggregate budget at
  /// the current population (sessions admitted so far, including the
  /// caller's). A requested budget of 0 (unlimited) is replaced by the
  /// slice; a finite request is min'ed with it. No-op for budgets the
  /// operator left unlimited.
  vsel::SearchLimits ClampLimits(const vsel::SearchLimits& requested) const;

  /// Per-update workload-delta size check.
  Status CheckUpdateSize(size_t add_count, size_t remove_count) const;

  size_t live_sessions() const;
  const QuotaOptions& options() const { return options_; }

 private:
  const QuotaOptions options_;
  mutable std::mutex mu_;
  size_t live_ = 0;
  std::map<std::string, size_t> per_client_;
};

}  // namespace rdfviews::vseld

#endif  // RDFVIEWS_VSELD_QUOTA_H_
