#include "vseld/client.h"

#include <utility>

namespace rdfviews::vseld {

Result<Client> Client::Connect(const std::string& socket_path,
                               std::string client_id) {
  if (client_id.empty()) {
    return Status::InvalidArgument("client_id required");
  }
  Result<int> fd = ConnectUnix(socket_path);
  if (!fd.ok()) return fd.status();
  return Client(std::make_unique<FrameTransport>(*fd), std::move(client_id));
}

Request Client::NewRequest(Verb verb, uint64_t session_id) {
  Request req;
  req.verb = verb;
  req.request_id = next_request_id_++;
  req.client_id = client_id_;
  req.session_id = session_id;
  return req;
}

Result<Response> Client::RoundTrip(const Request& request) {
  RDFVIEWS_RETURN_IF_ERROR(transport_->WriteFrame(EncodeRequest(request)));
  Result<std::string> payload = transport_->ReadFrame();
  if (!payload.ok()) return payload.status();
  Result<Response> resp = DecodeResponse(*payload);
  if (!resp.ok()) return resp.status();
  if (resp->is_progress_event || resp->request_id != request.request_id) {
    return Status::Internal("response does not match request");
  }
  return resp;
}

Status Client::Ping() {
  Result<Response> resp = RoundTrip(NewRequest(Verb::kPing, 0));
  if (!resp.ok()) return resp.status();
  RDFVIEWS_RETURN_IF_ERROR(resp->ToStatus());
  // Version negotiation: an old daemon would otherwise surface as a
  // confusing ParseError on the first real verb.
  if (resp->protocol_version != kProtocolVersion) {
    return Status::Unsupported(
        "vseld protocol version mismatch: daemon speaks v" +
        std::to_string(resp->protocol_version) + ", this client speaks v" +
        std::to_string(kProtocolVersion));
  }
  return Status::OK();
}

Result<std::string> Client::CacheGet(
    const std::string& key, const vsel::serialize::CacheIdentity& identity) {
  Request req = NewRequest(Verb::kCacheGet, 0);
  req.cache_key = key;
  req.identity_store_tag = identity.store_tag;
  req.identity_config_tag = identity.config_tag;
  Result<Response> resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  if (!resp->ok()) return resp->ToStatus();
  return std::move(resp->blob);
}

Status Client::CachePut(const std::string& key, std::string blob,
                        const vsel::serialize::CacheIdentity& identity) {
  Request req = NewRequest(Verb::kCachePut, 0);
  req.cache_key = key;
  req.blob = std::move(blob);
  req.identity_store_tag = identity.store_tag;
  req.identity_config_tag = identity.config_tag;
  Result<Response> resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  return resp->ToStatus();
}

Result<uint64_t> Client::OpenSession(const std::string& store_tag,
                                     const vsel::SelectorOptions& options) {
  Request req = NewRequest(Verb::kOpenSession, 0);
  req.store_tag = store_tag;
  req.options = options;
  Result<Response> resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  if (!resp->ok()) return resp->ToStatus();
  return resp->session_id;
}

Result<vsel::TuningProgress> Client::Update(
    uint64_t session_id, std::vector<std::string> add_queries,
    std::vector<std::string> remove_queries, bool wait) {
  Request req = NewRequest(Verb::kUpdate, session_id);
  req.add_queries = std::move(add_queries);
  req.remove_queries = std::move(remove_queries);
  req.wait = wait;
  Result<Response> resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  if (!resp->ok()) return resp->ToStatus();
  return resp->progress;
}

Result<vsel::TuningProgress> Client::Poll(uint64_t session_id) {
  Result<Response> resp = RoundTrip(NewRequest(Verb::kPoll, session_id));
  if (!resp.ok()) return resp.status();
  if (!resp->ok()) return resp->ToStatus();
  return resp->progress;
}

Result<Client::FetchedRecommendation> Client::FetchRecommendation(
    uint64_t session_id, bool canonical, bool wait) {
  Request req = NewRequest(Verb::kFetchRecommendation, session_id);
  req.canonical = canonical;
  req.wait = wait;
  Result<Response> resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  if (!resp->ok()) return resp->ToStatus();
  FetchedRecommendation fetched;
  fetched.blob = std::move(resp->blob);
  fetched.identity.store_tag = resp->store_tag;
  fetched.identity.config_tag = resp->config_tag;
  return fetched;
}

Result<vsel::TuningProgress> Client::Cancel(uint64_t session_id) {
  Result<Response> resp = RoundTrip(NewRequest(Verb::kCancel, session_id));
  if (!resp.ok()) return resp.status();
  if (!resp->ok()) return resp->ToStatus();
  return resp->progress;
}

Result<vsel::TuningProgress> Client::SubscribeProgress(
    uint64_t session_id,
    const std::function<void(const vsel::ProgressEvent&, uint64_t)>&
        on_event) {
  Request req = NewRequest(Verb::kSubscribeProgress, session_id);
  RDFVIEWS_RETURN_IF_ERROR(transport_->WriteFrame(EncodeRequest(req)));
  for (;;) {
    Result<std::string> payload = transport_->ReadFrame();
    if (!payload.ok()) return payload.status();
    Result<Response> resp = DecodeResponse(*payload);
    if (!resp.ok()) return resp.status();
    if (resp->request_id != req.request_id) {
      return Status::Internal("response does not match subscription");
    }
    if (resp->is_progress_event) {
      if (on_event) on_event(resp->event, resp->events_dropped);
      continue;
    }
    if (!resp->ok()) return resp->ToStatus();
    return resp->progress;  // terminal
  }
}

Result<std::string> Client::Telemetry(TelemetryFormat format) {
  Request req = NewRequest(Verb::kTelemetrySnapshot, 0);
  req.telemetry_format = format;
  Result<Response> resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  if (!resp->ok()) return resp->ToStatus();
  return std::move(resp->blob);
}

Status Client::CloseSession(uint64_t session_id) {
  Result<Response> resp =
      RoundTrip(NewRequest(Verb::kCloseSession, session_id));
  if (!resp.ok()) return resp.status();
  return resp->ToStatus();
}

Status Client::Shutdown() {
  Result<Response> resp = RoundTrip(NewRequest(Verb::kShutdown, 0));
  if (!resp.ok()) return resp.status();
  return resp->ToStatus();
}

void Client::Abort() {
  if (transport_ != nullptr) transport_->ShutdownBoth();
  transport_.reset();  // closes the fd mid-whatever the server was doing
}

}  // namespace rdfviews::vseld
