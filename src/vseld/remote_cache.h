// A PartitionCacheBackend that lives on the other end of a vseld
// connection: Get/Put speak the kCacheGet / kCachePut verbs against the
// daemon's shared per-identity cache, so a fleet of tuning nodes (or
// remote workers) reuse each other's completed searches without mounting
// a shared directory.
//
// Keys are opaque to the wire — the session hands this backend the same
// identity-salted keys it hands DirCacheBackend, and the daemon stores
// them in its own backend unchanged, so remote and daemon-local sessions
// address one key space. All failure handling follows the backend
// contract: a miss (or an entry the daemon's cache rejected) is NotFound,
// a severed or latched connection is a storage failure a
// RetryingCacheBackend decorator may retry, and every served entry is
// marked needs_rehydration (it crossed a process boundary twice).
#ifndef RDFVIEWS_VSELD_REMOTE_CACHE_H_
#define RDFVIEWS_VSELD_REMOTE_CACHE_H_

#include <mutex>
#include <string>

#include "common/status.h"
#include "vsel/serialize/partition_cache.h"
#include "vseld/client.h"

namespace rdfviews::vseld {

class RemoteCacheBackend : public vsel::serialize::PartitionCacheBackend {
 public:
  /// Connects (and pings — protocol negotiation) a dedicated client
  /// connection for cache traffic.
  static Result<std::unique_ptr<RemoteCacheBackend>> Connect(
      const std::string& socket_path, std::string client_id,
      const vsel::serialize::CacheIdentity& identity);

  Status Get(const std::string& key, Fetched* out) override;
  Status Put(const std::string& key,
             const vsel::pipeline::PartitionSearchResult& result) override;
  /// The wire has no invalidate verb; a poisoned entry degrades to a
  /// rehydration rejection per session until the daemon's own backend
  /// drops it. Reported as unsupported so callers don't assume the drop.
  Status Invalidate(const std::string& key) override;
  void Clear() override {}  // remote capacity is the daemon's concern
  size_t Size() const override { return 0; }
  void NoteRehydrationRejected() override;
  Counters counters() const override;

 private:
  RemoteCacheBackend(Client client, vsel::serialize::CacheIdentity identity);

  mutable std::mutex mu_;  // Client is single-exchange; serialise callers
  Client client_;
  vsel::serialize::CacheIdentity identity_;
  Counters counters_;
  // Last member: unregisters before counters_/mu_ die.
  telemetry::CollectorHandle metrics_;
};

}  // namespace rdfviews::vseld

#endif  // RDFVIEWS_VSELD_REMOTE_CACHE_H_
