// The vseld daemon: a long-running, multi-tenant tuning service. It owns
// loaded stores (and their statistics environments), serves many
// concurrent TuningSessions over the length-prefixed binary protocol of
// vseld/protocol.h, enforces per-client and aggregate quotas through
// AdmissionController, and shares one tiered partition-result cache per
// cache identity across every session that matches it.
//
// Threading. One accept thread (guarded by fault site vseld.accept — an
// injected accept failure is counted and the loop continues) hands each
// connection to a fixed-size ThreadPool of connection handlers; a handler
// owns its connection's FrameTransport and runs the verb loop until the
// client disconnects or the daemon drains. Session updates never run on
// handler threads: they run on the session's own UpdateAsync worker, so a
// handler blocked in a wait=true verb holds no lock and a slow search
// never starves other connections' handlers.
//
// Graceful drain (Stop): stop accepting, cancel every in-flight update
// (the anytime contract makes blocked wait=true handlers return promptly
// with the valid current best), half-close every live connection socket
// (unblocking handlers parked in ReadFrame — the no-hung-workers
// guarantee), join the handler pool, then reap every remaining session
// through the registry. After Stop: registry().live() == 0 and
// opened == closed + reaped.
#ifndef RDFVIEWS_VSELD_SERVER_H_
#define RDFVIEWS_VSELD_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/telemetry/metrics.h"
#include "common/thread_pool.h"
#include "rdf/schema.h"
#include "rdf/triple_store.h"
#include "vsel/serialize/partition_cache.h"
#include "vseld/fleet.h"
#include "vseld/protocol.h"
#include "vseld/quota.h"
#include "vseld/registry.h"

namespace rdfviews::vseld {

struct DaemonOptions {
  /// AF_UNIX socket path the daemon listens on.
  std::string socket_path;
  /// Connection handler pool size — the hard cap on concurrently *served*
  /// connections (extra accepted connections queue for a handler).
  size_t max_connections = 64;
  int listen_backlog = 128;
  QuotaOptions quota;
  /// When set, sessions get a shared two-tier partition-result cache: one
  /// TieredCacheBackend (in-memory LRU front) per cache identity over a
  /// DirCacheBackend rooted here. Empty: each session keeps its private
  /// in-memory backend.
  std::string cache_dir;
  size_t tiered_front_capacity = 256;
  /// Tick of the subscribe-progress streaming loop (how often a quiet
  /// stream re-checks for update completion / drain).
  double subscribe_tick_sec = 0.05;
  /// Fleet mode: accept kRegisterWorker connections and give every session
  /// a FleetExecutor that dispatches dirty-partition search attempts to
  /// the registered workers (falling back to in-process search while none
  /// are registered). Off: worker registration is rejected.
  bool enable_fleet = false;
  /// Liveness deadline for an in-flight fleet unit (see
  /// WorkerPool::Options::liveness_timeout_sec).
  double fleet_liveness_timeout_sec = 5.0;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();  // Stop()
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Registers a store under a tag clients address in kOpenSession. The
  /// store / dict / schema must outlive the daemon; `dict` is mutated by
  /// query parsing (serialized by a per-store mutex — rdf::Dictionary
  /// interning is not thread-safe). Call before Start.
  void RegisterStore(const std::string& tag, const rdf::TripleStore* store,
                     rdf::Dictionary* dict,
                     const rdf::Schema* schema = nullptr);

  /// Binds the socket, spawns the accept thread and handler pool.
  Status Start();

  /// Graceful drain (see the header comment). Idempotent; called by the
  /// destructor. Never called from a handler thread — a kShutdown verb
  /// only *requests* it (WaitShutdownRequested wakes) so the owner of the
  /// daemon performs the join.
  void Stop();

  /// Blocks up to `timeout_sec` (forever when < 0) for a kShutdown verb.
  /// True when shutdown was requested.
  bool WaitShutdownRequested(double timeout_sec = -1);

  const SessionRegistry& registry() const { return registry_; }
  AdmissionController& admission() { return admission_; }
  const DaemonOptions& options() const { return options_; }
  /// The registered-worker pool (always constructed; only populated in
  /// fleet mode). Exposed for the stress harness's gates.
  WorkerPool& fleet_pool() { return fleet_pool_; }

  /// Sessions the drain reaped and torn (mid-frame) connection reads, for
  /// the stress harness's gates.
  uint64_t drained_sessions() const { return drained_sessions_; }

 private:
  struct StoreEntry {
    const rdf::TripleStore* store = nullptr;
    rdf::Dictionary* dict = nullptr;
    const rdf::Schema* schema = nullptr;
    /// Serializes datalog parsing (dictionary interning) for this store.
    std::mutex parse_mu;
  };

  void AcceptLoop();
  void HandleConnection(int fd,
                        std::chrono::steady_clock::time_point accepted_at);
  Response Dispatch(const Request& req, bool* close_connection);

  Response HandleOpenSession(const Request& req);
  Response HandleCacheGet(const Request& req);
  Response HandleCachePut(const Request& req);
  Response HandleUpdate(const Request& req);
  Response HandlePoll(const Request& req);
  Response HandleFetch(const Request& req);
  Response HandleCancel(const Request& req);
  Response HandleTelemetry(const Request& req);
  Response HandleCloseSession(const Request& req);
  void HandleSubscribe(const Request& req, FrameTransport* transport);

  /// Find + closing-check, with the unknown-session rejection counted.
  Result<std::shared_ptr<DaemonSession>> FindSession(const Request& req);
  /// Harvests a finished in-flight handle into last_recommendation.
  /// Caller holds entry->mu.
  void HarvestLocked(DaemonSession* entry);
  /// The shared cache backend for `identity` (null when cache_dir unset).
  std::shared_ptr<vsel::serialize::PartitionCacheBackend> BackendFor(
      const vsel::serialize::CacheIdentity& identity);
  bool CloseSessionInternal(uint64_t id, bool reaped);
  Response ErrorResponse(Status status, const char* reject_reason);
  void CountRejected(const char* reason);

  const DaemonOptions options_;
  AdmissionController admission_;
  WorkerPool fleet_pool_;
  SessionRegistry registry_;
  std::map<std::string, std::unique_ptr<StoreEntry>> stores_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  /// Live connection transports, so Stop can unblock parked readers.
  std::mutex transports_mu_;
  std::unordered_map<int, FrameTransport*> transports_;

  /// Shared per-identity tiered cache backends (key: IdentityKeyBytes).
  std::mutex backends_mu_;
  std::map<std::string, std::shared_ptr<vsel::serialize::PartitionCacheBackend>>
      backends_;

  uint64_t drained_sessions_ = 0;

  // Registry-owned instruments (stable pointers, registered once).
  telemetry::Counter* accepts_total_ = nullptr;
  telemetry::Counter* accept_failures_total_ = nullptr;
  telemetry::Counter* torn_reads_total_ = nullptr;
  telemetry::Histogram* first_byte_ns_ = nullptr;
  std::map<uint8_t, telemetry::Counter*> frames_by_verb_;
  // vseld_sessions_active is a collector over registry_.live();
  // last member so it unregisters before the registry dies.
  telemetry::CollectorHandle metrics_;
};

}  // namespace rdfviews::vseld

#endif  // RDFVIEWS_VSELD_SERVER_H_
