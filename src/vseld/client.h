// Client side of the vseld protocol: a thin, blocking, one-connection
// wrapper over FrameTransport that turns each daemon verb into a typed
// call. Not thread-safe (one request/response exchange at a time — open a
// second Client for concurrency); sessions are addressed by id and outlive
// the connection, so a client may drop, reconnect, and keep using the
// session id it holds.
#ifndef RDFVIEWS_VSELD_CLIENT_H_
#define RDFVIEWS_VSELD_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "vsel/serialize/serialize.h"
#include "vseld/protocol.h"

namespace rdfviews::vseld {

class Client {
 public:
  /// Connects to a daemon's AF_UNIX socket. `client_id` is the tenant
  /// identity quotas are enforced per (non-empty).
  static Result<Client> Connect(const std::string& socket_path,
                                std::string client_id);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Liveness plus protocol negotiation: the daemon answers with its
  /// protocol version and a mismatch fails here with Unsupported instead
  /// of surfacing later as a ParseError on a real verb.
  Status Ping();

  /// Remote partition cache verbs (what RemoteCacheBackend speaks): the
  /// daemon's shared per-identity cache, addressed by salted key. CacheGet
  /// returns the sealed partition-outcome bytes or NotFound; CachePut
  /// stores sealed bytes the daemon re-validates under `identity`.
  Result<std::string> CacheGet(const std::string& key,
                               const vsel::serialize::CacheIdentity& identity);
  Status CachePut(const std::string& key, std::string blob,
                  const vsel::serialize::CacheIdentity& identity);

  /// Opens a session over the daemon's store tagged `store_tag`; only the
  /// wire subset of `options` travels (see serialize::SerializeOptions),
  /// and the daemon clamps the limits to the admission slice.
  Result<uint64_t> OpenSession(const std::string& store_tag,
                               const vsel::SelectorOptions& options);

  /// Applies a workload delta (datalog texts / query names to drop).
  /// wait=true blocks until the update finishes and returns its final
  /// progress; wait=false returns after submission.
  Result<vsel::TuningProgress> Update(uint64_t session_id,
                                      std::vector<std::string> add_queries,
                                      std::vector<std::string> remove_queries,
                                      bool wait);

  Result<vsel::TuningProgress> Poll(uint64_t session_id);

  struct FetchedRecommendation {
    /// serialize.h recommendation blob; decode with
    /// DeserializeRecommendation under `identity`.
    std::string blob;
    vsel::serialize::CacheIdentity identity;
  };
  /// Fetches the session's last completed recommendation. wait=true first
  /// waits out any in-flight update; canonical=true requests the
  /// wall-clock-normalized parity form.
  Result<FetchedRecommendation> FetchRecommendation(uint64_t session_id,
                                                    bool canonical,
                                                    bool wait);

  /// Requests cooperative cancellation of the in-flight update (no-op when
  /// none); returns the progress snapshot at cancellation.
  Result<vsel::TuningProgress> Cancel(uint64_t session_id);

  /// Streams the in-flight update's progress events: `on_event` fires per
  /// pushed event (with the count of queue-dropped events before it) until
  /// the server sends the terminal response, whose final progress is
  /// returned. Returns immediately with the current progress when no
  /// update is running.
  Result<vsel::TuningProgress> SubscribeProgress(
      uint64_t session_id,
      const std::function<void(const vsel::ProgressEvent&, uint64_t dropped)>&
          on_event);

  /// The daemon's metrics snapshot, rendered as JSON or Prometheus text.
  Result<std::string> Telemetry(TelemetryFormat format);

  Status CloseSession(uint64_t session_id);

  /// Asks the daemon to drain (it acknowledges, then its owner stops it).
  Status Shutdown();

  /// Abruptly severs the connection without closing sessions — the
  /// stress harness's disconnect-mid-update tool. The client is unusable
  /// afterwards.
  void Abort();

 private:
  Client(std::unique_ptr<FrameTransport> transport, std::string client_id)
      : transport_(std::move(transport)), client_id_(std::move(client_id)) {}

  Request NewRequest(Verb verb, uint64_t session_id);
  Result<Response> RoundTrip(const Request& request);

  std::unique_ptr<FrameTransport> transport_;
  std::string client_id_;
  uint64_t next_request_id_ = 1;
};

}  // namespace rdfviews::vseld

#endif  // RDFVIEWS_VSELD_CLIENT_H_
