#include "workload/generator.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "cq/containment.h"
#include "rdf/vocabulary.h"

namespace rdfviews::workload {

namespace {

using cq::Atom;
using cq::ConjunctiveQuery;
using cq::Term;
using cq::VarId;

const char* kShapeNames[] = {"star",          "chain",        "cycle",
                             "random-sparse", "random-dense", "mixed"};

QueryShape ResolveShape(QueryShape shape, size_t query_index) {
  if (shape != QueryShape::kMixed) return shape;
  constexpr QueryShape kRotation[] = {
      QueryShape::kStar, QueryShape::kChain, QueryShape::kCycle,
      QueryShape::kRandomSparse, QueryShape::kRandomDense};
  return kRotation[query_index % 5];
}

/// Pool of constants with the commonality policy: high commonality draws
/// from a small shared pool, low commonality from a large one. `prefix`
/// names the pool: grouped workloads (WorkloadSpec::partition_groups > 1)
/// give every group its own prefixed — hence disjoint — pool.
class ConstantPool {
 public:
  ConstantPool(const WorkloadSpec& spec, size_t group_queries,
               const std::string& prefix, rdf::Dictionary* dict, Rng* rng)
      : rng_(rng) {
    const size_t shared = std::max<size_t>(spec.atoms_per_query, 4);
    const size_t total = spec.commonality == Commonality::kHigh
                             ? shared + 2
                             : shared * std::max<size_t>(group_queries, 2);
    for (size_t i = 0; i < total; ++i) {
      properties_.push_back(
          dict->Intern("wp:" + prefix + "p" + std::to_string(i + 1)));
      objects_.push_back(
          dict->Intern("wo:" + prefix + "o" + std::to_string(i + 1)));
    }
  }

  rdf::TermId Property() { return properties_[rng_->Below(properties_.size())]; }
  rdf::TermId Object() { return objects_[rng_->Below(objects_.size())]; }

 private:
  Rng* rng_;
  std::vector<rdf::TermId> properties_;
  std::vector<rdf::TermId> objects_;
};

/// Builds the atom skeleton of a query: which variable pairs each atom
/// connects. Returns atoms with variable terms only; the caller fills in
/// the property/object constants.
std::vector<Atom> BuildShape(QueryShape shape, size_t num_atoms, Rng* rng) {
  std::vector<Atom> atoms;
  VarId next = 0;
  auto v = [](VarId id) { return Term::Var(id); };
  switch (shape) {
    case QueryShape::kStar: {
      VarId center = next++;
      for (size_t i = 0; i < num_atoms; ++i) {
        atoms.push_back(Atom{v(center), Term(), v(next++)});
      }
      break;
    }
    case QueryShape::kChain: {
      VarId cur = next++;
      for (size_t i = 0; i < num_atoms; ++i) {
        VarId nxt = next++;
        atoms.push_back(Atom{v(cur), Term(), v(nxt)});
        cur = nxt;
      }
      break;
    }
    case QueryShape::kCycle: {
      VarId first = next++;
      VarId cur = first;
      for (size_t i = 0; i + 1 < num_atoms; ++i) {
        VarId nxt = next++;
        atoms.push_back(Atom{v(cur), Term(), v(nxt)});
        cur = nxt;
      }
      atoms.push_back(Atom{v(cur), Term(), v(first)});
      break;
    }
    case QueryShape::kRandomSparse:
    case QueryShape::kRandomDense: {
      // Sparse: ~one variable per atom (tree-ish). Dense: few variables, so
      // many atoms share them and the join graph is close to a clique.
      size_t num_vars = shape == QueryShape::kRandomSparse
                            ? num_atoms + 1
                            : std::max<size_t>(num_atoms / 3, 2);
      for (size_t i = 0; i < num_vars; ++i) next++;
      // Spanning connectivity: atom i connects a fresh-ish var to one
      // already used.
      for (size_t i = 0; i < num_atoms; ++i) {
        VarId a;
        VarId b;
        if (shape == QueryShape::kRandomSparse && i + 1 < num_vars) {
          a = static_cast<VarId>(rng->Below(i + 1));
          b = static_cast<VarId>(i + 1);
        } else {
          a = static_cast<VarId>(rng->Below(num_vars));
          b = static_cast<VarId>(rng->Below(num_vars));
          if (a == b) b = static_cast<VarId>((b + 1) % num_vars);
        }
        atoms.push_back(Atom{v(a), Term(), v(b)});
      }
      break;
    }
    case QueryShape::kMixed:
      RDFVIEWS_CHECK_MSG(false, "kMixed must be resolved per query");
  }
  return atoms;
}

ConjunctiveQuery FinishQuery(std::vector<Atom> atoms, const WorkloadSpec& spec,
                             size_t query_index, ConstantPool* pool,
                             Rng* rng) {
  ConjunctiveQuery q;
  q.set_name("q" + std::to_string(query_index + 1));

  // Fill property constants and some object constants.
  std::unordered_set<rdf::TermId> used_properties;
  for (size_t i = 0; i < atoms.size(); ++i) {
    // Distinct properties per query keep the query minimal.
    rdf::TermId p = pool->Property();
    for (int tries = 0; tries < 16 && used_properties.contains(p); ++tries) {
      p = pool->Property();
    }
    used_properties.insert(p);
    atoms[i].p = Term::Const(p);
    bool object_free = atoms[i].o.is_var();
    if (object_free && rng->Bernoulli(spec.object_constant_share)) {
      // Only cut leaf objects (vars occurring once) to keep connectivity.
      VarId var = atoms[i].o.var();
      int occurrences = 0;
      for (const Atom& a : atoms) {
        occurrences += (a.s.is_var() && a.s.var() == var) +
                       (a.o.is_var() && a.o.var() == var);
      }
      if (occurrences == 1 && atoms.size() > 1) {
        atoms[i].o = Term::Const(pool->Object());
      }
    }
  }
  *q.mutable_atoms() = std::move(atoms);

  // Head: first variable plus random distinct others.
  std::vector<VarId> vars = q.BodyVars();
  RDFVIEWS_CHECK(!vars.empty());
  size_t head_n = std::clamp<size_t>(spec.head_vars, 1, vars.size());
  rng->Shuffle(&vars);
  std::sort(vars.begin(), vars.begin() + static_cast<long>(head_n));
  for (size_t i = 0; i < head_n; ++i) {
    q.mutable_head()->push_back(Term::Var(vars[i]));
  }
  ConjunctiveQuery minimized = cq::Minimize(q);
  minimized.set_name(q.name());
  return minimized;
}

}  // namespace

const char* QueryShapeName(QueryShape shape) {
  return kShapeNames[static_cast<int>(shape)];
}

const char* CommonalityName(Commonality c) {
  return c == Commonality::kHigh ? "high" : "low";
}

std::vector<ConjunctiveQuery> GenerateWorkload(const WorkloadSpec& spec,
                                               rdf::Dictionary* dict) {
  Rng rng(spec.seed);
  // One constant pool per partition group; a single group keeps the classic
  // unprefixed names. Queries are assigned to groups in contiguous blocks.
  const size_t groups =
      std::clamp<size_t>(spec.partition_groups, 1,
                         std::max<size_t>(spec.num_queries, 1));
  const size_t group_queries = (spec.num_queries + groups - 1) / groups;
  std::vector<ConstantPool> pools;
  pools.reserve(groups);
  for (size_t g = 0; g < groups; ++g) {
    pools.emplace_back(spec, group_queries,
                       groups == 1 ? "" : "g" + std::to_string(g),
                       dict, &rng);
  }
  std::vector<ConjunctiveQuery> out;
  std::unordered_set<std::string> seen;
  size_t attempts = 0;
  while (out.size() < spec.num_queries &&
         attempts < spec.num_queries * 50 + 100) {
    ++attempts;
    QueryShape shape = ResolveShape(spec.shape, out.size());
    std::vector<Atom> atoms = BuildShape(shape, spec.atoms_per_query, &rng);
    ConstantPool& pool = pools[out.size() * groups / spec.num_queries];
    ConjunctiveQuery q = FinishQuery(std::move(atoms), spec, out.size(),
                                     &pool, &rng);
    if (q.HasCartesianProduct()) continue;
    // Avoid exact duplicates within the workload.
    std::string key = q.ToString();
    if (!seen.insert(key).second) continue;
    out.push_back(std::move(q));
  }
  RDFVIEWS_CHECK_MSG(out.size() == spec.num_queries,
                     "workload generation failed to produce enough queries");
  return out;
}

std::vector<ConjunctiveQuery> GenerateSatisfiableWorkload(
    const WorkloadSpec& spec, const rdf::TripleStore& store,
    rdf::Dictionary* dict) {
  RDFVIEWS_CHECK(store.built() && store.size() > 0);
  Rng rng(spec.seed);
  std::vector<ConjunctiveQuery> out;
  std::unordered_set<std::string> seen;

  // High commonality: restart walks from a small set of anchor triples so
  // queries share properties and constants.
  const size_t num_anchors =
      spec.commonality == Commonality::kHigh
          ? std::max<size_t>(2, spec.num_queries / 3)
          : spec.num_queries * 4;
  std::vector<rdf::Triple> anchors;
  for (size_t i = 0; i < num_anchors; ++i) {
    anchors.push_back(store.triples()[rng.Below(store.size())]);
  }

  size_t attempts = 0;
  while (out.size() < spec.num_queries &&
         attempts < spec.num_queries * 200 + 200) {
    ++attempts;
    QueryShape shape = ResolveShape(spec.shape, out.size());
    const rdf::Triple& seed_triple = anchors[rng.Below(anchors.size())];

    // Instantiate the shape by walking the data, starting at the anchor.
    std::vector<Atom> atoms;
    VarId next_var = 0;
    auto v = [&](VarId id) { return Term::Var(id); };
    bool ok = true;

    auto random_triple_from = [&](rdf::TermId subject, bool allow_type,
                                  rdf::Triple* t) -> bool {
      std::vector<rdf::Triple> candidates;
      store.Scan(rdf::Pattern{subject, rdf::kAnyTerm, rdf::kAnyTerm},
                 [&](const rdf::Triple& triple) {
                   if (allow_type || triple.p != rdf::kRdfType) {
                     candidates.push_back(triple);
                   }
                   return candidates.size() < 64;
                 });
      if (candidates.empty()) return false;
      *t = candidates[rng.Below(candidates.size())];
      return true;
    };

    if (shape == QueryShape::kStar || shape == QueryShape::kRandomDense) {
      VarId center = next_var++;
      rdf::TermId subject = seed_triple.s;
      std::unordered_set<rdf::TermId> used_props;
      for (size_t i = 0; i < spec.atoms_per_query && ok; ++i) {
        rdf::Triple t;
        ok = random_triple_from(subject, /*allow_type=*/true, &t);
        if (!ok) break;
        for (int tries = 0; tries < 8 && used_props.contains(t.p); ++tries) {
          ok = random_triple_from(subject, /*allow_type=*/true, &t);
        }
        used_props.insert(t.p);
        // Class positions are always bound: open rdf:type atoms trigger
        // rule 5 over every schema class, which the paper's workloads avoid.
        bool make_const = rng.Bernoulli(spec.object_constant_share) ||
                          i == 0 || t.p == rdf::kRdfType;
        atoms.push_back(Atom{v(center), Term::Const(t.p),
                             make_const ? Term::Const(t.o)
                                        : v(next_var++)});
      }
    } else {
      // Chain-like walk (also used for cycle / sparse shapes).
      VarId cur_var = next_var++;
      rdf::TermId cur = seed_triple.s;
      std::unordered_set<rdf::TermId> used_props;
      for (size_t i = 0; i < spec.atoms_per_query && ok; ++i) {
        rdf::Triple t;
        bool last = i + 1 == spec.atoms_per_query;
        // rdf:type edges are only taken as the (constant-object) final
        // atom; mid-chain they would dead-end in a class node.
        ok = random_triple_from(cur, /*allow_type=*/last, &t);
        if (!ok) break;
        // Prefer properties not used yet in this query: repeated
        // reformulable properties multiply |Qr| exponentially (Thm. 4.1).
        for (int tries = 0; tries < 8 && used_props.contains(t.p); ++tries) {
          ok = random_triple_from(cur, /*allow_type=*/last, &t);
        }
        used_props.insert(t.p);
        bool make_const =
            (last && rng.Bernoulli(0.7)) || t.p == rdf::kRdfType;
        VarId nxt = next_var;
        if (!make_const) ++next_var;
        atoms.push_back(Atom{v(cur_var), Term::Const(t.p),
                             make_const ? Term::Const(t.o) : v(nxt)});
        cur_var = nxt;
        cur = t.o;
      }
    }
    if (!ok || atoms.size() < std::max<size_t>(spec.atoms_per_query / 2, 1)) {
      continue;
    }

    ConjunctiveQuery q;
    q.set_name("q" + std::to_string(out.size() + 1));
    *q.mutable_atoms() = std::move(atoms);
    std::vector<VarId> vars = q.BodyVars();
    if (vars.empty()) continue;
    size_t head_n = std::clamp<size_t>(spec.head_vars, 1, vars.size());
    rng.Shuffle(&vars);
    std::sort(vars.begin(), vars.begin() + static_cast<long>(head_n));
    for (size_t i = 0; i < head_n; ++i) {
      q.mutable_head()->push_back(Term::Var(vars[i]));
    }
    ConjunctiveQuery minimized = cq::Minimize(q);
    minimized.set_name(q.name());
    if (minimized.HasCartesianProduct()) continue;
    std::string key = minimized.ToString();
    if (!seen.insert(key).second) continue;
    out.push_back(std::move(minimized));
  }
  RDFVIEWS_CHECK_MSG(
      out.size() == spec.num_queries,
      "satisfiable workload generation failed; dataset too sparse?");
  (void)dict;
  return out;
}

rdf::TripleStore GenerateStoreForWorkload(
    const std::vector<ConjunctiveQuery>& workload, rdf::Dictionary* dict,
    size_t approx_triples, uint64_t seed, size_t resource_pool) {
  Rng rng(seed);
  rdf::TripleStore store;
  // Shared resource pool: the same subjects/objects appear across patterns
  // so that join atoms actually join. The pool is deliberately small
  // relative to the triple count so joins *expand* (average fan-out > 1),
  // the regime of the paper's Barton data where breaking large views pays.
  const size_t pool_size =
      resource_pool > 0 ? resource_pool
                        : std::max<size_t>(approx_triples / 200, 24);
  std::vector<rdf::TermId> pool;
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    pool.push_back(dict->Intern("wr:r" + std::to_string(i)));
  }
  ZipfTable pool_zipf(pool.size(), 0.7);

  // Collect the distinct atom patterns of the workload.
  std::vector<rdf::Pattern> patterns;
  for (const ConjunctiveQuery& q : workload) {
    for (const cq::Atom& a : q.atoms()) patterns.push_back(a.ToPattern());
  }
  if (patterns.empty()) {
    store.Build(dict);
    return store;
  }
  const size_t per_pattern = std::max<size_t>(
      approx_triples * 3 / (patterns.size() * 4), 4);
  for (const rdf::Pattern& p : patterns) {
    size_t n = 1 + rng.Below(per_pattern * 2);
    for (size_t i = 0; i < n; ++i) {
      rdf::TermId s =
          p.s != rdf::kAnyTerm ? p.s : pool[pool_zipf.Sample(&rng)];
      rdf::TermId prop = p.p != rdf::kAnyTerm
                             ? p.p
                             : dict->Intern("wp:p" + std::to_string(
                                                rng.Below(8) + 1));
      rdf::TermId o =
          p.o != rdf::kAnyTerm ? p.o : pool[pool_zipf.Sample(&rng)];
      store.Add(s, prop, o);
    }
  }
  // Background noise (~25%).
  for (size_t i = 0; i < approx_triples / 4; ++i) {
    store.Add(pool[pool_zipf.Sample(&rng)],
              dict->Intern("wp:noise" + std::to_string(rng.Below(16))),
              pool[pool_zipf.Sample(&rng)]);
  }
  store.Build(dict);
  return store;
}

WorkloadProfile ProfileWorkload(
    const std::vector<ConjunctiveQuery>& workload) {
  WorkloadProfile p;
  p.num_queries = workload.size();
  for (const ConjunctiveQuery& q : workload) {
    p.total_atoms += q.len();
    p.total_constants += q.NumConstants();
  }
  return p;
}

}  // namespace rdfviews::workload
