// Query workload generators (Sec. 6 "Data and queries"): queries of
// controllable size, shape and commonality, plus a data-aware variant that
// only outputs queries with non-empty answers on a given dataset.
#ifndef RDFVIEWS_WORKLOAD_GENERATOR_H_
#define RDFVIEWS_WORKLOAD_GENERATOR_H_

#include <vector>

#include "cq/query.h"
#include "rdf/dictionary.h"
#include "rdf/schema.h"
#include "rdf/triple_store.h"

namespace rdfviews::workload {

/// Query shapes used throughout the evaluation section.
enum class QueryShape {
  kStar,          // all atoms share the central subject (clique graph)
  kChain,         // object of atom i joins subject of atom i+1
  kCycle,         // chain closed back to the start
  kRandomSparse,  // random tree-ish join graph
  kRandomDense,   // random graph with few variables, many joins
  kMixed,         // rotates through the shapes above
};

const char* QueryShapeName(QueryShape shape);

/// High commonality draws constants from a small pool shared across all
/// queries (many factorization opportunities); low commonality gives each
/// query mostly private constants.
enum class Commonality { kLow, kHigh };

const char* CommonalityName(Commonality c);

struct WorkloadSpec {
  size_t num_queries = 5;
  size_t atoms_per_query = 5;
  QueryShape shape = QueryShape::kChain;
  Commonality commonality = Commonality::kLow;
  uint64_t seed = 1;
  /// Number of head variables per query (clamped to the available vars).
  size_t head_vars = 2;
  /// Share of atoms that get a constant object (selection edges).
  double object_constant_share = 0.2;
  /// Partition-aware commonality control (free generator only): with g > 1
  /// the workload is split into g contiguous blocks, each drawing its
  /// constants from a private pool, so the commonality policy applies
  /// *within* a block while blocks share no constant at all — the
  /// recommendation pipeline's commonality graph then decomposes the
  /// workload into (at least) g independent partitions. 1 keeps the single
  /// shared pool (and the exact constant names) of the classic generator.
  size_t partition_groups = 1;
};

/// Free-standing generator: invents property/object constants (interned in
/// `dict`). Maximum flexibility, no satisfiability guarantee.
std::vector<cq::ConjunctiveQuery> GenerateWorkload(const WorkloadSpec& spec,
                                                   rdf::Dictionary* dict);

/// Data-aware generator: instantiates the shape by walking `store`'s data
/// graph, so every query has a non-empty answer on `store`. Used to build
/// the satisfiable Barton workloads Q1 / Q2 of Sec. 6.5.
std::vector<cq::ConjunctiveQuery> GenerateSatisfiableWorkload(
    const WorkloadSpec& spec, const rdf::TripleStore& store,
    rdf::Dictionary* dict);

/// Builds a synthetic store whose statistics make the workload meaningful:
/// every query atom pattern gets a Zipf-skewed number of matching triples
/// over shared subject/object pools (so joins actually join), plus
/// background noise. Used by the Fig. 4 / 5 / 6 benchmarks whose workloads
/// come from the free generator. `resource_pool` fixes the number of
/// distinct subject/object resources (0 = the classic approx_triples / 200
/// heuristic): join fan-out scales with triples-per-pattern^2 / pool, so
/// workload-scaled stores should pass the *baseline* pool to stay in the
/// paper's expanding-join regime instead of diluting it.
rdf::TripleStore GenerateStoreForWorkload(
    const std::vector<cq::ConjunctiveQuery>& workload, rdf::Dictionary* dict,
    size_t approx_triples, uint64_t seed, size_t resource_pool = 0);

/// Workload statistics for Table 3: total atoms and constants.
struct WorkloadProfile {
  size_t num_queries = 0;
  size_t total_atoms = 0;
  size_t total_constants = 0;
};

WorkloadProfile ProfileWorkload(
    const std::vector<cq::ConjunctiveQuery>& workload);

}  // namespace rdfviews::workload

#endif  // RDFVIEWS_WORKLOAD_GENERATOR_H_
