// Synthetic "Barton-like" dataset (substitution for the MIT Barton library
// catalog used in Sec. 6, which is not redistributable here; see DESIGN.md).
//
// The schema mirrors the paper's numbers: 39 classes, 61 properties and 106
// RDFS statements (a subclass forest, a subproperty forest, and domain /
// range typings). The instance generator emits Zipf-skewed, schema-
// conformant triples, deterministically from a seed.
#ifndef RDFVIEWS_WORKLOAD_BARTON_H_
#define RDFVIEWS_WORKLOAD_BARTON_H_

#include <vector>

#include "rdf/dictionary.h"
#include "rdf/schema.h"
#include "rdf/triple_store.h"

namespace rdfviews::workload {

struct BartonSchema {
  rdf::Schema schema;
  std::vector<rdf::TermId> classes;     // 39
  std::vector<rdf::TermId> properties;  // 61 (excluding rdf:type)
};

/// Builds the Barton-like schema, interning its vocabulary in `dict`.
BartonSchema BuildBartonSchema(rdf::Dictionary* dict);

struct BartonDataOptions {
  size_t num_triples = 100000;  // approximate target (pre-dedup)
  uint64_t seed = 42;
  double zipf_exponent = 0.8;   // skew of property / class usage
  double blank_node_share = 0.02;
  double literal_share = 0.25;
};

/// Generates instance triples conformant with the schema: typed resources
/// linked through properties whose domains/ranges are respected, so that
/// saturation and reformulation have real work to do.
rdf::TripleStore GenerateBartonData(const BartonSchema& barton,
                                    rdf::Dictionary* dict,
                                    const BartonDataOptions& options);

}  // namespace rdfviews::workload

#endif  // RDFVIEWS_WORKLOAD_BARTON_H_
