#include "workload/barton.h"

#include <string>

#include "common/logging.h"
#include "common/random.h"
#include "rdf/vocabulary.h"

namespace rdfviews::workload {

namespace {

// 39 class names arranged as a forest: documents, agents, subjects, events.
constexpr const char* kClassNames[] = {
    "bt:Item",         "bt:Document",    "bt:Text",        "bt:Book",
    "bt:Periodical",   "bt:Journal",     "bt:Newspaper",   "bt:Thesis",
    "bt:Manuscript",   "bt:Map",         "bt:Image",       "bt:Photograph",
    "bt:Painting",     "bt:Audio",       "bt:MusicRecording",
    "bt:SpokenRecording",               "bt:Video",       "bt:Film",
    "bt:Microform",    "bt:Software",    "bt:Dataset",     "bt:Agent",
    "bt:Person",       "bt:Author",      "bt:Editor",      "bt:Organization",
    "bt:Publisher",    "bt:Library",     "bt:Subject",     "bt:Topic",
    "bt:Place",        "bt:Era",         "bt:Event",       "bt:Conference",
    "bt:Exhibition",   "bt:Collection",  "bt:Series",      "bt:Record",
    "bt:Webpage",
};
constexpr size_t kNumClasses = sizeof(kClassNames) / sizeof(kClassNames[0]);

// (subclass, superclass) index pairs into kClassNames — 27 statements.
constexpr int kSubClassPairs[][2] = {
    {1, 0},   // Document ⊑ Item
    {2, 1},   // Text ⊑ Document
    {3, 2},   // Book ⊑ Text
    {4, 2},   // Periodical ⊑ Text
    {5, 4},   // Journal ⊑ Periodical
    {6, 4},   // Newspaper ⊑ Periodical
    {7, 2},   // Thesis ⊑ Text
    {8, 2},   // Manuscript ⊑ Text
    {9, 1},   // Map ⊑ Document
    {10, 1},  // Image ⊑ Document
    {11, 10}, // Photograph ⊑ Image
    {12, 10}, // Painting ⊑ Image
    {13, 1},  // Audio ⊑ Document
    {14, 13}, // MusicRecording ⊑ Audio
    {15, 13}, // SpokenRecording ⊑ Audio
    {16, 1},  // Video ⊑ Document
    {17, 16}, // Film ⊑ Video
    {18, 1},  // Microform ⊑ Document
    {19, 1},  // Software ⊑ Document
    {20, 1},  // Dataset ⊑ Document
    {22, 21}, // Person ⊑ Agent
    {23, 22}, // Author ⊑ Person
    {24, 22}, // Editor ⊑ Person
    {25, 21}, // Organization ⊑ Agent
    {26, 25}, // Publisher ⊑ Organization
    {27, 25}, // Library ⊑ Organization
    {29, 28}, // Topic ⊑ Subject
};
constexpr size_t kNumSubClass = sizeof(kSubClassPairs) / sizeof(int[2]);

// 61 property names.
constexpr const char* kPropertyNames[] = {
    "bt:creator",      "bt:author",       "bt:editor",      "bt:contributor",
    "bt:illustrator",  "bt:translator",   "bt:publishedBy", "bt:heldBy",
    "bt:title",        "bt:altTitle",     "bt:subtitle",    "bt:language",
    "bt:origLanguage", "bt:subject",      "bt:primarySubject",
    "bt:relatedTo",    "bt:references",   "bt:cites",       "bt:describes",
    "bt:description",  "bt:abstract",     "bt:note",        "bt:identifier",
    "bt:isbn",         "bt:issn",         "bt:callNumber",  "bt:barcode",
    "bt:date",         "bt:issued",       "bt:created",     "bt:modified",
    "bt:partOf",       "bt:volumeOf",     "bt:issueOf",     "bt:hasPart",
    "bt:chapterOf",    "bt:format",       "bt:extent",      "bt:pages",
    "bt:edition",      "bt:placeOfPub",   "bt:coverage",    "bt:spatial",
    "bt:temporal",     "bt:name",         "bt:firstName",   "bt:lastName",
    "bt:affiliation",  "bt:memberOf",     "bt:location",    "bt:city",
    "bt:country",      "bt:records",      "bt:performedBy", "bt:conductedBy",
    "bt:presentedAt",  "bt:exhibitedAt",  "bt:derivedFrom", "bt:translationOf",
    "bt:supersedes",   "bt:keyword",
};
constexpr size_t kNumProperties =
    sizeof(kPropertyNames) / sizeof(kPropertyNames[0]);

// (subproperty, superproperty) — 16 statements.
constexpr int kSubPropertyPairs[][2] = {
    {1, 0},   // author ⊑ creator
    {2, 0},   // editor ⊑ creator
    {4, 3},   // illustrator ⊑ contributor
    {5, 3},   // translator ⊑ contributor
    {9, 8},   // altTitle ⊑ title
    {10, 8},  // subtitle ⊑ title
    {14, 13}, // primarySubject ⊑ subject
    {16, 15}, // references ⊑ relatedTo
    {17, 16}, // cites ⊑ references
    {20, 19}, // abstract ⊑ description
    {23, 22}, // isbn ⊑ identifier
    {24, 22}, // issn ⊑ identifier
    {26, 22}, // barcode ⊑ identifier
    {28, 27}, // issued ⊑ date
    {32, 31}, // volumeOf ⊑ partOf
    {33, 31}, // issueOf ⊑ partOf
};
constexpr size_t kNumSubProperty =
    sizeof(kSubPropertyPairs) / sizeof(int[2]);

// (property, class) domains — 36 statements.
constexpr int kDomainPairs[][2] = {
    {0, 1},   // creator: Document
    {1, 2},   // author: Text
    {2, 2},   // editor: Text
    {3, 1},   // contributor: Document
    {6, 1},   // publishedBy: Document
    {7, 0},   // heldBy: Item
    {8, 1},   // title: Document
    {11, 1},  // language: Document
    {13, 1},  // subject: Document
    {15, 1},  // relatedTo: Document
    {16, 2},  // references: Text
    {18, 1},  // describes: Document
    {19, 0},  // description: Item
    {22, 0},  // identifier: Item
    {23, 3},  // isbn: Book
    {24, 4},  // issn: Periodical
    {25, 0},  // callNumber: Item
    {27, 1},  // date: Document
    {31, 1},  // partOf: Document
    {34, 1},  // hasPart: Document
    {35, 2},  // chapterOf: Text
    {36, 1},  // format: Document
    {40, 1},  // placeOfPub: Document
    {44, 21}, // name: Agent
    {45, 22}, // firstName: Person
    {46, 22}, // lastName: Person
    {47, 22}, // affiliation: Person
    {48, 22}, // memberOf: Person
    {49, 25}, // location: Organization
    {52, 13}, // records: Audio
    {53, 14}, // performedBy: MusicRecording
    {55, 2},  // presentedAt: Text
    {56, 10}, // exhibitedAt: Image
    {57, 1},  // derivedFrom: Document
    {58, 2},  // translationOf: Text
    {59, 1},  // supersedes: Document
};
constexpr size_t kNumDomain = sizeof(kDomainPairs) / sizeof(int[2]);

// (property, class) ranges — 27 statements. Total: 27+16+36+27 = 106.
constexpr int kRangePairs[][2] = {
    {0, 21},  // creator -> Agent
    {1, 23},  // author -> Author
    {2, 24},  // editor -> Editor
    {3, 21},  // contributor -> Agent
    {6, 26},  // publishedBy -> Publisher
    {7, 27},  // heldBy -> Library
    {13, 28}, // subject -> Subject
    {15, 0},  // relatedTo -> Item
    {16, 2},  // references -> Text
    {18, 28}, // describes -> Subject
    {31, 1},  // partOf -> Document
    {32, 4},  // volumeOf -> Periodical
    {33, 4},  // issueOf -> Periodical
    {34, 1},  // hasPart -> Document
    {35, 3},  // chapterOf -> Book
    {40, 30}, // placeOfPub -> Place
    {42, 30}, // spatial -> Place
    {43, 31}, // temporal -> Era
    {47, 25}, // affiliation -> Organization
    {48, 25}, // memberOf -> Organization
    {49, 30}, // location -> Place
    {53, 22}, // performedBy -> Person
    {55, 33}, // presentedAt -> Conference
    {56, 34}, // exhibitedAt -> Exhibition
    {57, 1},  // derivedFrom -> Document
    {58, 2},  // translationOf -> Text
    {59, 1},  // supersedes -> Document
};
constexpr size_t kNumRange = sizeof(kRangePairs) / sizeof(int[2]);

}  // namespace

BartonSchema BuildBartonSchema(rdf::Dictionary* dict) {
  BartonSchema out;
  for (const char* name : kClassNames) {
    out.classes.push_back(dict->Intern(name));
  }
  for (const char* name : kPropertyNames) {
    out.properties.push_back(dict->Intern(name));
  }
  for (const auto& [sub, super] : kSubClassPairs) {
    out.schema.AddSubClassOf(out.classes[sub], out.classes[super]);
  }
  for (const auto& [sub, super] : kSubPropertyPairs) {
    out.schema.AddSubPropertyOf(out.properties[sub], out.properties[super]);
  }
  for (const auto& [prop, clazz] : kDomainPairs) {
    out.schema.AddDomain(out.properties[prop], out.classes[clazz]);
  }
  for (const auto& [prop, clazz] : kRangePairs) {
    out.schema.AddRange(out.properties[prop], out.classes[clazz]);
  }
  RDFVIEWS_CHECK(out.classes.size() == kNumClasses);
  RDFVIEWS_CHECK(out.properties.size() == kNumProperties);
  RDFVIEWS_CHECK(out.schema.num_statements() ==
                 kNumSubClass + kNumSubProperty + kNumDomain + kNumRange);
  return out;
}

rdf::TripleStore GenerateBartonData(const BartonSchema& barton,
                                    rdf::Dictionary* dict,
                                    const BartonDataOptions& options) {
  Rng rng(options.seed);
  rdf::TripleStore store;

  // Roughly: 1/5 of triples are rdf:type assertions, the rest property
  // triples; each resource gets ~6 triples, matching the paper's shape of
  // many short descriptions.
  const size_t num_resources = std::max<size_t>(options.num_triples / 6, 16);
  const size_t num_literals = std::max<size_t>(num_resources / 2, 8);

  std::vector<rdf::TermId> resources;
  resources.reserve(num_resources);
  for (size_t i = 0; i < num_resources; ++i) {
    bool blank = rng.Bernoulli(options.blank_node_share);
    std::string name = blank ? "_:b" + std::to_string(i)
                             : "bt:r" + std::to_string(i);
    resources.push_back(dict->Intern(
        name, blank ? rdf::TermKind::kBlank : rdf::TermKind::kIri));
  }
  std::vector<rdf::TermId> literals;
  literals.reserve(num_literals);
  for (size_t i = 0; i < num_literals; ++i) {
    literals.push_back(dict->Intern("lit_" + std::to_string(i),
                                    rdf::TermKind::kLiteral));
  }

  // Primary types are drawn from the *leaf* classes: real catalog records
  // carry the most specific class, and the super-types are implicit
  // (exactly what saturation / reformulation must reconstruct).
  std::vector<rdf::TermId> leaf_classes;
  for (rdf::TermId c : barton.classes) {
    if (barton.schema.DirectSubClasses(c).empty()) leaf_classes.push_back(c);
  }
  RDFVIEWS_CHECK(!leaf_classes.empty());

  ZipfTable class_zipf(leaf_classes.size(), options.zipf_exponent);
  ZipfTable property_zipf(barton.properties.size(), options.zipf_exponent);
  ZipfTable resource_zipf(resources.size(), options.zipf_exponent / 2);

  // Assign each resource a primary type (some deliberately untyped).
  std::vector<rdf::TermId> type_of(resources.size(), rdf::kAnyTerm);
  for (size_t i = 0; i < resources.size(); ++i) {
    if (rng.Bernoulli(0.85)) {
      type_of[i] = leaf_classes[class_zipf.Sample(&rng)];
      store.Add(resources[i], rdf::kRdfType, type_of[i]);
    }
  }

  // Index resources by class (including, conservatively, subclasses) so
  // range-conformant objects can be drawn.
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> by_class;
  for (size_t i = 0; i < resources.size(); ++i) {
    if (type_of[i] == rdf::kAnyTerm) continue;
    by_class[type_of[i]].push_back(resources[i]);
    for (rdf::TermId super : barton.schema.SuperClassesOf(type_of[i])) {
      by_class[super].push_back(resources[i]);
    }
  }

  while (store.size() < options.num_triples) {
    rdf::TermId p = barton.properties[property_zipf.Sample(&rng)];
    rdf::TermId s = resources[resource_zipf.Sample(&rng)];
    // Pick an object: literal, range-conformant resource, or any resource.
    rdf::TermId o;
    std::vector<rdf::TermId> ranges = barton.schema.RangeClosure(p);
    if (ranges.empty() && rng.Bernoulli(options.literal_share)) {
      o = literals[rng.Below(literals.size())];
    } else if (!ranges.empty()) {
      const std::vector<rdf::TermId>& pool = by_class[ranges.front()];
      o = pool.empty() ? resources[resource_zipf.Sample(&rng)]
                       : pool[rng.Below(pool.size())];
    } else {
      o = resources[resource_zipf.Sample(&rng)];
    }
    store.Add(s, p, o);
  }

  store.Build(dict);
  return store;
}

}  // namespace rdfviews::workload
