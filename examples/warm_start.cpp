// Warm-starting a tuning service from a persistent partition cache.
//
// The storage-tuning-wizard deployment model runs view selection as a
// *recurring service*: a nightly CI job, a sidecar re-tuning on workload
// drift, a fleet of tuning nodes sharing work. All of those restart
// processes — and a freshly started process has an empty in-memory cache,
// so without persistence every restart pays the full search again.
//
// This example points two TuningSessions (standing in for two process
// lifetimes) at one DirCacheBackend directory:
//   1. "first boot": a cold tune over a 60-query log — every partition
//      searched, every completed outcome persisted as an identity-tagged
//      file under the cache root,
//   2. "after restart": a brand-new session over the same workload —
//      every partition rehydrated from disk (re-interned + re-costed,
//      asserted equal to the persisted cost), 0 searches, identical
//      recommendation,
//   3. "drift after restart": +6 new queries — only the delta's
//      partitions are searched; the 20 warm ones stay on disk.
// Concurrent sessions may share the directory too: writes commit by atomic
// rename, so readers never observe a torn file (see the "Persistent
// caches" section of the README).
//
// Build & run:  cmake --build build && ./build/example_warm_start
#include <cstdio>
#include <filesystem>

#include "common/timer.h"
#include "vsel/session/session.h"
#include "workload/generator.h"

using namespace rdfviews;

namespace {

void PrintUpdate(const char* label, const vsel::Recommendation& rec,
                 double wall_ms) {
  std::printf(
      "%-16s %3zu queries  %2zu partitions (%zu reused, %zu from disk, "
      "%zu searched)  %8.1f ms  cost %.4g\n",
      label, rec.rewritings.size(), rec.pipeline.num_partitions,
      rec.pipeline.partitions_reused, rec.pipeline.partitions_rehydrated,
      rec.pipeline.partitions_searched, wall_ms, rec.stats.best_cost);
}

}  // namespace

int main() {
  // --- 0. A 66-query log in 22 constant-disjoint families; the last two
  // families (6 queries) arrive after the "restart". ------------------------
  rdf::Dictionary dict;
  workload::WorkloadSpec spec;
  spec.num_queries = 66;
  spec.atoms_per_query = 3;
  spec.shape = workload::QueryShape::kMixed;
  spec.commonality = workload::Commonality::kHigh;
  spec.partition_groups = 22;
  spec.seed = 20260726;
  std::vector<cq::ConjunctiveQuery> log =
      workload::GenerateWorkload(spec, &dict);
  rdf::TripleStore store =
      workload::GenerateStoreForWorkload(log, &dict, 10000, spec.seed);
  std::vector<cq::ConjunctiveQuery> initial(log.begin(), log.end() - 6);
  std::vector<cq::ConjunctiveQuery> arriving(log.end() - 6, log.end());

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "rdfviews_warm_start")
          .string();
  std::filesystem::remove_all(cache_dir);  // demo starts genuinely cold

  vsel::SelectorOptions options;
  options.strategy = vsel::StrategyKind::kGstr;
  // Fixed weights: persisted costs must mean the same thing in every
  // process that reads the cache (see README "Persistent caches").
  options.auto_calibrate_cm = false;
  options.cache.cache_dir = cache_dir;

  std::printf("partition cache: %s\n\n", cache_dir.c_str());
  Stopwatch watch;

  // --- 1. First boot: cold tune, outcomes persisted. -----------------------
  {
    vsel::TuningSession session(&store, &dict, options);
    watch.Restart();
    Result<vsel::Recommendation> rec = session.Update(initial);
    if (!rec.ok()) {
      std::fprintf(stderr, "tune failed: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    PrintUpdate("first boot", *rec, watch.ElapsedSeconds() * 1e3);
    std::printf("%18s-> %zu outcome files persisted\n", "",
                session.cached_partitions());
  }  // process 1 "exits": the session and all its memory are gone

  // --- 2. After restart: a cold session, a warm directory. -----------------
  vsel::TuningSession session(&store, &dict, options);
  watch.Restart();
  Result<vsel::Recommendation> warm = session.Update(initial);
  if (!warm.ok()) {
    std::fprintf(stderr, "warm tune failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  PrintUpdate("after restart", *warm, watch.ElapsedSeconds() * 1e3);
  if (warm->pipeline.partitions_searched != 0) {
    std::fprintf(stderr, "expected a fully warm restart!\n");
    return 1;
  }

  // --- 3. Drift after the restart: only the delta is searched. -------------
  watch.Restart();
  Result<vsel::Recommendation> drifted = session.Update(arriving);
  if (!drifted.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 drifted.status().ToString().c_str());
    return 1;
  }
  PrintUpdate("drift (+6)", *drifted, watch.ElapsedSeconds() * 1e3);

  const auto counters = session.cache_backend().counters();
  std::printf(
      "\nbackend traffic: %llu hits, %llu misses, %llu rejected, "
      "%llu rehydration-rejected, %llu stored\n",
      static_cast<unsigned long long>(counters.hits),
      static_cast<unsigned long long>(counters.misses),
      static_cast<unsigned long long>(counters.rejected),
      static_cast<unsigned long long>(counters.rehydration_rejected),
      static_cast<unsigned long long>(counters.stored));
  return 0;
}
