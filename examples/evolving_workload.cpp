// Evolving workloads: a TuningSession over a drifting query log.
//
// A live endpoint never tunes once: queries keep arriving, old reports get
// retired, and the recommended view set must follow. This example drives a
// vsel::TuningSession through that lifecycle:
//   1. an initial tune over a 60-query log (20 independent families, each
//      small enough that its search exhausts its space — only *completed*
//      partition searches enter the session cache),
//   2. an incremental update (+6 queries in two new families) — the
//      session re-searches only the dirty partitions and re-merges the
//      rest from its cache,
//   3. a retirement (one family's queries removed) — zero searches,
//   4. an asynchronous re-tune with live progress and a cooperative
//      Cancel, showing the anytime contract: the handle always returns a
//      valid current-best recommendation.
//
// Build & run:  cmake --build build && ./build/example_evolving_workload
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/timer.h"
#include "vsel/session/session.h"
#include "workload/generator.h"

using namespace rdfviews;

namespace {

void PrintUpdate(const char* label, const vsel::Recommendation& rec,
                 double wall_ms) {
  std::printf(
      "%-12s %3zu queries  %2zu partitions (%zu reused, %zu searched)  "
      "%6.1f ms  rcr %.3f  %zu views\n",
      label, rec.rewritings.size(), rec.pipeline.num_partitions,
      rec.pipeline.partitions_reused, rec.pipeline.partitions_searched,
      wall_ms, rec.stats.RelativeCostReduction(),
      rec.view_definitions.size());
}

}  // namespace

int main() {
  // --- 0. A 66-query log in 22 constant-disjoint families; the last two
  // families (6 queries) arrive later, as the "drift". ----------------------
  rdf::Dictionary dict;
  workload::WorkloadSpec spec;
  spec.num_queries = 66;
  spec.atoms_per_query = 3;
  spec.shape = workload::QueryShape::kMixed;
  spec.commonality = workload::Commonality::kHigh;
  spec.partition_groups = 22;
  spec.seed = 20260726;
  std::vector<cq::ConjunctiveQuery> log =
      workload::GenerateWorkload(spec, &dict);
  rdf::TripleStore store =
      workload::GenerateStoreForWorkload(log, &dict, 10000, spec.seed);

  std::vector<cq::ConjunctiveQuery> initial(log.begin(), log.end() - 6);
  std::vector<cq::ConjunctiveQuery> arriving(log.end() - 6, log.end());

  vsel::SelectorOptions options;
  // Greedy stratified, no time budget: every family search terminates with
  // its space (greedily) exhausted, so every partition result is cacheable.
  // Exhaustive strategies would need a budget here — and budget-truncated
  // searches never enter the cache.
  options.strategy = vsel::StrategyKind::kGstr;
  vsel::TuningSession session(&store, &dict, options);

  // --- 1. Initial tune: every partition is dirty. --------------------------
  Stopwatch watch;
  Result<vsel::Recommendation> rec = session.Update(initial);
  if (!rec.ok()) {
    std::printf("initial tune failed: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  PrintUpdate("initial", *rec, watch.ElapsedMillis());

  // --- 2. Drift: +6 queries. Only the new families are searched; the
  // other partitions are re-merged from the session cache. ------------------
  watch.Restart();
  rec = session.Update(arriving);
  if (!rec.ok()) return 1;
  PrintUpdate("+6 queries", *rec, watch.ElapsedMillis());

  // --- 3. Retirement: dropping a family is pure cache re-merge. ------------
  std::vector<std::string> retire;
  for (size_t i = 0; i < 3; ++i) retire.push_back(initial[i].name());
  watch.Restart();
  rec = session.Update({}, retire);
  if (!rec.ok()) return 1;
  PrintUpdate("-3 queries", *rec, watch.ElapsedMillis());

  // --- 4. Asynchronous re-tune with progress + cancellation. ---------------
  // Invalidate the cache so the re-tune actually searches, then cancel it
  // mid-flight: the handle still returns a valid current-best.
  session.InvalidateCachedResults();
  std::shared_ptr<vsel::TuningHandle> handle = session.RecommendAsync();
  while (!handle->Poll()) {
    vsel::TuningProgress p = handle->Current();
    if (p.partitions_done >= p.partitions_total / 2 && p.partitions_total) {
      std::printf("async:       %zu/%zu partitions done, best %.3g — "
                  "cancelling\n",
                  p.partitions_done, p.partitions_total, p.best_cost);
      handle->Cancel();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Result<vsel::Recommendation> cancelled = handle->Wait();
  if (!cancelled.ok()) return 1;
  std::printf("async:       returned %s with %zu views (anytime "
              "current-best)\n",
              cancelled->stats.cancelled ? "cancelled" : "complete",
              cancelled->view_definitions.size());

  // The cancelled partitions stayed dirty; a quiet follow-up Recommend
  // finishes the job from where the cancel left off.
  watch.Restart();
  rec = session.Recommend();
  if (!rec.ok()) return 1;
  PrintUpdate("re-tune", *rec, watch.ElapsedMillis());
  return 0;
}
