// Offline client: exporting a view set to disk.
//
// Demonstrates the paper's motivating deployment where the views are stored
// *at the client* and the application runs with no connection to the
// database server: views are selected, materialized, written out as
// N-Triples-style files — and the *recommendation itself* (view
// definitions, columns, rewritings) travels as one identity-tagged
// serialized blob (vsel::serialize::SerializeRecommendation), so the
// client re-loads everything from files and answers the workload without
// the store or the server-side Recommendation object.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/executor.h"
#include "rdf/ntriples.h"
#include "vsel/selector.h"
#include "vsel/serialize/serialize.h"
#include "workload/barton.h"
#include "workload/generator.h"

using namespace rdfviews;

int main() {
  // --- Server side. --------------------------------------------------------
  rdf::Dictionary dict;
  workload::BartonSchema barton = workload::BuildBartonSchema(&dict);
  workload::BartonDataOptions dopts;
  dopts.num_triples = 8000;
  rdf::TripleStore store = workload::GenerateBartonData(barton, &dict, dopts);

  workload::WorkloadSpec spec;
  spec.num_queries = 3;
  spec.atoms_per_query = 4;
  spec.shape = workload::QueryShape::kMixed;
  std::vector<cq::ConjunctiveQuery> queries =
      workload::GenerateSatisfiableWorkload(spec, store, &dict);

  vsel::ViewSelector selector(&store, &dict, &barton.schema);
  vsel::SelectorOptions options;
  options.entailment = vsel::EntailmentMode::kPostReformulate;
  options.limits.time_budget_sec = 2.0;
  Result<vsel::Recommendation> rec = selector.Recommend(queries, options);
  if (!rec.ok()) {
    std::printf("selection failed: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  vsel::MaterializedViews views = vsel::Materialize(*rec);

  // --- Export each view extent as one flat file. ---------------------------
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rdfviews_offline_client";
  std::filesystem::create_directories(dir);
  for (size_t i = 0; i < views.relations.size(); ++i) {
    const engine::Relation& rel = views.relations[i];
    std::ofstream out(dir / ("v" + std::to_string(views.view_ids[i]) +
                             ".tsv"));
    for (size_t r = 0; r < rel.NumRows(); ++r) {
      for (size_t c = 0; c < rel.width(); ++c) {
        out << (c > 0 ? "\t" : "") << dict.Lexical(rel.At(r, c));
      }
      out << "\n";
    }
  }
  // The recommendation blob rides along with the extents: versioned,
  // checksummed, tagged with the (store, options) identity.
  vsel::serialize::CacheIdentity identity =
      vsel::serialize::ComputeCacheIdentity(store, options);
  {
    std::ofstream out(dir / "recommendation.rvrc", std::ios::binary);
    out << vsel::serialize::SerializeRecommendation(*rec, identity);
  }
  std::printf("exported %zu views (%zu bytes) + recommendation blob to %s\n",
              views.relations.size(), views.TotalBytes(), dir.c_str());

  // --- Client side: reload the files and answer without the store. ---------
  std::string blob;
  {
    std::ifstream in(dir / "recommendation.rvrc", std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    blob = ss.str();
  }
  Result<vsel::Recommendation> shipped =
      vsel::serialize::DeserializeRecommendation(blob, identity);
  if (!shipped.ok()) {
    std::printf("recommendation reload failed: %s\n",
                shipped.status().ToString().c_str());
    return 1;
  }
  vsel::MaterializedViews reloaded;
  reloaded.view_ids = views.view_ids;
  for (size_t i = 0; i < views.view_ids.size(); ++i) {
    const engine::Relation& original = views.relations[i];
    engine::Relation rel(original.columns());
    std::ifstream in(dir /
                     ("v" + std::to_string(views.view_ids[i]) + ".tsv"));
    std::string line;
    while (std::getline(in, line)) {
      std::vector<rdf::TermId> row;
      size_t start = 0;
      while (start <= line.size()) {
        size_t tab = line.find('\t', start);
        std::string cell = tab == std::string::npos
                               ? line.substr(start)
                               : line.substr(start, tab - start);
        row.push_back(dict.Intern(cell));
        if (tab == std::string::npos) break;
        start = tab + 1;
      }
      if (row.size() == rel.width()) rel.AppendRow(row);
    }
    reloaded.relations.push_back(std::move(rel));
  }

  bool all_match = true;
  for (size_t i = 0; i < queries.size(); ++i) {
    engine::Relation offline = vsel::AnswerQuery(*shipped, reloaded, i);
    engine::Relation online = vsel::AnswerQuery(*rec, views, i);
    bool match = offline.SameRowsAs(online);
    all_match = all_match && match;
    std::printf("%s: %zu answers from re-loaded views%s\n",
                queries[i].name().c_str(), offline.NumRows(),
                match ? "" : "  [MISMATCH]");
  }
  std::printf(all_match ? "\noffline client reproduces all answers without "
                          "touching the database.\n"
                        : "\nBUG: offline answers diverged.\n");
  return all_match ? 0 : 1;
}
