// Library portal: the three-tier deployment scenario of the introduction at
// a realistic scale.
//
// A "library" server holds a Barton-like catalog (default 30k triples with
// the 39-class / 61-property / 106-statement schema). A web portal runs a
// fixed workload of catalog queries. View selection recommends the view set
// the portal should cache; afterwards the portal answers every workload
// query without contacting the library — and this example measures the
// speedup against querying the (saturated) triple store directly.
//
// Flags: --triples=30000 --queries=6 --budget-sec=4
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/timer.h"
#include "engine/evaluator.h"
#include "rdf/saturation.h"
#include "vsel/selector.h"
#include "workload/barton.h"
#include "workload/generator.h"

using namespace rdfviews;

namespace {

double ParseFlag(int argc, char** argv, const std::string& key,
                 double fallback) {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atof(arg.substr(prefix.size()).c_str());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t triples =
      static_cast<size_t>(ParseFlag(argc, argv, "triples", 30000));
  const size_t num_queries =
      static_cast<size_t>(ParseFlag(argc, argv, "queries", 6));
  const double budget = ParseFlag(argc, argv, "budget-sec", 4.0);

  // --- The library server's data. ------------------------------------------
  rdf::Dictionary dict;
  workload::BartonSchema barton = workload::BuildBartonSchema(&dict);
  workload::BartonDataOptions dopts;
  dopts.num_triples = triples;
  rdf::TripleStore store = workload::GenerateBartonData(barton, &dict, dopts);
  std::printf("library catalog: %zu triples, schema with %zu classes / %zu "
              "properties\n",
              store.size(), barton.classes.size(), barton.properties.size());

  // --- The portal's workload. ----------------------------------------------
  workload::WorkloadSpec spec;
  spec.num_queries = num_queries;
  spec.atoms_per_query = 5;
  spec.shape = workload::QueryShape::kMixed;
  spec.commonality = workload::Commonality::kHigh;
  std::vector<cq::ConjunctiveQuery> queries =
      workload::GenerateSatisfiableWorkload(spec, store, &dict);
  std::printf("portal workload: %zu queries\n\n", queries.size());
  for (const cq::ConjunctiveQuery& q : queries) {
    std::printf("  %s\n", q.ToString(&dict).c_str());
  }

  // --- Offline: select and materialize the portal's views. -----------------
  vsel::ViewSelector selector(&store, &dict, &barton.schema);
  vsel::SelectorOptions options;
  options.entailment = vsel::EntailmentMode::kPostReformulate;
  options.limits.time_budget_sec = budget;
  Result<vsel::Recommendation> rec = selector.Recommend(queries, options);
  if (!rec.ok()) {
    std::printf("selection failed: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  Stopwatch mat_watch;
  vsel::MaterializedViews views = vsel::Materialize(*rec);
  std::printf("\nselected %zu views in %.1fs (rcr %.3f), materialized in "
              "%.0f ms, %zu bytes (vs ~%zu bytes of raw triples)\n\n",
              views.relations.size(), rec->stats.elapsed_sec,
              rec->stats.RelativeCostReduction(), mat_watch.ElapsedMillis(),
              views.TotalBytes(), store.size() * 3 * sizeof(rdf::TermId));

  // --- Online: answer from the cached views; compare against the server. ---
  rdf::TripleStore saturated = rdf::Saturate(store, barton.schema);
  double views_ms_total = 0;
  double server_ms_total = 0;
  std::printf("%-8s%-10s%-14s%-16s%s\n", "query", "answers", "views (ms)",
              "server (ms)", "agree");
  for (size_t i = 0; i < queries.size(); ++i) {
    Stopwatch w1;
    engine::Relation from_views = vsel::AnswerQuery(*rec, views, i);
    double views_ms = w1.ElapsedMillis();
    Stopwatch w2;
    engine::EvalOptions naive;
    naive.order = engine::EvalOptions::AtomOrder::kAsWritten;
    engine::Relation from_server =
        engine::EvaluateQuery(queries[i], saturated, naive);
    double server_ms = w2.ElapsedMillis();
    views_ms_total += views_ms;
    server_ms_total += server_ms;
    std::printf("%-8s%-10zu%-14.3f%-16.3f%s\n", queries[i].name().c_str(),
                from_views.NumRows(), views_ms, server_ms,
                from_views.SameRowsAs(from_server) ? "yes" : "NO (bug!)");
  }
  std::printf("\ntotal: views %.1f ms vs server %.1f ms  (%.1fx)\n",
              views_ms_total, server_ms_total,
              server_ms_total / std::max(views_ms_total, 1e-9));
  std::printf("The portal now runs offline: every workload query is served "
              "from the cached views.\n");
  return 0;
}
