// Museum catalog: RDF entailment and post-reformulation (Sec. 4).
//
// A small museum database with an RDF Schema:
//   painting  subClassOf  picture,   picture subClassOf masterpiece,
//   isExpIn   subPropertyOf isLocatIn,  hasPainted domain painter / range
//   painting.
// The workload asks for pictures and locations; the *explicit* triples only
// ever mention paintings and isExpIn, so every answer depends on implicit
// triples. The example contrasts the three entailment strategies of the
// paper — saturation, pre-reformulation, post-reformulation — and shows
// they return the same answers while materializing different view sets.
#include <cstdio>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "rdf/saturation.h"
#include "vsel/selector.h"

using namespace rdfviews;

int main() {
  rdf::Dictionary dict;
  rdf::Schema schema;
  auto cls = [&](const char* a, const char* b) {
    schema.AddSubClassOf(dict.Intern(a), dict.Intern(b));
  };
  auto prop = [&](const char* a, const char* b) {
    schema.AddSubPropertyOf(dict.Intern(a), dict.Intern(b));
  };
  cls("painting", "picture");
  cls("picture", "masterpiece");
  prop("isExpIn", "isLocatIn");
  schema.AddDomain(dict.Intern("hasPainted"), dict.Intern("painter"));
  schema.AddRange(dict.Intern("hasPainted"), dict.Intern("painting"));

  rdf::TripleStore store;
  auto add = [&](const char* s, const char* p, const char* o) {
    store.Add(dict.Intern(s), dict.Intern(p), dict.Intern(o));
  };
  add("starryNight", "rdf:type", "painting");
  add("guernica", "rdf:type", "painting");
  add("davidStatue", "rdf:type", "masterpiece");
  add("starryNight", "isExpIn", "moma");
  add("guernica", "isExpIn", "reinaSofia");
  add("vanGogh", "hasPainted", "irises");  // implies irises is a painting
  store.Build(&dict);

  std::printf("explicit triples: %zu, implicit (RDFS): %llu\n\n",
              store.size(),
              (unsigned long long)rdf::CountImplicitTriples(store, schema));

  std::vector<cq::ConjunctiveQuery> workload;
  const char* queries[] = {
      // All pictures: only satisfied through painting ⊑ picture.
      "pictures(X) :- t(X, rdf:type, picture)",
      // Locations: only satisfied through isExpIn ⊑ isLocatIn.
      "located(X, L) :- t(X, isLocatIn, L)",
      // Painters: only satisfied through the domain of hasPainted.
      "painters(P) :- t(P, rdf:type, painter)",
  };
  for (const char* text : queries) {
    auto q = cq::ParseDatalog(text, &dict);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return 1;
    }
    workload.push_back(std::move(*q));
  }

  vsel::ViewSelector selector(&store, &dict, &schema);
  for (vsel::EntailmentMode mode :
       {vsel::EntailmentMode::kSaturate, vsel::EntailmentMode::kPreReformulate,
        vsel::EntailmentMode::kPostReformulate}) {
    vsel::SelectorOptions options;
    options.entailment = mode;
    options.limits.time_budget_sec = 2.0;
    auto rec = selector.Recommend(workload, options);
    if (!rec.ok()) {
      std::printf("%s failed: %s\n", vsel::EntailmentModeName(mode),
                  rec.status().ToString().c_str());
      return 1;
    }
    vsel::MaterializedViews views = vsel::Materialize(*rec);
    std::printf("=== %s: %zu views, %zu bytes ===\n",
                vsel::EntailmentModeName(mode), views.relations.size(),
                views.TotalBytes());
    for (size_t i = 0; i < workload.size(); ++i) {
      engine::Relation answer = vsel::AnswerQuery(*rec, views, i);
      std::printf("  %s ->", workload[i].name().c_str());
      for (size_t r = 0; r < answer.NumRows(); ++r) {
        std::printf(" %s", dict.Lexical(answer.At(r, 0)).c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "All three modes return identical answers; saturation materializes\n"
      "over the saturated store, while the reformulation modes leave the\n"
      "database untouched (Sec. 4.3).\n");
  return 0;
}
