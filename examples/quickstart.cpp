// Quickstart: the paper's running example, end to end.
//
// Builds the painters dataset from the introduction, runs view selection on
// the workload {q1}, materializes the recommended views and answers q1 from
// the views alone — the "three-tier" deployment where the client never
// touches the triple store.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "vsel/selector.h"

using namespace rdfviews;

int main() {
  // --- 1. An RDF database: painters, paintings, children. -----------------
  rdf::Dictionary dict;
  rdf::TripleStore store;
  auto add = [&](const char* s, const char* p, const char* o) {
    store.Add(dict.Intern(s), dict.Intern(p), dict.Intern(o));
  };
  add("vanGogh", "hasPainted", "starryNight");
  add("vanGogh", "hasPainted", "irises");
  add("vanGogh", "isParentOf", "theo");
  add("theo", "hasPainted", "sunflowers");
  add("rembrandt", "hasPainted", "nightWatch");
  add("rembrandt", "isParentOf", "titus");
  add("titus", "hasPainted", "portraitOfTitus");
  store.Build(&dict);
  std::printf("database: %zu triples\n", store.size());

  // --- 2. The workload: q1 from the paper (Sec. 2). -----------------------
  // "Painters that have painted Starry Night and have a child that is also
  //  a painter, together with the paintings of their children."
  Result<cq::ConjunctiveQuery> q1 = cq::ParseDatalog(
      "q1(X, Z) :- t(X, hasPainted, starryNight), t(X, isParentOf, Y), "
      "t(Y, hasPainted, Z)",
      &dict);
  if (!q1.ok()) {
    std::printf("parse error: %s\n", q1.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: %s\n\n", q1->ToString(&dict).c_str());

  // --- 3. Recommend views. ------------------------------------------------
  vsel::ViewSelector selector(&store, &dict);
  vsel::SelectorOptions options;            // DFS-AVF-STV by default
  options.limits.time_budget_sec = 2.0;
  Result<vsel::Recommendation> rec = selector.Recommend({*q1}, options);
  if (!rec.ok()) {
    std::printf("selection failed: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("recommended views (initial cost %.1f -> best cost %.1f, "
              "rcr %.2f):\n",
              rec->stats.initial_cost, rec->stats.best_cost,
              rec->stats.RelativeCostReduction());
  for (const cq::UnionOfQueries& def : rec->view_definitions) {
    std::printf("  %s\n", def.ToString(&dict).c_str());
  }
  auto view_name = [&](uint32_t id) { return "v" + std::to_string(id); };
  std::printf("rewriting:\n  q1 = %s\n\n",
              rec->rewritings[0]->ToString(view_name, &dict).c_str());

  // --- 4. Materialize and answer from the views alone. --------------------
  vsel::MaterializedViews views = vsel::Materialize(*rec);
  std::printf("materialized %zu views, %zu bytes total\n",
              views.relations.size(), views.TotalBytes());
  engine::Relation answer = vsel::AnswerQuery(*rec, views, 0);
  std::printf("q1 answers (%zu):\n", answer.NumRows());
  for (size_t r = 0; r < answer.NumRows(); ++r) {
    std::printf("  (%s, %s)\n", dict.Lexical(answer.At(r, 0)).c_str(),
                dict.Lexical(answer.At(r, 1)).c_str());
  }

  // --- 5. Sanity: identical to evaluating q1 on the database. -------------
  engine::Relation direct = engine::EvaluateQuery(*q1, store);
  std::printf("\ndirect evaluation agrees: %s\n",
              direct.SameRowsAs(answer) ? "yes" : "NO (bug!)");
  return 0;
}
