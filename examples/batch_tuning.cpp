// Batch tuning: the staged recommendation pipeline on a large workload.
//
// A tuning service (the RDFViewS scenario) receives the whole query log of
// an application — hundreds of queries — not the handful of the paper's
// figures. This example generates a 300-query workload whose queries fall
// into 6 independent families, and shows what the pipeline does with it:
//   - stage 2 partitions the workload along its commonality graph,
//   - stage 3 searches every partition under a slice of the global budget,
//   - stage 4 merges the per-partition bests into one recommendation,
// and the whole thing is exactly ViewSelector::Recommend — the pipeline IS
// the selector. A second run with partitioning disabled shows the
// monolithic search wasting the same budget on a 300-view state.
//
// Build & run:  cmake --build build && ./build/example_batch_tuning
#include <cstdio>

#include "rdf/statistics.h"
#include "vsel/selector.h"
#include "workload/generator.h"

using namespace rdfviews;

int main() {
  // --- 1. A 300-query workload in 6 constant-disjoint families. -----------
  rdf::Dictionary dict;
  workload::WorkloadSpec spec;
  spec.num_queries = 300;
  spec.atoms_per_query = 6;
  spec.shape = workload::QueryShape::kMixed;
  spec.commonality = workload::Commonality::kHigh;  // high *within* a family
  spec.partition_groups = 6;
  spec.seed = 20260726;
  std::vector<cq::ConjunctiveQuery> workload =
      workload::GenerateWorkload(spec, &dict);
  rdf::TripleStore store =
      workload::GenerateStoreForWorkload(workload, &dict, 40000, spec.seed);
  std::printf("workload: %zu queries over %zu triples\n\n", workload.size(),
              store.size());

  vsel::ViewSelector selector(&store, &dict);
  vsel::SelectorOptions options;  // DFS-AVF-STV
  options.limits.time_budget_sec = 3.0;

  // --- 2. Partitioned: the pipeline splits, searches, merges. -------------
  Result<vsel::Recommendation> piped = selector.Recommend(workload, options);
  if (!piped.ok()) {
    std::printf("selection failed: %s\n", piped.status().ToString().c_str());
    return 1;
  }
  std::printf("pipeline:   %zu partitions, %llu states searched, "
              "rcr %.3f, %zu views\n",
              piped->pipeline.num_partitions,
              static_cast<unsigned long long>(piped->stats.created),
              piped->stats.RelativeCostReduction(),
              piped->view_definitions.size());

  // --- 3. Monolithic: same budget, one 300-view state. --------------------
  options.partition.enabled = false;
  Result<vsel::Recommendation> mono = selector.Recommend(workload, options);
  if (!mono.ok()) {
    std::printf("selection failed: %s\n", mono.status().ToString().c_str());
    return 1;
  }
  std::printf("monolithic: %zu partition,  %llu states searched, "
              "rcr %.3f, %zu views\n",
              mono->pipeline.num_partitions,
              static_cast<unsigned long long>(mono->stats.created),
              mono->stats.RelativeCostReduction(),
              mono->view_definitions.size());

  // --- 4. The fallback: partitioning refuses unsound splits. --------------
  options.partition.enabled = true;
  options.heuristics.stop_var = false;  // disarms the soundness argument
  Result<vsel::Recommendation> fallback =
      selector.Recommend(workload, options);
  if (fallback.ok()) {
    std::printf("\nwith stop_var off the pipeline runs monolithic: "
                "%zu partition (%s)\n",
                fallback->pipeline.num_partitions,
                fallback->pipeline.partition_fallback_reason.c_str());
  }
  return 0;
}
