// Reformulation demo: Algorithm 1 on user-supplied queries.
//
// Loads (or defaults) an RDFS, then reformulates a few queries step by
// step, printing the full union of conjunctive queries and checking
// Theorem 4.2 against database saturation on a toy instance.
#include <cstdio>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "rdf/saturation.h"
#include "reform/reformulate.h"

using namespace rdfviews;

int main() {
  rdf::Dictionary dict;
  rdf::Schema schema;
  schema.AddSubClassOf(dict.Intern("painting"), dict.Intern("picture"));
  schema.AddSubClassOf(dict.Intern("picture"), dict.Intern("work"));
  schema.AddSubPropertyOf(dict.Intern("isExpIn"), dict.Intern("isLocatIn"));
  schema.AddDomain(dict.Intern("hasPainted"), dict.Intern("painter"));
  schema.AddRange(dict.Intern("hasPainted"), dict.Intern("painting"));

  std::printf("RDF Schema (%zu statements):\n", schema.num_statements());
  std::printf("  painting ⊑ picture ⊑ work\n");
  std::printf("  isExpIn ⊑p isLocatIn\n");
  std::printf("  hasPainted: domain painter, range painting\n\n");

  const char* query_texts[] = {
      // Rule 1 chains through the class hierarchy; rules 3/4 pull in
      // hasPainted through its domain/range.
      "q1(X) :- t(X, rdf:type, work)",
      // Rule 2 on the property hierarchy.
      "q2(X, L) :- t(X, isLocatIn, L)",
      // Rule 6: the property position is a variable.
      "q3(X, P) :- t(X, P, moma)",
      // A join of two reformulable atoms: the unions multiply.
      "q4(X) :- t(X, rdf:type, painter), t(X, isParentOf, Y), "
      "t(Y, rdf:type, painter)",
  };

  // A toy instance where every implicit triple matters.
  rdf::TripleStore store;
  auto add = [&](const char* s, const char* p, const char* o) {
    store.Add(dict.Intern(s), dict.Intern(p), dict.Intern(o));
  };
  add("vanGogh", "hasPainted", "starryNight");
  add("vanGogh", "isParentOf", "theo");
  add("theo", "hasPainted", "sunflowers");
  add("guernica", "rdf:type", "painting");
  add("starryNight", "isExpIn", "moma");
  store.Build(&dict);
  rdf::TripleStore saturated = rdf::Saturate(store, schema);

  for (const char* text : query_texts) {
    Result<cq::ConjunctiveQuery> q = cq::ParseDatalog(text, &dict);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return 1;
    }
    reform::ReformulationResult r = reform::Reformulate(*q, schema);
    std::printf("%s\n  Reformulate -> %zu union terms "
                "(Theorem 4.1 bound: %.0f), %zu rule applications\n",
                q->ToString(&dict).c_str(), r.ucq.size(),
                reform::TheoremBound(schema, q->len()),
                r.rule_applications);
    for (const cq::ConjunctiveQuery& d : r.ucq.disjuncts()) {
      std::printf("    ∪ %s\n", d.ToString(&dict).c_str());
    }
    engine::Relation on_saturated = engine::EvaluateQuery(*q, saturated);
    engine::Relation via_union = engine::EvaluateUnion(r.ucq, store);
    std::printf("  Theorem 4.2 check: evaluate(q, saturate(D)) == "
                "evaluate(ucq, D)? %s (%zu answers)\n\n",
                on_saturated.SameRowsAs(via_union) ? "yes" : "NO (bug!)",
                on_saturated.NumRows());
  }
  return 0;
}
