#!/usr/bin/env python3
"""Compare a fresh BENCH_incremental.json against a committed baseline.

Machine-independent fields are gated HARD: best costs, relative cost
reduction, the partition/reuse accounting, and the presence of the
report's phases and telemetry sections are deterministic for a fixed
seed, so any drift there is a code change, not noise. A mismatch is
emitted as a GitHub `::error::` annotation and the script exits
non-zero, failing the CI step.

Wall-clock derived fields stay advisory: the update/full ratio is
self-normalizing but still jittery on loaded CI runners, so it is
compared loosely and only ever produces `::warning::` annotations.
Absolute wall seconds are never compared at all. Pass --strict to turn
the wall-clock warnings into failures too (for local gating on a quiet
machine).

Usage: bench_diff.py BASELINE.json CURRENT.json [--strict]
"""

import argparse
import json
import sys

# Relative tolerance for cost-model outputs: exact modulo floating-point
# re-association across compilers/optimization levels.
COST_RTOL = 1e-6
# The update/full wall ratio gate: warn when the current ratio exceeds
# the baseline by this factor AND the harness's own 0.5 gate headroom.
WALL_RATIO_FACTOR = 1.5
WALL_RATIO_CEILING = 0.5


def close(a, b, rtol):
    return abs(a - b) <= rtol * (1.0 + max(abs(a), abs(b)))


def phases_by_name(report):
    return {p["phase"]: p for p in report.get("phases", [])}


def compare(baseline, current):
    """Returns (hard, soft): machine-independent regressions that must
    fail the build, and advisory wall-clock drifts that must not."""
    hard = []
    soft = []
    base_phases = phases_by_name(baseline)
    cur_phases = phases_by_name(current)

    missing = sorted(set(base_phases) - set(cur_phases))
    if missing:
        hard.append(f"phases missing from current report: {missing}")

    for name, base in base_phases.items():
        cur = cur_phases.get(name)
        if cur is None:
            continue
        # Deterministic search outputs: exact integer match expected.
        for field in ("queries", "partitions", "partitions_reused",
                      "partitions_searched"):
            if base.get(field) != cur.get(field):
                hard.append(
                    f"{name}.{field}: baseline {base.get(field)} "
                    f"!= current {cur.get(field)}")
        # Cost-model outputs: exact modulo float re-association.
        for field in ("best_cost", "rcr"):
            b, c = base.get(field), cur.get(field)
            if b is None or c is None:
                continue
            if not close(b, c, COST_RTOL):
                hard.append(
                    f"{name}.{field}: baseline {b:.9g} != current {c:.9g} "
                    f"(rtol {COST_RTOL:g})")

    # Reuse ratio is derived from the integer accounting — exact.
    b = baseline.get("update_reuse_ratio")
    c = current.get("update_reuse_ratio")
    if b is not None and c is not None and not close(b, c, COST_RTOL):
        hard.append(
            f"update_reuse_ratio: baseline {b:.6f} != current {c:.6f}")

    # Wall ratio: noisy, gate loosely and advisorily. Only flag when it
    # both grew past the baseline by the slack factor and approaches the
    # harness's own hard 0.5 gate.
    b = baseline.get("update_full_wall_ratio")
    c = current.get("update_full_wall_ratio")
    if b is not None and c is not None:
        if c > max(b * WALL_RATIO_FACTOR, 0.05) and c > WALL_RATIO_CEILING:
            soft.append(
                f"update_full_wall_ratio: current {c:.3f} > "
                f"{WALL_RATIO_FACTOR:g}x baseline {b:.3f} and > "
                f"{WALL_RATIO_CEILING:g}")

    # Telemetry presence: the report schema is a superset of the old one;
    # losing the spans/metrics sections is a regression in itself.
    for section in ("spans", "metrics"):
        if section in baseline and section not in current:
            hard.append(f"current report lost its '{section}' section")
    return hard, soft


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on wall-clock warnings too")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    hard, soft = compare(baseline, current)
    if not hard and not soft:
        print(f"bench_diff: {args.current} matches {args.baseline} "
              "on all gated fields")
        return 0
    for p in hard:
        print(f"::error title=bench_diff::{p}")
        print(f"bench_diff: FAIL {p}", file=sys.stderr)
    for p in soft:
        print(f"::warning title=bench_diff::{p}")
        print(f"bench_diff: warn {p}", file=sys.stderr)
    print(f"bench_diff: {len(hard)} hard regression(s), "
          f"{len(soft)} warning(s) vs {args.baseline}", file=sys.stderr)
    if hard:
        return 1
    return 1 if (args.strict and soft) else 0


if __name__ == "__main__":
    sys.exit(main())
