// Table 3 — "Workloads used for reformulation experiments".
//
// Builds the Barton-like schema (39 classes, 61 properties, 106 RDFS
// statements — the paper's Sec. 6.5 numbers) and two satisfiable workloads
// Q1 (5 queries) and Q2 (10 queries, a superset of Q1), then reports
// |Q|, #a(Q), #c(Q) and the same for the reformulated workloads Qr.
//
// Paper reference rows:
//   Q1:  5 queries,  33 atoms,  35 constants ->  20 queries, 143 atoms, 157
//   Q2: 10 queries,  76 atoms,  77 constants -> 231 queries, 1436, 1651
// Absolute values depend on the (synthetic) data; the shape to reproduce is
// the strong super-linear growth of Qr with |Q|.
//
// Flags: --triples=20000 --atoms=7 --seed=5
#include <cstdio>

#include "bench_util.h"
#include "reform/reformulate.h"
#include "workload/barton.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace rdfviews;
  bench::Flags flags(argc, argv);
  const size_t triples = static_cast<size_t>(flags.GetInt("triples", 20000));
  const size_t atoms = static_cast<size_t>(flags.GetInt("atoms", 7));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));

  rdf::Dictionary dict;
  workload::BartonSchema barton = workload::BuildBartonSchema(&dict);
  workload::BartonDataOptions dopts;
  dopts.num_triples = triples;
  dopts.seed = seed;
  rdf::TripleStore store = workload::GenerateBartonData(barton, &dict, dopts);
  std::printf(
      "Table 3 reproduction. Schema: %zu classes, %zu properties, %zu RDFS "
      "statements (paper: 39 / 61 / 106).\nData: %zu triples.\n\n",
      barton.classes.size(), barton.properties.size(),
      barton.schema.num_statements(), store.size());

  workload::WorkloadSpec spec;
  spec.num_queries = 10;
  spec.atoms_per_query = atoms;
  spec.shape = workload::QueryShape::kMixed;
  spec.commonality = workload::Commonality::kHigh;
  spec.seed = seed;
  std::vector<cq::ConjunctiveQuery> q2 =
      workload::GenerateSatisfiableWorkload(spec, store, &dict);
  std::vector<cq::ConjunctiveQuery> q1(q2.begin(), q2.begin() + 5);

  bench::PrintRow({"workload", "|Q|", "#a(Q)", "#c(Q)", "|Qr|", "#a(Qr)",
                   "#c(Qr)"});
  bench::PrintRule(7);
  struct Row {
    const char* name;
    const std::vector<cq::ConjunctiveQuery>* queries;
    const char* paper;
  };
  const Row rows[] = {
      {"Q1", &q1, "paper:  5 / 33 / 35   -> 20 / 143 / 157"},
      {"Q2", &q2, "paper: 10 / 76 / 77   -> 231 / 1436 / 1651"},
  };
  for (const Row& row : rows) {
    workload::WorkloadProfile p = workload::ProfileWorkload(*row.queries);
    size_t qr_queries = 0;
    size_t qr_atoms = 0;
    size_t qr_constants = 0;
    for (const cq::ConjunctiveQuery& q : *row.queries) {
      reform::ReformulationResult r =
          reform::Reformulate(q, barton.schema);
      qr_queries += r.ucq.size();
      qr_atoms += r.ucq.TotalAtoms();
      qr_constants += r.ucq.TotalConstants();
    }
    bench::PrintRow({row.name, std::to_string(p.num_queries),
                     std::to_string(p.total_atoms),
                     std::to_string(p.total_constants),
                     std::to_string(qr_queries), std::to_string(qr_atoms),
                     std::to_string(qr_constants)});
    std::printf("  (%s)\n", row.paper);
  }
  return 0;
}
