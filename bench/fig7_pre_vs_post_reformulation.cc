// Figure 7 — "Search for view sets using reformulation".
//
// For the Table 3 workloads Q1 and Q2, runs DFS-AVF-STV under
// pre-reformulation (search over the reformulated workload, statistics on
// the original store) and post-reformulation (search over the original
// workload, reformulated statistics), printing the best-cost-over-time
// trace of each run.
//
// Paper results to reproduce: the pre-reformulation initial state costs
// more; post-reformulation's best cost drops faster and ends lower (factors
// 2.7x for Q1 and 22x for Q2 in the paper); the gap grows with |Q|.
//
// Flags: --budget-sec=8 --triples=20000 --atoms=7 --seed=5
#include <cstdio>

#include "bench_util.h"
#include "vsel/selector.h"
#include "workload/barton.h"
#include "workload/generator.h"

namespace rdfviews {
namespace {

void PrintTrace(const char* label, const vsel::SearchStats& stats) {
  std::printf("%s  (initial %.3e, best %.3e, rcr %.3f)\n", label,
              stats.initial_cost, stats.best_cost,
              stats.RelativeCostReduction());
  std::printf("  time(s)    best-cost\n");
  for (const auto& [sec, cost] : stats.best_trace) {
    std::printf("  %8.3f   %.4e\n", sec, cost);
  }
}

}  // namespace
}  // namespace rdfviews

int main(int argc, char** argv) {
  using namespace rdfviews;
  bench::Flags flags(argc, argv);
  const double budget = flags.GetDouble("budget-sec", 8.0);
  const size_t triples = static_cast<size_t>(flags.GetInt("triples", 20000));
  const size_t atoms = static_cast<size_t>(flags.GetInt("atoms", 7));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));

  rdf::Dictionary dict;
  workload::BartonSchema barton = workload::BuildBartonSchema(&dict);
  workload::BartonDataOptions dopts;
  dopts.num_triples = triples;
  dopts.seed = seed;
  rdf::TripleStore store = workload::GenerateBartonData(barton, &dict, dopts);

  workload::WorkloadSpec spec;
  spec.num_queries = 10;
  spec.atoms_per_query = atoms;
  spec.shape = workload::QueryShape::kMixed;
  spec.commonality = workload::Commonality::kHigh;
  spec.seed = seed;
  std::vector<cq::ConjunctiveQuery> q2 =
      workload::GenerateSatisfiableWorkload(spec, store, &dict);
  std::vector<cq::ConjunctiveQuery> q1(q2.begin(), q2.begin() + 5);

  std::printf("Figure 7 reproduction: pre- vs post-reformulation search\n"
              "(DFS-AVF-STV, budget %.1fs per run, %zu triples).\n\n",
              budget, store.size());

  vsel::ViewSelector selector(&store, &dict, &barton.schema);
  struct Run {
    const char* workload_name;
    const std::vector<cq::ConjunctiveQuery>* queries;
  };
  const Run runs[] = {{"Q1", &q1}, {"Q2", &q2}};
  for (const Run& run : runs) {
    double best_pre = 0;
    double best_post = 0;
    for (vsel::EntailmentMode mode :
         {vsel::EntailmentMode::kPreReformulate,
          vsel::EntailmentMode::kPostReformulate}) {
      vsel::SelectorOptions opts;
      opts.entailment = mode;
      opts.strategy = vsel::StrategyKind::kDfs;
      opts.heuristics.avf = true;
      opts.heuristics.stop_var = true;
      opts.limits.time_budget_sec = budget;
      auto rec = selector.Recommend(*run.queries, opts);
      if (!rec.ok()) {
        std::printf("%s %s failed: %s\n", run.workload_name,
                    vsel::EntailmentModeName(mode),
                    rec.status().ToString().c_str());
        continue;
      }
      std::printf("--- %s, %s ---\n", run.workload_name,
                  vsel::EntailmentModeName(mode));
      PrintTrace("trace", rec->stats);
      std::printf("\n");
      if (mode == vsel::EntailmentMode::kPreReformulate) {
        best_pre = rec->stats.best_cost;
      } else {
        best_post = rec->stats.best_cost;
      }
    }
    if (best_post > 0) {
      std::printf("%s: best pre-reformulation cost / best "
                  "post-reformulation cost = %.2fx (paper: 2.7x for Q1, "
                  "22x for Q2)\n\n",
                  run.workload_name, best_pre / best_post);
    }
  }
  return 0;
}
