// Stress harness for the vseld daemon: runs the daemon in-process, drives
// it with many concurrent clients over real AF_UNIX sockets with mixed
// submit / update / poll / cancel / abrupt-disconnect traffic, and *gates*
// (exit != 0 otherwise — the CI daemon-stress job relies on this) the
// daemon's core contracts:
//
//   1. Parity: a recommendation served by the daemon over the socket is
//      byte-identical (canonical form) to one computed by an in-process
//      TuningSession over the same store, dictionary, and options.
//   2. No leaked sessions: after the run every session is terminal —
//      opened == closed + reaped, registry empty after the drain.
//   3. No hung workers: the whole run (including a graceful drain issued
//      while updates are in flight) terminates; a wedged handler would
//      hang the harness and trip the CI job timeout.
//   4. Quota enforcement: a client pushed past its session quota is
//      rejected with ResourceExhausted, and the rejection is counted.
//
// --chaos=1 additionally arms the vseld.* fault sites with a probabilistic
// plan for the middle phase, proving accept failures, torn frames, and
// head-of-update faults stay contained (clients see clean Status errors /
// connection drops; the daemon keeps serving and still drains to zero).
//
// Writes a JSON report (--report=PATH) with the traffic mix, rejection and
// containment counters, and the gate results.
#include <atomic>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "cq/parser.h"
#include "cq/query.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "vsel/serialize/serialize.h"
#include "vsel/session/session.h"
#include "vseld/client.h"
#include "vseld/server.h"
#include "workload/generator.h"

namespace {

using namespace rdfviews;

struct StressCounters {
  std::atomic<uint64_t> opens{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> polls{0};
  std::atomic<uint64_t> cancels{0};
  std::atomic<uint64_t> fetches{0};
  std::atomic<uint64_t> closes{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> quota_rejections{0};
  std::atomic<uint64_t> clean_errors{0};  // non-OK Status responses
  std::atomic<uint64_t> transport_errors{0};
};

std::string QueryText(const std::vector<cq::ConjunctiveQuery>& pool,
                      const rdf::Dictionary& dict, size_t index,
                      const std::string& name) {
  cq::ConjunctiveQuery q = pool[index % pool.size()];
  q.set_name(name);
  return q.ToString(&dict);
}

/// One stress client: open a session, then a random walk of verbs; with
/// probability `abort_share` sever the connection mid-traffic, reconnect,
/// and keep driving the same session. Leaves every session closed unless
/// the walk ends in an abort (those are the daemon drain's job).
void ClientWorker(int id, const std::string& socket_path,
                  const std::vector<cq::ConjunctiveQuery>* pool,
                  const rdf::Dictionary* dict, int ops, double abort_share,
                  StressCounters* counters) {
  std::mt19937_64 rng(0x5eed0000ull + static_cast<uint64_t>(id));
  const std::string client_id = "stress-" + std::to_string(id % 16);
  auto connect = [&]() -> std::unique_ptr<vseld::Client> {
    Result<vseld::Client> c = vseld::Client::Connect(socket_path, client_id);
    if (!c.ok()) return nullptr;
    return std::make_unique<vseld::Client>(std::move(*c));
  };
  std::unique_ptr<vseld::Client> client = connect();
  if (client == nullptr) return;

  vsel::SelectorOptions options;
  options.limits.time_budget_sec = 2;
  options.limits.max_states = 20000;
  Result<uint64_t> opened = client->OpenSession("default", options);
  if (!opened.ok()) {
    if (opened.status().code() == StatusCode::kResourceExhausted) {
      counters->quota_rejections.fetch_add(1);
    } else {
      counters->clean_errors.fetch_add(1);
    }
    return;
  }
  counters->opens.fetch_add(1);
  const uint64_t session = *opened;
  bool session_open = true;
  size_t next_query = 0;

  for (int op = 0; op < ops && session_open; ++op) {
    double roll = std::uniform_real_distribution<double>(0, 1)(rng);
    if (roll < abort_share) {
      // Abrupt disconnect — possibly mid-update — then reconnect and keep
      // using the same session id (sessions outlive connections).
      std::string q = QueryText(*pool, *dict,
                                rng(), "s" + std::to_string(id) + "_a" +
                                           std::to_string(op));
      (void)client->Update(session, {q}, {}, /*wait=*/false);
      client->Abort();
      counters->aborts.fetch_add(1);
      client = connect();
      if (client == nullptr) return;  // drain started; session gets reaped
      counters->reconnects.fetch_add(1);
      continue;
    }
    if (roll < 0.45) {
      std::string q = QueryText(*pool, *dict, next_query++,
                                "s" + std::to_string(id) + "_q" +
                                    std::to_string(op));
      Result<vsel::TuningProgress> r =
          client->Update(session, {q}, {}, (op % 3) == 0);
      if (r.ok()) {
        counters->updates.fetch_add(1);
      } else if (r.status().code() == StatusCode::kInvalidArgument) {
        counters->clean_errors.fetch_add(1);  // busy: update in flight
      } else if (r.status().code() == StatusCode::kInternal ||
                 r.status().code() == StatusCode::kTimedOut) {
        counters->transport_errors.fetch_add(1);
        client = connect();
        if (client == nullptr) return;
        counters->reconnects.fetch_add(1);
      } else {
        counters->clean_errors.fetch_add(1);
      }
    } else if (roll < 0.65) {
      Result<vsel::TuningProgress> r = client->Poll(session);
      if (r.ok()) {
        counters->polls.fetch_add(1);
      } else {
        counters->clean_errors.fetch_add(1);
      }
    } else if (roll < 0.8) {
      Result<vsel::TuningProgress> r = client->Cancel(session);
      if (r.ok()) {
        counters->cancels.fetch_add(1);
      } else {
        counters->clean_errors.fetch_add(1);
      }
    } else {
      Result<vseld::Client::FetchedRecommendation> r =
          client->FetchRecommendation(session, /*canonical=*/false,
                                      /*wait=*/true);
      if (r.ok()) {
        counters->fetches.fetch_add(1);
      } else {
        counters->clean_errors.fetch_add(1);
      }
    }
  }
  if (session_open && client != nullptr) {
    if (client->CloseSession(session).ok()) counters->closes.fetch_add(1);
  }
}

void WriteReport(const std::string& path, const StressCounters& c,
                 const vseld::Daemon& daemon, bool parity_ok, bool leaks_ok,
                 bool quota_ok, int clients, bool chaos) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write report %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(
      f,
      "{\n"
      "  \"clients\": %d,\n  \"chaos\": %s,\n"
      "  \"opens\": %llu,\n  \"updates\": %llu,\n  \"polls\": %llu,\n"
      "  \"cancels\": %llu,\n  \"fetches\": %llu,\n  \"closes\": %llu,\n"
      "  \"aborts\": %llu,\n  \"reconnects\": %llu,\n"
      "  \"quota_rejections\": %llu,\n  \"clean_errors\": %llu,\n"
      "  \"transport_errors\": %llu,\n"
      "  \"sessions_opened\": %llu,\n  \"sessions_closed\": %llu,\n"
      "  \"sessions_reaped\": %llu,\n  \"sessions_live_after_drain\": %zu,\n"
      "  \"gate_parity\": %s,\n  \"gate_no_leaks\": %s,\n"
      "  \"gate_quota\": %s\n"
      "}\n",
      clients, chaos ? "true" : "false",
      static_cast<unsigned long long>(c.opens.load()),
      static_cast<unsigned long long>(c.updates.load()),
      static_cast<unsigned long long>(c.polls.load()),
      static_cast<unsigned long long>(c.cancels.load()),
      static_cast<unsigned long long>(c.fetches.load()),
      static_cast<unsigned long long>(c.closes.load()),
      static_cast<unsigned long long>(c.aborts.load()),
      static_cast<unsigned long long>(c.reconnects.load()),
      static_cast<unsigned long long>(c.quota_rejections.load()),
      static_cast<unsigned long long>(c.clean_errors.load()),
      static_cast<unsigned long long>(c.transport_errors.load()),
      static_cast<unsigned long long>(daemon.registry().opened()),
      static_cast<unsigned long long>(daemon.registry().closed()),
      static_cast<unsigned long long>(daemon.registry().reaped()),
      daemon.registry().live(), parity_ok ? "true" : "false",
      leaks_ok ? "true" : "false", quota_ok ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const int clients = static_cast<int>(flags.GetInt("clients", 64));
  const int ops = static_cast<int>(flags.GetInt("ops", 12));
  // Parity needs a *deterministic* search, not a big one: serial, no time
  // budget, truncated at a fixed state cap identically on both paths.
  // Sanitizer legs shrink it — and the workload knobs below — because a
  // Debug+TSan build explores states ~100-300x slower than Release and the
  // per-state cost grows steeply with query size/commonality; the TSan leg
  // exists for race coverage of the daemon machinery, not search throughput.
  const size_t parity_max_states =
      static_cast<size_t>(flags.GetInt("parity-max-states", 200000));
  const size_t parity_queries =
      static_cast<size_t>(flags.GetInt("parity-queries", 6));
  const size_t workload_queries =
      static_cast<size_t>(flags.GetInt("workload-queries", 24));
  const size_t workload_atoms =
      static_cast<size_t>(flags.GetInt("workload-atoms", 4));
  const size_t triples = static_cast<size_t>(flags.GetInt("triples", 3000));
  const bool chaos = flags.GetInt("chaos", 0) != 0;
  const std::string report = flags.GetString("report", "");
  const std::string socket_path =
      flags.GetString("socket", "/tmp/vseld_stress.sock");

  // One synthetic environment shared by the daemon and the in-process
  // parity reference. High commonality + several partition groups gives
  // the partition cache and the progress stream something to chew on.
  rdf::Dictionary dict;
  workload::WorkloadSpec spec;
  spec.num_queries = workload_queries;
  spec.atoms_per_query = workload_atoms;
  spec.commonality = workload::Commonality::kHigh;
  spec.partition_groups = 4;
  spec.seed = 11;
  std::vector<cq::ConjunctiveQuery> pool =
      workload::GenerateWorkload(spec, &dict);
  std::fprintf(stderr, "[stress] workload generated (%zu queries)\n",
               pool.size());
  rdf::TripleStore store =
      workload::GenerateStoreForWorkload(pool, &dict, triples, 11);
  store.Build(&dict);
  std::fprintf(stderr, "[stress] store built (%zu triples)\n", store.size());

  vseld::DaemonOptions options;
  options.socket_path = socket_path;
  options.max_connections = static_cast<size_t>(clients) + 4;
  options.quota.max_sessions = static_cast<size_t>(clients) + 8;
  options.quota.max_sessions_per_client = 6;
  vseld::Daemon daemon(options);
  daemon.RegisterStore("default", &store, &dict);
  Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "daemon start failed: %s\n",
                 started.ToString().c_str());
    return 2;
  }
  std::fprintf(stderr, "[stress] daemon listening on %s\n",
               socket_path.c_str());

  // --- Phase 1: parity gate -------------------------------------------------
  // The same workload delta through (a) the daemon over the socket and
  // (b) an in-process TuningSession; identical options (calibration off so
  // weights cannot drift between the runs), canonical serialized form.
  bool parity_ok = false;
  {
    vsel::SelectorOptions popt;
    popt.auto_calibrate_cm = false;
    popt.limits.time_budget_sec = 0;  // no wall-clock cut: deterministic
    popt.limits.max_states = parity_max_states;
    std::vector<std::string> texts;
    for (size_t i = 0; i < parity_queries; ++i) {
      texts.push_back(QueryText(pool, dict, i, "p" + std::to_string(i)));
    }

    Result<vseld::Client> connected =
        vseld::Client::Connect(socket_path, "parity");
    if (!connected.ok()) {
      std::fprintf(stderr, "parity connect failed: %s\n",
                   connected.status().ToString().c_str());
      return 2;
    }
    vseld::Client client = std::move(*connected);
    Result<uint64_t> sid = client.OpenSession("default", popt);
    Result<std::string> daemon_blob = Status::Internal("unset");
    if (sid.ok()) {
      Result<vsel::TuningProgress> updated =
          client.Update(*sid, texts, {}, /*wait=*/true);
      if (updated.ok()) {
        Result<vseld::Client::FetchedRecommendation> fetched =
            client.FetchRecommendation(*sid, /*canonical=*/true,
                                       /*wait=*/true);
        if (fetched.ok()) daemon_blob = std::move(fetched->blob);
      }
      (void)client.CloseSession(*sid);
    }
    std::fprintf(stderr, "[stress] parity: daemon-side session done (%s)\n",
                 daemon_blob.ok() ? "ok" : daemon_blob.status().ToString().c_str());

    // In-process reference over the same dictionary: the daemon already
    // interned the query texts, so re-parsing them here maps to identical
    // term ids.
    std::vector<cq::ConjunctiveQuery> reference_queries;
    for (const std::string& text : texts) {
      Result<cq::ConjunctiveQuery> q = cq::ParseDatalog(text, &dict);
      if (q.ok()) reference_queries.push_back(std::move(*q));
    }
    vsel::TuningSession reference(&store, &dict, popt);
    Result<vsel::Recommendation> rec = reference.Update(reference_queries);
    if (daemon_blob.ok() && rec.ok()) {
      vsel::serialize::CacheIdentity identity =
          vsel::serialize::ComputeCacheIdentity(store, popt);
      std::string reference_blob =
          vsel::serialize::SerializeRecommendationCanonical(*rec, identity);
      parity_ok = *daemon_blob == reference_blob;
      std::printf("parity: daemon blob %zu bytes, reference %zu bytes -> %s\n",
                  daemon_blob->size(), reference_blob.size(),
                  parity_ok ? "IDENTICAL" : "MISMATCH");
    } else {
      std::printf("parity: daemon=%s reference=%s\n",
                  daemon_blob.status().ToString().c_str(),
                  rec.status().ToString().c_str());
    }
  }

  // --- Phase 2: quota probe -------------------------------------------------
  // One client opens sessions past its per-client cap; the overflow must
  // be a clean ResourceExhausted, and closing releases the slots.
  bool quota_ok = false;
  {
    Result<vseld::Client> connected =
        vseld::Client::Connect(socket_path, "quota-probe");
    if (connected.ok()) {
      vseld::Client client = std::move(*connected);
      vsel::SelectorOptions qopt;
      qopt.limits.max_states = 1000;
      std::vector<uint64_t> ids;
      Status overflow = Status::OK();
      for (size_t i = 0; i < options.quota.max_sessions_per_client + 2; ++i) {
        Result<uint64_t> sid = client.OpenSession("default", qopt);
        if (sid.ok()) {
          ids.push_back(*sid);
        } else {
          overflow = sid.status();
        }
      }
      quota_ok = ids.size() == options.quota.max_sessions_per_client &&
                 overflow.code() == StatusCode::kResourceExhausted;
      for (uint64_t id : ids) (void)client.CloseSession(id);
      std::printf("quota: %zu admitted (cap %zu), overflow %s -> %s\n",
                  ids.size(), options.quota.max_sessions_per_client,
                  overflow.ToString().c_str(), quota_ok ? "OK" : "FAIL");
    }
  }

  // --- Phase 3: mixed-traffic stress (optionally under chaos) ---------------
  if (chaos) {
    fault::FaultPlan plan;
    fault::SiteSpec spec_accept;
    spec_accept.probability = 0.05;
    spec_accept.count = fault::kForever;
    plan[fault::sites::kDaemonAccept] = spec_accept;
    fault::SiteSpec spec_frame;
    spec_frame.probability = 0.02;
    spec_frame.count = fault::kForever;
    plan[fault::sites::kDaemonFrameRead] = spec_frame;
    plan[fault::sites::kDaemonFrameWrite] = spec_frame;
    fault::SiteSpec spec_run;
    spec_run.probability = 0.05;
    spec_run.count = fault::kForever;
    plan[fault::sites::kDaemonSessionRun] = spec_run;
    fault::Arm(static_cast<uint64_t>(flags.GetInt("chaos-seed", 0xC4A05)),
               std::move(plan));
    std::printf("chaos: vseld.* sites armed\n");
  }
  StressCounters counters;
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int i = 0; i < clients; ++i) {
      workers.emplace_back(ClientWorker, i, socket_path, &pool, &dict, ops,
                           chaos ? 0.12 : 0.08, &counters);
    }
    for (std::thread& t : workers) t.join();
  }
  if (chaos) fault::Disarm();

  // --- Phase 4: drain with updates in flight --------------------------------
  // Submit no-wait updates on fresh sessions, then Stop() immediately: the
  // drain must cancel them via the anytime contract and reap the sessions.
  {
    Result<vseld::Client> connected =
        vseld::Client::Connect(socket_path, "drain-probe");
    if (connected.ok()) {
      vseld::Client client = std::move(*connected);
      vsel::SelectorOptions dopt;
      dopt.limits.max_states = 5000000;  // big enough to still be running
      for (int i = 0; i < 3; ++i) {
        Result<uint64_t> sid = client.OpenSession("default", dopt);
        if (!sid.ok()) break;
        std::vector<std::string> texts;
        for (size_t j = 0; j < 4; ++j) {
          texts.push_back(QueryText(pool, dict, 7 * (j + 1) + i,
                                    "d" + std::to_string(i) + "_" +
                                        std::to_string(j)));
        }
        (void)client.Update(*sid, texts, {}, /*wait=*/false);
      }
      // Sessions deliberately left open with updates running.
    }
  }
  daemon.Stop();

  // --- Gates ----------------------------------------------------------------
  const auto& registry = daemon.registry();
  bool leaks_ok = registry.live() == 0 &&
                  registry.opened() == registry.closed() + registry.reaped();
  std::printf(
      "sessions: opened=%llu closed=%llu reaped=%llu live-after-drain=%zu "
      "-> %s\n",
      static_cast<unsigned long long>(registry.opened()),
      static_cast<unsigned long long>(registry.closed()),
      static_cast<unsigned long long>(registry.reaped()), registry.live(),
      leaks_ok ? "NO LEAKS" : "LEAK");
  std::printf(
      "traffic: opens=%llu updates=%llu polls=%llu cancels=%llu "
      "fetches=%llu closes=%llu aborts=%llu reconnects=%llu "
      "clean_errors=%llu transport_errors=%llu\n",
      static_cast<unsigned long long>(counters.opens.load()),
      static_cast<unsigned long long>(counters.updates.load()),
      static_cast<unsigned long long>(counters.polls.load()),
      static_cast<unsigned long long>(counters.cancels.load()),
      static_cast<unsigned long long>(counters.fetches.load()),
      static_cast<unsigned long long>(counters.closes.load()),
      static_cast<unsigned long long>(counters.aborts.load()),
      static_cast<unsigned long long>(counters.reconnects.load()),
      static_cast<unsigned long long>(counters.clean_errors.load()),
      static_cast<unsigned long long>(counters.transport_errors.load()));

  if (!report.empty()) {
    WriteReport(report, counters, daemon, parity_ok, leaks_ok, quota_ok,
                clients, chaos);
  }
  if (!parity_ok) {
    std::fprintf(stderr, "GATE FAILED: daemon/in-process parity\n");
    return 1;
  }
  if (!leaks_ok) {
    std::fprintf(stderr, "GATE FAILED: leaked sessions\n");
    return 1;
  }
  if (!quota_ok) {
    std::fprintf(stderr, "GATE FAILED: quota enforcement\n");
    return 1;
  }
  std::printf("daemon stress: all gates passed\n");
  return 0;
}
