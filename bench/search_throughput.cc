// Search-core throughput probe: states/sec and cost-model estimation
// traffic for a fixed Barton workload, with and without memoization, and
// the parallel-engine scaling sweep (states/sec at 1/2/4/8 worker threads
// with the best state's fingerprint, which must not drift across thread
// counts on a budget generous enough to find the optimum). The A/B numbers
// quoted in CHANGES.md come from this harness (the "before" side built
// against the pre-refactor tree).
//
// Flags: --budget-sec=5 --triples=20000 --queries=5 --atoms=5
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/telemetry/metrics.h"
#include "rdf/statistics.h"
#include "search_probe.h"
#include "workload/barton.h"
#include "workload/generator.h"

namespace {

std::string FingerprintString(const rdfviews::Hash128& fp) {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(fp.hi),
                static_cast<unsigned long long>(fp.lo));
  return buf;
}

/// Registry snapshot of the state-allocation instruments. Heap mallocs per
/// state = (heap state blocks + arena blocks) / states created: arena spans
/// are pointer bumps, so the only mallocs on the arena path are the shared
/// 64 KiB blocks. The legacy (pre-arena) layout paid one-plus mallocs per
/// state; this ratio is the headline allocation-reduction number.
struct AllocSnapshot {
  uint64_t heap_blocks = 0;
  uint64_t arena_blocks = 0;
  uint64_t arena_spans = 0;
  uint64_t states = 0;

  static AllocSnapshot Take() {
    auto* reg = rdfviews::telemetry::MetricsRegistry::Default();
    AllocSnapshot s;
    s.heap_blocks = reg->GetCounter("vsel_state_alloc_heap_blocks_total")->Value();
    s.arena_blocks = reg->GetCounter("vsel_arena_blocks_total")->Value();
    s.arena_spans = reg->GetCounter("vsel_state_alloc_arena_spans_total")->Value();
    s.states = reg->GetCounter("vsel_states_created_total")->Value();
    return s;
  }

  /// Heap allocations per state created since `since`.
  double MallocsPerState(const AllocSnapshot& since) const {
    uint64_t states_d = states - since.states;
    if (states_d == 0) return 0;
    uint64_t mallocs =
        (heap_blocks - since.heap_blocks) + (arena_blocks - since.arena_blocks);
    return static_cast<double>(mallocs) / static_cast<double>(states_d);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rdfviews;
  bench::Flags flags(argc, argv);
  const double budget = flags.GetDouble("budget-sec", 5);
  const size_t triples = static_cast<size_t>(flags.GetInt("triples", 20000));

  rdf::Dictionary dict;
  workload::BartonSchema barton = workload::BuildBartonSchema(&dict);
  workload::BartonDataOptions dopts;
  dopts.num_triples = triples;
  rdf::TripleStore store = workload::GenerateBartonData(barton, &dict, dopts);
  workload::WorkloadSpec spec;
  spec.num_queries = static_cast<size_t>(flags.GetInt("queries", 5));
  spec.atoms_per_query = static_cast<size_t>(flags.GetInt("atoms", 5));
  spec.shape = workload::QueryShape::kMixed;
  std::vector<cq::ConjunctiveQuery> queries =
      workload::GenerateSatisfiableWorkload(spec, store, &dict);

  rdf::Statistics stats(&store);
  vsel::State s0 = *vsel::MakeInitialState(queries);

  bench::PrintRow({"strategy", "mode", "created", "states/sec", "card est",
                   "est/state", "distinct", "mallocs/state"});
  bench::PrintRule(8);
  for (vsel::StrategyKind strategy :
       {vsel::StrategyKind::kDfs, vsel::StrategyKind::kExStr}) {
    for (bool memoized : {true, false}) {
      AllocSnapshot before = AllocSnapshot::Take();
      std::optional<bench::SearchProbeResult> r =
          bench::RunSearchProbe(stats, s0, strategy, memoized, budget);
      if (!r.has_value()) {
        std::printf("search failed\n");
        return 1;
      }
      AllocSnapshot after = AllocSnapshot::Take();
      bench::PrintRow(
          {vsel::StrategyName(strategy), memoized ? "memoized" : "uncached",
           std::to_string(r->created),
           bench::FormatDouble(r->StatesPerSecond(), 0),
           std::to_string(r->card_estimations),
           bench::FormatDouble(r->EstimationsPerState(), 2),
           std::to_string(r->distinct_views),
           bench::FormatDouble(after.MallocsPerState(before), 4)});
    }
  }
  {
    // The state-storage allocation budget at a glance: arena states malloc
    // once per shared 64 KiB block; the legacy layout paid >= 1 malloc per
    // state (and the pre-flat layout several), so mallocs/state under the
    // arena is the claimed >= 5x reduction.
    AllocSnapshot total = AllocSnapshot::Take();
    std::printf(
        "\nstate storage: %llu states, %llu arena spans, %llu arena blocks, "
        "%llu heap blocks\n",
        static_cast<unsigned long long>(total.states),
        static_cast<unsigned long long>(total.arena_spans),
        static_cast<unsigned long long>(total.arena_blocks),
        static_cast<unsigned long long>(total.heap_blocks));
  }

  // Parallel scaling sweep. Warm counts are shared across runs through a
  // statistics snapshot so every thread count pays the same (zero) warm-up;
  // --stats-cache=<path> persists the snapshot so *repeated invocations*
  // skip the warm-up scans too.
  std::printf("\nparallel scaling (memoized, budget %.3gs)\n", budget);
  const std::string cache_path = flags.GetString("stats-cache", "");
  const uint64_t store_tag = rdf::SnapshotStoreTag(store);
  bool cache_loaded = false;
  if (!cache_path.empty()) {
    Result<rdf::StatisticsSnapshot> cached =
        rdf::LoadSnapshot(cache_path, store_tag);
    if (cached.ok()) {
      stats.Warm(*cached);
      cache_loaded = true;
      std::printf("stats cache: warmed %zu counts from %s\n",
                  cached->size(), cache_path.c_str());
    } else {
      std::printf("stats cache: %s (will rebuild)\n",
                  cached.status().ToString().c_str());
    }
  }
  stats.Precompute([&] {
    std::vector<rdf::Pattern> patterns;
    for (const auto& v : s0.views()) {
      for (const auto& a : v.def.atoms()) patterns.push_back(a.ToPattern());
    }
    return patterns;
  }());
  rdf::StatisticsSnapshot snapshot = stats.Snapshot();
  if (!cache_path.empty() && !cache_loaded) {
    Status saved = rdf::SaveSnapshot(snapshot, cache_path, store_tag);
    std::printf("stats cache: %s\n",
                saved.ok() ? ("saved to " + cache_path).c_str()
                           : saved.ToString().c_str());
  }
  bench::PrintRow({"strategy", "threads", "created", "states/sec",
                   "speedup", "best fingerprint"});
  bench::PrintRule(6);
  for (vsel::StrategyKind strategy :
       {vsel::StrategyKind::kDfs, vsel::StrategyKind::kExStr}) {
    double base_rate = 0;
    for (size_t threads : {1, 2, 4, 8}) {
      rdf::Statistics run_stats(&store);
      run_stats.Warm(snapshot);
      std::optional<bench::SearchProbeResult> r = bench::RunSearchProbe(
          run_stats, s0, strategy, /*memoized=*/true, budget, threads);
      if (!r.has_value()) {
        std::printf("search failed\n");
        return 1;
      }
      double rate = r->StatesPerSecond();
      if (threads == 1) base_rate = rate;
      bench::PrintRow(
          {vsel::StrategyName(strategy), std::to_string(threads),
           std::to_string(r->created), bench::FormatDouble(rate, 0),
           bench::FormatDouble(base_rate > 0 ? rate / base_rate : 0, 2) + "x",
           FingerprintString(r->best_fingerprint)});
    }
  }
  return 0;
}
