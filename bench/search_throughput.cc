// Search-core throughput probe: states/sec and cost-model estimation
// traffic for a fixed Barton workload, with and without memoization. The
// A/B numbers quoted in CHANGES.md come from this harness (the "before"
// side built against the pre-refactor tree).
//
// Flags: --budget-sec=5 --triples=20000 --queries=5 --atoms=5
#include <cstdio>

#include "bench_util.h"
#include "rdf/statistics.h"
#include "search_probe.h"
#include "workload/barton.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace rdfviews;
  bench::Flags flags(argc, argv);
  const double budget = flags.GetDouble("budget-sec", 5);
  const size_t triples = static_cast<size_t>(flags.GetInt("triples", 20000));

  rdf::Dictionary dict;
  workload::BartonSchema barton = workload::BuildBartonSchema(&dict);
  workload::BartonDataOptions dopts;
  dopts.num_triples = triples;
  rdf::TripleStore store = workload::GenerateBartonData(barton, &dict, dopts);
  workload::WorkloadSpec spec;
  spec.num_queries = static_cast<size_t>(flags.GetInt("queries", 5));
  spec.atoms_per_query = static_cast<size_t>(flags.GetInt("atoms", 5));
  spec.shape = workload::QueryShape::kMixed;
  std::vector<cq::ConjunctiveQuery> queries =
      workload::GenerateSatisfiableWorkload(spec, store, &dict);

  rdf::Statistics stats(&store);
  vsel::State s0 = *vsel::MakeInitialState(queries);

  bench::PrintRow({"strategy", "mode", "created", "states/sec", "card est",
                   "est/state", "distinct"});
  bench::PrintRule(7);
  for (vsel::StrategyKind strategy :
       {vsel::StrategyKind::kDfs, vsel::StrategyKind::kExStr}) {
    for (bool memoized : {true, false}) {
      std::optional<bench::SearchProbeResult> r =
          bench::RunSearchProbe(stats, s0, strategy, memoized, budget);
      if (!r.has_value()) {
        std::printf("search failed\n");
        return 1;
      }
      bench::PrintRow(
          {vsel::StrategyName(strategy), memoized ? "memoized" : "uncached",
           std::to_string(r->created),
           bench::FormatDouble(r->StatesPerSecond(), 0),
           std::to_string(r->card_estimations),
           bench::FormatDouble(r->EstimationsPerState(), 2),
           std::to_string(r->distinct_views)});
    }
  }
  return 0;
}
